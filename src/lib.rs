//! # rcsafe
//!
//! Safety and correct translation of relational calculus formulas — a
//! production-quality Rust reproduction of **Van Gelder & Topor, PODS
//! 1987**.
//!
//! This facade crate re-exports the three workspace layers:
//!
//! * [`formula`] (`rc-formula`) — the first-order formula kernel: AST,
//!   parser, printer, normal forms, and the conservative/distributive
//!   transformation rules of Figs. 3–4;
//! * [`relalg`] (`rc-relalg`) — the in-memory relational algebra engine the
//!   translation targets, including the generalized set difference `diff`
//!   (anti-join) and 0-ary relations;
//! * [`safety`] (`rc-safety`) — the paper's contribution: the `gen`/`con`
//!   relations, the evaluable and allowed classes, `genify`, RANF and the
//!   Dom-free translation, equality reduction, and the domain-independence
//!   apparatus of Sec. 10.
//!
//! The most common entry points are re-exported at the top level.
//!
//! ```
//! use rcsafe::{Database, query};
//!
//! let db = Database::from_facts("P('a')\nQ('a', 'b')").unwrap();
//! let ans = query("exists y. (P(x) | Q(x, y))", &db).unwrap();
//! assert_eq!(ans.len(), 1);
//! ```

pub use rc_formula as formula;
pub use rc_relalg as relalg;
pub use rc_safety as safety;

pub use rc_formula::{parse, Formula, Schema, Symbol, Term, Value, Var};
pub use rc_relalg::{
    Budget, CacheStats, CancelHandle, Database, FaultInjector, PipelineTrace, PlanCache, RaExpr,
    Relation, SharedPlanCache, TraceSink, Tracer,
};
pub use rc_safety::anyrc::{
    compile_and_eval_any, compile_and_eval_any_cached, compile_and_eval_any_shared,
    compile_and_eval_any_traced, AnyAnswer, CachedAnyOutput,
};
pub use rc_safety::pipeline::{
    classify, compile, compile_and_eval, compile_and_eval_cached, compile_and_eval_shared,
    compile_and_eval_traced, query, CachedQueryOutput, Compiled, PipelineError, PlannerMode,
    QueryOutput, SafetyClass,
};
pub use rc_safety::{
    equality_reduce, genify, is_allowed, is_evaluable, is_ranf, is_wide_sense_evaluable, ranf,
    translate,
};
