//! Unicode identifier lexing: deterministic classification and
//! display↔parse round-trips.
//!
//! The lexer classifies an identifier as predicate or variable by its
//! first character. Beyond ASCII that rule needs care: titlecase letters
//! (`Ǆ`) are cased but not uppercase, caseless scripts (CJK, kana) have
//! no capitalization at all, and NFD-decomposed identifiers carry
//! combining marks that must stay inside the token. These properties pin
//! the chosen semantics: uppercase *or titlecase* initial ⇒ predicate,
//! everything else (including caseless scripts) ⇒ variable, combining
//! marks continue the identifier, and every well-formed identifier
//! round-trips through both display dialects unchanged.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcsafe::formula::ast::Formula;
use rcsafe::formula::display::ascii;
use rcsafe::formula::parse;
use rcsafe::formula::term::Term;

/// Initials that must lex as predicate names: ASCII uppercase, accented
/// uppercase, Greek/Cyrillic capitals, and titlecase (Lt) digraphs.
const PRED_INITIALS: &[char] = &['P', 'Q', 'R', 'S', 'Ä', 'Ü', 'Σ', 'Г', 'Ǆ', 'ǅ', 'Ǉ', 'ǈ'];

/// Initials that must lex as variable names: ASCII lowercase, accented
/// lowercase (NFC), caseless scripts, and the underscore.
const VAR_INITIALS: &[char] = &['x', 'y', 'z', 'é', 'ß', 'λ', 'ж', '数', 'デ', '_'];

/// Identifier continuation characters, including combining marks (é as
/// NFD `e` + U+0301, a combining diaeresis, and a combining arrow).
const TAILS: &[char] = &[
    'a', 'b', '3', '_', 'ü', 'λ', '数', '\u{301}', '\u{308}', '\u{20D7}',
];

fn ident(rng: &mut StdRng, initials: &[char]) -> String {
    let mut s = String::new();
    s.push(initials[rng.gen_range(0..initials.len())]);
    for _ in 0..rng.gen_range(0..3usize) {
        s.push(TAILS[rng.gen_range(0..TAILS.len())]);
    }
    s
}

/// A random small formula whose identifiers exercise the Unicode pools.
fn unicode_formula(rng: &mut StdRng) -> Formula {
    let vars: Vec<String> = (0..3).map(|_| ident(rng, VAR_INITIALS)).collect();
    let preds: Vec<String> = (0..3).map(|_| ident(rng, PRED_INITIALS)).collect();
    build(rng, &preds, &vars, 3)
}

fn build(rng: &mut StdRng, preds: &[String], vars: &[String], depth: usize) -> Formula {
    let atom = |rng: &mut StdRng| {
        let p = &preds[rng.gen_range(0..preds.len())];
        let arity = rng.gen_range(1..3usize);
        let terms: Vec<Term> = (0..arity)
            .map(|_| Term::var(vars[rng.gen_range(0..vars.len())].as_str()))
            .collect();
        Formula::atom(p.as_str(), terms)
    };
    if depth == 0 {
        return atom(rng);
    }
    match rng.gen_range(0..6u8) {
        0 => atom(rng),
        1 => Formula::not(build(rng, preds, vars, depth - 1)),
        2 => Formula::and2(
            build(rng, preds, vars, depth - 1),
            build(rng, preds, vars, depth - 1),
        ),
        3 => Formula::or2(
            build(rng, preds, vars, depth - 1),
            build(rng, preds, vars, depth - 1),
        ),
        4 => Formula::exists(
            vars[rng.gen_range(0..vars.len())].as_str(),
            build(rng, preds, vars, depth - 1),
        ),
        _ => Formula::forall(
            vars[rng.gen_range(0..vars.len())].as_str(),
            build(rng, preds, vars, depth - 1),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Every formula over Unicode identifiers round-trips through both
    /// display dialects: parse(display(f)) == f, with predicates staying
    /// predicates and variables staying variables.
    #[test]
    fn unicode_display_parse_round_trip(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = unicode_formula(&mut rng);
        let uni = f.to_string();
        let asc = ascii(&f);
        let from_uni = parse(&uni);
        prop_assert!(from_uni.is_ok(), "unicode render failed to parse: {uni}");
        prop_assert_eq!(from_uni.unwrap(), f.clone(), "via {}", uni);
        let from_asc = parse(&asc);
        prop_assert!(from_asc.is_ok(), "ascii render failed to parse: {asc}");
        prop_assert_eq!(from_asc.unwrap(), f, "via {}", asc);
    }

    /// Lexing is deterministic and total over the identifier pools: the
    /// same input always produces the same classification, and a bare
    /// identifier's predicate-ness is decided by its first character.
    #[test]
    fn unicode_ident_classification_is_deterministic(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        // A predicate-initial identifier parses as a zero-ary atom…
        let p = ident(&mut rng, PRED_INITIALS);
        let f = parse(&p);
        prop_assert!(f.is_ok(), "predicate ident rejected: {p}");
        prop_assert_eq!(f.clone().unwrap(), parse(&p).unwrap());
        prop_assert!(
            matches!(f.unwrap(), Formula::Atom(a) if a.terms.is_empty()),
            "{p} did not lex as a predicate"
        );
        // …while a variable-initial identifier is not a formula on its
        // own (variables are terms), so `P(v)` must parse with v as a
        // term, round-tripping unchanged.
        let v = ident(&mut rng, VAR_INITIALS);
        let s = format!("P({v})");
        let f = parse(&s);
        prop_assert!(f.is_ok(), "variable ident rejected: {s}");
        prop_assert_eq!(
            f.unwrap(),
            Formula::atom("P", vec![Term::var(v.as_str())]),
            "{} did not lex as a variable",
            s
        );
    }
}
