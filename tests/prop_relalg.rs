//! Property tests for the relational algebra substrate: algebraic laws of
//! the operator set the paper's translation emits, and invariance of the
//! expression simplifier.

mod common;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rcsafe::formula::generate::{random_allowed_formula, GenConfig};
use rcsafe::formula::vars::rectified;
use rcsafe::relalg::{eval, eval_shared, simplify, EvalStats, RaExpr, Relation, SelPred};
use rcsafe::safety::pipeline::{compile_with, CompileOptions};
use rcsafe::{Budget, Database, Term, Tracer, Value, Var};

fn random_db(seed: u64, rows: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut a = Relation::new(2);
    let mut b = Relation::new(2);
    let mut c = Relation::new(1);
    for _ in 0..rows {
        a.insert(
            vec![
                Value::int(rng.gen_range(0..6)),
                Value::int(rng.gen_range(0..6)),
            ]
            .into_boxed_slice(),
        );
        b.insert(
            vec![
                Value::int(rng.gen_range(0..6)),
                Value::int(rng.gen_range(0..6)),
            ]
            .into_boxed_slice(),
        );
        c.insert(vec![Value::int(rng.gen_range(0..6))].into_boxed_slice());
    }
    db.insert_relation("A", a);
    db.insert_relation("B", b);
    db.insert_relation("C", c);
    db
}

fn scan_a() -> RaExpr {
    RaExpr::scan("A", vec![Term::var("x"), Term::var("y")])
}
fn scan_b() -> RaExpr {
    RaExpr::scan("B", vec![Term::var("y"), Term::var("z")])
}
fn scan_b_xy() -> RaExpr {
    RaExpr::scan("B", vec![Term::var("x"), Term::var("y")])
}
fn scan_c() -> RaExpr {
    RaExpr::scan("C", vec![Term::var("y")])
}

/// A random plan over columns `[x, y]` where roughly half the internal
/// nodes are `Diff` — the shape the selection-pushdown audit in
/// `rc_relalg::optimize` cares about (`σ` must stay on the left side of a
/// difference and never migrate to the right).
fn random_diff_plan(rng: &mut StdRng, depth: usize) -> RaExpr {
    if depth == 0 {
        return match rng.gen_range(0..3) {
            0 => scan_a(),
            1 => scan_b_xy(),
            _ => RaExpr::select(
                scan_a(),
                SelPred::NeqConst(Var::new("x"), Value::int(rng.gen_range(0..6))),
            ),
        };
    }
    match rng.gen_range(0..6) {
        // Differences dominate; the right side varies between same-arity
        // (plain minus) and narrower (generalized anti-join) operands.
        0..=2 => {
            let l = random_diff_plan(rng, depth - 1);
            let r = match rng.gen_range(0..3) {
                0 => random_diff_plan(rng, depth - 1),
                1 => scan_c(),
                _ => RaExpr::project(random_diff_plan(rng, depth - 1), vec![Var::new("y")]),
            };
            RaExpr::diff(l, r)
        }
        3 => RaExpr::union(
            random_diff_plan(rng, depth - 1),
            random_diff_plan(rng, depth - 1),
        ),
        4 => {
            let pred = match rng.gen_range(0..4) {
                0 => SelPred::EqCols(Var::new("x"), Var::new("y")),
                1 => SelPred::NeqCols(Var::new("x"), Var::new("y")),
                2 => SelPred::EqConst(Var::new("y"), Value::int(rng.gen_range(0..6))),
                _ => SelPred::NeqConst(Var::new("x"), Value::int(rng.gen_range(0..6))),
            };
            RaExpr::select(random_diff_plan(rng, depth - 1), pred)
        }
        _ => RaExpr::join(random_diff_plan(rng, depth - 1), scan_c()),
    }
}

/// Compare two expressions' results modulo column order (reorder the
/// second's columns to the first's).
fn same_answers(e1: &RaExpr, e2: &RaExpr, db: &Database) -> bool {
    let r1 = eval(e1, db).expect("e1 evaluates");
    let cols1 = e1.cols();
    let aligned = RaExpr::project(e2.clone(), cols1);
    let r2 = eval(&aligned, db).expect("e2 evaluates");
    r1 == r2
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Natural join is commutative and associative (modulo column order).
    #[test]
    fn join_commutative_associative(seed in 0u64..10_000) {
        let db = random_db(seed, 20);
        let ab = RaExpr::join(scan_a(), scan_b());
        let ba = RaExpr::join(scan_b(), scan_a());
        prop_assert!(same_answers(&ab, &ba, &db));
        let abc1 = RaExpr::join(RaExpr::join(scan_a(), scan_b()), scan_c());
        let abc2 = RaExpr::join(scan_a(), RaExpr::join(scan_b(), scan_c()));
        prop_assert!(same_answers(&abc1, &abc2, &db));
    }

    /// Union laws: commutative, associative, idempotent.
    #[test]
    fn union_laws(seed in 0u64..10_000) {
        let db = random_db(seed, 20);
        let u1 = RaExpr::union(scan_a(), scan_b_xy());
        let u2 = RaExpr::union(scan_b_xy(), scan_a());
        prop_assert!(same_answers(&u1, &u2, &db));
        prop_assert!(same_answers(&RaExpr::union(scan_a(), scan_a()), &scan_a(), &db));
    }

    /// Def. 9.3: `P diff Q ≡ P − π(P ⋈ Q)` where the join is on Q's
    /// columns and the projection back onto P's.
    #[test]
    fn diff_equals_its_definition(seed in 0u64..10_000) {
        let db = random_db(seed, 20);
        let p = scan_a();
        let q = scan_c(); // columns {y} ⊂ {x, y}
        let lhs = RaExpr::diff(p.clone(), q.clone());
        // P − π_P(P ⋈ Q): with set semantics, express the subtraction as a
        // same-arity diff.
        let joined = RaExpr::project(RaExpr::join(p.clone(), q), p.cols());
        let rhs = RaExpr::diff(p, joined);
        prop_assert!(same_answers(&lhs, &rhs, &db));
    }

    /// Same-arity diff is plain set difference.
    #[test]
    fn diff_same_arity_is_minus(seed in 0u64..10_000) {
        let db = random_db(seed, 20);
        let e = RaExpr::diff(scan_a(), scan_b_xy());
        let r = eval(&e, &db).unwrap();
        let a = eval(&scan_a(), &db).unwrap();
        let b = eval(&scan_b_xy(), &db).unwrap();
        prop_assert_eq!(r, a.minus(&b));
    }

    /// Projection cascade: π[c](π[d](e)) = π[c](e) when c ⊆ d.
    #[test]
    fn projection_cascade(seed in 0u64..10_000) {
        let db = random_db(seed, 20);
        let inner = RaExpr::project(scan_a(), vec![Var::new("y"), Var::new("x")]);
        let lhs = RaExpr::project(inner, vec![Var::new("y")]);
        let rhs = RaExpr::project(scan_a(), vec![Var::new("y")]);
        prop_assert!(same_answers(&lhs, &rhs, &db));
    }

    /// The simplifier is the identity on answers, exercised over the
    /// expressions the real pipeline produces (optimize off vs on) plus
    /// synthetic noise (unit joins, empty unions, identity projections).
    #[test]
    fn simplify_preserves_semantics(seed in 0u64..10_000) {
        let db = random_db(seed, 20);
        // Synthetic: wrap a pipeline expression in cruft, simplify, compare.
        let cfg = GenConfig {
            schema: rcsafe::Schema::new().with("A", 2).with("B", 2).with("C", 1),
            ..GenConfig::default()
        };
        let f = rectified(&random_allowed_formula(
            &cfg,
            &[Var::new("x")],
            &mut StdRng::seed_from_u64(seed),
            3,
        ));
        let Ok(c) = compile_with(&f, CompileOptions { optimize: false, ..CompileOptions::default() }) else {
            return Ok(());
        };
        // The allowed-formula generator may synthesize wide predicates the
        // fixture database lacks; declare them empty.
        let mut db = db;
        for (p, arity) in f.predicates() {
            db.declare(p, arity);
        }
        let e = c.expr;
        let noisy = RaExpr::union(
            RaExpr::join(RaExpr::Unit, RaExpr::project(e.clone(), e.cols())),
            RaExpr::Empty { cols: e.cols() },
        );
        let slim = simplify(&noisy);
        prop_assert!(slim.node_count() <= noisy.node_count());
        prop_assert!(same_answers(&noisy, &slim, &db), "{} vs {}", noisy, slim);
        // And the simplifier must actually strip the cruft.
        prop_assert_eq!(&slim, &simplify(&e));
    }

    /// The selection-pushdown audit, property-tested: on Diff-heavy plans
    /// (selections wrapped around differences at every depth) the
    /// simplifier and the memoizing DAG evaluator both agree with plain
    /// bottom-up evaluation. A pushdown that crossed to the right side of
    /// a `Diff` would resurrect tuples here and fail the comparison.
    #[test]
    fn diff_heavy_plans_optimize_and_share_soundly(seed in 0u64..10_000) {
        let db = random_db(seed, 15);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
        let e = RaExpr::select(
            random_diff_plan(&mut rng, 3),
            SelPred::NeqConst(Var::new("x"), Value::int(rng.gen_range(0..6))),
        );
        let raw = eval(&e, &db).expect("raw plan evaluates");
        let slim = simplify(&e);
        prop_assert!(
            same_answers(&e, &slim, &db),
            "optimizer changed answers on {e} -> {slim}"
        );
        let mut stats = EvalStats::default();
        let shared = eval_shared(&e, &db, &mut stats, Budget::unlimited(), &mut Tracer::off())
            .expect("shared eval evaluates");
        prop_assert_eq!(shared, raw, "memoized DAG eval diverged on {}", e);
    }

    /// Scans with repeated variables equal an explicit selection.
    #[test]
    fn repeated_var_scan_is_selection(seed in 0u64..10_000) {
        let db = random_db(seed, 30);
        let diagonal = RaExpr::scan("A", vec![Term::var("x"), Term::var("x")]);
        let via_select = RaExpr::project(
            RaExpr::select(
                scan_a(),
                rcsafe::relalg::SelPred::EqCols(Var::new("x"), Var::new("y")),
            ),
            vec![Var::new("x")],
        );
        prop_assert!(same_answers(&diagonal, &via_select, &db));
    }
}

/// Nullary relations behave as booleans through every operator.
#[test]
fn nullary_boolean_algebra() {
    let mut db = Database::new();
    db.insert_relation("T", Relation::unit());
    db.insert_relation("F", Relation::empty_nullary());
    let t = RaExpr::scan("T", vec![]);
    let f = RaExpr::scan("F", vec![]);
    // Join = conjunction.
    assert_eq!(
        eval(&RaExpr::join(t.clone(), t.clone()), &db)
            .unwrap()
            .as_bool(),
        Some(true)
    );
    assert_eq!(
        eval(&RaExpr::join(t.clone(), f.clone()), &db)
            .unwrap()
            .as_bool(),
        Some(false)
    );
    // Union = disjunction.
    assert_eq!(
        eval(&RaExpr::union(f.clone(), t.clone()), &db)
            .unwrap()
            .as_bool(),
        Some(true)
    );
    // Diff = and-not.
    assert_eq!(
        eval(&RaExpr::diff(t.clone(), f.clone()), &db)
            .unwrap()
            .as_bool(),
        Some(true)
    );
    assert_eq!(
        eval(&RaExpr::diff(t.clone(), t), &db).unwrap().as_bool(),
        Some(false)
    );
    assert_eq!(
        eval(&RaExpr::diff(f.clone(), f), &db).unwrap().as_bool(),
        Some(false)
    );
}
