//! Edge-case integration tests: the unglamorous corners that production
//! query front-ends actually hit.

mod common;

use rcsafe::safety::dom_baseline::{eval_brute_force, eval_dom};
use rcsafe::{compile, parse, query, Database, Value, Var};

fn check_against_oracle(q: &str, db: &Database) {
    let f = parse(q).unwrap();
    let c = compile(&f).unwrap_or_else(|e| panic!("{q}: {e}"));
    let ours = c.run(db).unwrap();
    let oracle = eval_brute_force(&f, db);
    assert_eq!(ours, oracle, "{q}");
}

#[test]
fn repeated_variables_in_atoms() {
    let db = Database::from_facts("P(1, 1)\nP(1, 2)\nP(3, 3)\nQ(1)\nQ(3)").unwrap();
    check_against_oracle("P(x, x)", &db);
    check_against_oracle("P(x, x) & Q(x)", &db);
    check_against_oracle("exists x. P(x, x)", &db);
    check_against_oracle("Q(x) & !P(x, x)", &db);
}

/// Equality reduction on repeated-variable atoms (`p(x, x) ∧ x = c`
/// shapes), checked differentially: the pipeline (equality reduction on by
/// default), the Dom-relation baseline, and brute-force active-domain
/// evaluation must all agree.
#[test]
fn repeated_variable_atoms_with_equalities() {
    let db = Database::from_facts("P(1, 1)\nP(1, 2)\nP(3, 3)\nQ(1)\nQ(3)").unwrap();
    for q in [
        "P(x, x) & x = 1",
        "exists x. (P(x, x) & x = 1)",
        "Q(y) & exists x. (P(x, x) & x = y)",
        "Q(x) & (P(x, x) | x = 1)",
        "Q(x) & !(P(x, x) & x = 1)",
        "P(x, y) & x = y",
        "exists x. (P(x, x) & (x = 1 | x = 3))",
    ] {
        let f = parse(q).unwrap();
        let c = compile(&f).unwrap_or_else(|e| panic!("{q}: {e}"));
        let ours = c.run(&db).unwrap();
        assert_eq!(ours, eval_brute_force(&f, &db), "{q} vs brute force");
        assert_eq!(ours, eval_dom(&f, &db).unwrap(), "{q} vs Dom baseline");
    }
}

#[test]
fn constants_inside_atoms() {
    let db = Database::from_facts("P(1, 'a')\nP(2, 'b')\nP(1, 'b')").unwrap();
    check_against_oracle("P(1, y)", &db);
    check_against_oracle("P(x, 'b')", &db);
    check_against_oracle("P(1, 'a')", &db); // closed: boolean
    check_against_oracle("exists y. P(2, y)", &db);
    check_against_oracle("P(x, y) & !P(1, y)", &db);
}

#[test]
fn zero_ary_predicates() {
    let mut db = Database::from_facts("P(1)\nP(2)").unwrap();
    db.insert_relation("Flag", rcsafe::Relation::unit());
    db.declare("Off", 0);
    check_against_oracle("Flag & P(x)", &db);
    check_against_oracle("P(x) & !Off", &db);
    check_against_oracle("Flag", &db);
    check_against_oracle("!Off", &db);
    // Disjunction of nullary with guards.
    check_against_oracle("P(x) & (Flag | Off)", &db);
}

#[test]
fn empty_database_behaviour() {
    let mut db = Database::new();
    db.declare("P", 1);
    db.declare("Q", 2);
    let ans = query("P(x)", &db).unwrap();
    assert!(ans.is_empty());
    // ∀ over an empty generator is vacuously true.
    let all = query("!exists x. (P(x) & !exists y. Q(x, y))", &db).unwrap();
    assert_eq!(all.as_bool(), Some(true));
}

#[test]
fn deep_quantifier_alternation() {
    let db =
        Database::from_facts("E(1, 2)\nE(2, 3)\nE(3, 1)\nE(3, 4)\nE(4, 4)\nV(1)\nV(2)\nV(3)\nV(4)")
            .unwrap();
    // "Vertices x from which every out-neighbour has an out-edge back into
    // a neighbour of x": ∀y(E(x,y) → ∃z(E(y,z) ∧ E(x,z)))-ish shape with
    // three levels.
    check_against_oracle(
        "V(x) & forall y. (!E(x, y) | exists z. (E(y, z) & E(x, z)))",
        &db,
    );
    // Four levels.
    check_against_oracle(
        "V(x) & forall y. (!E(x, y) | exists z. (E(y, z) & forall w. (!E(z, w) | V(w))))",
        &db,
    );
}

#[test]
fn shadowing_input_is_rectified() {
    // The same bound name at two levels must be handled by rectification.
    let db = Database::from_facts("P(1)\nQ(1, 2)\nQ(2, 2)").unwrap();
    let f = parse("exists y. (P(y) & exists y. Q(y, y))").unwrap();
    let c = compile(&f).unwrap();
    let ans = c.run(&db).unwrap();
    // ∃y P(y) is true; ∃y Q(y,y) is true (Q(2,2)).
    assert_eq!(ans.as_bool(), Some(true));
}

#[test]
fn same_variable_free_in_disjoint_branches() {
    let db = Database::from_facts("P(1)\nP(2)\nQ(2)\nQ(3)").unwrap();
    check_against_oracle("P(x) | Q(x)", &db);
    check_against_oracle("(P(x) | Q(x)) & !P(x)", &db);
}

#[test]
fn boolean_connective_stress() {
    let db = Database::from_facts("P(1)\nP(2)\nQ(2)\nR(2)\nR(3)").unwrap();
    // Multi-way unions and nested negations.
    check_against_oracle("(P(x) | Q(x) | R(x)) & !(P(x) & Q(x) & R(x))", &db);
    check_against_oracle("P(x) & !(Q(x) & !R(x)) | R(x) & !Q(x)", &db);
}

#[test]
fn implication_and_iff_sugar_compile() {
    let db = Database::from_facts("P(1)\nP(2)\nQ(2)").unwrap();
    // ∀x (P(x) → Q(x)) is false here (P(1) without Q(1)).
    let ans = query("!exists x. (P(x) & !Q(x))", &db).unwrap();
    assert_eq!(ans.as_bool(), Some(false));
    let via_arrow = query("forall x. (P(x) -> Q(x))", &db).unwrap();
    assert_eq!(via_arrow.as_bool(), Some(false));
    // An iff query over generated variables.
    check_against_oracle(
        "P(x) & (Q(x) <-> R(x))",
        &Database::from_facts("P(1)\nP(2)\nQ(2)\nR(2)\nR(1)").unwrap(),
    );
}

#[test]
fn constants_only_in_equality() {
    let db = Database::from_facts("P(1)\nP(2)").unwrap();
    // y enters the answer solely through y = c (Sec. 5.3's point).
    let ans = query("P(x) & y = 'tag'", &db).unwrap();
    assert_eq!(ans.len(), 2);
    assert!(ans.contains(&[Value::int(1), Value::str("tag")]));
    // Ground equality folds away.
    let t = query("P(x) & 1 = 1", &db).unwrap();
    assert_eq!(t.len(), 2);
    let f = query("P(x) & 1 = 2", &db).unwrap();
    assert!(f.is_empty());
}

#[test]
fn long_conjunction_chain() {
    let mut facts = String::new();
    for i in 0..20 {
        facts.push_str(&format!("E{i}({i}, {})\n", i + 1));
    }
    let db = Database::from_facts(&facts).unwrap();
    // A 20-way chain join: E0(x0, x1) ∧ E1(x1, x2) ∧ …
    let conj: Vec<String> = (0..20).map(|i| format!("E{i}(x{i}, x{})", i + 1)).collect();
    let q = conj.join(" & ");
    let f = parse(&q).unwrap();
    let c = compile(&f).unwrap();
    let ans = c.run(&db).unwrap();
    assert_eq!(ans.len(), 1);
    assert_eq!(c.columns.len(), 21);
    assert_eq!(c.columns[0], Var::new("x0"));
}

#[test]
fn answers_with_mixed_value_types() {
    let db = Database::from_facts("M(1, 'one')\nM(2, 'two')").unwrap();
    check_against_oracle("M(x, y) & x != 1", &db);
    check_against_oracle("M(x, y) & y != 'one'", &db);
    // Int and string constants never collide.
    let ans = query("M(x, y) & !M(x, 'one')", &db).unwrap();
    assert_eq!(ans.len(), 1);
}
