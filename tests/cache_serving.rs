//! End-to-end tests for the repeated-query serving path:
//! [`compile_and_eval_cached`] must be answer-identical to the uncached
//! pipeline, and the [`Database`] version stamp must invalidate
//! materialized results the moment the database changes.

use rcsafe::safety::corpus::corpus;
use rcsafe::safety::pipeline::{
    compile_and_eval, compile_and_eval_cached, CompileOptions, Compiled,
};
use rcsafe::{Budget, Database, PlanCache};

fn db() -> Database {
    Database::from_facts(
        "Part('bolt')\nPart('nut')\nSupplies('acme', 'bolt')\nSupplies('acme', 'nut')\nSupplies('busy', 'bolt')",
    )
    .unwrap()
}

const ALL_SUPPLIER: &str = "exists y. forall x. (!Part(x) | Supplies(y, x))";

/// The differential acceptance test: over every formula in the paper
/// corpus, cached serving (cold, then warm) returns exactly what the
/// uncached pipeline returns, and the warm call hits both cache layers.
#[test]
fn cached_serving_matches_uncached_across_the_corpus() {
    let db = db();
    let mut cache: PlanCache<Compiled> = PlanCache::new();
    let mut seen = std::collections::HashSet::new();
    let mut served = 0;
    for entry in corpus() {
        let uncached = match compile_and_eval(entry.text, &db, CompileOptions::default()) {
            Ok(o) => o,
            Err(_) => {
                // Unsafe formulas must be rejected by the cached path too,
                // not silently served.
                assert!(
                    compile_and_eval_cached(entry.text, &db, CompileOptions::default(), &mut cache)
                        .is_err(),
                    "{}: cached path accepted a formula the pipeline rejects",
                    entry.id
                );
                continue;
            }
        };
        // The corpus repeats some formulas verbatim; only a first
        // occurrence is genuinely plan-cold. Results key on the structural
        // plan hash, so a textually new formula may still legitimately hit
        // the result cache when it compiles to a plan already served —
        // the answer comparison below keeps that sharing honest.
        let fresh = seen.insert(entry.text);
        let cold = compile_and_eval_cached(entry.text, &db, CompileOptions::default(), &mut cache)
            .unwrap_or_else(|e| panic!("{}: cold cached serve failed: {e}", entry.id));
        assert_eq!(cold.plan_cached, !fresh, "{}", entry.id);
        assert_eq!(cold.relation, uncached.relation, "{} (cold)", entry.id);
        let warm = compile_and_eval_cached(entry.text, &db, CompileOptions::default(), &mut cache)
            .unwrap_or_else(|e| panic!("{}: warm cached serve failed: {e}", entry.id));
        assert!(warm.plan_cached && warm.result_cached, "{}", entry.id);
        assert_eq!(warm.relation, uncached.relation, "{} (warm)", entry.id);
        assert_eq!(
            warm.compiled.columns, uncached.compiled.columns,
            "{}",
            entry.id
        );
        served += 1;
    }
    assert!(served >= 10, "corpus should exercise the cache broadly");
    let s = cache.stats();
    assert!(s.result_hits >= served, "every warm call must hit");
    assert_eq!(s.stale_results, 0);
}

/// Serve → mutate → serve: the plan survives, the materialized result is
/// recognized as stale, and the fresh answer reflects the mutation.
#[test]
fn database_mutation_invalidates_cached_results() {
    let mut db = db();
    let mut cache: PlanCache<Compiled> = PlanCache::new();

    let first = compile_and_eval_cached(ALL_SUPPLIER, &db, CompileOptions::default(), &mut cache)
        .expect("cold serve");
    assert_eq!(first.relation.as_bool(), Some(true));
    assert!(!first.plan_cached && !first.result_cached);

    // An unsupplied part flips the answer; the version bump must prevent
    // the cached `true` from being served.
    db.load_facts("Part('washer')").unwrap();
    let second = compile_and_eval_cached(ALL_SUPPLIER, &db, CompileOptions::default(), &mut cache)
        .expect("post-mutation serve");
    assert!(second.plan_cached, "compilation must be reused");
    assert!(!second.result_cached, "stale result must not be served");
    assert_eq!(second.relation.as_bool(), Some(false));
    assert_eq!(cache.stats().stale_results, 1);

    // Steady state again: the refreshed result serves until the next bump.
    let third = compile_and_eval_cached(ALL_SUPPLIER, &db, CompileOptions::default(), &mut cache)
        .expect("warm serve");
    assert!(third.plan_cached && third.result_cached);
    assert_eq!(third.relation.as_bool(), Some(false));
}

/// A result-cache hit is not a budget bypass: serving a materialized
/// relation still charges its cardinality against the caller's budget.
#[test]
fn result_hits_still_charge_the_budget() {
    let db = db();
    let mut cache: PlanCache<Compiled> = PlanCache::new();
    let text = "Part(x)";

    let cold = compile_and_eval_cached(text, &db, CompileOptions::default(), &mut cache)
        .expect("cold serve");
    assert_eq!(cold.relation.len(), 2);

    let tight = CompileOptions {
        budget: Budget::new().with_max_tuples(1),
        ..CompileOptions::default()
    };
    let err = compile_and_eval_cached(text, &db, tight, &mut cache)
        .expect_err("serving 2 cached tuples under a 1-tuple budget must trip");
    assert!(err.budget().is_some(), "expected a budget trip, got: {err}");
    // The budget is not part of the cache key, so the hit was attempted
    // (and correctly refused) rather than recompiled.
    assert_eq!(cache.stats().plan_hits, 1);
    assert_eq!(cache.stats().result_hits, 1);
}

/// Semantically different [`CompileOptions`] must not share plan entries.
#[test]
fn options_fragment_the_plan_cache() {
    let db = db();
    let mut cache: PlanCache<Compiled> = PlanCache::new();
    let raw = CompileOptions {
        optimize: false,
        ..CompileOptions::default()
    };
    let a = compile_and_eval_cached(ALL_SUPPLIER, &db, CompileOptions::default(), &mut cache)
        .expect("optimized serve");
    let b = compile_and_eval_cached(ALL_SUPPLIER, &db, raw, &mut cache).expect("unoptimized serve");
    assert!(!b.plan_cached, "different options must compile separately");
    assert_eq!(cache.plan_count(), 2);
    assert_eq!(a.relation, b.relation);
}

/// The partition policy is pure execution policy: it is excluded from the
/// cache key (like the rest of the budget), so a result computed under one
/// policy is served — bit-identical — under any other, and a cold eval
/// under a forced partition count caches a relation indistinguishable from
/// the sequential one.
#[test]
fn partition_policy_never_fragments_or_skews_the_cache() {
    let db = db();
    let mut cache: PlanCache<Compiled> = PlanCache::new();
    let text = "Part(x) & !Supplies('busy', x)";
    let with_parts = |n: usize| CompileOptions {
        budget: Budget::new().with_partitions(n),
        ..CompileOptions::default()
    };

    // Cold serve evaluated with forced 4-way partitioned kernels.
    let cold = compile_and_eval_cached(text, &db, with_parts(4), &mut cache)
        .expect("cold partitioned serve");
    assert!(!cold.plan_cached && !cold.result_cached);

    // Warm serves under sequential kernels and a different forced count
    // both hit the same entry and return the identical relation.
    for n in [1usize, 7] {
        let warm = compile_and_eval_cached(text, &db, with_parts(n), &mut cache)
            .unwrap_or_else(|e| panic!("warm serve at partitions={n}: {e}"));
        assert!(
            warm.plan_cached && warm.result_cached,
            "partition count {n} must not fragment the cache"
        );
        assert_eq!(warm.relation, cold.relation);
        assert_eq!(warm.relation.to_string(), cold.relation.to_string());
    }
    assert_eq!(cache.plan_count(), 1);

    // And the partitioned-cold result equals an uncached sequential run.
    let plain = rcsafe::safety::pipeline::compile_and_eval(text, &db, CompileOptions::default())
        .expect("uncached sequential run");
    assert_eq!(plain.relation, cold.relation);
}
