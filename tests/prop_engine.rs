//! Differential tests for the batch-kernel engine: on random expressions
//! and random databases, the flat-row evaluator must be observationally
//! identical to the tuple-at-a-time baseline it replaced — same tuples AND
//! the same deterministic row order — whether the expression comes from the
//! compilation pipeline or is built by hand, and whether the engine runs
//! sequentially or takes the parallel path.

mod common;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcsafe::formula::generate::{random_allowed_formula, GenConfig};
use rcsafe::formula::vars::rectified;
use rcsafe::relalg::{
    eval, eval_baseline, eval_governed, eval_with_stats, EvalStats, RelationBuilder,
};
use rcsafe::safety::pipeline::{compile_with, CompileOptions};
use rcsafe::{Budget, Database, RaExpr, Term, Value, Var};
use std::sync::Arc;

fn random_db(seed: u64, rows: usize, domain: i64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for (name, arity) in [("A", 2), ("B", 2), ("C", 1)] {
        let mut b = RelationBuilder::with_capacity(arity, rows);
        for _ in 0..rows {
            b.push_row_from((0..arity).map(|_| Value::int(rng.gen_range(0..domain))));
        }
        db.insert_relation(name, b.finish());
    }
    db
}

/// Assert both engines produce the same relation, rendered identically.
fn assert_engines_agree(e: &RaExpr, db: &Database) {
    let fast = eval(e, db).expect("kernel eval");
    let slow = eval_baseline(e, db).expect("baseline eval");
    assert_eq!(fast, slow, "engines disagree on {e}");
    assert_eq!(
        fast.to_string(),
        slow.to_string(),
        "row order differs on {e}"
    );
}

/// A family of hand-built expressions hitting every operator and the
/// kernels' fast paths (semijoin, cross product, identity union/diff
/// permutations, order-preserving filters).
fn synthetic_exprs() -> Vec<RaExpr> {
    let a = || RaExpr::scan("A", vec![Term::var("x"), Term::var("y")]);
    let b_yz = || RaExpr::scan("B", vec![Term::var("y"), Term::var("z")]);
    let b_xy = || RaExpr::scan("B", vec![Term::var("x"), Term::var("y")]);
    let b_yx = || RaExpr::scan("B", vec![Term::var("y"), Term::var("x")]);
    let c = || RaExpr::scan("C", vec![Term::var("y")]);
    let c_w = || RaExpr::scan("C", vec![Term::var("w")]);
    vec![
        // Join with extra columns on the right (general hash join).
        RaExpr::join(a(), b_yz()),
        // Semijoin: right side adds no columns.
        RaExpr::join(a(), c()),
        // Cross product: no shared columns.
        RaExpr::join(a(), c_w()),
        // Union, identity and non-identity permutations.
        RaExpr::union(a(), b_xy()),
        RaExpr::union(a(), b_yx()),
        // Same-arity diff (merge path) and anti-join (projection path).
        RaExpr::diff(a(), b_xy()),
        RaExpr::diff(a(), c()),
        // Projection that reorders, selection chains, duplication.
        RaExpr::project(
            RaExpr::join(a(), b_yz()),
            vec![Var::new("z"), Var::new("x")],
        ),
        RaExpr::select(
            a(),
            rcsafe::relalg::SelPred::NeqCols(Var::new("x"), Var::new("y")),
        ),
        RaExpr::select(
            a(),
            rcsafe::relalg::SelPred::EqConst(Var::new("x"), Value::int(1)),
        ),
        RaExpr::Duplicate {
            input: Arc::new(c()),
            src: Var::new("y"),
            dst: Var::new("y2"),
        },
        // Scan-level selection: constants and repeated variables.
        RaExpr::scan("A", vec![Term::var("x"), Term::val(2)]),
        RaExpr::scan("A", vec![Term::var("x"), Term::var("x")]),
        // A deeper composite: (A ⋈ B) diff C ∪ permuted self.
        RaExpr::union(
            RaExpr::diff(RaExpr::join(a(), b_yz()), c()),
            RaExpr::project(
                RaExpr::join(b_yx(), b_yz()),
                vec![Var::new("x"), Var::new("y"), Var::new("z")],
            ),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Hand-built operator shapes: kernels vs baseline on random data.
    #[test]
    fn kernels_match_baseline_on_synthetic_exprs(seed in 0u64..10_000) {
        let db = random_db(seed, 25, 8);
        for e in synthetic_exprs() {
            assert_engines_agree(&e, &db);
        }
    }

    /// Pipeline-compiled expressions (the shapes the paper's translation
    /// actually emits): kernels vs baseline, optimized and raw.
    #[test]
    fn kernels_match_baseline_on_pipeline_exprs(seed in 0u64..4_000) {
        let cfg = GenConfig::default();
        let f = rectified(&random_allowed_formula(
            &cfg,
            &[Var::new("x"), Var::new("y")],
            &mut StdRng::seed_from_u64(seed),
            3,
        ));
        prop_assume!(f.node_count() <= 60);
        for optimize in [false, true] {
            let Ok(c) = compile_with(&f, CompileOptions { optimize, ..CompileOptions::default() })
            else { return Ok(()); };
            let schema = rcsafe::Schema::infer(&f).expect("consistent");
            let domain: Vec<Value> = (0..6).map(Value::int).collect();
            let db = Database::random(
                &schema,
                &domain,
                8,
                &mut StdRng::seed_from_u64(seed ^ 0x5EED),
            );
            let fast = eval(&c.expr, &db).expect("kernel eval");
            let slow = eval_baseline(&c.expr, &db).expect("baseline eval");
            prop_assert_eq!(&fast, &slow, "engines disagree on {} (optimize={})", &f, optimize);
            prop_assert_eq!(
                fast.to_string(),
                slow.to_string(),
                "row order differs on {}", &f
            );
        }
    }

    /// Forced partition counts — 1 (sequential kernels), a random small
    /// count, and far more partitions than rows — never change the answer
    /// or its row order, across every hand-built operator shape.
    #[test]
    fn partitioned_matches_sequential_on_synthetic_exprs(seed in 0u64..3_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9A71);
        let db = random_db(seed, 40, 9);
        let counts = [1usize, rng.gen_range(2..=7), 97];
        for e in synthetic_exprs() {
            let want = eval(&e, &db).expect("auto-policy eval");
            for &n in &counts {
                let budget = Budget::new().with_partitions(n);
                let got = eval_governed(&e, &db, &mut EvalStats::default(), &budget)
                    .expect("partitioned eval");
                prop_assert_eq!(&want, &got, "partitions={} on {}", n, &e);
                prop_assert_eq!(
                    want.to_string(),
                    got.to_string(),
                    "order differs at partitions={} on {}", n, &e
                );
            }
        }
    }

    /// The same partition-invisibility property on pipeline-compiled
    /// expressions — the operator shapes the paper's translation emits.
    #[test]
    fn partitioned_matches_sequential_on_pipeline_exprs(seed in 0u64..1_500) {
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
        let f = rectified(&random_allowed_formula(
            &cfg,
            &[Var::new("x"), Var::new("y")],
            &mut StdRng::seed_from_u64(seed),
            3,
        ));
        prop_assume!(f.node_count() <= 60);
        let Ok(c) = compile_with(&f, CompileOptions::default()) else { return Ok(()); };
        let schema = rcsafe::Schema::infer(&f).expect("consistent");
        let domain: Vec<Value> = (0..6).map(Value::int).collect();
        let db = Database::random(&schema, &domain, 10, &mut StdRng::seed_from_u64(seed ^ 0x5EED));
        let seq = Budget::new().with_partitions(1);
        let want = eval_governed(&c.expr, &db, &mut EvalStats::default(), &seq)
            .expect("sequential eval");
        for n in [rng.gen_range(2..=8), 64usize] {
            let budget = Budget::new().with_partitions(n);
            let got = eval_governed(&c.expr, &db, &mut EvalStats::default(), &budget)
                .expect("partitioned eval");
            prop_assert_eq!(&want, &got, "partitions={} on {}", n, &f);
            prop_assert_eq!(
                want.to_string(),
                got.to_string(),
                "order differs at partitions={} on {}", n, &f
            );
        }
    }

    /// Evaluation is a pure function: repeated runs give bit-identical
    /// renderings and identical stats.
    #[test]
    fn evaluation_is_deterministic(seed in 0u64..10_000) {
        let db = random_db(seed, 30, 6);
        for e in synthetic_exprs() {
            let mut s1 = EvalStats::default();
            let mut s2 = EvalStats::default();
            let r1 = eval_with_stats(&e, &db, &mut s1).expect("run 1");
            let r2 = eval_with_stats(&e, &db, &mut s2).expect("run 2");
            prop_assert_eq!(&r1, &r2);
            prop_assert_eq!(r1.to_string(), r2.to_string(), "order differs on {}", &e);
            prop_assert_eq!(s1, s2, "stats differ on {}", &e);
        }
    }
}

/// Above the parallel threshold the scoped-thread path must produce the
/// same relation, in the same order, as the baseline — on join, union and
/// diff roots.
#[test]
fn parallel_path_matches_baseline() {
    let rows: usize = 9_000; // comfortably above the 8192 scan-cost threshold
    let mut a = RelationBuilder::with_capacity(2, rows);
    let mut b = RelationBuilder::with_capacity(2, rows);
    for i in 0..rows as i64 {
        a.push_row(&[Value::int(i), Value::int(i % 17)]);
        b.push_row(&[Value::int(i % 17), Value::int(i % 251)]);
    }
    let mut db = Database::new();
    db.insert_relation("A", a.finish());
    db.insert_relation("B", b.finish());
    let scan_a = RaExpr::scan("A", vec![Term::var("x"), Term::var("y")]);
    let scan_b = RaExpr::scan("B", vec![Term::var("y"), Term::var("z")]);
    let scan_b_xy = RaExpr::scan("B", vec![Term::var("x"), Term::var("y")]);
    for e in [
        RaExpr::join(scan_a.clone(), scan_b.clone()),
        RaExpr::union(scan_a.clone(), scan_b_xy.clone()),
        RaExpr::diff(scan_a.clone(), scan_b_xy),
        RaExpr::diff(scan_a, RaExpr::project(scan_b, vec![Var::new("y")])),
    ] {
        let fast = eval(&e, &db).expect("parallel eval");
        let slow = eval_baseline(&e, &db).expect("baseline eval");
        assert_eq!(fast, slow, "parallel engine disagrees on {e}");
        assert_eq!(fast.to_string(), slow.to_string(), "order differs on {e}");
        // And a second run is identical (thread interleaving must not leak
        // into results).
        assert_eq!(fast, eval(&e, &db).unwrap());
    }
}
