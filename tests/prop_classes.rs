//! Property tests for the class theorems:
//!
//! * Lemma 5.1 / Thm. 5.2: `gen ⇒ con`, allowed ⇒ evaluable;
//! * Thm. 7.2: range restriction of the `dnf`/`cnf` pair ⇔ evaluable;
//! * Lemma 8.1: the generator over-approximates (`∃*A(x) ⇒ ∃*G(x)`);
//! * Thm. 8.4: `genify` output is allowed and equivalent;
//! * Thm. 9.4: `ranf` output is RANF and equivalent;
//! * Thm. 10.3: evaluable ⇒ definite (no sampled counterexample);
//! * Lemma 9.1: RANF ⇒ allowed.

mod common;

use common::assert_equivalent;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rcsafe::formula::generate::{random_allowed_formula, random_formula, GenConfig};
use rcsafe::formula::normal::MatrixLimit;
use rcsafe::formula::vars::{free_vars, rectified};
use rcsafe::safety::classes::is_range_restricted;
use rcsafe::safety::domind::{empirically_definite, DefiniteTest};
use rcsafe::safety::gencon::{con, gen};
use rcsafe::safety::generator::{con_generator, gen_generator, ConGen};
use rcsafe::safety::interp::FiniteInterp;
use rcsafe::{genify, is_allowed, is_evaluable, is_ranf, ranf, Database, Formula, Value, Var};

fn arbitrary_sample(seed: u64) -> Formula {
    let cfg = GenConfig {
        max_depth: 4,
        ..GenConfig::default()
    };
    rectified(&random_formula(&cfg, &mut StdRng::seed_from_u64(seed)))
}

fn allowed_sample(seed: u64) -> Formula {
    let cfg = GenConfig::default();
    rectified(&random_allowed_formula(
        &cfg,
        &[Var::new("x")],
        &mut StdRng::seed_from_u64(seed),
        3,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Lemma 5.1: gen(x, A) ⇒ con(x, A).
    #[test]
    fn lemma_51_gen_implies_con(seed in 0u64..10_000) {
        let f = arbitrary_sample(seed);
        for v in [Var::new("x"), Var::new("y")] {
            if gen(v, &f) {
                prop_assert!(con(v, &f), "gen without con: {}", &f);
            }
        }
    }

    /// Thm. 5.2: every allowed formula is evaluable.
    #[test]
    fn thm_52_allowed_subset_of_evaluable(seed in 0u64..10_000) {
        let f = arbitrary_sample(seed);
        if is_allowed(&f) {
            prop_assert!(is_evaluable(&f), "allowed but not evaluable: {}", &f);
        }
        // And the by-construction generator really generates allowed
        // formulas.
        let g = allowed_sample(seed);
        prop_assert!(is_allowed(&g), "generator produced non-allowed: {}", &g);
    }

    /// Thm. 7.2: the dnf/cnf range-restriction test recognizes exactly the
    /// evaluable formulas.
    #[test]
    fn thm_72_range_restricted_iff_evaluable(seed in 0u64..10_000) {
        let f = arbitrary_sample(seed);
        prop_assume!(f.node_count() <= 40);
        match is_range_restricted(&f, MatrixLimit(50_000)) {
            Err(_) => {} // matrix too large; skip
            Ok(rr) => prop_assert_eq!(
                rr,
                is_evaluable(&f),
                "Thm 7.2 disagreement on {}", &f
            ),
        }
    }

    /// Lemma 8.1: if gen(x, A, G) holds, then the x-values where ∃*A holds
    /// are a subset of those where ∃*G holds — checked semantically on
    /// random databases.
    #[test]
    fn lemma_81_generator_overapproximates(seed in 0u64..10_000) {
        let f = arbitrary_sample(seed);
        let x = Var::new("x");
        let Some(g_atoms) = gen_generator(x, &f) else { return Ok(()); };
        prop_assume!(free_vars(&f).contains(&x));
        let g_disj = Formula::or(g_atoms);
        // Evaluate both with all variables except x projected out.
        let schema = common::joint_schema(&f, &g_disj);
        let domain: Vec<Value> = (1..=3).map(Value::int).collect();
        for trial in 0..3u64 {
            let db = Database::random(
                &schema, &domain, 5, &mut StdRng::seed_from_u64(seed * 11 + trial),
            );
            let interp = FiniteInterp::new(&db, domain.clone());
            // ∃* means: some assignment of the other variables.
            let f_cols = free_vars(&f);
            let g_cols = free_vars(&g_disj);
            let f_ans = interp.answers(&f, &f_cols);
            let g_ans = interp.answers(&g_disj, &g_cols);
            let xi_f = f_cols.iter().position(|v| *v == x).unwrap();
            let f_xs: Vec<Value> = f_ans.iter().map(|t| t[xi_f]).collect();
            let xi_g = g_cols.iter().position(|v| *v == x).unwrap();
            let g_xs: Vec<Value> = g_ans.iter().map(|t| t[xi_g]).collect();
            for v in f_xs {
                prop_assert!(
                    g_xs.contains(&v),
                    "value {} satisfies ∃*A but not ∃*G for {} / {}", v, &f, &g_disj
                );
            }
        }
    }

    /// The same subset property for con generators (when not ⊥).
    #[test]
    fn lemma_81_con_generator_overapproximates(seed in 0u64..10_000) {
        let f = arbitrary_sample(seed);
        let x = Var::new("x");
        let Some(ConGen::Atoms(g_atoms)) = con_generator(x, &f) else { return Ok(()); };
        prop_assume!(!gen(x, &f)); // interesting case: con-only
        // con's guarantee is weaker: at any fixed assignment of the other
        // variables, A either generates x (within G), holds nowhere, or
        // holds everywhere. We verify the generated-or-everywhere split:
        // if A(x0, ȳ0) holds but x0 ∉ G-values(ȳ0), then A(x, ȳ0) holds
        // for ALL x in the domain.
        let g_disj = Formula::or(g_atoms);
        let schema = common::joint_schema(&f, &g_disj);
        let domain: Vec<Value> = (1..=3).map(Value::int).collect();
        let db = Database::random(&schema, &domain, 5, &mut StdRng::seed_from_u64(seed * 17));
        let interp = FiniteInterp::new(&db, domain.clone());
        let mut others = free_vars(&f);
        others.retain(|v| *v != x);
        prop_assume!(others.len() <= 2);
        // Enumerate assignments of the other variables.
        let mut assignments: Vec<Vec<(Var, Value)>> = vec![vec![]];
        for &v in &others {
            let mut next = Vec::new();
            for a in &assignments {
                for &val in &domain {
                    let mut a2 = a.clone();
                    a2.push((v, val));
                    next.push(a2);
                }
            }
            assignments = next;
        }
        for assign in assignments {
            let holds: Vec<bool> = domain
                .iter()
                .map(|&xv| {
                    let mut env = assign.clone();
                    env.push((x, xv));
                    interp.satisfies(&f, &env)
                })
                .collect();
            let in_g: Vec<bool> = domain
                .iter()
                .map(|&xv| {
                    let mut env = assign.clone();
                    env.push((x, xv));
                    // Free variables of G other than x may be bound in f;
                    // existentially close them.
                    let mut g_closed = g_disj.clone();
                    for v in free_vars(&g_disj) {
                        if v != x && !assign.iter().any(|(w, _)| *w == v) {
                            g_closed = Formula::exists(v, g_closed);
                        }
                    }
                    interp.satisfies(&g_closed, &env)
                })
                .collect();
            let any_outside = holds
                .iter()
                .zip(&in_g)
                .any(|(&h, &g)| h && !g);
            if any_outside {
                prop_assert!(
                    holds.iter().all(|&h| h),
                    "con violated: {} holds at an ungenerated point but not everywhere\n  assign {:?}",
                    &f, assign
                );
            }
        }
    }

    /// Thm. 8.4 + Thm. 9.4 composed on random allowed formulas: ranf
    /// output is RANF, allowed (Lemma 9.1), and equivalent.
    #[test]
    fn thm_94_ranf_output_is_ranf_allowed_equivalent(seed in 0u64..10_000) {
        let f = allowed_sample(seed);
        prop_assume!(is_allowed(&f) && f.node_count() <= 60);
        let r = match ranf(&f) {
            Ok(r) => r,
            Err(_) => return Ok(()), // budget
        };
        prop_assert!(is_ranf(&r), "not RANF: {} → {}", &f, &r);
        prop_assert!(is_allowed(&r) || r.is_true() || r.is_false(),
            "RANF output not allowed: {}", &r);
        assert_equivalent(&f, &r, seed);
    }

    /// Thm. 8.4 on random evaluable formulas: genify output is allowed and
    /// equivalent.
    #[test]
    fn thm_84_genify_allowed_equivalent(seed in 0u64..10_000) {
        let f = allowed_sample(seed);
        prop_assume!(f.node_count() <= 60);
        // Allowed inputs exercise the pass-through path; Example-style
        // evaluable inputs are covered in rc-safety's unit suite.
        let g = genify(&f).expect("allowed is evaluable");
        prop_assert!(is_allowed(&g), "genify output not allowed: {}", &g);
        assert_equivalent(&f, &g, seed ^ 0x55);
    }

    /// Appendix A: "Wide sense evaluability is invariant under
    /// conservative transformations."
    #[test]
    fn appendix_a_wide_sense_invariance(seed in 0u64..4_000) {
        use rand::seq::SliceRandom;
        use rcsafe::formula::transform::{applicable_rewrites, apply_at, CONSERVATIVE_RULES};
        use rcsafe::formula::vars::FreshVars;
        use rcsafe::is_wide_sense_evaluable;
        let f = arbitrary_sample(seed);
        prop_assume!(f.node_count() <= 25 && f.has_equality());
        let ws = is_wide_sense_evaluable(&f);
        let mut fresh = FreshVars::for_formula(&f);
        let apps = applicable_rewrites(&f, CONSERVATIVE_RULES);
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        for (path, rw) in apps.choose_multiple(&mut rng, 3.min(apps.len())) {
            if let Some(g) = apply_at(*rw, &f, path, &mut fresh) {
                prop_assert_eq!(
                    is_wide_sense_evaluable(&g), ws,
                    "wide-sense changed by {:?} at {:?}:\n  {}\n  {}", rw, path, &f, &g
                );
            }
        }
    }

    /// The concrete syntax round-trips: parsing a formula's display form
    /// reproduces it exactly, so every formula the classifiers and
    /// rewriters exchange can be written down and read back unchanged.
    #[test]
    fn display_parse_round_trip(seed in 0u64..100_000) {
        let f = arbitrary_sample(seed);
        let text = f.to_string();
        match rcsafe::parse(&text) {
            Ok(back) => prop_assert_eq!(
                back, f, "round-trip changed the formula\n  text: {}", text
            ),
            Err(e) => return Err(TestCaseError::fail(format!(
                "display form failed to parse: {text}\n  {e}"
            ))),
        }
    }

    /// Thm. 10.3: evaluable formulas are definite on every sampled
    /// interpretation.
    #[test]
    fn thm_103_evaluable_implies_definite(seed in 0u64..10_000) {
        let f = arbitrary_sample(seed);
        prop_assume!(is_evaluable(&f) && f.node_count() <= 40);
        let verdict = empirically_definite(&f, &DefiniteTest {
            trials: 10,
            ..DefiniteTest::default()
        });
        prop_assert!(
            verdict.is_definite(),
            "evaluable formula refuted as definite: {}", &f
        );
    }
}
