//! End-to-end execution of the paper corpus: every `corpus()` entry is
//! driven through classify → compile → eval on small random databases.
//!
//! The corpus was previously asserted for *classification* only; here the
//! paper-asserted flags are checked against [`classify`], compilation is
//! shown to succeed exactly for the wide-sense-evaluable entries, and the
//! compiled answers of every domain-independent entry agree with the
//! brute-force `dom_baseline` oracle (Thms. 8.4 + 9.4 + 9.5 on the
//! paper's own formulas).

mod common;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rcsafe::relalg::govern::Stage;
use rcsafe::safety::corpus::{corpus, formula_of, PaperFormula};
use rcsafe::safety::dom_baseline::eval_brute_force;
use rcsafe::safety::pipeline::{classify, compile, CompileError, PipelineError, SafetyClass};
use rcsafe::{Database, Schema, Value};

/// A reproducible database over an entry's inferred schema. Seed 0 yields
/// the empty database so the vacuous cases are always exercised.
fn db_for(entry: &PaperFormula, seed: u64) -> Database {
    let f = formula_of(entry);
    let schema = Schema::infer(&f).expect("corpus formulas have consistent arities");
    let mut domain: Vec<Value> = (1..=4).map(Value::int).collect();
    for c in f.constants() {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    if seed == 0 {
        let mut d = Database::new();
        for (p, ar) in schema.predicates() {
            d.declare(p, ar);
        }
        d
    } else {
        Database::random(&schema, &domain, 6, &mut StdRng::seed_from_u64(seed))
    }
}

#[test]
fn classify_agrees_with_paper_flags() {
    for e in corpus() {
        let f = formula_of(&e);
        let class = classify(&f);
        match class {
            SafetyClass::Allowed => assert!(e.allowed, "{}: classified allowed", e.id),
            SafetyClass::Evaluable => {
                assert!(e.evaluable && !e.allowed, "{}: classified evaluable", e.id)
            }
            SafetyClass::WideSenseEvaluable => assert!(
                e.wide_sense && !e.evaluable,
                "{}: classified wide-sense",
                e.id
            ),
            SafetyClass::NotRecognized => {
                assert!(!e.wide_sense, "{}: classified not-recognized", e.id)
            }
        }
    }
}

#[test]
fn compilation_succeeds_exactly_for_wide_sense_entries() {
    for e in corpus() {
        let f = formula_of(&e);
        let outcome = compile(&f);
        assert_eq!(
            outcome.is_ok(),
            e.wide_sense,
            "{} ({}): compile {:?}",
            e.id,
            e.text,
            outcome.as_ref().err()
        );
    }
}

#[test]
fn rejected_entries_report_the_classify_stage() {
    for e in corpus().into_iter().filter(|e| !e.wide_sense) {
        let f = formula_of(&e);
        let err = compile(&f).expect_err("unsafe entry must be rejected");
        assert!(
            matches!(err, CompileError::NotSafe(_)),
            "{}: expected a safety rejection, got {err:?}",
            e.id
        );
        let unified: PipelineError = err.into();
        assert_eq!(unified.stage(), Stage::Classify, "{}", e.id);
        assert!(unified.budget().is_none(), "{}", e.id);
    }
}

#[test]
fn compiled_corpus_answers_match_dom_baseline() {
    let mut executed = 0usize;
    for e in corpus().into_iter().filter(|e| e.wide_sense) {
        let f = formula_of(&e);
        let c = compile(&f).expect("wide-sense entries compile");
        // Class inclusion: every wide-sense entry the paper asserts is also
        // domain independent, so active-domain answers are THE answers.
        assert!(e.domain_independent, "{}: inclusion violated", e.id);
        for seed in 0..4u64 {
            let db = db_for(&e, seed);
            let ours = c.run(&db).expect("compiled corpus entry evaluates");
            let oracle = eval_brute_force(&c.original, &db);
            assert_eq!(
                ours, oracle,
                "{} ({}): seed {} diverges from dom_baseline",
                e.id, e.text, seed
            );
            executed += 1;
        }
    }
    assert!(
        executed >= 40,
        "too few corpus executions to be meaningful: {executed}"
    );
}
