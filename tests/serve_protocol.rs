//! Wire-protocol robustness: hostile bytes must never panic the server,
//! hang its accept loop, or desynchronize an honest client. Truncated
//! frames, oversized length prefixes, and garbage payloads all come back
//! as structured `err proto` responses (or a clean close when the stream
//! itself is untrustworthy), and the server keeps serving afterwards.
//!
//! The round-trip halves are property tests: frames, requests, and
//! responses survive encode → parse for randomized inputs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rc_serve::{
    read_frame, write_frame, Client, ClientError, DeltaCount, FrameError, Priority, QueryOk,
    Request, Response, Server, ServerConfig, Verb, WireLimits, WireStats, MAX_REQUEST_FRAME,
};
use rcsafe::relalg::RelationBuilder;
use rcsafe::{Database, PlannerMode, Relation, Value};
use std::time::Duration;

fn test_server() -> (Server, std::net::SocketAddr) {
    let db = Database::from_facts("Part('bolt')\nPart('nut')").unwrap();
    let server = Server::start(db, ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    (server, addr)
}

fn connect(addr: std::net::SocketAddr) -> Client {
    let mut c = Client::connect(addr).expect("connect");
    // Nothing in this suite should take seconds; a timeout turns a hung
    // accept loop into a test failure instead of a stuck run.
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c
}

/// The server must stay reachable: a fresh client's ping round-trips.
fn assert_server_alive(addr: std::net::SocketAddr) {
    let mut probe = connect(addr);
    assert_eq!(probe.ping().expect("ping after abuse"), Response::Pong);
}

#[test]
fn truncated_frames_are_counted_and_isolated() {
    let (server, addr) = test_server();

    // EOF mid-length-prefix.
    let mut c = connect(addr);
    c.send_raw_bytes(&[0u8, 0]).unwrap();
    c.shutdown_write().unwrap();
    // EOF mid-payload: promise 64 bytes, deliver 3.
    let mut c2 = connect(addr);
    c2.send_raw_bytes(&64u32.to_be_bytes()).unwrap();
    c2.send_raw_bytes(b"abc").unwrap();
    c2.shutdown_write().unwrap();

    // Both connections close without a served response; the server counts
    // them and keeps accepting.
    assert_server_alive(addr);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.protocol_errors() < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "truncated frames were not counted (saw {})",
            server.protocol_errors()
        );
        std::thread::yield_now();
    }
}

#[test]
fn hostile_oversized_prefix_is_rejected_before_the_payload() {
    let (server, addr) = test_server();
    let mut c = connect(addr);
    // Declare 4 GiB; send nothing after the prefix. If the server tried
    // to read (or allocate) the payload it would hang here — instead the
    // cap check fires immediately and answers.
    c.send_raw_bytes(&u32::MAX.to_be_bytes()).unwrap();
    match c.read_response().expect("structured answer, not a hang") {
        Response::Error(e) => {
            assert_eq!(e.kind, "proto");
            assert!(
                e.message.contains("oversized"),
                "unexpected message: {}",
                e.message
            );
        }
        other => panic!("expected err proto, got {other:?}"),
    }
    // After a framing fault the stream is untrustworthy: the server
    // closes it rather than resynchronizing.
    match c.read_response() {
        Err(ClientError::Closed) | Err(ClientError::Frame(_)) => {}
        other => panic!("expected the connection to close, got {other:?}"),
    }
    assert_server_alive(addr);
    assert!(server.protocol_errors() >= 1);
}

/// A frame that arrives intact but does not parse keeps the stream in
/// sync: the server answers `err proto` and continues serving the same
/// connection.
#[test]
fn garbage_payloads_get_structured_errors_and_the_stream_survives() {
    let (server, addr) = test_server();
    let mut c = connect(addr);
    let garbage: &[&[u8]] = &[
        b"",                                // empty payload
        &[0xff, 0xfe, 0x00, 0x80],          // not UTF-8
        b"http GET /index.html\n.\n",       // wrong magic
        b"rc1 frobnicate\n.\n",             // unknown verb
        b"rc1 query\ntuples lots\n.\nP(x)", // bad header value
        b"rc1 query\nno separator at all",  // missing body separator
    ];
    for payload in garbage {
        c.send_raw_frame(payload).unwrap();
        match c.read_response().expect("structured answer") {
            Response::Error(e) => assert_eq!(e.kind, "proto", "payload {payload:?}"),
            other => panic!("payload {payload:?}: expected err proto, got {other:?}"),
        }
    }
    // The same connection still serves real queries.
    match c.query("Part(x)").expect("query after garbage") {
        Response::Query(ok) => assert_eq!(ok.relation.len(), 2),
        other => panic!("expected a query response, got {other:?}"),
    }
    assert_eq!(server.protocol_errors(), garbage.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random well-framed byte salads: every one gets *some* response
    /// (no hang, no crash), and the connection remains usable.
    #[test]
    fn random_garbage_frames_never_kill_the_server(seed in 0u64..5_000) {
        let (_server, addr) = test_server();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = connect(addr);
        for _ in 0..4 {
            let len = rng.gen_range(0usize..=160);
            let payload: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
            c.send_raw_frame(&payload).unwrap();
            // Any parsed response is acceptable — random bytes are
            // overwhelmingly `err proto`, but a fluke valid request is
            // fine too. What is not acceptable: a hang or a dead server.
            let resp = c.read_response();
            prop_assert!(resp.is_ok(), "no response to {payload:?}: {resp:?}");
        }
        let pong = c.ping();
        prop_assert_eq!(pong.ok(), Some(Response::Pong));
    }

    /// Frames round-trip through a byte buffer, and a randomly truncated
    /// buffer yields either complete frames then a structured truncation
    /// error, or a clean EOF exactly on a frame boundary.
    #[test]
    fn frame_roundtrip_and_truncation_are_structured(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frames: Vec<Vec<u8>> = (0..rng.gen_range(1usize..=5))
            .map(|_| {
                let len = rng.gen_range(0usize..=64);
                (0..len).map(|_| rng.gen_range(0u8..=255)).collect()
            })
            .collect();
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        // Intact: every frame comes back, then a clean EOF.
        let mut r = buf.as_slice();
        for f in &frames {
            let back = read_frame(&mut r, 4096).unwrap();
            prop_assert_eq!(back.as_ref(), Some(f));
        }
        prop_assert!(read_frame(&mut r, 4096).unwrap().is_none());

        // Truncated at a random point: complete prefix frames still
        // parse; the cut is either a clean boundary or a Truncated error
        // — never a panic, never a bogus frame.
        let cut = rng.gen_range(0usize..=buf.len());
        let mut r = &buf[..cut];
        loop {
            match read_frame(&mut r, 4096) {
                Ok(Some(f)) => prop_assert!(frames.contains(&f)),
                Ok(None) => break,
                Err(FrameError::Truncated { expected, got }) => {
                    prop_assert!(got < expected);
                    break;
                }
                Err(other) => return Err(TestCaseError::fail(format!("unexpected: {other}"))),
            }
        }
    }

    /// Requests round-trip: parse(encode(req)) == req for randomized
    /// verbs, priorities, limits, flags, and multi-line bodies.
    #[test]
    fn requests_roundtrip(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let verbs = [Verb::Query, Verb::Analyze, Verb::Mutate, Verb::Ping, Verb::Stats];
        let body_chars: Vec<char> =
            "abcxyzPQR01 ()&|!<=.,'\n".chars().collect();
        let body_len = rng.gen_range(0usize..=40);
        let body: String = (0..body_len)
            .map(|_| body_chars[rng.gen_range(0usize..body_chars.len())])
            .collect();
        let req = Request {
            verb: verbs[rng.gen_range(0usize..verbs.len())],
            priority: if rng.gen_bool(0.5) { Priority::High } else { Priority::Normal },
            limits: WireLimits {
                tuples: rng.gen_bool(0.5).then(|| rng.gen_range(0u64..1 << 40)),
                nodes: rng.gen_bool(0.5).then(|| rng.gen_range(0u64..1 << 40)),
                ms: rng.gen_bool(0.5).then(|| rng.gen_range(0u64..1 << 20)),
                partitions: rng.gen_bool(0.5).then(|| rng.gen_range(1usize..=64)),
            },
            optimize: rng.gen_bool(0.5),
            eqreduce: rng.gen_bool(0.5),
            planner: if rng.gen_bool(0.5) { PlannerMode::Saturate } else { PlannerMode::Cost },
            body,
        };
        let parsed = Request::parse(&req.encode());
        prop_assert_eq!(parsed.as_ref().ok(), Some(&req));
    }

    /// Mutate responses round-trip: the applied-delta summary (including
    /// table names containing spaces, and the empty no-op summary)
    /// survives encode → parse.
    #[test]
    fn mutate_responses_roundtrip(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(0usize..=4);
        let delta: Vec<DeltaCount> = (0..n)
            .map(|i| DeltaCount {
                table: if rng.gen_bool(0.3) { format!("Table {i}") } else { format!("T{i}") },
                inserted: rng.gen_range(0u64..1 << 40),
                deleted: rng.gen_range(0u64..1 << 40),
            })
            .collect();
        let resp = Response::Mutate {
            version: rng.gen_range(0u64..1 << 50),
            delta,
        };
        let parsed = Response::parse(&resp.encode());
        prop_assert_eq!(parsed.as_ref().ok(), Some(&resp));
    }

    /// Query responses round-trip: parse(encode(resp)) == resp for
    /// randomized stats, columns, relations (including the arity-0
    /// boolean codec), and trace payloads.
    #[test]
    fn query_responses_roundtrip(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let arity = rng.gen_range(0usize..=3);
        let relation = if arity == 0 {
            if rng.gen_bool(0.5) { Relation::unit() } else { Relation::empty_nullary() }
        } else {
            let rows = rng.gen_range(0usize..=6);
            let mut b = RelationBuilder::new(arity);
            for _ in 0..rows {
                let row: Vec<Value> = (0..arity)
                    .map(|_| {
                        if rng.gen_bool(0.5) {
                            Value::int(rng.gen_range(-100i64..100))
                        } else {
                            let tag = rng.gen_range(0u64..8);
                            Value::str(&format!("s{tag}"))
                        }
                    })
                    .collect();
                b.push_row(&row);
            }
            b.finish()
        };
        let columns: Vec<String> = (0..arity).map(|i| format!("c{i}")).collect();
        let resp = Response::Query(QueryOk {
            version: rng.gen_range(0u64..1 << 50),
            plan_cached: rng.gen_bool(0.5),
            result_cached: rng.gen_bool(0.5),
            result_refreshed: rng.gen_bool(0.5),
            stats: WireStats {
                operators: rng.gen_range(0u64..1 << 30),
                tuples_produced: rng.gen_range(0u64..1 << 30),
                max_intermediate: rng.gen_range(0u64..1 << 30),
                budget_checks: rng.gen_range(0u64..1 << 30),
                memo_hits: rng.gen_range(0u64..1 << 30),
            },
            columns,
            relation,
            trace_json: rng
                .gen_bool(0.5)
                .then(|| format!("{{\"stages\":[],\"seed\":{seed}}}")),
            any_infinite: rng.gen_bool(0.5).then(|| rng.gen_bool(0.5)),
            any_infinite_vars: rng
                .gen_bool(0.5)
                .then(|| (0..arity).map(|_| rng.gen_bool(0.5)).collect()),
        });
        let parsed = Response::parse(&resp.encode());
        prop_assert_eq!(parsed.as_ref().ok(), Some(&resp));
    }
}

/// The mutate verb's applied-delta summary round-trips over the wire
/// through a live server: per-table net insert/delete counts in the
/// response body, an empty summary (and an unchanged version stamp) for
/// net no-op mutations, and a follow-up query confirming the summary
/// described the state that is actually served.
#[test]
fn mutate_responses_report_the_applied_delta_over_the_wire() {
    let (_server, addr) = test_server();
    let mut c = connect(addr);

    let resp = c
        .mutate("Part('washer')\n-Part('nut')\nSupplies('acme', 'washer')")
        .expect("mutate");
    let version = match resp {
        Response::Mutate { version, delta } => {
            assert_eq!(
                delta,
                vec![
                    DeltaCount {
                        table: "Part".into(),
                        inserted: 1,
                        deleted: 1
                    },
                    DeltaCount {
                        table: "Supplies".into(),
                        inserted: 1,
                        deleted: 0
                    },
                ]
            );
            version
        }
        other => panic!("expected a mutate response, got {other:?}"),
    };

    // Net no-op: re-inserting a present fact and deleting an absent one
    // leaves the version stamp untouched and the summary empty.
    match c.mutate("Part('washer')\n-Part('gone')").expect("no-op") {
        Response::Mutate { version: v2, delta } => {
            assert_eq!(v2, version, "a net no-op must not publish a new version");
            assert!(delta.is_empty(), "no-op summary must be empty: {delta:?}");
        }
        other => panic!("expected a mutate response, got {other:?}"),
    }

    // The summary described the served state: 'nut' gone, 'washer' in.
    match c.query("Part(x)").expect("query after mutate") {
        Response::Query(ok) => {
            assert_eq!(ok.version, version);
            assert_eq!(ok.relation.len(), 2);
        }
        other => panic!("expected a query response, got {other:?}"),
    }
}

/// The `result_refreshed` header distinguishes the three warm-serve
/// shapes over the wire: a verbatim result hit (cached, not refreshed),
/// a delta-advanced serve after a small mutation (cached *and*
/// refreshed), and a cold serve (neither).
#[test]
fn refreshed_serves_are_distinguishable_over_the_wire() {
    let (_server, addr) = test_server();
    let mut c = connect(addr);
    let text = "Part(x) & Supplies(y, x)";

    // Seed the Supplies table (the fixture only preloads Part).
    match c.mutate("Supplies('acme', 'bolt')").expect("seed") {
        Response::Mutate { delta, .. } => assert!(!delta.is_empty()),
        other => panic!("expected a mutate response, got {other:?}"),
    }

    match c.query(text).expect("cold serve") {
        Response::Query(ok) => {
            assert!(!ok.result_cached && !ok.result_refreshed);
        }
        other => panic!("expected a query response, got {other:?}"),
    }
    match c.query(text).expect("verbatim warm serve") {
        Response::Query(ok) => {
            assert!(ok.result_cached, "second serve must hit the result cache");
            assert!(
                !ok.result_refreshed,
                "an unchanged database is a verbatim hit, not a refresh"
            );
        }
        other => panic!("expected a query response, got {other:?}"),
    }

    // One-row mutation: the next serve must advance the maintained view
    // through the delta journal, and say so on the wire.
    match c.mutate("Supplies('apex', 'nut')").expect("mutate") {
        Response::Mutate { delta, .. } => assert!(!delta.is_empty()),
        other => panic!("expected a mutate response, got {other:?}"),
    }
    match c.query(text).expect("refreshed serve") {
        Response::Query(ok) => {
            assert!(
                ok.result_cached && ok.result_refreshed,
                "a trickle mutation must be served by delta refresh, got \
                 cached={} refreshed={}",
                ok.result_cached,
                ok.result_refreshed
            );
            assert_eq!(
                ok.relation.len(),
                2,
                "the refreshed answer must include the new supplier row"
            );
        }
        other => panic!("expected a query response, got {other:?}"),
    }
}

/// A request frame exactly at the server's cap is served; one byte over
/// is rejected as oversized (the boundary of [`MAX_REQUEST_FRAME`]).
#[test]
fn request_frame_cap_is_exact() {
    let db = Database::from_facts("Part('bolt')").unwrap();
    let server = Server::start(
        db,
        ServerConfig {
            max_request_frame: 256,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // Exactly at the cap: pad the body of a valid ping with spaces.
    let mut at_cap = Request::bare(Verb::Ping);
    let base = at_cap.encode().len();
    at_cap.body = " ".repeat(256 - base);
    assert_eq!(at_cap.encode().len(), 256);
    let mut c = connect(addr);
    assert_eq!(c.request(&at_cap).expect("at-cap frame"), Response::Pong);

    // One byte over: structured oversized rejection, before the payload.
    let mut over = connect(addr);
    over.send_raw_bytes(&257u32.to_be_bytes()).unwrap();
    match over.read_response().expect("structured answer") {
        Response::Error(e) => assert_eq!(e.kind, "proto"),
        other => panic!("expected err proto, got {other:?}"),
    }
    assert_server_alive(addr);
}

/// Interleaved valid and invalid traffic across several connections: the
/// per-connection error handling never bleeds into honest clients.
#[test]
fn abuse_on_one_connection_never_perturbs_another() {
    let (_server, addr) = test_server();
    let mut honest = connect(addr);
    let baseline = {
        let _prime = honest.query("Part(x)").expect("prime");
        honest.query("Part(x)").expect("warm baseline").encode()
    };
    for round in 0..6 {
        let mut abuser = connect(addr);
        if round % 2 == 0 {
            abuser.send_raw_frame(&[0xff; 16]).unwrap();
            let _ = abuser.read_response();
        } else {
            abuser.send_raw_bytes(&[0, 0, 1]).unwrap();
            abuser.shutdown_write().unwrap();
        }
        let got = honest
            .query("Part(x)")
            .unwrap_or_else(|e| panic!("honest client failed in round {round}: {e}"))
            .encode();
        assert_eq!(got, baseline, "round {round}: honest response perturbed");
    }
}

/// The client side rejects a response frame larger than its own cap —
/// symmetric protection (here exercised directly on the codec since the
/// server never emits oversized frames).
#[test]
fn client_side_cap_is_enforced_by_the_reader() {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(MAX_REQUEST_FRAME + 1).to_be_bytes());
    let err = read_frame(&mut buf.as_slice(), MAX_REQUEST_FRAME).unwrap_err();
    assert_eq!(
        err,
        FrameError::Oversized {
            len: MAX_REQUEST_FRAME + 1,
            max: MAX_REQUEST_FRAME
        }
    );
}
