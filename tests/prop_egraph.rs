//! Differential suite for the equality-saturation planner: the saturated
//! plan must be *observationally identical* to the cost-based plan and
//! the heuristic plan — same relation, same answer-column order — across
//! the paper corpus and generated allowed formulas, including under
//! forced partitioning and budget cancellation. Plus the per-rule
//! soundness properties (each registered rewrite preserves answers on
//! random databases over its trigger shape) and the
//! extraction-never-costlier invariant backing the `EGRAPH_GATE` leg.

#![recursion_limit = "512"]

mod common;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rcsafe::formula::generate::{random_allowed_formula, GenConfig};
use rcsafe::formula::vars::rectified;
use rcsafe::relalg::{
    eval, eval_governed, optimize, plan_hash, rules, saturate, saturate_governed, simplify,
    Estimator, EvalStats, PlanCache, RaExpr, SelPred,
};
use rcsafe::safety::corpus::{corpus, formula_of};
use rcsafe::safety::pipeline::{
    compile_and_eval_cached, compile_for, compile_with, CompileOptions, Compiled, PlannerMode,
};
use rcsafe::{Budget, Database, Schema, Term, Value, Var};

/// A reproducible database over a formula's inferred schema. Seed 0 is the
/// empty database, so vacuous plans stay covered.
fn db_for(f: &rcsafe::Formula, seed: u64) -> Database {
    let schema = Schema::infer(f).expect("consistent arities");
    let mut domain: Vec<Value> = (1..=4).map(Value::int).collect();
    for c in f.constants() {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    if seed == 0 {
        let mut d = Database::new();
        for (p, ar) in schema.predicates() {
            d.declare(p, ar);
        }
        d
    } else {
        Database::random(&schema, &domain, 6, &mut StdRng::seed_from_u64(seed))
    }
}

/// Compile `f` three ways: heuristic-only (no database statistics),
/// cost-based against `db`, and equality-saturated against `db`.
fn three_plans(f: &rcsafe::Formula, db: &Database) -> Option<(Compiled, Compiled, Compiled)> {
    let heuristic = compile_with(f, CompileOptions::default()).ok()?;
    let cost = compile_for(f, CompileOptions::default(), db).ok()?;
    let saturated = compile_for(
        f,
        CompileOptions {
            planner: PlannerMode::Saturate,
            ..CompileOptions::default()
        },
        db,
    )
    .ok()?;
    Some((heuristic, cost, saturated))
}

/// All three compiled forms must expose the same answer columns and
/// produce the identical relation on `db`.
fn assert_three_way(h: &Compiled, c: &Compiled, s: &Compiled, db: &Database, ctx: &str) {
    assert_eq!(h.columns, c.columns, "{ctx}: cost planner changed columns");
    assert_eq!(h.columns, s.columns, "{ctx}: saturation changed columns");
    let baseline = eval(&h.expr, db).expect("heuristic plan evaluates");
    let costed = eval(&c.expr, db).expect("cost plan evaluates");
    let saturated = eval(&s.expr, db).expect("saturated plan evaluates");
    assert_eq!(
        baseline, costed,
        "{ctx}: cost plan diverged\nheuristic: {}\ncost: {}",
        h.expr, c.expr
    );
    assert_eq!(
        baseline, saturated,
        "{ctx}: saturated plan diverged\nheuristic: {}\nsaturated: {}",
        h.expr, s.expr
    );
}

/// Every wide-sense corpus entry: saturated ≡ cost-based ≡ heuristic on
/// empty and random databases, and the saturated plan is never estimated
/// costlier than the cost-based one.
#[test]
fn corpus_saturated_plans_match_heuristic_and_cost_plans() {
    for entry in corpus().iter().filter(|e| e.wide_sense) {
        let f = formula_of(entry);
        for seed in [0u64, 1, 2, 7] {
            let db = db_for(&f, seed);
            let Some((h, c, s)) = three_plans(&f, &db) else {
                continue;
            };
            let ctx = format!("{} seed {seed}", entry.id);
            assert_three_way(&h, &c, &s, &db, &ctx);
            let est = Estimator::new(&db);
            assert!(
                est.cost(&s.expr) <= est.cost(&c.expr),
                "{ctx}: saturation chose a costlier plan\ncost: {}\nsaturated: {}",
                c.expr,
                s.expr
            );
        }
    }
}

/// Forced partitioning must not interact with saturation: for every
/// corpus entry and partition count 1..=4 the saturated plan still equals
/// the heuristic answer.
#[test]
fn corpus_saturated_plans_survive_forced_partitioning() {
    for entry in corpus().iter().filter(|e| e.wide_sense) {
        let f = formula_of(entry);
        let db = db_for(&f, 7);
        let Some((h, _, s)) = three_plans(&f, &db) else {
            continue;
        };
        let baseline = eval(&h.expr, &db).expect("heuristic plan evaluates");
        for parts in 1..=4usize {
            let budget = Budget::new().with_partitions(parts);
            let mut stats = EvalStats::default();
            let out = eval_governed(&s.expr, &db, &mut stats, &budget)
                .expect("saturated plan evaluates under forced partitioning");
            assert_eq!(
                out, baseline,
                "{}: saturated plan diverged at {parts} partition(s)",
                entry.id
            );
        }
    }
}

/// A budget cancelled before compilation starts stops the saturating
/// pipeline in the Optimize stage — it errors rather than returning a
/// plan built under a dead budget.
#[test]
fn corpus_saturation_honors_cancelled_budgets() {
    for entry in corpus().iter().filter(|e| e.wide_sense).take(6) {
        let f = formula_of(entry);
        let db = db_for(&f, 7);
        let budget = Budget::new();
        budget.cancel_handle().cancel();
        let out = compile_for(
            &f,
            CompileOptions {
                planner: PlannerMode::Saturate,
                budget,
                ..CompileOptions::default()
            },
            &db,
        );
        assert!(
            out.is_err(),
            "{}: saturating compile ignored a pre-cancelled budget",
            entry.id
        );
    }
}

/// A random plan mixing every operator. Invariant: every subplan has
/// columns exactly `[x, y]`, so unions stay arity-aligned, selections
/// always see their column, and diff right sides are the narrower/equal
/// operands the evaluator accepts.
fn random_plan(rng: &mut StdRng, depth: usize) -> RaExpr {
    let scan_a = || RaExpr::scan("A", vec![Term::var("x"), Term::var("y")]);
    let scan_b = || RaExpr::scan("B", vec![Term::var("x"), Term::var("y")]);
    let scan_c = || RaExpr::scan("C", vec![Term::var("y")]);
    if depth == 0 {
        return match rng.gen_range(0..3) {
            0 => scan_a(),
            1 => scan_b(),
            _ => RaExpr::join(scan_a(), scan_c()),
        };
    }
    match rng.gen_range(0..8) {
        0 => RaExpr::join(random_plan(rng, depth - 1), random_plan(rng, depth - 1)),
        1 => RaExpr::union(random_plan(rng, depth - 1), random_plan(rng, depth - 1)),
        2 => RaExpr::diff(random_plan(rng, depth - 1), scan_c()),
        3 => RaExpr::diff(
            random_plan(rng, depth - 1),
            RaExpr::project(random_plan(rng, depth - 1), vec![Var::new("y")]),
        ),
        4 => RaExpr::select(
            random_plan(rng, depth - 1),
            match rng.gen_range(0..3) {
                0 => SelPred::EqCols(Var::new("x"), Var::new("y")),
                1 => SelPred::EqConst(Var::new("y"), Value::int(rng.gen_range(0..6))),
                _ => SelPred::NeqConst(Var::new("x"), Value::int(rng.gen_range(0..6))),
            },
        ),
        5 => RaExpr::join(RaExpr::Unit, random_plan(rng, depth - 1)),
        6 => RaExpr::union(
            random_plan(rng, depth - 1),
            RaExpr::Empty {
                cols: vec![Var::new("x"), Var::new("y")],
            },
        ),
        _ => RaExpr::join(random_plan(rng, depth - 1), scan_c()),
    }
}

/// A small skewed fixture database so the cost model has real statistics
/// to read (A large, B medium, C tiny).
fn stats_db(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut facts = String::new();
    for i in 0..40i64 {
        facts.push_str(&format!("A({}, {})\n", i, rng.gen_range(0..8)));
    }
    for i in 0..12i64 {
        facts.push_str(&format!("B({}, {})\n", rng.gen_range(0..8), i % 5));
    }
    facts.push_str("C(1)\nC(3)\n");
    db.load_facts(&facts).expect("fixture facts load");
    db
}

/// Generated allowed formulas: the saturated plan agrees with the
/// cost-based and heuristic plans, sequentially and under forced
/// partitioning.
fn check_generated_formula(seed: u64) {
    let cfg = GenConfig::default();
    let f = rectified(&random_allowed_formula(
        &cfg,
        &[Var::new("x")],
        &mut StdRng::seed_from_u64(seed),
        3,
    ));
    let db = db_for(&f, seed | 1);
    let Some((h, c, s)) = three_plans(&f, &db) else {
        return;
    };
    assert_three_way(&h, &c, &s, &db, &format!("gen seed {seed}"));
    let baseline = eval(&h.expr, &db).expect("heuristic plan evaluates");
    let budget = Budget::new().with_partitions(1 + (seed as usize % 4));
    let mut stats = EvalStats::default();
    let partitioned = eval_governed(&s.expr, &db, &mut stats, &budget)
        .expect("saturated plan evaluates partitioned");
    assert_eq!(
        partitioned, baseline,
        "gen seed {seed}: partitioned saturated eval diverged"
    );
}

/// On raw random plans, saturation preserves answers (and the column
/// order, which it restores itself) and is never estimated costlier than
/// either the cost-based or the heuristic planner — the gate's invariant,
/// as a property.
fn check_never_costlier(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let e = random_plan(&mut rng, 4);
    let db = stats_db(seed);
    let s = saturate(&e, &db);
    assert_eq!(
        s.cols(),
        e.cols(),
        "saturate changed the column order of {e}"
    );
    assert_eq!(
        eval(&s, &db).expect("saturated plan evaluates"),
        eval(&e, &db).expect("raw plan evaluates"),
        "saturation changed answers on {e}"
    );
    let est = Estimator::new(&db);
    assert!(
        est.cost(&s) <= est.cost(&optimize(&e, &db)),
        "saturation beat by the cost planner on {e}"
    );
    assert!(
        est.cost(&s) <= est.cost(&simplify(&e)),
        "saturation beat by the heuristic simplifier on {e}"
    );
}

/// Saturation is plan-hash stable: re-saturating its own output returns
/// the same plan (the seed optimizer is idempotent and the never-costlier
/// gate is strict, so nothing can change twice).
fn check_hash_stable(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let e = random_plan(&mut rng, 3);
    let db = stats_db(seed);
    let once = saturate(&e, &db);
    let twice = saturate(&once, &db);
    assert_eq!(
        plan_hash(&twice),
        plan_hash(&once),
        "re-saturating changed the plan: {once} -> {twice}"
    );
}

/// A tight node budget never corrupts the plan: the run either errors
/// (budget smaller than the seed plan) or returns a plan with the
/// baseline answer.
fn check_node_budget(seed: u64, max_nodes: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let e = random_plan(&mut rng, 3);
    let db = stats_db(seed);
    let budget = Budget::new().with_max_nodes(max_nodes);
    match saturate_governed(&e, &db, &budget) {
        Err(_) => {} // seed plan alone exceeded the bound
        Ok((s, _)) => assert_eq!(
            eval(&s, &db).expect("bounded saturated plan evaluates"),
            eval(&e, &db).expect("raw plan evaluates"),
            "bounded saturation changed answers on {e}"
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn generated_formulas_saturate_soundly(seed in 0u64..10_000) {
        check_generated_formula(seed);
    }

    #[test]
    fn saturation_never_costlier_and_answer_preserving(seed in 0u64..10_000) {
        check_never_costlier(seed);
    }

    #[test]
    fn saturate_is_plan_hash_stable(seed in 0u64..10_000) {
        check_hash_stable(seed);
    }

    #[test]
    fn saturation_under_node_budgets_errs_or_agrees(seed in 0u64..10_000) {
        check_node_budget(seed, 1 + seed % 64);
    }
}

// ------------------------------------------- per-rule soundness shapes --

/// Evaluate `plan` raw and saturated on a family of random databases and
/// require identical answers, and when `require_fire` is set also assert
/// the named rule actually applied during saturation. Rules whose trigger
/// shapes the seed optimizer normalizes away before the e-graph is built
/// (the selection pushdowns, projection narrowing) verify the documented
/// equivalence via [`assert_rule_equivalence`] instead and skip the
/// firing assertion here.
fn assert_rule_sound(
    plan: &RaExpr,
    rule: &str,
    require_fire: bool,
    mk_db: impl Fn(u64) -> Database,
) {
    let mut fired_somewhere = false;
    for seed in [1u64, 2, 5, 11] {
        let db = mk_db(seed);
        let (s, report) =
            saturate_governed(plan, &db, Budget::unlimited()).expect("unlimited saturation");
        let fired = report
            .applied
            .iter()
            .find(|(n, _)| *n == rule)
            .unwrap_or_else(|| panic!("rule {rule} not registered"))
            .1;
        fired_somewhere |= fired > 0;
        assert_eq!(
            eval(&s, &db).expect("saturated plan evaluates"),
            eval(plan, &db).expect("raw plan evaluates"),
            "rule {rule}: saturation changed answers on {plan} (seed {seed})"
        );
    }
    if require_fire {
        assert!(
            fired_somewhere,
            "rule {rule} never fired on its trigger shape {plan}"
        );
    }
}

/// The direct per-rule soundness property: the rule's left- and
/// right-hand sides, built by hand exactly as the catalog documents
/// them, evaluate to the same relation on a family of random databases
/// (right side projected onto the left's column order where the rewrite
/// reorders columns, mirroring saturation's own alignment step).
fn assert_rule_equivalence(
    lhs: &RaExpr,
    rhs: &RaExpr,
    rule: &str,
    mk_db: impl Fn(u64) -> Database,
) {
    for seed in [1u64, 2, 5, 11] {
        let db = mk_db(seed);
        let l = eval(lhs, &db).expect("lhs evaluates");
        let aligned = if rhs.cols() == lhs.cols() {
            rhs.clone()
        } else {
            RaExpr::project(rhs.clone(), lhs.cols())
        };
        let r = eval(&aligned, &db).expect("rhs evaluates");
        assert_eq!(l, r, "rule {rule}: {lhs} != {rhs} (seed {seed})");
    }
}

fn rule_db(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut facts = String::new();
    for _ in 0..15 {
        facts.push_str(&format!(
            "A({}, {})\n",
            rng.gen_range(0..6),
            rng.gen_range(0..4)
        ));
        facts.push_str(&format!(
            "B({}, {})\n",
            rng.gen_range(0..6),
            rng.gen_range(0..4)
        ));
    }
    for _ in 0..30 {
        facts.push_str(&format!(
            "C({}, {})\n",
            rng.gen_range(0..4),
            rng.gen_range(0..9)
        ));
    }
    db.load_facts(&facts).expect("rule fixture facts load");
    db
}

fn xy(p: &str) -> RaExpr {
    RaExpr::scan(p, vec![Term::var("x"), Term::var("y")])
}

fn yz(p: &str) -> RaExpr {
    RaExpr::scan(p, vec![Term::var("y"), Term::var("z")])
}

#[test]
fn rule_select_push_join_is_sound() {
    let pred = SelPred::NeqConst(Var::new("z"), Value::int(3));
    let lhs = RaExpr::select(RaExpr::join(xy("A"), yz("C")), pred);
    let rhs = RaExpr::join(xy("A"), RaExpr::select(yz("C"), pred));
    assert_rule_equivalence(&lhs, &rhs, "select-push-join", rule_db);
    assert_rule_sound(&lhs, "select-push-join", false, rule_db);
}

#[test]
fn rule_select_push_union_is_sound() {
    let pred = SelPred::EqConst(Var::new("x"), Value::int(2));
    let lhs = RaExpr::select(RaExpr::union(xy("A"), xy("B")), pred);
    let rhs = RaExpr::union(RaExpr::select(xy("A"), pred), RaExpr::select(xy("B"), pred));
    assert_rule_equivalence(&lhs, &rhs, "select-push-union", rule_db);
    assert_rule_sound(&lhs, "select-push-union", false, rule_db);
}

#[test]
fn rule_select_push_diff_is_sound() {
    let pred = SelPred::NeqConst(Var::new("x"), Value::int(2));
    let lhs = RaExpr::select(RaExpr::diff(xy("A"), xy("B")), pred);
    let rhs = RaExpr::diff(RaExpr::select(xy("A"), pred), xy("B"));
    assert_rule_equivalence(&lhs, &rhs, "select-push-diff", rule_db);
    assert_rule_sound(&lhs, "select-push-diff", false, rule_db);
    // The right-side push is NOT an equivalence: the classic
    // counterexample A = {1, 2}, B = {2}, p = (x ≠ 2) separates them.
    let db = Database::from_facts("A(1)\nA(2)\nB(2)").unwrap();
    let x = || RaExpr::scan("A", vec![Term::var("x")]);
    let b = || RaExpr::scan("B", vec![Term::var("x")]);
    let p = SelPred::NeqConst(Var::new("x"), Value::int(2));
    let sound = RaExpr::select(RaExpr::diff(x(), b()), p);
    let unsound = RaExpr::diff(x(), RaExpr::select(b(), p));
    assert_ne!(
        eval(&sound, &db).unwrap(),
        eval(&unsound, &db).unwrap(),
        "right-side diff pushdown must stay unregistered: it is not an equivalence"
    );
}

#[test]
fn rule_union_factor_is_sound() {
    let lhs = RaExpr::union(
        RaExpr::join(xy("A"), yz("C")),
        RaExpr::join(xy("B"), yz("C")),
    );
    let rhs = RaExpr::join(RaExpr::union(xy("A"), xy("B")), yz("C"));
    assert_rule_equivalence(&lhs, &rhs, "union-factor", rule_db);
    assert_rule_sound(&lhs, "union-factor", true, rule_db);
}

#[test]
fn rule_diff_distribute_is_sound() {
    let lhs = RaExpr::union(
        RaExpr::diff(xy("A"), xy("C")),
        RaExpr::diff(xy("B"), xy("C")),
    );
    let rhs = RaExpr::diff(RaExpr::union(xy("A"), xy("B")), xy("C"));
    assert_rule_equivalence(&lhs, &rhs, "diff-distribute", rule_db);
    assert_rule_sound(&lhs, "diff-distribute", true, rule_db);
}

#[test]
fn rule_project_narrow_is_sound() {
    let lhs = RaExpr::project(RaExpr::join(xy("A"), yz("C")), vec![Var::new("x")]);
    let rhs = RaExpr::project(
        RaExpr::join(xy("A"), RaExpr::project(yz("C"), vec![Var::new("y")])),
        vec![Var::new("x")],
    );
    assert_rule_equivalence(&lhs, &rhs, "project-narrow", rule_db);
    assert_rule_sound(&lhs, "project-narrow", false, rule_db);
}

#[test]
fn rule_join_commute_and_associate_are_sound() {
    let commute_lhs = RaExpr::join(xy("A"), yz("C"));
    let commute_rhs = RaExpr::join(yz("C"), xy("A"));
    assert_rule_equivalence(&commute_lhs, &commute_rhs, "join-commute", rule_db);
    let assoc_lhs = RaExpr::join(RaExpr::join(xy("A"), yz("C")), xy("B"));
    let assoc_rhs = RaExpr::join(xy("A"), RaExpr::join(yz("C"), xy("B")));
    assert_rule_equivalence(&assoc_lhs, &assoc_rhs, "join-associate", rule_db);
    assert_rule_sound(&assoc_lhs, "join-commute", true, rule_db);
    assert_rule_sound(&assoc_lhs, "join-associate", true, rule_db);
}

/// Every registered rule is exercised by a soundness test above: keep
/// this list in sync so a newly registered rule cannot land untested.
#[test]
fn every_registered_rule_has_a_soundness_shape() {
    let covered = [
        "select-push-join",
        "select-push-union",
        "select-push-diff",
        "union-factor",
        "diff-distribute",
        "project-narrow",
        "join-commute",
        "join-associate",
    ];
    for rule in rules() {
        assert!(
            covered.contains(&rule.name),
            "registered rule {} has no per-rule soundness test",
            rule.name
        );
    }
    assert_eq!(covered.len(), rules().len());
}

/// The planner mode fragments the plan-cache key: a plan compiled under
/// `planner=cost` is never served to a `planner=saturate` request, and
/// both answer identically.
#[test]
fn planner_mode_fragments_plan_cache_but_not_answers() {
    let db = stats_db(42);
    let mut cache: PlanCache<Compiled> = PlanCache::new();
    let text = "A(x, y) & B(x, y)";

    let cost =
        compile_and_eval_cached(text, &db, CompileOptions::default(), &mut cache).expect("cost");
    assert!(!cost.plan_cached);
    let sat_opts = || CompileOptions {
        planner: PlannerMode::Saturate,
        ..CompileOptions::default()
    };
    let saturated = compile_and_eval_cached(text, &db, sat_opts(), &mut cache).expect("saturated");
    assert!(
        !saturated.plan_cached,
        "a cost-mode plan must not serve a saturate-mode request"
    );
    assert_eq!(cost.relation, saturated.relation);
    let warm = compile_and_eval_cached(text, &db, sat_opts(), &mut cache).expect("warm");
    assert!(warm.plan_cached, "same mode must reuse the cached plan");
}
