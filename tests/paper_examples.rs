//! End-to-end reproduction of the paper's worked examples, asserted as
//! integration tests across all three crates.

mod common;

use rcsafe::safety::corpus::{corpus, formula_of};
use rcsafe::safety::dom_baseline::eval_brute_force;
use rcsafe::safety::naive::{section2_formula, section2_naive};
use rcsafe::{classify, compile, parse, Database, SafetyClass, Value};

/// Section 2: the QUEL anomaly, full scenario.
#[test]
fn section_2_real_life_example() {
    let base = "R1('alice', 1)\nR1('bob', 2)\nR2('alice', 10)\nR2('bob', 11)";
    let mut db = Database::from_facts(base).unwrap();
    db.declare("R3", 2);

    // QUEL-style: null answer.
    let naive = rc_relalg::eval(&section2_naive().translate_naive(), &db).unwrap();
    assert!(naive.is_empty());

    // Correct translation: the R1 ⋈ R2 matches.
    let f = section2_formula();
    let c = compile(&f).unwrap();
    let ours = c.run(&db).unwrap();
    assert_eq!(ours.len(), 2);
    assert!(ours.contains(&[Value::str("alice")]));
    assert!(ours.contains(&[Value::str("bob")]));
    // …and it matches the brute-force semantics of the formula.
    assert_eq!(ours, eval_brute_force(&f, &db));
}

/// Example 9.2: the full three-row translation table — each formula is
/// allowed, reaches RANF, translates, and computes the right answers.
#[test]
fn example_92_translation_table() {
    let db = Database::from_facts(
        "P(1, 2)\nP(2, 3)\nP(4, 4)\nQ(1)\nQ(2)\nR(2, 1)\nR(3, 1)\nR(3, 2)\nS(1, 1, 1)\nS(2, 1, 1)\nS(2, 2, 1)",
    )
    .unwrap();

    // Row 1: P(x,y) ∧ (Q(x) ∨ R(y, x)) — adapted to binary R.
    let row1 = parse("P(x, y) & (Q(x) | R(y, x))").unwrap();
    let c1 = compile(&row1).unwrap();
    assert_eq!(c1.class, SafetyClass::Allowed);
    assert_eq!(c1.run(&db).unwrap(), eval_brute_force(&row1, &db));

    // Row 2: P(x) ∧ ∀y (¬Q(y) ∨ ∃z S(x,y,z)) — with unary P as Q here.
    let row2 = parse("Q(x) & forall y. (!Q(y) | exists z. S(x, y, z))").unwrap();
    let c2 = compile(&row2).unwrap();
    let shown = c2.expr.to_string();
    assert!(shown.contains("diff"), "row 2 must use diff: {shown}");
    assert_eq!(c2.run(&db).unwrap(), eval_brute_force(&row2, &db));
    // Semantics check by hand: x ∈ Q with S(x, y, ·) for every y ∈ Q.
    // Q = {1,2}; S(2,1,·) ✓ and S(2,2,·) ✓ so x=2 qualifies; S(1,1,·) ✓
    // but S(1,2,·) ✗.
    let ans = c2.run(&db).unwrap();
    assert_eq!(ans.len(), 1);
    assert!(ans.contains(&[Value::int(2)]));

    // Row 3: P(x,y) ∧ ∀z (¬R(x,z) ∨ S(y,z,z)).
    let row3 = parse("P(x, y) & forall z. (!R(x, z) | S(y, z, z))").unwrap();
    let c3 = compile(&row3).unwrap();
    assert_eq!(c3.run(&db).unwrap(), eval_brute_force(&row3, &db));
}

/// The corpus classification table agrees with the paper (already unit
/// tested inside rc-safety; here we also check that every *safe* corpus
/// formula actually compiles and matches the oracle on a shared database).
#[test]
fn corpus_safe_formulas_compile_and_answer_correctly() {
    let db = Database::from_facts(
        "P(1)\nP(2)\nQ(2)\nQ(3)\nR(1, 2)\nR(2, 2)\nS(1, 2, 3)\nS(2, 2, 2)\nT(1)",
    )
    .unwrap();
    for e in corpus() {
        let f = formula_of(&e);
        let class = classify(&f);
        if class == SafetyClass::NotRecognized {
            assert!(compile(&f).is_err(), "{} should not compile", e.id);
            continue;
        }
        // Corpus predicates have varying arities across entries (P is
        // sometimes unary, sometimes binary); build a per-entry database
        // by reusing the shared one where arities fit and declaring the
        // rest empty.
        let mut per = Database::new();
        for (p, arity) in f.predicates() {
            match db.relation(p) {
                Some(rel) if rel.arity() == arity => {
                    per.insert_relation(p, rel.clone());
                }
                _ => {
                    per.declare(p, arity);
                }
            }
        }
        let c = compile(&f).unwrap_or_else(|err| panic!("{} failed: {err}", e.id));
        let ours = c.run(&per).unwrap();
        let oracle = eval_brute_force(&f, &per);
        assert_eq!(ours, oracle, "{}: {}", e.id, e.text);
    }
}

/// Figure 2's decomposition, against the exact picture in the paper.
#[test]
fn figure_2_geometry() {
    use rcsafe::safety::geometry::decompose;
    let f = parse("P(x) | Q(y) | R(x, y)").unwrap();
    let db = Database::from_facts("P(1)\nQ(2)\nR(3, 3)").unwrap();
    let comps = decompose(&f, &db);
    let dims: Vec<usize> = comps.iter().map(|c| c.dimension()).collect();
    assert_eq!(dims.iter().filter(|&&d| d == 1).count(), 2); // two lines
    assert_eq!(dims.iter().filter(|&&d| d == 0).count(), 1); // one point
    assert_eq!(dims.iter().filter(|&&d| d == 2).count(), 0); // no plane
}

/// The paper's Sec. 3 headline: no `Dom` relation is ever constructed by
/// the pipeline — no scan of the reserved `Dom#` predicate appears in any
/// compiled expression, while the baseline is full of them.
#[test]
fn pipeline_is_dom_free() {
    use rcsafe::safety::dom_baseline::{dom_pred, translate_dom};
    use rcsafe::RaExpr;

    fn scans_dom(e: &RaExpr) -> bool {
        match e {
            RaExpr::Scan { pred, .. } => *pred == dom_pred(),
            _ => e.children().iter().any(|c| scans_dom(c)),
        }
    }

    for e in corpus() {
        let f = formula_of(&e);
        if let Ok(c) = compile(&f) {
            assert!(!scans_dom(&c.expr), "{}: {}", e.id, c.expr);
        }
        // The baseline uses Dom whenever negation/disjunction needs
        // padding.
        let _ = translate_dom(&f);
    }
    let negq = parse("P(x) & !Q(x, y)").unwrap();
    assert!(scans_dom(&translate_dom(&negq)));
}

/// Thm. 10.5 census at integration scale: slightly wider pools than the
/// unit test, still zero mismatches.
#[test]
fn thm_105_census_integration() {
    use rcsafe::formula::Symbol;
    use rcsafe::safety::norepeat::{census, CensusConfig};
    let cfg = CensusConfig {
        preds: vec![
            (Symbol::intern("P"), 1),
            (Symbol::intern("Q"), 1),
            (Symbol::intern("R"), 2),
        ],
        max_nodes: 4,
        ..CensusConfig::default()
    };
    let rows = census(&cfg);
    let total: usize = rows.iter().map(|r| r.total).sum();
    assert!(total > 200, "census too small: {total}");
    for row in rows {
        assert!(
            row.mismatches.is_empty(),
            "Thm 10.5 violated at size {}: {:?}",
            row.nodes,
            row.mismatches
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
        );
    }
}
