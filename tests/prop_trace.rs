//! Tracing properties: observation must not perturb the observed.
//!
//! For random evaluable formulas and databases:
//!
//! * traced and untraced evaluation return **bit-identical** relations and
//!   identical [`EvalStats`];
//! * the root span's subtree tuple total equals
//!   [`EvalStats::tuples_produced`], and its span count equals
//!   [`EvalStats::operators`];
//! * every operator span's output cardinality equals the relation its
//!   subtree actually produced (checked by re-evaluating each subtree);
//! * the deterministic trace projection is identical under parallel and
//!   sequential evaluation (spawn denial via the fault injector).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rcsafe::formula::generate::{random_allowed_formula, GenConfig};
use rcsafe::formula::vars::rectified;
use rcsafe::relalg::{eval_traced, EvalStats, OpSpan, Tracer};
use rcsafe::safety::pipeline::compile;
use rcsafe::{Budget, Database, FaultInjector, Formula, RaExpr, Schema, Value, Var};

fn allowed_sample(seed: u64) -> Formula {
    let cfg = GenConfig::default();
    rectified(&random_allowed_formula(
        &cfg,
        &[Var::new("x"), Var::new("y")],
        &mut StdRng::seed_from_u64(seed),
        3,
    ))
}

fn random_db_for(f: &Formula, seed: u64) -> Database {
    let schema = Schema::infer(f).expect("consistent");
    let mut domain: Vec<Value> = (1..=4).map(Value::int).collect();
    for c in f.constants() {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    Database::random(&schema, &domain, 6, &mut StdRng::seed_from_u64(seed))
}

/// Walk the span tree and the expression tree in lockstep (they mirror by
/// construction) asserting each span's `rows_out` equals the cardinality
/// of the relation its subtree evaluates to.
fn check_span_cardinalities(
    span: &OpSpan,
    expr: &RaExpr,
    db: &Database,
) -> Result<(), TestCaseError> {
    let mut stats = EvalStats::default();
    let rel = eval_traced(
        expr,
        db,
        &mut stats,
        Budget::unlimited(),
        &mut Tracer::off(),
    )
    .expect("subtree evaluates");
    prop_assert!(span.completed, "span {} incomplete on a clean run", span.op);
    prop_assert_eq!(
        span.rows_out,
        rel.len(),
        "span {} records {} rows, subtree produces {}",
        &span.op,
        span.rows_out,
        rel.len()
    );
    prop_assert!(
        span.raw_rows >= span.rows_out as u64,
        "span {}: raw {} < out {}",
        &span.op,
        span.raw_rows,
        span.rows_out
    );
    let children = expr.children();
    prop_assert_eq!(span.children.len(), children.len(), "arity of {}", &span.op);
    for (cs, ce) in span.children.iter().zip(children) {
        check_span_cardinalities(cs, ce, db)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tracing is a pure observer: identical relation, identical stats.
    #[test]
    fn traced_and_untraced_agree(seed in 0u64..4_000) {
        let f = allowed_sample(seed);
        prop_assume!(f.node_count() <= 60);
        let c = compile(&f).expect("allowed formulas compile");
        let db = random_db_for(&f, seed + 11);
        let mut plain_stats = EvalStats::default();
        let plain = c
            .run_with_stats(&db, &mut plain_stats)
            .expect("untraced evaluation succeeds");
        let mut traced_stats = EvalStats::default();
        let mut tracer = Tracer::on();
        let traced = c
            .run_traced(&db, &mut traced_stats, Budget::unlimited(), &mut tracer)
            .expect("traced evaluation succeeds");
        prop_assert_eq!(&traced, &plain, "traced relation differs: {}", &f);
        prop_assert_eq!(traced.to_string(), plain.to_string());
        prop_assert_eq!(traced_stats, plain_stats, "stats differ: {}", &f);

        // The span tree totals reconcile with the stats counters.
        let root = tracer.finish().expect("traced run leaves a root span");
        prop_assert_eq!(root.total_rows_out(), traced_stats.tuples_produced, "{}", &f);
        prop_assert_eq!(root.span_count() as u64, traced_stats.operators, "{}", &f);
        prop_assert_eq!(root.rows_out, plain.len(), "root cardinality: {}", &f);
        prop_assert!(root.completed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every span's recorded output cardinality is the true cardinality of
    /// the subtree it observed (re-evaluated independently).
    #[test]
    fn span_cardinalities_are_true(seed in 0u64..2_000) {
        let f = allowed_sample(seed);
        prop_assume!(f.node_count() <= 40);
        let c = compile(&f).expect("compiles");
        let db = random_db_for(&f, seed + 23);
        // Evaluate against the prepared database (missing predicates
        // declared) exactly as run_traced does internally.
        let mut prepared = db.clone();
        for (p, arity) in c.original.predicates() {
            prepared.declare(p, arity);
        }
        let mut stats = EvalStats::default();
        let mut tracer = Tracer::on();
        eval_traced(&c.expr, &prepared, &mut stats, Budget::unlimited(), &mut tracer)
            .expect("evaluates");
        let root = tracer.finish().expect("root span");
        check_span_cardinalities(&root, &c.expr, &prepared)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The deterministic projection is independent of the parallel path:
    /// denying thread spawns (sequential fallback) yields a byte-identical
    /// projection, and the relations and stats agree too.
    #[test]
    fn projection_is_parallel_invariant(seed in 0u64..2_000) {
        let f = allowed_sample(seed);
        prop_assume!(f.node_count() <= 60);
        let c = compile(&f).expect("compiles");
        let db = random_db_for(&f, seed + 31);

        let mut par_stats = EvalStats::default();
        let mut par_tr = Tracer::on();
        let par = c
            .run_traced(&db, &mut par_stats, Budget::unlimited(), &mut par_tr)
            .expect("parallel-capable run succeeds");

        let fault = FaultInjector::new();
        fault.deny_thread_spawn(true);
        let budget = Budget::new().with_fault_injector(fault);
        let mut seq_stats = EvalStats::default();
        let mut seq_tr = Tracer::on();
        let seq = c
            .run_traced(&db, &mut seq_stats, &budget, &mut seq_tr)
            .expect("sequential run succeeds");

        prop_assert_eq!(par, seq, "relations differ: {}", &f);
        prop_assert_eq!(par_stats, seq_stats, "stats differ: {}", &f);
        let par_proj = span_projection(&par_tr.finish().unwrap());
        let seq_proj = span_projection(&seq_tr.finish().unwrap());
        prop_assert_eq!(par_proj, seq_proj, "projections differ: {}", &f);
    }
}

/// The operator-level deterministic projection (what
/// `PipelineTrace::deterministic` prints for the eval tree).
fn span_projection(root: &OpSpan) -> String {
    fn go(s: &OpSpan, depth: usize, out: &mut String) {
        let ins: Vec<String> = s.rows_in.iter().map(|n| n.to_string()).collect();
        out.push_str(&format!(
            "{}{} in=[{}] out={} raw={}\n",
            "  ".repeat(depth),
            s.op,
            ins.join(","),
            s.rows_out,
            s.raw_rows
        ));
        for c in &s.children {
            go(c, depth + 1, out);
        }
    }
    let mut out = String::new();
    go(root, 0, &mut out);
    out
}
