//! Differential suite for the cost-based planner: the optimized plan must
//! be *observationally identical* to the heuristic plan — same relation,
//! same answer-column order, sane [`EvalStats`] — across the paper corpus
//! and generated allowed formulas, including under forced partitioning and
//! budget cancellation. Plus the optimizer-idempotence properties: the
//! rewrite simplifier is a fixpoint after one pass, and re-running the
//! cost-based planner on its own output never changes the plan hash.

mod common;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rcsafe::formula::generate::{random_allowed_formula, GenConfig};
use rcsafe::formula::vars::rectified;
use rcsafe::relalg::{
    eval, eval_governed, optimize, plan_hash, simplify, EvalStats, PlanCache, RaExpr, SelPred,
};
use rcsafe::safety::corpus::{corpus, formula_of};
use rcsafe::safety::pipeline::{
    compile_and_eval_cached, compile_for, compile_with, CompileOptions, Compiled,
};
use rcsafe::{Budget, Database, Schema, Term, Value, Var};

/// A reproducible database over a formula's inferred schema. Seed 0 is the
/// empty database, so vacuous plans stay covered.
fn db_for(f: &rcsafe::Formula, seed: u64) -> Database {
    let schema = Schema::infer(f).expect("consistent arities");
    let mut domain: Vec<Value> = (1..=4).map(Value::int).collect();
    for c in f.constants() {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    if seed == 0 {
        let mut d = Database::new();
        for (p, ar) in schema.predicates() {
            d.declare(p, ar);
        }
        d
    } else {
        Database::random(&schema, &domain, 6, &mut StdRng::seed_from_u64(seed))
    }
}

/// Compile `f` both ways: heuristic-only (no database statistics) and
/// cost-based against `db`.
fn both_plans(f: &rcsafe::Formula, db: &Database) -> Option<(Compiled, Compiled)> {
    let heuristic = compile_with(
        f,
        CompileOptions {
            optimize: true,
            ..CompileOptions::default()
        },
    )
    .ok()?;
    let optimized = compile_for(
        f,
        CompileOptions {
            optimize: true,
            ..CompileOptions::default()
        },
        db,
    )
    .ok()?;
    Some((heuristic, optimized))
}

/// Both compiled forms must expose the same answer columns (the planner
/// restores the projection it reorders under) and produce the identical
/// relation, with evaluator stats that satisfy the structural invariants.
fn assert_equivalent(heuristic: &Compiled, optimized: &Compiled, db: &Database, ctx: &str) {
    assert_eq!(
        heuristic.columns, optimized.columns,
        "{ctx}: planner changed the answer columns"
    );
    let mut hs = EvalStats::default();
    let mut os = EvalStats::default();
    let budget = Budget::unlimited();
    let h = eval_governed(&heuristic.expr, db, &mut hs, budget).expect("heuristic plan evaluates");
    let o = eval_governed(&optimized.expr, db, &mut os, budget).expect("optimized plan evaluates");
    assert_eq!(
        h, o,
        "{ctx}: optimized plan diverged\nheuristic: {}\noptimized: {}",
        heuristic.expr, optimized.expr
    );
    for (name, s) in [("heuristic", &hs), ("optimized", &os)] {
        assert!(s.operators > 0, "{ctx}: {name} evaluated no operators");
        assert!(
            s.max_intermediate as u64 <= s.tuples_produced,
            "{ctx}: {name} max intermediate exceeds total tuples"
        );
        assert!(
            s.budget_checks >= s.operators,
            "{ctx}: {name} skipped a budget checkpoint"
        );
    }
}

/// Every wide-sense corpus entry: the cost-based plan agrees with the
/// heuristic plan on empty and random databases.
#[test]
fn corpus_optimized_plans_match_heuristic_plans() {
    for entry in corpus().iter().filter(|e| e.wide_sense) {
        let f = formula_of(entry);
        for seed in [0u64, 1, 2, 7] {
            let db = db_for(&f, seed);
            let Some((heuristic, optimized)) = both_plans(&f, &db) else {
                continue;
            };
            assert_equivalent(
                &heuristic,
                &optimized,
                &db,
                &format!("{} seed {seed}", entry.id),
            );
        }
    }
}

/// Forced partitioning must not interact with the planner: for every
/// corpus entry and partition count 1..=4 the optimized plan still equals
/// the heuristic one.
#[test]
fn corpus_optimized_plans_survive_forced_partitioning() {
    for entry in corpus().iter().filter(|e| e.wide_sense) {
        let f = formula_of(entry);
        let db = db_for(&f, 7);
        let Some((heuristic, optimized)) = both_plans(&f, &db) else {
            continue;
        };
        let baseline = eval(&heuristic.expr, &db).expect("heuristic plan evaluates");
        for parts in 1..=4usize {
            let budget = Budget::new().with_partitions(parts);
            let mut stats = EvalStats::default();
            let out = eval_governed(&optimized.expr, &db, &mut stats, &budget)
                .expect("optimized plan evaluates under forced partitioning");
            assert_eq!(
                out, baseline,
                "{}: optimized plan diverged at {parts} partition(s)",
                entry.id
            );
        }
    }
}

/// A budget cancelled before evaluation starts stops the optimized plan
/// exactly like the heuristic one: both error, neither returns a partial
/// relation.
#[test]
fn corpus_optimized_plans_honor_cancelled_budgets() {
    for entry in corpus().iter().filter(|e| e.wide_sense) {
        let f = formula_of(entry);
        let db = db_for(&f, 7);
        let Some((heuristic, optimized)) = both_plans(&f, &db) else {
            continue;
        };
        let budget = Budget::new();
        budget.cancel_handle().cancel();
        for (name, compiled) in [("heuristic", &heuristic), ("optimized", &optimized)] {
            let mut stats = EvalStats::default();
            let out = eval_governed(&compiled.expr, &db, &mut stats, &budget);
            assert!(
                out.is_err(),
                "{}: {name} plan ignored a pre-cancelled budget",
                entry.id
            );
        }
    }
}

/// A random plan mixing every operator, for the idempotence properties.
/// Invariant: every subplan has columns exactly `[x, y]`, so unions stay
/// arity-aligned, selections always see their column, and diff right
/// sides are the narrower/equal operands the evaluator accepts.
fn random_plan(rng: &mut StdRng, depth: usize) -> RaExpr {
    let scan_a = || RaExpr::scan("A", vec![Term::var("x"), Term::var("y")]);
    let scan_b = || RaExpr::scan("B", vec![Term::var("x"), Term::var("y")]);
    let scan_c = || RaExpr::scan("C", vec![Term::var("y")]);
    if depth == 0 {
        return match rng.gen_range(0..3) {
            0 => scan_a(),
            1 => scan_b(),
            _ => RaExpr::join(scan_a(), scan_c()),
        };
    }
    match rng.gen_range(0..8) {
        0 => RaExpr::join(random_plan(rng, depth - 1), random_plan(rng, depth - 1)),
        1 => RaExpr::union(random_plan(rng, depth - 1), random_plan(rng, depth - 1)),
        2 => RaExpr::diff(random_plan(rng, depth - 1), scan_c()),
        3 => RaExpr::diff(
            random_plan(rng, depth - 1),
            RaExpr::project(random_plan(rng, depth - 1), vec![Var::new("y")]),
        ),
        4 => RaExpr::select(
            random_plan(rng, depth - 1),
            match rng.gen_range(0..3) {
                0 => SelPred::EqCols(Var::new("x"), Var::new("y")),
                1 => SelPred::EqConst(Var::new("y"), Value::int(rng.gen_range(0..6))),
                _ => SelPred::NeqConst(Var::new("x"), Value::int(rng.gen_range(0..6))),
            },
        ),
        5 => RaExpr::join(RaExpr::Unit, random_plan(rng, depth - 1)),
        6 => RaExpr::union(
            random_plan(rng, depth - 1),
            RaExpr::Empty {
                cols: vec![Var::new("x"), Var::new("y")],
            },
        ),
        _ => RaExpr::join(random_plan(rng, depth - 1), scan_c()),
    }
}

/// A small skewed fixture database so the cost model has real statistics
/// to read (A large, B medium, C tiny).
fn stats_db(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut facts = String::new();
    for i in 0..40i64 {
        facts.push_str(&format!("A({}, {})\n", i, rng.gen_range(0..8)));
    }
    for i in 0..12i64 {
        facts.push_str(&format!("B({}, {})\n", rng.gen_range(0..8), i % 5));
    }
    facts.push_str("C(1)\nC(3)\n");
    db.load_facts(&facts).expect("fixture facts load");
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Generated allowed formulas: the cost-based plan agrees with the
    /// heuristic plan, sequentially and under forced partitioning.
    #[test]
    fn generated_formulas_optimize_soundly(seed in 0u64..10_000) {
        let cfg = GenConfig::default();
        let f = rectified(&random_allowed_formula(
            &cfg,
            &[Var::new("x")],
            &mut StdRng::seed_from_u64(seed),
            3,
        ));
        let db = db_for(&f, seed | 1);
        let Some((heuristic, optimized)) = both_plans(&f, &db) else {
            return Ok(());
        };
        assert_equivalent(&heuristic, &optimized, &db, &format!("gen seed {seed}"));
        let baseline = eval(&heuristic.expr, &db).expect("heuristic plan evaluates");
        let budget = Budget::new().with_partitions(1 + (seed as usize % 4));
        let mut stats = EvalStats::default();
        let partitioned = eval_governed(&optimized.expr, &db, &mut stats, &budget)
            .expect("optimized plan evaluates partitioned");
        prop_assert_eq!(partitioned, baseline);
    }

    /// The rewrite simplifier reaches a fixpoint in one pass.
    #[test]
    fn simplify_is_idempotent(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = random_plan(&mut rng, 4);
        let once = simplify(&e);
        prop_assert_eq!(&simplify(&once), &once, "simplify not idempotent on {}", e);
    }

    /// Re-running the cost-based planner on its own output is a no-op: the
    /// strict-improvement gate means a plan it already chose can never be
    /// "improved" again, so the plan hash is stable.
    #[test]
    fn optimize_is_plan_hash_stable(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = random_plan(&mut rng, 4);
        let db = stats_db(seed);
        let once = optimize(&e, &db);
        let twice = optimize(&once, &db);
        prop_assert_eq!(
            plan_hash(&twice),
            plan_hash(&once),
            "re-optimizing changed the plan: {} -> {}",
            once,
            twice
        );
        // And the chosen plan still means the same thing as the input.
        let aligned = RaExpr::project(once.clone(), e.cols());
        prop_assert_eq!(
            eval(&aligned, &db).expect("optimized plan evaluates"),
            eval(&e, &db).expect("raw plan evaluates"),
            "optimizer changed answers on {}",
            e
        );
    }
}

/// Feedback moves the statistics epoch, which fragments the *plan* cache
/// key (the plan may genuinely change) while results stay correct; plans
/// compiled with the optimizer off ignore the epoch entirely.
#[test]
fn feedback_epoch_fragments_plan_cache_but_not_answers() {
    let db = stats_db(42);
    let mut cache: PlanCache<Compiled> = PlanCache::new();
    let text = "A(x, y) & B(x, y)";
    let opts = CompileOptions::default;

    let first = compile_and_eval_cached(text, &db, opts(), &mut cache).expect("first eval");
    assert!(!first.plan_cached);
    let warm = compile_and_eval_cached(text, &db, opts(), &mut cache).expect("warm eval");
    assert!(warm.plan_cached, "same epoch must reuse the cached plan");

    // Feedback: pretend `explain analyze` observed this plan's true
    // cardinality. The epoch moves, so the next compile re-plans ...
    let moved = db.record_observed(plan_hash(&first.compiled.expr), first.relation.len() as u64);
    assert!(moved, "a fresh observation must move the epoch");
    let replanned = compile_and_eval_cached(text, &db, opts(), &mut cache).expect("replanned eval");
    assert!(
        !replanned.plan_cached,
        "an epoch move must miss the plan cache"
    );
    // ... but the answer is unchanged.
    assert_eq!(first.relation, replanned.relation);

    // With the optimizer off the plan never reads statistics, so the epoch
    // is pinned to 0 and feedback cannot fragment the key.
    let off = || CompileOptions {
        optimize: false,
        ..CompileOptions::default()
    };
    let cold = compile_and_eval_cached(text, &db, off(), &mut cache).expect("optimizer-off eval");
    assert!(!cold.plan_cached);
    db.record_observed(7777, 3);
    let still_warm =
        compile_and_eval_cached(text, &db, off(), &mut cache).expect("optimizer-off warm eval");
    assert!(
        still_warm.plan_cached,
        "optimizer-off plans must ignore the statistics epoch"
    );
    assert_eq!(cold.relation, replanned.relation);
}
