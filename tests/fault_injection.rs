//! Fault-injected degradation of the parallel evaluator and the query
//! server: thread-spawn denial must fall back to the sequential path
//! (engine) or inline accept-thread serving (server) with *identical*
//! output, and forced mid-evaluation cancellation must unwind cleanly,
//! releasing the admission slot and leaving engine and server usable.
//!
//! Tests that compare full [`EvalStats`] across the parallel and the
//! denied (sequential) path pin the kernel partition count to 1: subtree
//! parallelism keeps `budget_checks` layout-invariant, but partitioned
//! kernels run one governor per worker, whose checkpoint *cadence* (every
//! 4096 ticks per worker) legitimately depends on the partition count —
//! which would otherwise vary with the host's core count.

mod common;

use rcsafe::relalg::govern::{Resource, Stage};
use rcsafe::relalg::{EvalStats, OpSpan, RelationBuilder};
use rcsafe::safety::pipeline::{compile, compile_and_eval_traced, CompileOptions, Compiled};
use rcsafe::{parse, Budget, Database, FaultInjector, Tracer, Value};

/// A join big enough on both sides to cross the evaluator's parallel
/// threshold (8192 scanned base tuples per side).
fn big_join() -> (Compiled, Database) {
    let mut db = Database::new();
    let mut a = RelationBuilder::new(2);
    let mut b = RelationBuilder::new(2);
    for i in 0..9_000i64 {
        a.push_row(&[Value::int(i), Value::int(i % 97)]);
        b.push_row(&[Value::int(i % 97), Value::int(i % 13)]);
    }
    db.insert_relation("A", a.finish());
    db.insert_relation("B", b.finish());
    let c = compile(&parse("A(x, y) & B(y, z)").unwrap()).unwrap();
    (c, db)
}

#[test]
fn spawn_denial_degrades_to_identical_sequential_results() {
    let (c, db) = big_join();

    let mut par_stats = EvalStats::default();
    let pinned = Budget::new().with_partitions(1);
    let parallel = c.run_governed(&db, &mut par_stats, &pinned).unwrap();
    assert!(!parallel.is_empty());

    let fault = FaultInjector::new();
    fault.deny_thread_spawn(true);
    let budget = Budget::new().with_fault_injector(fault);
    let mut seq_stats = EvalStats::default();
    let sequential = c.run_governed(&db, &mut seq_stats, &budget).unwrap();

    assert_eq!(
        parallel, sequential,
        "sequential fallback changed the answer"
    );
    assert_eq!(
        parallel.to_string(),
        sequential.to_string(),
        "even the rendering must be identical"
    );
    assert_eq!(
        par_stats, seq_stats,
        "stats merge must be deterministic: parallel left-then-right \
         merging equals straight sequential accumulation"
    );
}

#[test]
fn stats_are_reproducible_across_repeated_parallel_runs() {
    let (c, db) = big_join();
    let mut first = EvalStats::default();
    let mut second = EvalStats::default();
    let a = c.run_with_stats(&db, &mut first).unwrap();
    let b = c.run_with_stats(&db, &mut second).unwrap();
    assert_eq!(a, b);
    assert_eq!(first, second, "repeated runs must count identically");
    assert!(first.budget_checks > 0, "governance checks are surfaced");
}

#[test]
fn mid_kernel_cancellation_unwinds_and_engine_stays_usable() {
    let (c, db) = big_join();
    let reference = c.run(&db).unwrap();

    // Let a few checkpoints pass so the cancellation lands *inside* the
    // evaluation (operator boundaries plus in-kernel ticks), not at entry.
    let fault = FaultInjector::new();
    fault.cancel_after_checkpoints(2);
    let budget = Budget::new().with_fault_injector(fault);
    let mut stats = EvalStats::default();
    let err = c
        .run_governed(&db, &mut stats, &budget)
        .expect_err("forced mid-evaluation cancellation must surface");
    match err {
        rcsafe::relalg::EvalError::Budget(b) => {
            assert_eq!(b.stage, Stage::Eval);
            assert_eq!(b.resource, Resource::Cancelled);
        }
        other => panic!("expected a cancellation report, got {other:?}"),
    }

    // The trip poisoned nothing: the same compiled query over the same
    // database still produces the full answer.
    let after = c.run(&db).expect("engine must stay usable");
    assert_eq!(after, reference);
}

#[test]
fn cancellation_under_denied_spawns_also_unwinds_cleanly() {
    let (c, db) = big_join();
    let reference = c.run(&db).unwrap();

    let fault = FaultInjector::new();
    fault.deny_thread_spawn(true);
    fault.cancel_after_checkpoints(3);
    let budget = Budget::new().with_fault_injector(fault);
    let mut stats = EvalStats::default();
    let err = c
        .run_governed(&db, &mut stats, &budget)
        .expect_err("cancellation must fire on the sequential path too");
    match err {
        rcsafe::relalg::EvalError::Budget(b) => {
            assert_eq!(b.resource, Resource::Cancelled)
        }
        other => panic!("expected a cancellation report, got {other:?}"),
    }
    assert_eq!(c.run(&db).unwrap(), reference);
}

/// The deterministic cardinality projection of an operator span tree —
/// everything the trace pins except times and the parallel flag.
fn span_projection(root: &OpSpan) -> String {
    fn go(s: &OpSpan, depth: usize, out: &mut String) {
        let ins: Vec<String> = s.rows_in.iter().map(|n| n.to_string()).collect();
        out.push_str(&format!(
            "{}{} in=[{}] out={} raw={} {}\n",
            "  ".repeat(depth),
            s.op,
            ins.join(","),
            s.rows_out,
            s.raw_rows,
            if s.completed { "done" } else { "open" }
        ));
        for c in &s.children {
            go(c, depth + 1, out);
        }
    }
    let mut out = String::new();
    go(root, 0, &mut out);
    out
}

/// A database whose `A` and `B` stay above the parallel threshold *after*
/// builder dedup (the `big_join` fixture's `B` collapses to 97×13 rows, so
/// it exercises the sequential kernels only).
fn big_parallel_db() -> Database {
    let mut db = Database::new();
    let mut a = RelationBuilder::new(2);
    let mut b = RelationBuilder::new(2);
    for i in 0..9_000i64 {
        a.push_row(&[Value::int(i), Value::int(i % 97)]);
        b.push_row(&[Value::int(i % 97), Value::int(i)]);
    }
    db.insert_relation("A", a.finish());
    db.insert_relation("B", b.finish());
    db
}

#[test]
fn spawn_denial_leaves_the_trace_projection_unchanged() {
    let db = big_parallel_db();
    let c = compile(&parse("A(x, y) | B(x, y)").unwrap()).unwrap();

    let mut par_stats = EvalStats::default();
    let mut par_tr = Tracer::on();
    let pinned = Budget::new().with_partitions(1);
    let parallel = c
        .run_traced(&db, &mut par_stats, &pinned, &mut par_tr)
        .unwrap();
    let par_root = par_tr.finish().expect("parallel run leaves a root span");
    assert!(
        par_root.any_parallel(),
        "both sides scan 9000 distinct rows — the parallel path must fire"
    );

    let fault = FaultInjector::new();
    fault.deny_thread_spawn(true);
    let budget = Budget::new().with_fault_injector(fault);
    let mut seq_stats = EvalStats::default();
    let mut seq_tr = Tracer::on();
    let sequential = c
        .run_traced(&db, &mut seq_stats, &budget, &mut seq_tr)
        .unwrap();
    let seq_root = seq_tr.finish().expect("sequential run leaves a root span");
    assert!(!seq_root.any_parallel(), "spawn denial must stick");

    assert_eq!(parallel, sequential);
    assert_eq!(
        par_stats, seq_stats,
        "every EvalStats field — operators, tuples_produced, \
         max_intermediate, budget_checks — must agree across paths"
    );
    assert_eq!(
        span_projection(&par_root),
        span_projection(&seq_root),
        "spawn denial may flip the parallel flag, never the projection"
    );
}

/// The differential pin the spawn-denial tests rely on, widened to every
/// parallel-capable operator shape: join, union, and difference with both
/// subtrees above the parallel threshold must report identical `EvalStats`
/// (all fields, `max_intermediate` included) on the parallel and the
/// sequential path.
#[test]
fn parallel_and_sequential_stats_agree_for_all_operator_shapes() {
    let db = big_parallel_db();
    for text in [
        "A(x, y) & B(y, z)",
        "A(x, y) | B(x, y)",
        "A(x, y) & ~B(x, y)",
        "(A(x, y) & B(y, z)) | (A(z, y) & B(y, x))",
    ] {
        let c = compile(&parse(text).unwrap()).unwrap();

        let mut par_stats = EvalStats::default();
        let mut par_tr = Tracer::on();
        let pinned = Budget::new().with_partitions(1);
        let parallel = c
            .run_traced(&db, &mut par_stats, &pinned, &mut par_tr)
            .unwrap();
        assert!(
            par_tr.finish().unwrap().any_parallel(),
            "{text}: fixture must actually exercise the parallel path"
        );

        let fault = FaultInjector::new();
        fault.deny_thread_spawn(true);
        let budget = Budget::new().with_fault_injector(fault);
        let mut seq_stats = EvalStats::default();
        let sequential = c.run_governed(&db, &mut seq_stats, &budget).unwrap();

        assert_eq!(parallel, sequential, "{text}: answers diverged");
        assert_eq!(
            par_stats, seq_stats,
            "{text}: an EvalStats field diverges between the parallel and \
             sequential paths"
        );
    }
}

/// Mid-join cancellation with the join kernel *forced* into partitioned
/// workers: the trip must drain every worker, surface as a cancellation,
/// and leave no poisoned state — the same compiled query over the same
/// database (and its partition cache) still yields the full answer,
/// partitioned or sequential.
#[test]
fn mid_join_cancellation_under_forced_partitions_unwinds_cleanly() {
    let (c, db) = big_join();
    let reference = c.run(&db).unwrap();

    for checkpoints in [2u64, 5, 9] {
        let fault = FaultInjector::new();
        fault.cancel_after_checkpoints(checkpoints);
        let budget = Budget::new().with_partitions(4).with_fault_injector(fault);
        let mut stats = EvalStats::default();
        let err = c
            .run_governed(&db, &mut stats, &budget)
            .expect_err("cancellation must fire inside the partitioned evaluation");
        match err {
            rcsafe::relalg::EvalError::Budget(b) => {
                assert_eq!(b.stage, Stage::Eval);
                assert_eq!(b.resource, Resource::Cancelled);
            }
            other => panic!("expected a cancellation report, got {other:?}"),
        }

        let partitioned_again = c
            .run_governed(
                &db,
                &mut EvalStats::default(),
                &Budget::new().with_partitions(4),
            )
            .expect("partitioned re-run after a cancelled partitioned run");
        assert_eq!(partitioned_again, reference);
        assert_eq!(c.run(&db).unwrap(), reference);
    }
}

#[test]
fn mid_kernel_cancellation_yields_a_partial_trace_naming_the_culprit() {
    let (c, db) = big_join();

    let fault = FaultInjector::new();
    fault.cancel_after_checkpoints(2);
    let budget = Budget::new().with_fault_injector(fault);
    let mut stats = EvalStats::default();
    let mut tracer = Tracer::on();
    c.run_traced(&db, &mut stats, &budget, &mut tracer)
        .expect_err("forced cancellation must surface");

    // Every span the unwind crossed is closed but marked incomplete, so
    // the trace is well-formed and names where the cancellation landed.
    let root = tracer
        .finish()
        .expect("partial trace must still have a root");
    assert!(!root.completed, "the root span cannot have completed");
    let culprit = root
        .last_incomplete()
        .expect("an incomplete span marks the cancelled operator");
    assert!(
        culprit.children.iter().all(|ch| ch.completed),
        "the deepest incomplete span is the operator the cancellation hit"
    );
}

/// Wherever in the pipeline a cancellation lands — compile-time stages
/// checkpoint too, so small counts trip inside `ranf` or `translate` — the
/// exported trace's failed stage must agree with the error's own stage
/// attribution. Once the count is large enough to reach evaluation, the
/// partial operator tree is exported and names the hot operator.
#[test]
fn cancelled_pipeline_trace_attributes_the_tripped_stage() {
    let (_, db) = big_join();
    let mut saw_eval_cancellation = false;

    for checkpoints in [1, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
        let fault = FaultInjector::new();
        fault.cancel_after_checkpoints(checkpoints);
        let opts = CompileOptions {
            budget: Budget::new().with_fault_injector(fault),
            ..CompileOptions::default()
        };
        let (result, trace) = compile_and_eval_traced("A(x, y) & B(y, z)", &db, opts);
        let b = match result {
            Err(rcsafe::PipelineError::Budget(b)) => b,
            Ok(_) => break, // count exceeds every checkpoint: nothing trips
            Err(other) => panic!("expected a budget trip, got {other}"),
        };
        assert_eq!(b.resource, Resource::Cancelled);
        assert_eq!(
            trace.failed_stage(),
            Some(b.stage),
            "trace and error disagree on the cancelled stage \
             (after {checkpoints} checkpoints)"
        );
        if b.stage == Stage::Eval {
            saw_eval_cancellation = true;
            let root = trace.root.as_ref().expect("partial operator tree exported");
            assert!(!root.completed, "root span cannot have completed");
            let hot = trace
                .hot_operator()
                .expect("the hot operator is named even on a cancelled run");
            assert!(!hot.op.is_empty());
        }
    }
    assert!(
        saw_eval_cancellation,
        "no checkpoint count landed the cancellation inside evaluation"
    );
}

// ------------------------------------------ incremental maintenance --

use rcsafe::relalg::{materialize, plan_hash, refresh};
use rcsafe::safety::pipeline::{compile_and_eval, compile_and_eval_cached};
use rcsafe::PlanCache;

/// Cancellation landing inside a delta refresh must leave the cached
/// entry *atomic*: wholly at the old version or wholly at the new one,
/// never a torn mix. The refresh walk builds the new view on the side
/// and installs it only after the final budget charge, so whichever
/// checkpoint the cancellation hits, the registered view's stored answer
/// must be exactly its own version's full answer.
#[test]
fn cancellation_mid_refresh_never_tears_the_cached_entry() {
    let mut db = Database::from_facts("P(1, 2)\nP(2, 3)\nP(3, 1)\nQ(1)\nQ(2)").unwrap();
    let text = "P(x, y) & Q(y)";
    let mut cache: PlanCache<Compiled> = PlanCache::new();
    let cold = compile_and_eval_cached(text, &db, CompileOptions::default(), &mut cache).unwrap();
    let hash = plan_hash(&cold.compiled.expr);
    let mut old_version = db.version();
    let mut old_answer = cold.relation.clone();

    for (i, checkpoints) in [1u64, 2, 3, 4, 6].into_iter().enumerate() {
        let fresh = 10 + i as i64;
        db.apply_delta(&format!("P({fresh}, 1)\nQ({fresh})"))
            .unwrap();
        let full = compile_and_eval(text, &db, CompileOptions::default())
            .unwrap()
            .relation;

        let fault = FaultInjector::new();
        fault.cancel_after_checkpoints(checkpoints);
        let opts = CompileOptions {
            budget: Budget::new().with_fault_injector(fault),
            ..CompileOptions::default()
        };
        match compile_and_eval_cached(text, &db, opts, &mut cache) {
            Err(rcsafe::PipelineError::Budget(b)) => {
                assert_eq!(b.resource, Resource::Cancelled);
            }
            // A large enough count lands past the last checkpoint.
            Ok(out) => assert_eq!(out.relation, full),
            Err(other) => panic!("expected a cancellation, got {other}"),
        }

        // Atomicity: the registered view sits wholly at one version, and
        // its stored root answer is exactly that version's full answer.
        let view = cache.view_snapshot(hash).expect("view stays registered");
        if view.base_version() == db.version() {
            assert_eq!(view.result(), &full, "torn view at the new version");
        } else {
            assert_eq!(
                view.base_version(),
                old_version,
                "view at a version that was never current"
            );
            assert_eq!(view.result(), &old_answer, "torn view at the old version");
        }
        // Any result entry still present agrees with its own version too.
        if let Some(rel) = cache.lookup_result(hash, db.version()) {
            assert_eq!(rel, full, "torn result entry at the new version");
        }
        if let Some(rel) = cache.lookup_result(hash, old_version) {
            assert_eq!(rel, old_answer, "torn result entry at the old version");
        }

        // A clean serve recovers, whatever the trip left behind.
        let ok = compile_and_eval_cached(text, &db, CompileOptions::default(), &mut cache).unwrap();
        assert_eq!(ok.relation, full);
        old_version = db.version();
        old_answer = full;
    }
}

/// Spawn denial during a partitioned delta refresh: with the kernels
/// forced to 4 partitions, denying every thread spawn must degrade the
/// refresh to the sequential merge path with *byte-identical* output and
/// identical statistics — at the `refresh` level and through the cached
/// serving path alike.
#[test]
fn spawn_denial_during_partitioned_refresh_is_byte_identical() {
    let (c, mut db) = big_join();
    let budget_par = Budget::new().with_partitions(4);
    let mut stats = EvalStats::default();
    let (_, view) = materialize(
        &c.expr,
        &db,
        db.version(),
        &mut stats,
        &budget_par,
        &mut Tracer::off(),
    )
    .unwrap();

    // A delta wide enough that the refresh's join re-probes do real work:
    // 400 fresh `A` rows and 40 deleted `B` rows.
    let mut lines = Vec::new();
    for i in 0..400i64 {
        lines.push(format!("A({}, {})", 20_000 + i, i % 97));
    }
    for i in 0..40i64 {
        lines.push(format!("-B({}, {})", i, i % 13));
    }
    let delta = db.apply_delta(&lines.join("\n")).unwrap();

    let mut st_par = EvalStats::default();
    let (view_par, with_spawns) = refresh(
        &view,
        &delta,
        db.version(),
        &mut st_par,
        &budget_par,
        &mut Tracer::off(),
    )
    .unwrap();

    let fault = FaultInjector::new();
    fault.deny_thread_spawn(true);
    let denied_budget = Budget::new().with_partitions(4).with_fault_injector(fault);
    let mut st_seq = EvalStats::default();
    let (view_seq, denied) = refresh(
        &view,
        &delta,
        db.version(),
        &mut st_seq,
        &denied_budget,
        &mut Tracer::off(),
    )
    .unwrap();

    assert_eq!(
        with_spawns, denied,
        "spawn denial changed the refreshed answer"
    );
    assert_eq!(
        with_spawns.to_string(),
        denied.to_string(),
        "even the rendering must be identical"
    );
    assert_eq!(
        st_par, st_seq,
        "refresh statistics must not depend on spawning"
    );
    assert_eq!(view_par.result(), view_seq.result());
    assert_eq!(
        denied,
        c.run(&db).unwrap(),
        "refresh diverged from full eval"
    );

    // The serving path agrees: two identically primed caches, the same
    // delta, one serve with spawns denied — identical refreshed answers.
    let (_c2, mut db2) = big_join();
    let text = "A(x, y) & B(y, z)";
    let opts_par = || CompileOptions {
        budget: Budget::new().with_partitions(4),
        ..CompileOptions::default()
    };
    let mut cache_a: PlanCache<Compiled> = PlanCache::new();
    let mut cache_b: PlanCache<Compiled> = PlanCache::new();
    compile_and_eval_cached(text, &db2, opts_par(), &mut cache_a).unwrap();
    compile_and_eval_cached(text, &db2, opts_par(), &mut cache_b).unwrap();
    db2.apply_delta(&lines.join("\n")).unwrap();

    let allowed = compile_and_eval_cached(text, &db2, opts_par(), &mut cache_a).unwrap();
    let fault = FaultInjector::new();
    fault.deny_thread_spawn(true);
    let opts_denied = CompileOptions {
        budget: Budget::new().with_partitions(4).with_fault_injector(fault),
        ..CompileOptions::default()
    };
    let denied_serve = compile_and_eval_cached(text, &db2, opts_denied, &mut cache_b).unwrap();
    assert!(
        allowed.result_refreshed && denied_serve.result_refreshed,
        "both serves must take the refresh path (allowed: {}, denied: {})",
        allowed.result_refreshed,
        denied_serve.result_refreshed
    );
    assert_eq!(allowed.relation, denied_serve.relation);
    assert_eq!(
        allowed.relation.to_string(),
        denied_serve.relation.to_string()
    );
}

// --------------------------------------------------- the query server --

use rc_serve::{Client, Request, Response, Server, ServerConfig};
use std::time::{Duration, Instant};

/// The `big_join` fixture behind a server, with an optional injector
/// wired into every request budget and the accept loop.
fn serve_big_join(fault: Option<FaultInjector>) -> (Server, Database, Compiled) {
    let (c, db) = big_join();
    let server = Server::start(
        db.clone(),
        ServerConfig {
            fault,
            ..ServerConfig::default()
        },
    )
    .expect("bind server");
    (server, db, c)
}

fn query_relation(client: &mut Client, text: &str) -> rcsafe::Relation {
    match client.query(text).expect("transport") {
        Response::Query(ok) => ok.relation,
        other => panic!("expected a query response, got {other:?}"),
    }
}

/// A cancellation that fires mid-serve comes back as a structured budget
/// error, releases the admission slot, and poisons nothing: the very
/// same connection then gets the full answer.
#[test]
fn served_cancellation_releases_the_slot_and_poisons_nothing() {
    let fault = FaultInjector::new();
    let (server, db, c) = serve_big_join(Some(fault.clone()));
    let reference = c.run(&db).unwrap();
    let text = "A(x, y) & B(y, z)";

    let mut client = Client::connect(server.local_addr()).expect("connect");
    // Arm after connecting: the accept loop's spawn-denial probe does not
    // tick checkpoints, so the cancellation lands inside this request.
    fault.cancel_after_checkpoints(2);
    match client.query(text).expect("transport") {
        Response::Error(e) => {
            assert_eq!(e.kind, "budget");
            let b = e.to_budget().expect("cancellations are reconstructible");
            assert_eq!(b.resource, Resource::Cancelled);
        }
        other => panic!("expected a cancellation error, got {other:?}"),
    }
    // The injector disarmed itself; the slot was released on the error
    // path; the shared cache was not poisoned with a partial result.
    assert_eq!(query_relation(&mut client, text), reference);
    let stats: std::collections::HashMap<String, String> =
        client.stats().expect("stats").into_iter().collect();
    assert_eq!(stats["active"], "0", "the cancelled query leaked its slot");
    assert_eq!(stats["rejected"], "0");
}

/// Clients that vanish mid-conversation — after sending a query, before
/// reading its answer — must not wedge or poison the server.
#[test]
fn client_disconnect_mid_query_leaves_the_server_healthy() {
    let (server, db, c) = serve_big_join(None);
    let reference = c.run(&db).unwrap();
    let text = "A(x, y) & B(y, z)";

    for _ in 0..8 {
        let mut ghost = Client::connect(server.local_addr()).expect("connect");
        ghost
            .send_raw_frame(&Request::query(text).encode())
            .unwrap();
        drop(ghost); // connection torn down with the response in flight
    }
    // The survivors: a fresh client gets the full, correct answer and the
    // admission ledger drains back to zero.
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(query_relation(&mut client, text), reference);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats: std::collections::HashMap<String, String> =
            client.stats().expect("stats").into_iter().collect();
        if stats["active"] == "0" {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "ghost connections leaked admission slots: active={}",
            stats["active"]
        );
        std::thread::yield_now();
    }
}

/// Thread-spawn denial at the server layer: connections are served
/// inline on the accept thread — sequentially, later clients waiting
/// rather than being dropped — with answers identical to threaded serving.
#[test]
fn spawn_denial_degrades_to_inline_sequential_serving() {
    let fault = FaultInjector::new();
    fault.deny_thread_spawn(true);
    let (server, db, c) = serve_big_join(Some(fault));
    let reference = c.run(&db).unwrap();
    let text = "A(x, y) & B(y, z)";

    // Inline serving occupies the accept thread until the connection
    // closes, so exercise clients strictly one after another.
    for i in 0..3 {
        let mut client = Client::connect(server.local_addr()).expect("connect");
        assert_eq!(
            query_relation(&mut client, text),
            reference,
            "inline-served answer diverged (client {i})"
        );
    }
    assert_eq!(
        server.inline_served(),
        3,
        "every connection must have been served on the accept thread"
    );
}
