//! Fault-injected degradation of the parallel evaluator: thread-spawn
//! denial must fall back to the sequential path with *identical* output
//! and deterministic stats, and forced mid-kernel cancellation must unwind
//! cleanly, leaving the engine usable.

mod common;

use rcsafe::relalg::govern::{Resource, Stage};
use rcsafe::relalg::{EvalStats, RelationBuilder};
use rcsafe::safety::pipeline::{compile, Compiled};
use rcsafe::{parse, Budget, Database, FaultInjector, Value};

/// A join big enough on both sides to cross the evaluator's parallel
/// threshold (8192 scanned base tuples per side).
fn big_join() -> (Compiled, Database) {
    let mut db = Database::new();
    let mut a = RelationBuilder::new(2);
    let mut b = RelationBuilder::new(2);
    for i in 0..9_000i64 {
        a.push_row(&[Value::int(i), Value::int(i % 97)]);
        b.push_row(&[Value::int(i % 97), Value::int(i % 13)]);
    }
    db.insert_relation("A", a.finish());
    db.insert_relation("B", b.finish());
    let c = compile(&parse("A(x, y) & B(y, z)").unwrap()).unwrap();
    (c, db)
}

#[test]
fn spawn_denial_degrades_to_identical_sequential_results() {
    let (c, db) = big_join();

    let mut par_stats = EvalStats::default();
    let parallel = c.run_with_stats(&db, &mut par_stats).unwrap();
    assert!(!parallel.is_empty());

    let fault = FaultInjector::new();
    fault.deny_thread_spawn(true);
    let budget = Budget::new().with_fault_injector(fault);
    let mut seq_stats = EvalStats::default();
    let sequential = c.run_governed(&db, &mut seq_stats, &budget).unwrap();

    assert_eq!(
        parallel, sequential,
        "sequential fallback changed the answer"
    );
    assert_eq!(
        parallel.to_string(),
        sequential.to_string(),
        "even the rendering must be identical"
    );
    assert_eq!(
        par_stats, seq_stats,
        "stats merge must be deterministic: parallel left-then-right \
         merging equals straight sequential accumulation"
    );
}

#[test]
fn stats_are_reproducible_across_repeated_parallel_runs() {
    let (c, db) = big_join();
    let mut first = EvalStats::default();
    let mut second = EvalStats::default();
    let a = c.run_with_stats(&db, &mut first).unwrap();
    let b = c.run_with_stats(&db, &mut second).unwrap();
    assert_eq!(a, b);
    assert_eq!(first, second, "repeated runs must count identically");
    assert!(first.budget_checks > 0, "governance checks are surfaced");
}

#[test]
fn mid_kernel_cancellation_unwinds_and_engine_stays_usable() {
    let (c, db) = big_join();
    let reference = c.run(&db).unwrap();

    // Let a few checkpoints pass so the cancellation lands *inside* the
    // evaluation (operator boundaries plus in-kernel ticks), not at entry.
    let fault = FaultInjector::new();
    fault.cancel_after_checkpoints(2);
    let budget = Budget::new().with_fault_injector(fault);
    let mut stats = EvalStats::default();
    let err = c
        .run_governed(&db, &mut stats, &budget)
        .expect_err("forced mid-evaluation cancellation must surface");
    match err {
        rcsafe::relalg::EvalError::Budget(b) => {
            assert_eq!(b.stage, Stage::Eval);
            assert_eq!(b.resource, Resource::Cancelled);
        }
        other => panic!("expected a cancellation report, got {other:?}"),
    }

    // The trip poisoned nothing: the same compiled query over the same
    // database still produces the full answer.
    let after = c.run(&db).expect("engine must stay usable");
    assert_eq!(after, reference);
}

#[test]
fn cancellation_under_denied_spawns_also_unwinds_cleanly() {
    let (c, db) = big_join();
    let reference = c.run(&db).unwrap();

    let fault = FaultInjector::new();
    fault.deny_thread_spawn(true);
    fault.cancel_after_checkpoints(3);
    let budget = Budget::new().with_fault_injector(fault);
    let mut stats = EvalStats::default();
    let err = c
        .run_governed(&db, &mut stats, &budget)
        .expect_err("cancellation must fire on the sequential path too");
    match err {
        rcsafe::relalg::EvalError::Budget(b) => {
            assert_eq!(b.resource, Resource::Cancelled)
        }
        other => panic!("expected a cancellation report, got {other:?}"),
    }
    assert_eq!(c.run(&db).unwrap(), reference);
}
