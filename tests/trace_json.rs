//! Strict-parser round-trips for the hand-rolled JSON emitters.
//!
//! The workspace is dependency-free, so `PipelineTrace::to_json` and the
//! bench emitters build JSON by hand. These tests feed their output — and
//! the committed `TRACE_corpus.json` artifact — through a strict
//! recursive-descent JSON parser that rejects unescaped control
//! characters, bad escapes, trailing garbage, and unbalanced structure.
//! Operator labels embed `Symbol` names, so predicates named with quotes,
//! backslashes, and control characters must survive the trip.

use rcsafe::relalg::trace::json_str;
use rcsafe::relalg::{eval_traced, EvalStats, Tracer};
use rcsafe::safety::pipeline::{compile_and_eval_traced, CompileOptions};
use rcsafe::{Budget, Database, RaExpr, Relation, Term};
use std::collections::BTreeMap;

// ------------------------------------------------- a strict JSON parser --

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn as_arr(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            other => panic!("expected array, got {other:?}"),
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document, rejecting any trailing non-whitespace.
fn parse_json(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            if map.insert(key.clone(), val).is_some() {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            // The emitters only \u-escape control chars, so
                            // surrogate pairs never occur; reject them.
                            out.push(
                                char::from_u32(cp)
                                    .ok_or(format!("surrogate \\u{hex} unsupported"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("invalid escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte {c:#x} in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at the next boundary is safe).
                    let s = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {s:?}"))
    }
}

// ---------------------------------------------------------------- tests --

#[test]
fn the_parser_itself_is_strict() {
    assert!(parse_json("{\"a\": [1, true, null, \"x\"]}").is_ok());
    assert!(parse_json("{\"a\": 1} trailing").is_err());
    assert!(
        parse_json("{\"a\": 1, \"a\": 2}").is_err(),
        "duplicate keys"
    );
    assert!(parse_json("\"\u{1}\"").is_err(), "raw control byte");
    assert!(parse_json("\"\\q\"").is_err(), "invalid escape");
    assert!(parse_json("[1, 2").is_err(), "unbalanced");
}

#[test]
fn json_str_round_trips_hostile_strings() {
    for s in [
        "plain",
        "with \"quotes\" and \\backslashes\\",
        "newline\nand\ttab\rand\u{1}control\u{1f}",
        "unicode: λ → ∃∀ ≠",
        "",
        "\\u0041 is not an escape here",
    ] {
        let encoded = json_str(s);
        let parsed = parse_json(&encoded).unwrap_or_else(|e| panic!("{s:?}: {e}"));
        assert_eq!(parsed, Json::Str(s.to_string()), "round-trip of {s:?}");
    }
}

/// A traced pipeline run over predicates with hostile names must export
/// strictly valid JSON, and the labels must survive the round trip.
#[test]
fn traced_eval_with_hostile_symbols_exports_valid_json() {
    let nasty = "P\"quoted\\name\nwith\tcontrols\u{1}";
    let mut db = Database::new();
    let mut rel = Relation::new(1);
    rel.insert(vec![rcsafe::Value::int(1)].into_boxed_slice());
    db.insert_relation(nasty, rel);
    let expr = RaExpr::scan(nasty, vec![Term::var("x")]);

    let mut stats = EvalStats::default();
    let mut tracer = Tracer::on();
    eval_traced(&expr, &db, &mut stats, Budget::unlimited(), &mut tracer).unwrap();
    let root = tracer.finish().expect("root span");
    let trace = rcsafe::relalg::PipelineTrace {
        stages: Vec::new(),
        root: Some(root),
    };
    let json = trace.to_json();
    let parsed = parse_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
    let op = parsed.get("eval").unwrap().get("op").unwrap().as_str();
    assert!(op.contains(nasty), "symbol mangled: {op:?}");
}

/// The full traced pipeline (stages + operator tree, `cache_hit` flags
/// included) parses strictly.
#[test]
fn pipeline_trace_json_parses_strictly() {
    let db = Database::from_facts("Part('bolt')\nSupplies('acme', 'bolt')").unwrap();
    let (result, trace) = compile_and_eval_traced(
        "exists y. forall x. (!Part(x) | Supplies(y, x))",
        &db,
        CompileOptions::default(),
    );
    result.expect("query evaluates");
    let parsed = parse_json(&trace.to_json()).expect("strict parse");
    let stages = parsed.get("stages").unwrap().as_arr();
    assert!(stages.len() >= 6, "all pipeline stages present");
    for stage in stages {
        for key in ["stage", "nodes_in", "nodes_out", "detail", "completed"] {
            assert!(stage.get(key).is_some(), "stage missing {key}");
        }
    }
    fn check_span(span: &Json) {
        for key in ["op", "rows_in", "rows_out", "cache_hit", "completed"] {
            assert!(span.get(key).is_some(), "span missing {key}");
        }
        for c in span.get("children").unwrap().as_arr() {
            check_span(c);
        }
    }
    check_span(parsed.get("eval").unwrap());
}

/// The committed `TRACE_corpus.json` artifact must stay strictly valid.
#[test]
fn committed_trace_corpus_parses_strictly() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/TRACE_corpus.json");
    let text = std::fs::read_to_string(path).expect("TRACE_corpus.json exists at the repo root");
    let parsed = parse_json(&text).expect("strict parse of TRACE_corpus.json");
    for key in ["corpus_id", "seed", "ok", "trace"] {
        assert!(parsed.get(key).is_some(), "missing {key}");
    }
    assert!(
        !parsed
            .get("trace")
            .unwrap()
            .get("stages")
            .unwrap()
            .as_arr()
            .is_empty(),
        "trace has stages"
    );
}
