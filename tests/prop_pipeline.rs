//! End-to-end pipeline property tests: for random safe formulas, the
//! compiled algebra expression computes exactly the brute-force answer
//! (Thms. 8.4 + 9.4 + 9.5 composed), stage by stage and end to end; the
//! algebraic simplifier and the Dom baseline agree as well.

mod common;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rcsafe::formula::generate::{random_allowed_formula, random_formula, GenConfig};
use rcsafe::formula::vars::{free_vars, rectified, FreshVars};
use rcsafe::safety::dom_baseline::{eval_brute_force, eval_dom};
use rcsafe::safety::pipeline::{compile, compile_with, CompileOptions};
use rcsafe::{is_allowed, is_evaluable, is_ranf, Database, Formula, Schema, Value, Var};

fn allowed_sample(seed: u64) -> Formula {
    let cfg = GenConfig::default();
    let mut rng = StdRng::seed_from_u64(seed);
    rectified(&random_allowed_formula(
        &cfg,
        &[Var::new("x"), Var::new("y")],
        &mut rng,
        3,
    ))
}

/// An evaluable (often non-allowed) sample: allowed formulas walked through
/// random conservative transformations.
fn evaluable_sample(seed: u64) -> Formula {
    use rand::seq::SliceRandom;
    use rcsafe::formula::transform::{applicable_rewrites, apply_at, CONSERVATIVE_RULES};
    let mut f = allowed_sample(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let mut fresh = FreshVars::for_formula(&f);
    for _ in 0..5 {
        let apps = applicable_rewrites(&f, CONSERVATIVE_RULES);
        if apps.is_empty() {
            break;
        }
        let (path, rw) = apps.choose(&mut rng).unwrap().clone();
        if let Some(g) = apply_at(rw, &f, &path, &mut fresh) {
            if g.node_count() < 150 {
                f = g;
            }
        }
    }
    rectified(&f)
}

fn random_db_for(f: &Formula, seed: u64) -> (Database, Vec<Value>) {
    let schema = Schema::infer(f).expect("consistent");
    let mut domain: Vec<Value> = (1..=4).map(Value::int).collect();
    for c in f.constants() {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    let db = Database::random(&schema, &domain, 6, &mut StdRng::seed_from_u64(seed));
    (db, domain)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Compiled answers equal brute-force active-domain answers for
    /// allowed formulas (which are domain independent, so active-domain
    /// evaluation is THE answer).
    #[test]
    fn compiled_matches_oracle_on_allowed(seed in 0u64..4_000) {
        let f = allowed_sample(seed);
        prop_assume!(is_allowed(&f));
        prop_assume!(f.node_count() <= 60);
        let c = compile(&f).expect("allowed formulas compile");
        prop_assert!(is_ranf(&c.ranf_form), "not RANF: {}", c.ranf_form);
        for trial in 0..3u64 {
            let (db, _) = random_db_for(&f, seed * 7 + trial);
            let ours = c.run(&db).expect("evaluates");
            let oracle = eval_brute_force(&f, &db);
            prop_assert_eq!(&ours, &oracle, "seed {} trial {}: {}", seed, trial, &f);
        }
    }

    /// The full pipeline (genify included) matches the oracle on evaluable
    /// formulas.
    #[test]
    fn compiled_matches_oracle_on_evaluable(seed in 0u64..4_000) {
        let f = evaluable_sample(seed);
        prop_assume!(is_evaluable(&f));
        prop_assume!(f.node_count() <= 80);
        let c = match compile(&f) {
            Ok(c) => c,
            Err(e) => return Err(TestCaseError::fail(format!("{f}: {e}"))),
        };
        for trial in 0..2u64 {
            let (db, _) = random_db_for(&f, seed * 13 + trial);
            let ours = c.run(&db).expect("evaluates");
            let oracle = eval_brute_force(&f, &db);
            prop_assert_eq!(&ours, &oracle, "seed {} trial {}: {}", seed, trial, &f);
        }
    }

    /// The algebraic simplifier does not change answers.
    #[test]
    fn simplifier_preserves_answers(seed in 0u64..4_000) {
        let f = allowed_sample(seed);
        prop_assume!(is_allowed(&f) && f.node_count() <= 60);
        let raw = compile_with(&f, CompileOptions { optimize: false, ..CompileOptions::default() })
            .expect("compiles");
        let opt = compile_with(&f, CompileOptions { optimize: true, ..CompileOptions::default() })
            .expect("compiles");
        let (db, _) = random_db_for(&f, seed + 1);
        prop_assert_eq!(
            raw.run(&db).expect("raw"),
            opt.run(&db).expect("opt"),
            "simplifier changed answers for {}", &f
        );
    }

    /// The Dom-relation baseline agrees with the pipeline on evaluable
    /// (hence domain independent) queries.
    #[test]
    fn dom_baseline_agrees(seed in 0u64..4_000) {
        let f = allowed_sample(seed);
        prop_assume!(is_allowed(&f) && f.node_count() <= 50);
        let c = compile(&f).expect("compiles");
        let (db, _) = random_db_for(&f, seed + 2);
        let dom = eval_dom(&f, &db).expect("dom eval");
        let ours = c.run(&db).expect("ours");
        prop_assert_eq!(ours, dom, "{}", &f);
    }

    /// Unsafe random formulas never slip through: if compile succeeds, the
    /// formula really is definite on sampled interpretations.
    #[test]
    fn no_unsafe_formula_compiles(seed in 0u64..4_000) {
        use rcsafe::safety::domind::{empirically_definite, DefiniteTest};
        let cfg = GenConfig { max_depth: 3, ..GenConfig::default() };
        let f = rectified(&random_formula(&cfg, &mut StdRng::seed_from_u64(seed)));
        prop_assume!(f.node_count() <= 40);
        if compile(&f).is_ok() {
            let verdict = empirically_definite(&f, &DefiniteTest {
                trials: 8,
                ..DefiniteTest::default()
            });
            prop_assert!(
                verdict.is_definite(),
                "compiled formula is not definite: {}", &f
            );
        }
    }
}

/// Equality-heavy end-to-end check: wide-sense formulas compile through
/// the reduction and match the oracle.
#[test]
fn wide_sense_pipeline_matches_oracle() {
    for (i, s) in [
        "exists z. (P(x, z) & (x = y | Q(x, y, z)) & !(z = y | R(y, z)))",
        "Q(y, y) & (x = y | P(x))",
        "exists x. (x = 3 & P(x, y))",
    ]
    .iter()
    .enumerate()
    {
        let f = rcsafe::parse(s).unwrap();
        let c = compile(&f).expect("wide-sense formulas compile");
        for trial in 0..4u64 {
            let (db, _) = random_db_for(&f, i as u64 * 100 + trial);
            let ours = c.run(&db).expect("evaluates");
            let oracle = eval_brute_force(&f, &db);
            assert_eq!(ours, oracle, "{s}");
        }
    }
}

/// The answer's column order always matches the formula's free-variable
/// order, whatever the internal column shuffling did.
#[test]
fn column_order_is_stable() {
    for s in [
        "Q(y, x) & P(x)",
        "P(x) & Q(y, x)",
        "exists w. S(z, w, a) & P(a)",
    ] {
        let f = rcsafe::parse(s).unwrap();
        let c = compile(&f).unwrap();
        assert_eq!(c.columns, free_vars(&f), "{s}");
        assert_eq!(c.expr.cols(), free_vars(&f), "{s}");
    }
}
