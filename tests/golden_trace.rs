//! Golden-trace snapshots: the deterministic projection of the pipeline
//! trace (stage node counts, span tree shape, per-operator in/out/raw
//! cardinalities — no times, no parallel flag) is pinned for a dozen
//! corpus formulas against committed snapshots in `tests/snapshots/`.
//!
//! A change to any transformation stage or evaluation kernel that alters
//! plan shape or cardinalities shows up here as a readable diff.
//! Regenerate intentionally with:
//!
//! ```sh
//! BLESS=1 cargo test --test golden_trace
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rcsafe::formula::{Schema, Value};
use rcsafe::relalg::RelationBuilder;
use rcsafe::safety::corpus::{by_id, formula_of};
use rcsafe::safety::pipeline::{compile_and_eval_traced, CompileOptions};
use rcsafe::{Budget, Database};
use std::path::PathBuf;

/// The pinned corpus entries: every safety class the pipeline accepts,
/// both boolean and open formulas, including ones where simplification
/// collapses the plan.
const PINNED: &[&str] = &[
    "sec21-curable",
    "sec21-cured",
    "ex5.2-F",
    "ex5.2-G",
    "sec53-default",
    "ex6.1-before",
    "ex6.1-after",
    "ex6.3-F",
    "ex9.1-a",
    "ex9.1-b",
    "ex9.2-row2",
    "fig6",
];

/// The deterministic database every snapshot runs against: seeded from the
/// formula's schema with the same recipe the end-to-end corpus tests use.
const DB_SEED: u64 = 7;

fn db_for_id(id: &str) -> Database {
    let entry = by_id(id).unwrap_or_else(|| panic!("no corpus entry {id:?}"));
    let f = formula_of(&entry);
    let schema = Schema::infer(&f).expect("corpus formulas have consistent arities");
    let mut domain: Vec<Value> = (1..=4).map(Value::int).collect();
    for c in f.constants() {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    Database::random(&schema, &domain, 6, &mut StdRng::seed_from_u64(DB_SEED))
}

fn snapshot_path(id: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("{id}.trace.txt"))
}

fn projection_of(id: &str) -> String {
    let entry = by_id(id).unwrap();
    let text = formula_of(&entry).to_string();
    let db = db_for_id(id);
    let (result, trace) = compile_and_eval_traced(&text, &db, CompileOptions::default());
    result.unwrap_or_else(|e| panic!("{id} failed to compile+eval: {e}"));
    trace.deterministic()
}

#[test]
fn golden_traces_match_snapshots() {
    let bless = std::env::var("BLESS").as_deref() == Ok("1");
    let mut failures = Vec::new();
    for id in PINNED {
        let got = projection_of(id);
        let path = snapshot_path(id);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(want) if want == got => {}
            Ok(want) => failures.push(format!(
                "{id}: trace projection drifted\n--- snapshot\n{want}--- got\n{got}"
            )),
            Err(_) => failures.push(format!(
                "{id}: missing snapshot {} (run BLESS=1 cargo test --test golden_trace)",
                path.display()
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "{} golden trace(s) drifted:\n\n{}",
        failures.len(),
        failures.join("\n\n")
    );
}

/// The partitioned projection of a big join forced to exactly 4-way
/// partitioned kernels. Machine-independent because the count is pinned:
/// partition membership is decided by `FxHasher` (no random seed) and
/// chunk boundaries by integer arithmetic — only wall times and loop
/// counts vary, and the projection excludes both.
fn partitioned_projection_of_big_join() -> String {
    let mut db = Database::new();
    let mut a = RelationBuilder::new(2);
    let mut b = RelationBuilder::new(2);
    for i in 0..9_000i64 {
        a.push_row(&[Value::int(i), Value::int(i % 97)]);
        b.push_row(&[Value::int(i % 97), Value::int(i % 13)]);
    }
    db.insert_relation("A", a.finish());
    db.insert_relation("B", b.finish());
    let opts = CompileOptions {
        budget: Budget::new().with_partitions(4),
        ..CompileOptions::default()
    };
    let (result, trace) = compile_and_eval_traced("A(x, y) & B(y, z)", &db, opts);
    result.unwrap_or_else(|e| panic!("partitioned big join failed: {e}"));
    trace
        .root
        .as_ref()
        .expect("traced run leaves an operator tree")
        .partitioned_projection()
}

/// Golden snapshot of the *partitioned* projection: per-partition output
/// cardinalities (`parts=[..]`) under a forced 4-way split are pinned in
/// `tests/snapshots/partitioned-join.trace.txt`.
#[test]
fn partitioned_golden_trace_matches_snapshot() {
    let bless = std::env::var("BLESS").as_deref() == Ok("1");
    let got = partitioned_projection_of_big_join();
    assert!(
        got.contains("parts=["),
        "forced partition count must leave per-partition span fields:\n{got}"
    );
    let path = snapshot_path("partitioned-join");
    if bless {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    match std::fs::read_to_string(&path) {
        Ok(want) if want == got => {}
        Ok(want) => panic!(
            "partitioned trace projection drifted\n--- snapshot\n{want}--- got\n{got}\n\
             (intentional? BLESS=1 cargo test --test golden_trace)"
        ),
        Err(_) => panic!(
            "missing snapshot {} (run BLESS=1 cargo test --test golden_trace)",
            path.display()
        ),
    }
}

/// The projection itself is stable: two fresh runs of the same query over
/// the same database produce byte-identical deterministic projections.
#[test]
fn projection_is_reproducible_within_a_run() {
    for id in ["ex5.2-G", "ex9.2-row2"] {
        assert_eq!(projection_of(id), projection_of(id), "{id}");
    }
}

/// Every pinned snapshot carries the full stage ladder and a span tree:
/// structural sanity independent of the committed bytes.
#[test]
fn projections_have_stages_and_operators() {
    for id in PINNED {
        let p = projection_of(id);
        for stage in [
            "parse",
            "classify",
            "genify",
            "ranf",
            "translate",
            "optimize",
            "eval",
        ] {
            assert!(
                p.contains(&format!("stage {stage}:")),
                "{id}: projection lacks stage {stage}:\n{p}"
            );
        }
        assert!(
            p.contains("op "),
            "{id}: projection lacks operator spans:\n{p}"
        );
    }
}
