//! Budget-governance properties: a governed run returns **exactly** the
//! ungoverned answer or a structured budget error — never a differing or
//! truncated relation — and every pipeline stage attributes its own trips.

mod common;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rcsafe::formula::generate::{random_allowed_formula, GenConfig};
use rcsafe::formula::vars::rectified;
use rcsafe::relalg::govern::{Resource, Stage};
use rcsafe::relalg::EvalStats;
use rcsafe::safety::genify::{genify_governed, GenifyError};
use rcsafe::safety::pipeline::{compile, compile_and_eval, CompileOptions, PipelineError};
use rcsafe::safety::ranf::{ranf, ranf_governed, RanfError};
use rcsafe::safety::translate::{translate_governed, TranslateError};
use rcsafe::{parse, Budget, Database, FaultInjector, Formula, Schema, Value, Var};
use std::time::{Duration, Instant};

fn allowed_sample(seed: u64) -> Formula {
    let cfg = GenConfig::default();
    rectified(&random_allowed_formula(
        &cfg,
        &[Var::new("x"), Var::new("y")],
        &mut StdRng::seed_from_u64(seed),
        3,
    ))
}

fn random_db_for(f: &Formula, seed: u64) -> Database {
    let schema = Schema::infer(f).expect("consistent");
    let mut domain: Vec<Value> = (1..=4).map(Value::int).collect();
    for c in f.constants() {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    Database::random(&schema, &domain, 6, &mut StdRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For random formulas, databases, and tuple budgets: the governed
    /// evaluation either equals the ungoverned result exactly or fails
    /// with a budget error — never a differing relation.
    #[test]
    fn governed_eval_is_exact_or_error(seed in 0u64..4_000) {
        let cap = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 40;
        let f = allowed_sample(seed);
        prop_assume!(f.node_count() <= 60);
        let c = compile(&f).expect("allowed formulas compile");
        let db = random_db_for(&f, seed + 17);
        let full = c.run(&db).expect("ungoverned evaluation succeeds");
        let budget = Budget::new().with_max_tuples(cap);
        let mut stats = EvalStats::default();
        match c.run_governed(&db, &mut stats, &budget) {
            Ok(rel) => prop_assert_eq!(rel, full, "governed result differs: {}", &f),
            Err(e) => {
                let b = match e {
                    rcsafe::relalg::EvalError::Budget(b) => b,
                    other => return Err(TestCaseError::fail(format!("non-budget error: {other}"))),
                };
                prop_assert_eq!(b.stage, Stage::Eval);
                prop_assert_eq!(b.resource, Resource::Tuples);
                prop_assert!(b.used > b.limit, "trip without overconsumption");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same property through the full `compile_and_eval` pipeline with
    /// a random node cap: exact agreement or a stage-attributed trip.
    #[test]
    fn governed_pipeline_is_exact_or_error(seed in 0u64..4_000) {
        let nodes = 1 + seed.wrapping_mul(0x2545_F491_4F6C_DD1D) % 199;
        let f = allowed_sample(seed);
        prop_assume!(f.node_count() <= 60);
        let text = f.to_string();
        let db = random_db_for(&f, seed + 29);
        let full = match compile_and_eval(&text, &db, CompileOptions::default()) {
            Ok(out) => out.relation,
            Err(e) => return Err(TestCaseError::fail(format!("ungoverned failed: {e}"))),
        };
        let opts = CompileOptions {
            budget: Budget::new().with_max_nodes(nodes),
            ..CompileOptions::default()
        };
        match compile_and_eval(&text, &db, opts) {
            Ok(out) => prop_assert_eq!(out.relation, full, "budgeted result differs: {}", &f),
            Err(PipelineError::Budget(b)) => {
                prop_assert_eq!(b.resource, Resource::Nodes);
                prop_assert!(
                    matches!(b.stage, Stage::Genify | Stage::Ranf | Stage::Translate),
                    "node trips come from the rewriting stages, got {}", b.stage
                );
            }
            Err(other) => return Err(TestCaseError::fail(format!("non-budget error: {other}"))),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A cancelled evaluation returns promptly (the checkpoint interval
    /// bounds the drain) and reports the cancellation.
    #[test]
    fn cancelled_eval_returns_promptly(seed in 0u64..2_000) {
        let f = allowed_sample(seed);
        prop_assume!(f.node_count() <= 60);
        let c = compile(&f).expect("compiles");
        let db = random_db_for(&f, seed + 41);
        let budget = Budget::new();
        budget.cancel_handle().cancel();
        let started = Instant::now();
        let mut stats = EvalStats::default();
        let err = c
            .run_governed(&db, &mut stats, &budget)
            .expect_err("pre-cancelled run must not produce a relation");
        prop_assert!(started.elapsed() < Duration::from_secs(5));
        match err {
            rcsafe::relalg::EvalError::Budget(b) => {
                prop_assert_eq!(b.resource, Resource::Cancelled);
                prop_assert_eq!(b.stage, Stage::Eval);
            }
            other => return Err(TestCaseError::fail(format!("non-budget error: {other}"))),
        }
    }
}

// ------------------------------------------------- per-stage trip tests --

/// genify: the step-1d rewrite duplicates subformulas; a tiny node cap
/// trips with the genify stage attributed, and no formula is returned.
#[test]
fn genify_budget_trips_with_stage_attribution() {
    let f = parse("exists x. ((P(x, y) | Q(y)) & !R(y))").unwrap();
    let budget = Budget::new().with_max_nodes(5);
    let err = genify_governed(
        &f,
        rcsafe::safety::generator::ConjunctChoice::Smallest,
        &budget,
    )
    .expect_err("cap of 5 nodes must trip");
    match err {
        GenifyError::Budget(b) => {
            assert_eq!(b.stage, Stage::Genify);
            assert_eq!(b.resource, Resource::Nodes);
            assert_eq!(b.limit, 5);
            assert!(b.used > 5);
        }
        other => panic!("expected a genify budget trip, got {other:?}"),
    }
}

/// ranf: distributing ∧ over 20 binary disjunctions is exponential; the
/// node cap trips with the ranf stage attributed.
#[test]
fn ranf_budget_trips_with_stage_attribution() {
    let parts: Vec<String> = (0..20).map(|i| format!("(A{i}(x) | B{i}(x))")).collect();
    let f = parse(&parts.join(" & ")).unwrap();
    let budget = Budget::new().with_max_nodes(1_000);
    let err = ranf_governed(&f, &budget).expect_err("exponential distribution must trip");
    match err {
        RanfError::Budget(b) => {
            assert_eq!(b.stage, Stage::Ranf);
            assert_eq!(b.resource, Resource::Nodes);
            assert_eq!(b.limit, 1_000);
        }
        other => panic!("expected a ranf budget trip, got {other:?}"),
    }
}

/// translate: every emitted operator counts against the node cap; a RANF
/// formula with more operators than the cap trips with translate
/// attributed (ranf itself fits comfortably).
#[test]
fn translate_budget_trips_with_stage_attribution() {
    let f = parse("P(x, y) & Q(x) & R(y) & S(x, y)").unwrap();
    let r = ranf(&f).expect("allowed and cheap to normalize");
    let budget = Budget::new().with_max_nodes(2);
    let err = translate_governed(&r, &budget).expect_err("cap of 2 operators must trip");
    match err {
        TranslateError::Budget(b) => {
            assert_eq!(b.stage, Stage::Translate);
            assert_eq!(b.resource, Resource::Nodes);
            assert_eq!(b.limit, 2);
            assert_eq!(b.used, 3);
        }
        other => panic!("expected a translate budget trip, got {other:?}"),
    }
}

/// eval: the tuple cap trips with the eval stage attributed, the error
/// reports consumption, and no truncated relation escapes.
#[test]
fn eval_budget_trips_with_stage_attribution() {
    let db = Database::from_facts("P(1, 2)\nP(2, 3)\nP(3, 3)\nQ(2)\nQ(3)").unwrap();
    let c = compile(&parse("P(x, y) & Q(y)").unwrap()).unwrap();
    let full = c.run(&db).unwrap();
    assert!(!full.is_empty());
    let budget = Budget::new().with_max_tuples(1);
    let mut stats = EvalStats::default();
    let err = c
        .run_governed(&db, &mut stats, &budget)
        .expect_err("a single-tuple budget must trip");
    match err {
        rcsafe::relalg::EvalError::Budget(b) => {
            assert_eq!(b.stage, Stage::Eval);
            assert_eq!(b.resource, Resource::Tuples);
            assert_eq!(b.limit, 1);
            assert!(b.used > 1);
        }
        other => panic!("expected an eval budget trip, got {other:?}"),
    }
    assert_eq!(budget.tuples_used(), budget.tuples_used());
}

/// The wall-clock deadline is honored across the whole pipeline: an
/// already-expired deadline trips at the first checkpoint of the earliest
/// stage that runs.
#[test]
fn expired_deadline_trips_before_any_work() {
    let db = Database::from_facts("P(1, 2)").unwrap();
    let budget = Budget::new().with_deadline(Duration::ZERO);
    std::thread::sleep(Duration::from_millis(2));
    let opts = CompileOptions {
        budget,
        ..CompileOptions::default()
    };
    let err =
        compile_and_eval("P(x, y) & x != y", &db, opts).expect_err("expired deadline must trip");
    let b = *err.budget().expect("a budget report");
    assert_eq!(b.resource, Resource::WallClock);
    assert_eq!(err.stage(), Stage::Genify, "first governed stage trips");
}

/// Mid-eval cancellation via the fault injector: the run fails with a
/// cancellation report and a later fresh-budget run still succeeds
/// (the engine stays usable).
#[test]
fn mid_eval_cancellation_leaves_engine_usable() {
    let db = Database::from_facts("P(1, 2)\nP(2, 3)\nP(3, 3)\nQ(2)\nQ(3)").unwrap();
    let c = compile(&parse("P(x, y) & Q(y)").unwrap()).unwrap();
    let fault = FaultInjector::new();
    fault.cancel_after_checkpoints(0);
    let budget = Budget::new().with_fault_injector(fault);
    let mut stats = EvalStats::default();
    let err = c
        .run_governed(&db, &mut stats, &budget)
        .expect_err("forced cancellation must trip");
    match err {
        rcsafe::relalg::EvalError::Budget(b) => assert_eq!(b.resource, Resource::Cancelled),
        other => panic!("expected a cancellation, got {other:?}"),
    }
    // Fresh budget: the same compiled query runs to completion.
    let again = c.run(&db).expect("engine usable after cancellation");
    assert!(!again.is_empty());
}
