//! Concurrency tests for the query server: snapshot isolation under a
//! live mutator, read-your-writes version visibility (no lost
//! invalidations), deterministic single-client replay, and byte-level
//! response determinism across racing warm clients.
//!
//! The MVCC-lite contract under test: every query runs against exactly
//! one database version (the `Arc` snapshot it cloned at admission), the
//! version stamp in its response names that version, and a mutation's
//! returned version is visible to every query admitted after the mutate
//! response was sent.

use rc_serve::{Client, Request, Response, Server, ServerConfig};
use rcsafe::relalg::tuple;
use rcsafe::{Database, Relation};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

fn expect_query(resp: Response, ctx: &str) -> (u64, Relation) {
    match resp {
        Response::Query(ok) => (ok.version, ok.relation),
        other => panic!("{ctx}: expected a query response, got {other:?}"),
    }
}

fn expect_mutate(resp: Response, ctx: &str) -> u64 {
    match resp {
        Response::Mutate { version, .. } => version,
        other => panic!("{ctx}: expected a mutate response, got {other:?}"),
    }
}

/// `S` holding exactly `0..=k`: the database contents after mutation `k`.
fn s_after(k: i64) -> Relation {
    Relation::from_rows(1, (0..=k).map(|i| tuple([i])))
}

/// Readers race a mutator. Every response must be *internally
/// consistent*: its version stamp names a state the mutator actually
/// published, and its relation is exactly that state's answer — never a
/// torn mix of two versions, never a version that was never current.
#[test]
fn responses_are_consistent_with_exactly_one_published_version() {
    const MUTATIONS: i64 = 24;
    const READERS: usize = 4;
    const READS: usize = 40;

    let db = Database::from_facts("S(0)").unwrap();
    let server = Server::start(db.clone(), ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    // version → k (the state "S holds 0..=k"). Seed with the initial
    // version before any reader starts.
    let published: Arc<Mutex<HashMap<u64, i64>>> = Arc::default();
    {
        let mut client = Client::connect(addr).expect("connect");
        let (v0, r0) = expect_query(client.query("S(x)").expect("initial query"), "initial");
        assert_eq!(r0, s_after(0));
        published.lock().unwrap().insert(v0, 0);
    }

    let done = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for r in 0..READERS {
        let published = Arc::clone(&published);
        readers.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("reader connect");
            let mut observed = Vec::new();
            for i in 0..READS {
                let resp = client
                    .query("S(x)")
                    .unwrap_or_else(|e| panic!("reader {r} read {i}: {e}"));
                observed.push(expect_query(resp, "reader"));
            }
            // Validate after the fact: the mutator records a version in
            // `published` *before* sending the mutate request, so every
            // version a reader can observe is in the map by then.
            let map = published.lock().unwrap();
            for (version, relation) in observed {
                let k = *map.get(&version).unwrap_or_else(|| {
                    panic!("reader {r} saw version {version} that was never published")
                });
                assert_eq!(
                    relation,
                    s_after(k),
                    "reader {r}: torn read at version {version} (expected S = 0..={k})"
                );
            }
        }));
    }

    // The mutator: read-your-writes after every mutation. The new fact's
    // version is pre-registered (the server assigns versions by cloning
    // our mirror's global counter order — we learn the actual stamp from
    // the response, so register it before any reader can observe it by
    // holding the map lock across the request).
    let mutator = {
        let published = Arc::clone(&published);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("mutator connect");
            for k in 1..=MUTATIONS {
                let version = {
                    // Holding the lock across the round trip means the
                    // version is in the map before the server can answer
                    // any reader from the new state.
                    let mut map = published.lock().unwrap();
                    let v = expect_mutate(
                        client
                            .mutate(&format!("S({k})"))
                            .unwrap_or_else(|e| panic!("mutation {k}: {e}")),
                        "mutate",
                    );
                    map.insert(v, k);
                    v
                };
                // No lost invalidations: a query issued after the mutate
                // response must see exactly the new version and the new
                // fact — the stale cached result must not be served.
                let (rv, rel) = expect_query(
                    client.query("S(x)").expect("read-your-writes query"),
                    "read-your-writes",
                );
                assert_eq!(
                    rv, version,
                    "mutation {k}: follow-up query saw version {rv}, expected {version}"
                );
                assert_eq!(rel, s_after(k), "mutation {k}: follow-up answer is stale");
            }
            done.store(true, Ordering::SeqCst);
        })
    };

    mutator.join().expect("mutator panicked");
    for h in readers {
        h.join().expect("reader panicked");
    }
    assert!(done.load(Ordering::SeqCst));
    assert_eq!(
        published.lock().unwrap().len() as i64,
        MUTATIONS + 1,
        "every mutation must publish a distinct version"
    );
}

/// Mutation edge cases: inserting a fact that is already present and
/// deleting one that never was are *net no-ops* — the wire response
/// carries an empty delta summary, the version stamp does not move, and
/// warm cached results stay warm (no cold restart for a mutation that
/// changed nothing).
#[test]
fn duplicate_inserts_and_absent_deletes_are_no_op_deltas() {
    let db = Database::from_facts("S(0)\nS(1)").unwrap();
    let server = Server::start(db, ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Prime the result cache: second serve is a warm hit.
    let (v0, _) = expect_query(client.query("S(x)").expect("prime"), "prime");
    match client.query("S(x)").expect("warm") {
        Response::Query(ok) => assert!(ok.result_cached, "priming must warm the result cache"),
        other => panic!("expected a query response, got {other:?}"),
    }

    // Duplicate insert and absent delete, separately and combined: every
    // one is a no-op with an empty summary and an unchanged version.
    for facts in ["S(1)", "-S(9)", "S(0)\n-S(7)"] {
        match client.mutate(facts).expect("no-op mutate") {
            Response::Mutate { version, delta } => {
                assert_eq!(
                    version, v0,
                    "{facts:?}: no-op must not publish a new version"
                );
                assert!(
                    delta.is_empty(),
                    "{facts:?}: expected empty summary, got {delta:?}"
                );
            }
            other => panic!("{facts:?}: expected a mutate response, got {other:?}"),
        }
    }

    // The cache never went cold: still a warm hit at the same version.
    match client.query("S(x)").expect("post no-op query") {
        Response::Query(ok) => {
            assert_eq!(ok.version, v0);
            assert!(
                ok.result_cached,
                "a no-op mutation must not invalidate cached results"
            );
            assert!(
                !ok.result_refreshed,
                "a no-op mutation leaves a verbatim hit, not a refresh"
            );
            assert_eq!(ok.relation, s_after(1));
        }
        other => panic!("expected a query response, got {other:?}"),
    }
}

/// A mutation racing an in-flight query never changes that query's
/// snapshot: the reader fires its request bytes, a mutation lands on
/// another connection *before* the reader collects its answer, and the
/// answer must still be internally consistent — version and relation
/// from exactly one published state, never a torn mix.
#[test]
fn in_flight_queries_keep_their_admission_snapshot() {
    const ROUNDS: i64 = 16;
    let db = Database::from_facts("S(0)").unwrap();
    let server = Server::start(db, ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let mut reader = Client::connect(addr).expect("reader connect");
    let mut mutator = Client::connect(addr).expect("mutator connect");

    let (v0, r0) = expect_query(reader.query("S(x)").expect("initial"), "initial");
    assert_eq!(r0, s_after(0));
    let mut states = HashMap::from([(v0, 0i64)]);

    for k in 1..=ROUNDS {
        // Fire the query, then race a mutation behind it before reading
        // the reader's answer — the query is plausibly in flight when
        // the new version is published.
        reader
            .send_raw_frame(&Request::query("S(x)").encode())
            .expect("send query");
        let v_new = expect_mutate(
            mutator
                .mutate(&format!("S({k})"))
                .unwrap_or_else(|e| panic!("mutation {k}: {e}")),
            "racing mutate",
        );
        let (rv, rel) = expect_query(
            reader.read_response().expect("read raced query"),
            "raced query",
        );
        states.insert(v_new, k);
        let snapshot_k = *states
            .get(&rv)
            .unwrap_or_else(|| panic!("round {k}: version {rv} was never published"));
        assert_eq!(
            rel,
            s_after(snapshot_k),
            "round {k}: answer does not match its own version stamp {rv} — torn snapshot"
        );
    }
}

/// Replay determinism: one client, a fixed read-only request sequence,
/// four passes. Pass 1 warms the caches but its analyze also harvests
/// observed cardinalities, moving the statistics epoch — so pass 2 still
/// recompiles plans keyed on the old epoch. From pass 2 on the feedback
/// loop is stationary (re-recording identical observations does not move
/// the epoch), so passes 3 and 4 must be byte-identical, response by
/// response.
#[test]
fn single_client_replay_is_deterministic() {
    let db = Database::from_facts(
        "Part('bolt')\nPart('nut')\nSupplies('acme', 'bolt')\nSupplies('acme', 'nut')\nSupplies('busy', 'bolt')",
    )
    .unwrap();
    let server = Server::start(db, ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let script: &[Request] = &[
        Request::query("Part(x)"),
        Request::query("exists y. forall x. (!Part(x) | Supplies(y, x))"),
        Request::analyze("Part(x) & Supplies(y, x)"),
        Request::query("Part(x) & !Supplies('busy', x)"),
        Request::query("Part(x)"),
    ];
    let run_pass = |client: &mut Client| -> Vec<Vec<u8>> {
        script
            .iter()
            .map(|req| client.request(req).expect("transport").encode())
            .collect()
    };
    // Two warm-up passes: caches filled, statistics feedback converged.
    let _cold = run_pass(&mut client);
    let _epoch_settles = run_pass(&mut client);
    let third = run_pass(&mut client);
    let fourth = run_pass(&mut client);
    assert_eq!(
        third, fourth,
        "warm replay must be byte-identical, request by request"
    );
}

/// Racing warm clients: after one priming query, every concurrent client
/// gets the *same bytes* — the shared cache serves all of them and no
/// interleaving can perturb a response.
#[test]
fn warm_responses_are_byte_identical_under_concurrency() {
    const CLIENTS: usize = 6;
    const ROUNDS: usize = 10;
    let text = "Part(x) & Supplies(y, x)";

    let db = Database::from_facts(
        "Part('bolt')\nPart('nut')\nSupplies('acme', 'bolt')\nSupplies('busy', 'bolt')",
    )
    .unwrap();
    let server = Server::start(db, ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let baseline = {
        let mut client = Client::connect(addr).expect("primer connect");
        let _cold = client.query(text).expect("priming serve");
        let warm = client.query(text).expect("warm baseline");
        match &warm {
            Response::Query(ok) => assert!(ok.plan_cached && ok.result_cached),
            other => panic!("expected a query response, got {other:?}"),
        }
        warm.encode()
    };

    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let baseline = baseline.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("client connect");
            for round in 0..ROUNDS {
                let got = client
                    .query(text)
                    .unwrap_or_else(|e| panic!("client {c} round {round}: {e}"))
                    .encode();
                assert_eq!(
                    got, baseline,
                    "client {c} round {round}: warm response bytes diverged"
                );
            }
        }));
    }
    for h in handles {
        h.join().expect("client panicked");
    }

    // The server's own accounting agrees: all traffic was admitted, no
    // rejections, and everything has drained.
    let mut client = Client::connect(addr).expect("stats connect");
    let stats: HashMap<String, String> = client.stats().expect("stats").into_iter().collect();
    assert_eq!(stats["active"], "0");
    assert_eq!(stats["queued"], "0");
    assert_eq!(stats["rejected"], "0");
    let result_hits: u64 = stats["result_hits"].parse().unwrap();
    assert!(
        result_hits >= (CLIENTS * ROUNDS) as u64,
        "warm traffic must be served from the shared result cache (hits: {result_hits})"
    );
}
