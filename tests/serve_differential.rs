//! Differential tests for the query server: a response served over the
//! wire must be **byte-identical** to the response assembled from
//! in-process cached serving — relation, statistics, cache bits, trace
//! JSON, and error attribution alike — over the whole paper corpus.
//!
//! The identity holds by construction (server and local callers share one
//! serving path, [`compile_and_eval_shared`] / [`compile_and_eval_cached`]
//! through `compile_and_eval_in`, and [`Response::encode`] is canonical);
//! these tests keep that construction honest end to end, TCP included.
//!
//! Setup invariant the suite leans on: `Server::start(db.clone(), ..)`
//! preserves the database version stamp and shares the statistics store,
//! so the server's snapshot *is* the test's database for response
//! purposes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rc_serve::{
    Client, QueryOk, Request, Response, Server, ServerConfig, WireError, WireLimits, WireStats,
};
use rcsafe::relalg::govern::Resource;
use rcsafe::safety::anyrc::compile_and_eval_any_cached;
use rcsafe::safety::corpus::{corpus, formula_of, PaperFormula};
use rcsafe::safety::dom_baseline::eval_brute_force;
use rcsafe::safety::pipeline::{
    compile_and_eval_cached, compile_and_eval_traced, CompileOptions, Compiled,
};
use rcsafe::{Budget, Database, PipelineError, PlanCache, Schema, Value};

/// A reproducible database over an entry's inferred schema (seed 0 is the
/// empty database, so boolean/vacuous answers exercise the arity-0 codec).
fn db_for(entry: &PaperFormula, seed: u64) -> Database {
    let f = formula_of(entry);
    let schema = Schema::infer(&f).expect("corpus formulas have consistent arities");
    let mut domain: Vec<Value> = (1..=4).map(Value::int).collect();
    for c in f.constants() {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    if seed == 0 {
        let mut d = Database::new();
        for (p, ar) in schema.predicates() {
            d.declare(p, ar);
        }
        d
    } else {
        Database::random(&schema, &domain, 6, &mut StdRng::seed_from_u64(seed))
    }
}

/// Start a server on the given database (shared version + stats store)
/// and connect one client to it.
fn start(db: &Database) -> (Server, Client) {
    let server = Server::start(db.clone(), ServerConfig::default()).expect("bind server");
    let client = Client::connect(server.local_addr()).expect("connect client");
    (server, client)
}

/// The response the server *must* produce for a `query` verb, assembled
/// from the in-process cached serving path.
fn expected_query(
    text: &str,
    db: &Database,
    opts: CompileOptions,
    cache: &mut PlanCache<Compiled>,
) -> Response {
    match compile_and_eval_cached(text, db, opts, cache) {
        Ok(out) => Response::Query(QueryOk {
            version: db.version(),
            plan_cached: out.plan_cached,
            result_cached: out.result_cached,
            result_refreshed: out.result_refreshed,
            stats: WireStats::from(&out.stats),
            columns: out.compiled.columns.iter().map(|v| v.to_string()).collect(),
            relation: out.relation,
            trace_json: None,
            any_infinite: None,
            any_infinite_vars: None,
        }),
        Err(e) => Response::Error(WireError::from_pipeline(&e)),
    }
}

/// The response the server *must* produce for an `any` verb, assembled
/// from the in-process cached safe-pair serving path.
fn expected_any(
    text: &str,
    db: &Database,
    opts: CompileOptions,
    cache: &mut PlanCache<Compiled>,
) -> Response {
    match compile_and_eval_any_cached(text, db, opts, cache) {
        Ok(out) => Response::Query(QueryOk {
            version: db.version(),
            plan_cached: out.plan_cached,
            result_cached: out.result_cached,
            result_refreshed: out.result_refreshed,
            stats: WireStats::from(&out.answer.stats),
            columns: out.answer.columns.iter().map(|v| v.to_string()).collect(),
            relation: out.answer.finite,
            trace_json: None,
            any_infinite: Some(out.answer.maybe_infinite),
            any_infinite_vars: Some(out.answer.per_variable),
        }),
        Err(e) => Response::Error(WireError::from_pipeline(&e)),
    }
}

/// The acceptance differential: for every corpus formula — evaluable or
/// rejected — the wire response is byte-identical to in-process serving,
/// cold and warm (cache bits included), on both an empty and a random
/// database.
#[test]
fn served_query_responses_are_byte_identical_across_the_corpus() {
    let mut served_ok = 0;
    let mut served_err = 0;
    for entry in corpus() {
        for seed in [0u64, 3] {
            let db = db_for(&entry, seed);
            let (_server, mut client) = start(&db);
            // A fresh local cache mirrors the server's fresh shared cache:
            // both are cold on the first round, warm on the second.
            let mut cache: PlanCache<Compiled> = PlanCache::new();
            for round in ["cold", "warm"] {
                let expected =
                    expected_query(entry.text, &db, CompileOptions::default(), &mut cache);
                let got = client
                    .query(entry.text)
                    .unwrap_or_else(|e| panic!("{}: transport failure: {e}", entry.id));
                assert_eq!(
                    got.encode(),
                    expected.encode(),
                    "{} (seed {seed}, {round}): wire bytes diverge from in-process serving",
                    entry.id
                );
                match got {
                    Response::Query(_) => served_ok += 1,
                    Response::Error(_) => served_err += 1,
                    other => panic!("{}: unexpected response {other:?}", entry.id),
                }
            }
        }
    }
    assert!(
        served_ok >= 40,
        "corpus must exercise the success path broadly (got {served_ok})"
    );
    assert!(
        served_err >= 4,
        "the corpus's rejected formulas must be served as errors too (got {served_err})"
    );
}

/// `analyze` differential: the served trace JSON equals the in-process
/// deterministic projection. The statistics feedback loop is converged
/// first (one harvesting run); re-recording the same observations does not
/// move the stats epoch, so the steady-state plan — and therefore the
/// trace — is identical in-process and over the wire.
#[test]
fn served_analyze_responses_match_in_process_traced_runs() {
    let mut compared = 0;
    for entry in corpus() {
        let db = db_for(&entry, 7);
        // Run 1 harvests observed cardinalities into the shared stats
        // store; run 2 is the converged reference the server must match.
        let _ = compile_and_eval_traced(entry.text, &db, CompileOptions::default());
        let (result, trace) = compile_and_eval_traced(entry.text, &db, CompileOptions::default());
        let expected = match result {
            Ok(out) => Response::Query(QueryOk {
                version: db.version(),
                plan_cached: false,
                result_cached: false,
                result_refreshed: false,
                stats: WireStats::from(&out.stats),
                columns: out.compiled.columns.iter().map(|v| v.to_string()).collect(),
                relation: out.relation,
                trace_json: Some(trace.to_json_deterministic()),
                any_infinite: None,
                any_infinite_vars: None,
            }),
            Err(e) => Response::Error(WireError::from_pipeline(&e)),
        };
        let (_server, mut client) = start(&db);
        let got = client
            .analyze(entry.text)
            .unwrap_or_else(|e| panic!("{}: transport failure: {e}", entry.id));
        assert_eq!(
            got.encode(),
            expected.encode(),
            "{}: served analyze diverges from the in-process traced run",
            entry.id
        );
        if let Response::Query(ok) = &got {
            assert!(
                ok.trace_json.is_some(),
                "{}: analyze must carry trace JSON",
                entry.id
            );
            compared += 1;
        }
    }
    assert!(compared >= 10, "corpus must exercise traced serving");
}

/// The `any` verb differential: every corpus formula — including every
/// classifier-rejected one — is served via safe-pair translation,
/// byte-identical to in-process cached serving, with the finite part
/// equal to the brute-force active-domain oracle and the infiniteness
/// flag surviving the wire round-trip.
#[test]
fn served_any_responses_are_byte_identical_and_match_the_oracle() {
    let mut served = 0;
    let mut rejected_served = 0;
    let mut flagged_infinite = 0;
    for entry in corpus() {
        for seed in [0u64, 3] {
            let db = db_for(&entry, seed);
            let (_server, mut client) = start(&db);
            let mut cache: PlanCache<Compiled> = PlanCache::new();
            for round in ["cold", "warm"] {
                let expected = expected_any(entry.text, &db, CompileOptions::default(), &mut cache);
                let got = client
                    .any(entry.text)
                    .unwrap_or_else(|e| panic!("{}: transport failure: {e}", entry.id));
                assert_eq!(
                    got.encode(),
                    expected.encode(),
                    "{} (seed {seed}, {round}): any wire bytes diverge from in-process serving",
                    entry.id
                );
                let ok = match got {
                    Response::Query(ok) => ok,
                    other => panic!(
                        "{}: any must always serve an answer, got {other:?}",
                        entry.id
                    ),
                };
                assert!(
                    ok.any_infinite.is_some() && ok.any_infinite_vars.is_some(),
                    "{}: any responses must carry the infiniteness headers",
                    entry.id
                );
                // The finite part is the active-domain answer, exactly.
                let f = formula_of(&entry);
                assert_eq!(
                    ok.relation,
                    eval_brute_force(&f, &db),
                    "{} (seed {seed}): served finite part diverges from the oracle",
                    entry.id
                );
                // Known-DI entries can never be infinite, on any database.
                if entry.domain_independent {
                    assert_eq!(
                        ok.any_infinite,
                        Some(false),
                        "{} is domain independent; no stars allowed",
                        entry.id
                    );
                }
                served += 1;
                if !entry.evaluable && !entry.wide_sense {
                    rejected_served += 1;
                }
                if ok.any_infinite == Some(true) {
                    flagged_infinite += 1;
                }
            }
        }
    }
    assert!(served >= 100, "the whole corpus must serve (got {served})");
    assert!(
        rejected_served >= 40,
        "every classifier-rejected entry must serve via the safe pair (got {rejected_served})"
    );
    assert!(
        flagged_infinite > 0,
        "some rejected entries on nonempty databases must flag infiniteness"
    );
}

/// Budget trips must survive serialization byte-for-byte, and the client
/// must be able to reconstruct the exact [`BudgetExceeded`] — stage,
/// resource, limit, and consumption — the pipeline reported in-process.
#[test]
fn budget_error_attribution_survives_the_wire_byte_for_byte() {
    let db = Database::from_facts(
        "Part('bolt')\nPart('nut')\nSupplies('acme', 'bolt')\nSupplies('acme', 'nut')\nSupplies('busy', 'bolt')",
    )
    .unwrap();
    let (_server, mut client) = start(&db);

    // Tuple and node caps are deterministic (no clock involved); each
    // case trips in a different pipeline stage.
    let cases: &[(&str, WireLimits)] = &[
        (
            "Part(x)",
            WireLimits {
                tuples: Some(1),
                ..WireLimits::default()
            },
        ),
        (
            "Part(x) & Supplies(y, x)",
            WireLimits {
                tuples: Some(2),
                ..WireLimits::default()
            },
        ),
        (
            "exists y. forall x. (!Part(x) | Supplies(y, x))",
            WireLimits {
                nodes: Some(2),
                ..WireLimits::default()
            },
        ),
    ];
    for &(text, limits) in cases {
        let mut budget = Budget::new();
        if let Some(t) = limits.tuples {
            budget = budget.with_max_tuples(t);
        }
        if let Some(n) = limits.nodes {
            budget = budget.with_max_nodes(n);
        }
        let opts = CompileOptions {
            budget,
            ..CompileOptions::default()
        };
        // The in-process reference runs the same cold cached-serving path
        // the server uses.
        let mut cache: PlanCache<Compiled> = PlanCache::new();
        let err = compile_and_eval_cached(text, &db, opts, &mut cache)
            .expect_err("the cap is below the answer size; the budget must trip");
        let in_proc = match &err {
            PipelineError::Budget(b) => *b,
            other => panic!("{text}: expected a budget trip, got {other}"),
        };
        let expected = Response::Error(WireError::from_pipeline(&err));

        let req = Request {
            limits,
            ..Request::query(text)
        };
        let got = client.request(&req).expect("transport");
        assert_eq!(
            got.encode(),
            expected.encode(),
            "{text}: budget error bytes diverge"
        );
        match got {
            Response::Error(e) => {
                assert_eq!(e.kind, "budget", "{text}");
                assert_eq!(
                    e.to_budget(),
                    Some(in_proc),
                    "{text}: stage/resource/limit/used must survive serialization"
                );
            }
            other => panic!("{text}: expected a budget error, got {other:?}"),
        }
    }
}

/// Wall-clock trips involve the clock, so only the *attribution* (not the
/// elapsed reading) is pinned: an already-expired deadline must come back
/// as a reconstructible wallclock budget error.
#[test]
fn expired_deadline_reports_a_wallclock_trip_over_the_wire() {
    let db = Database::from_facts("Part('bolt')").unwrap();
    let (_server, mut client) = start(&db);
    let req = Request {
        limits: WireLimits {
            ms: Some(0),
            ..WireLimits::default()
        },
        ..Request::query("Part(x)")
    };
    match client.request(&req).expect("transport") {
        Response::Error(e) => {
            assert_eq!(e.kind, "budget");
            let b = e
                .to_budget()
                .expect("wallclock trips must be reconstructible");
            assert_eq!(b.resource, Resource::WallClock);
            assert_eq!(b.limit, 0);
        }
        other => panic!("expected a wallclock budget error, got {other:?}"),
    }
}

/// The plan/result cache is process-wide, not per-connection: a formula
/// compiled for one client is warm for every later client, and the warm
/// response is byte-identical across connections.
#[test]
fn the_shared_cache_spans_connections() {
    let entry = corpus()
        .into_iter()
        .find(|e| e.wide_sense)
        .expect("the corpus has servable entries");
    let db = db_for(&entry, 11);
    let text = entry.text;
    let (server, mut first) = start(&db);

    let cold = first.query(text).expect("cold serve");
    match &cold {
        Response::Query(ok) => assert!(!ok.plan_cached && !ok.result_cached),
        other => panic!("expected a query response, got {other:?}"),
    }
    let warm_same = first.query(text).expect("warm serve, same connection");

    let mut second = Client::connect(server.local_addr()).expect("second client");
    let warm_other = second.query(text).expect("warm serve, new connection");
    match &warm_other {
        Response::Query(ok) => assert!(
            ok.plan_cached && ok.result_cached,
            "a new connection must hit the process-wide cache"
        ),
        other => panic!("expected a query response, got {other:?}"),
    }
    assert_eq!(
        warm_other.encode(),
        warm_same.encode(),
        "warm responses must be byte-identical across connections"
    );
}
