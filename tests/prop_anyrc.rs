//! Differential tests for the safe-pair evaluation of *arbitrary*
//! formulas (`compile_and_eval_any`): on finite databases the finite part
//! must equal both active-domain oracles — brute-force satisfaction and
//! the Dom-relativized algebra baseline — for every paper-corpus entry,
//! recognized-safe or rejected, and for random formulas; the infiniteness
//! flags must be sound (never set for domain-independent entries, always
//! set for the paper's introduction counterexamples on nonempty
//! databases); and the cached / shared / partitioned / incremental
//! serving paths must all agree with the one-shot evaluation.

mod common;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rcsafe::formula::generate::{random_formula, GenConfig};
use rcsafe::formula::vars::rectified;
use rcsafe::safety::corpus::{corpus, formula_of, PaperFormula};
use rcsafe::safety::dom_baseline::{eval_brute_force, eval_dom};
use rcsafe::safety::pipeline::{CompileOptions, Compiled, SafetyClass};
use rcsafe::{
    classify, compile_and_eval_any, compile_and_eval_any_cached, compile_and_eval_any_shared,
    parse, Budget, Database, PipelineError, PlanCache, Schema, SharedPlanCache, Value,
};

/// A reproducible database over an entry's inferred schema (seed 0 is the
/// empty database).
fn db_for(entry: &PaperFormula, seed: u64) -> Database {
    let f = formula_of(entry);
    let schema = Schema::infer(&f).expect("corpus formulas have consistent arities");
    let mut domain: Vec<Value> = (1..=4).map(Value::int).collect();
    for c in f.constants() {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    if seed == 0 {
        let mut d = Database::new();
        for (p, ar) in schema.predicates() {
            d.declare(p, ar);
        }
        d
    } else {
        Database::random(&schema, &domain, 6, &mut StdRng::seed_from_u64(seed))
    }
}

/// The whole corpus — including every classifier-rejected entry — matches
/// both active-domain oracles, and domain-independent entries never flag
/// infiniteness on any database.
#[test]
fn corpus_matches_both_oracles_and_di_entries_stay_finite() {
    let mut rejected_checked = 0;
    for entry in corpus() {
        let f = formula_of(&entry);
        for seed in [0u64, 3, 9] {
            let db = db_for(&entry, seed);
            let ans = compile_and_eval_any(entry.text, &db, CompileOptions::default())
                .unwrap_or_else(|e| panic!("{} (seed {seed}): {e}", entry.id));
            let brute = eval_brute_force(&f, &db);
            assert_eq!(
                ans.finite, brute,
                "{} (seed {seed}): finite part diverges from brute force",
                entry.id
            );
            let dom = eval_dom(&f, &db).expect("dom baseline evaluates");
            assert_eq!(
                ans.finite, dom,
                "{} (seed {seed}): finite part diverges from the Dom baseline",
                entry.id
            );
            if entry.domain_independent {
                assert!(
                    !ans.maybe_infinite && ans.per_variable.iter().all(|b| !b),
                    "{} is domain independent; no column may star (seed {seed})",
                    entry.id
                );
            }
            if ans.safe_pair {
                rejected_checked += 1;
            }
        }
    }
    assert!(
        rejected_checked >= 15,
        "the corpus must exercise the safe-pair path broadly (got {rejected_checked})"
    );
}

/// The paper's introduction counterexamples really are infinite on
/// nonempty databases, with the stars in exactly the unconstrained
/// columns.
#[test]
fn known_infinite_entries_flag_the_right_columns() {
    // intro-F: ¬P(x) holds for every x outside the database.
    let db = Database::from_facts("P(1)").unwrap();
    let ans = compile_and_eval_any("!P(x)", &db, CompileOptions::default()).unwrap();
    assert!(ans.maybe_infinite, "!P(x) must flag infiniteness");
    assert_eq!(ans.per_variable, vec![true]);

    // intro-G: with both sides nonempty, each column is unconstrained
    // whenever the other disjunct fires.
    let db = Database::from_facts("P(1)\nQ(2)").unwrap();
    let ans = compile_and_eval_any("P(x) | Q(y)", &db, CompileOptions::default()).unwrap();
    assert!(ans.maybe_infinite);
    assert_eq!(ans.per_variable, vec![true, true]);

    // sec21-uncurable: ∃y (P(x) ∨ Q(y)) — x is arbitrary once Q is
    // nonempty.
    let ans =
        compile_and_eval_any("exists y. (P(x) | Q(y))", &db, CompileOptions::default()).unwrap();
    assert!(ans.maybe_infinite);
    assert_eq!(ans.per_variable, vec![true]);

    // ... but on the empty database none of them can produce anything.
    let mut empty = Database::new();
    empty.declare(rcsafe::Symbol::intern("P"), 1);
    empty.declare(rcsafe::Symbol::intern("Q"), 1);
    for text in ["P(x) | Q(y)", "exists y. (P(x) | Q(y))"] {
        let ans = compile_and_eval_any(text, &empty, CompileOptions::default()).unwrap();
        assert!(
            ans.finite.is_empty(),
            "{text}: empty database, empty answer"
        );
        assert!(!ans.maybe_infinite, "{text}: nothing fires, nothing stars");
    }
}

/// The corpus's rejected-but-domain-independent entries (Example 6.3's G
/// and the Sec. 10 closing formula) go through the safe pair and still
/// never star: the extended-domain answer collapses to the active-domain
/// one.
#[test]
fn rejected_domain_independent_entries_never_star() {
    let targets: Vec<PaperFormula> = corpus()
        .into_iter()
        .filter(|e| ["ex6.3-G", "sec10-closing"].contains(&e.id))
        .collect();
    assert_eq!(targets.len(), 2, "both witnesses must be in the corpus");
    for entry in targets {
        assert_eq!(
            classify(&formula_of(&entry)),
            SafetyClass::NotRecognized,
            "{} must exercise the safe-pair path",
            entry.id
        );
        assert!(entry.domain_independent, "{}", entry.id);
        for seed in 0..6u64 {
            let db = db_for(&entry, seed);
            let ans = compile_and_eval_any(entry.text, &db, CompileOptions::default())
                .unwrap_or_else(|e| panic!("{} (seed {seed}): {e}", entry.id));
            assert!(ans.safe_pair, "{} (seed {seed})", entry.id);
            assert!(
                !ans.maybe_infinite,
                "{} (seed {seed}): domain independent, yet starred",
                entry.id
            );
        }
    }
}

/// Budget trips surface as errors, never panics — the safe pair doubles
/// the evaluation work, and both legs run under one shared budget.
#[test]
fn budget_trips_surface_as_errors() {
    let db = Database::from_facts("P(1)\nP(2)\nP(3)\nQ(4)\nQ(5)").unwrap();
    let opts = CompileOptions {
        budget: Budget::new().with_max_tuples(1),
        ..CompileOptions::default()
    };
    match compile_and_eval_any("P(x) | Q(y)", &db, opts) {
        Err(PipelineError::Budget(_)) => {}
        other => panic!("expected a budget trip, got {other:?}"),
    }
}

/// Forcing partitioned kernels does not change safe-pair answers.
#[test]
fn forced_partitions_agree_with_sequential() {
    for entry in corpus()
        .into_iter()
        .filter(|e| !e.evaluable && !e.wide_sense)
    {
        let db = db_for(&entry, 5);
        let plain = compile_and_eval_any(entry.text, &db, CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", entry.id));
        let opts = CompileOptions {
            budget: Budget::new().with_partitions(3),
            ..CompileOptions::default()
        };
        let partitioned = compile_and_eval_any(entry.text, &db, opts)
            .unwrap_or_else(|e| panic!("{} (partitioned): {e}", entry.id));
        assert_eq!(plain.finite, partitioned.finite, "{}", entry.id);
        assert_eq!(plain.per_variable, partitioned.per_variable, "{}", entry.id);
    }
}

/// The three serving paths — one-shot, exclusive cache, shared cache —
/// return identical answers, and warm rounds really serve from cache.
#[test]
fn cached_and_shared_serving_agree_with_one_shot() {
    for entry in corpus() {
        let db = db_for(&entry, 3);
        let one_shot = match compile_and_eval_any(entry.text, &db, CompileOptions::default()) {
            Ok(a) => a,
            Err(_) => continue, // nothing to compare against
        };
        let mut cache: PlanCache<Compiled> = PlanCache::new();
        let cold =
            compile_and_eval_any_cached(entry.text, &db, CompileOptions::default(), &mut cache)
                .unwrap_or_else(|e| panic!("{} (cold): {e}", entry.id));
        assert!(!cold.result_cached, "{}: first round is cold", entry.id);
        let warm =
            compile_and_eval_any_cached(entry.text, &db, CompileOptions::default(), &mut cache)
                .unwrap_or_else(|e| panic!("{} (warm): {e}", entry.id));
        assert!(
            warm.plan_cached && warm.result_cached,
            "{}: second round must serve from cache",
            entry.id
        );
        let shared: SharedPlanCache<Compiled> = SharedPlanCache::new();
        let via_shared =
            compile_and_eval_any_shared(entry.text, &db, CompileOptions::default(), &shared)
                .unwrap_or_else(|e| panic!("{} (shared): {e}", entry.id));
        for (label, got) in [
            ("cached cold", &cold.answer),
            ("cached warm", &warm.answer),
            ("shared", &via_shared.answer),
        ] {
            assert_eq!(got.finite, one_shot.finite, "{} ({label})", entry.id);
            assert_eq!(
                got.maybe_infinite, one_shot.maybe_infinite,
                "{} ({label})",
                entry.id
            );
            assert_eq!(
                got.per_variable, one_shot.per_variable,
                "{} ({label})",
                entry.id
            );
        }
    }
}

/// Mutating the database between cached serves yields exactly the answer
/// a fresh evaluation produces — the incremental refresh (guard delta
/// included) never serves stale safe-pair results.
#[test]
fn incremental_refresh_matches_fresh_evaluation() {
    for text in ["!P(x)", "P(x) | Q(y)", "exists y. (P(x) | Q(y))"] {
        let mut db = Database::from_facts("P(1)\nP(2)\nQ(3)").unwrap();
        let mut cache: PlanCache<Compiled> = PlanCache::new();
        let _ = compile_and_eval_any_cached(text, &db, CompileOptions::default(), &mut cache)
            .unwrap_or_else(|e| panic!("{text} (cold): {e}"));
        for delta in ["P(7)", "Q(8)\nP(9)"] {
            db.apply_delta(delta).unwrap();
            let served =
                compile_and_eval_any_cached(text, &db, CompileOptions::default(), &mut cache)
                    .unwrap_or_else(|e| panic!("{text} (after {delta}): {e}"));
            let fresh = compile_and_eval_any(text, &db, CompileOptions::default()).unwrap();
            assert_eq!(
                served.answer.finite, fresh.finite,
                "{text} after inserting {delta}: stale finite part"
            );
            assert_eq!(
                served.answer.per_variable, fresh.per_variable,
                "{text} after inserting {delta}: stale star mask"
            );
            let f = parse(text).unwrap();
            assert_eq!(
                served.answer.finite,
                eval_brute_force(&f, &db),
                "{text} after inserting {delta}: diverges from the oracle"
            );
        }
    }
}

/// Domain independence certified by construction: a random *allowed*
/// formula `A` (DI by the paper's theorems) is wrapped into the
/// Sec. 10-closing shape `∀w ((A ∧ Q0(w)) ∨ (A ∧ ¬R0(w)))` — logically
/// `A ∧ ∀w (Q0(w) ∨ ¬R0(w))`, a conjunction of DI formulas and
/// therefore DI, but the repeated-`A` disjunction defeats the class
/// analysis exactly as the corpus notes for `sec10-closing`. The safe
/// pair must match the oracle and must never flag infiniteness.
#[test]
fn constructed_di_formulas_never_star() {
    use rcsafe::formula::generate::random_allowed_formula;
    use rcsafe::{Formula, Term, Var};

    let mut exercised = 0;
    for seed in 0..200u64 {
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_allowed_formula(&cfg, &[Var::new("x"), Var::new("y")], &mut rng, 2);
        let w = || Term::var("w0");
        // Deliberately NOT rectified: the two copies of `a` live in parallel
        // disjuncts, so their coinciding binder names are legal surface
        // syntax, whereas rectifying the duplicate would mint `#`-suffixed
        // names the lexer refuses — and the entry point takes query *text*.
        let f = Formula::forall(
            Var::new("w0"),
            Formula::or(vec![
                Formula::and(vec![a.clone(), Formula::atom("Q0", vec![w()])]),
                Formula::and(vec![
                    a.clone(),
                    Formula::not(Formula::atom("R0", vec![w()])),
                ]),
            ]),
        );
        if classify(&f) != SafetyClass::NotRecognized || f.node_count() > 60 {
            continue;
        }
        let text = f.to_string();
        let schema = Schema::infer(&f).expect("consistent");
        let mut domain: Vec<Value> = (1..=3).map(Value::int).collect();
        for c in f.constants() {
            if !domain.contains(&c) {
                domain.push(c);
            }
        }
        for trial in 0..2u64 {
            let db = Database::random(
                &schema,
                &domain,
                5,
                &mut StdRng::seed_from_u64(seed * 17 + trial),
            );
            let ans = compile_and_eval_any(&text, &db, CompileOptions::default())
                .unwrap_or_else(|e| panic!("{f}: {e}"));
            assert!(ans.safe_pair, "{f}");
            assert!(
                !ans.maybe_infinite,
                "seed {seed} trial {trial}: DI formula starred: {f}"
            );
            assert_eq!(
                ans.finite,
                eval_brute_force(&f, &db),
                "seed {seed} trial {trial}: {f}"
            );
        }
        exercised += 1;
        if exercised >= 25 {
            break;
        }
    }
    assert!(
        exercised >= 5,
        "the constructed certificates must land outside the recognized \
         classes often enough to exercise the DI guarantee (got {exercised})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Random formulas — safe and unsafe alike — match the brute-force
    /// active-domain oracle through the safe pair.
    #[test]
    fn random_formulas_match_the_oracle(seed in 0u64..4_000) {
        let cfg = GenConfig { max_depth: 3, ..GenConfig::default() };
        let f = rectified(&random_formula(&cfg, &mut StdRng::seed_from_u64(seed)));
        prop_assume!(f.node_count() <= 40);
        let text = f.to_string();
        prop_assume!(parse(&text).is_ok());
        let schema = Schema::infer(&f).expect("generated formulas are consistent");
        let mut domain: Vec<Value> = (1..=3).map(Value::int).collect();
        for c in f.constants() {
            if !domain.contains(&c) {
                domain.push(c);
            }
        }
        for trial in 0..2u64 {
            let db = Database::random(
                &schema,
                &domain,
                5,
                &mut StdRng::seed_from_u64(seed * 31 + trial),
            );
            let ans = match compile_and_eval_any(&text, &db, CompileOptions::default()) {
                Ok(a) => a,
                Err(e) => return Err(TestCaseError::fail(format!("{f}: {e}"))),
            };
            let oracle = eval_brute_force(&f, &db);
            prop_assert_eq!(
                &ans.finite, &oracle,
                "seed {} trial {}: {}", seed, trial, &f
            );
        }
    }
}
