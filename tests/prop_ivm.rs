//! The delta-vs-full differential suite pinning incremental view
//! maintenance (`rc_relalg::ivm`, DESIGN.md §14): a stale cached result
//! *refreshed* by delta propagation must be indistinguishable from a full
//! re-evaluation — the answer relations are identical (and canonical, so
//! byte-identical), refresh traces report the same final cardinality as
//! evaluation traces, and tight budgets trip on both paths rather than
//! letting a small delta smuggle a large answer through.
//!
//! Coverage: the whole paper corpus under randomized delta streams,
//! generated allowed formulas under generated deltas, delete-then-reinsert
//! round trips, empty deltas and deltas touching unreferenced tables, and
//! randomized mutate/serve interleavings under forced partitions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcsafe::formula::generate::{random_allowed_formula, GenConfig};
use rcsafe::formula::vars::rectified;
use rcsafe::relalg::{eval_traced, materialize, refresh, EvalStats};
use rcsafe::safety::corpus::{corpus, formula_of};
use rcsafe::safety::pipeline::{
    compile_and_eval, compile_and_eval_cached, CompileOptions, Compiled, PipelineError,
};
use rcsafe::{Budget, Database, Formula, PlanCache, RaExpr, Schema, Term, Tracer, Value, Var};

/// A reproducible non-empty database over a formula's inferred schema.
fn db_for(f: &Formula, seed: u64) -> (Database, Schema, Vec<Value>) {
    let schema = Schema::infer(f).expect("consistent arities");
    let mut domain: Vec<Value> = (1..=4).map(Value::int).collect();
    for c in f.constants() {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    let db = Database::random(&schema, &domain, 6, &mut StdRng::seed_from_u64(seed));
    (db, schema, domain)
}

/// A small random delta over the schema: fresh inserts from the domain,
/// plus deletes biased toward facts that are actually present (so the
/// minus side of the Δ-rules is genuinely exercised, not vacuous).
fn random_delta(db: &Database, schema: &Schema, domain: &[Value], rng: &mut StdRng) -> String {
    let preds: Vec<_> = schema
        .predicates()
        .into_iter()
        .filter(|&(_, ar)| ar > 0)
        .collect();
    if preds.is_empty() || domain.is_empty() {
        return String::new();
    }
    let mut lines = Vec::new();
    for _ in 0..rng.gen_range(1usize..=4) {
        let (p, ar) = preds[rng.gen_range(0..preds.len())];
        let delete = rng.gen_bool(0.4);
        let row: Vec<String> = if delete && rng.gen_bool(0.7) {
            // Delete a fact that exists, when there is one.
            match db.relation(p).filter(|r| !r.is_empty()) {
                Some(r) => {
                    let row = r.row(rng.gen_range(0..r.len()));
                    row.iter().map(|v| v.to_string()).collect()
                }
                None => (0..ar)
                    .map(|_| domain[rng.gen_range(0..domain.len())].to_string())
                    .collect(),
            }
        } else {
            (0..ar)
                .map(|_| domain[rng.gen_range(0..domain.len())].to_string())
                .collect()
        };
        let sign = if delete { "-" } else { "" };
        lines.push(format!("{sign}{p}({})", row.join(", ")));
    }
    lines.join("\n")
}

/// Serve `text` through the cache and check the answer against an
/// uncached full compile-and-eval of the same text on the same database.
/// Returns whether the serve was a delta refresh.
fn serve_and_check(
    text: &str,
    db: &Database,
    cache: &mut PlanCache<Compiled>,
    ctx: &str,
) -> Option<bool> {
    let cached = match compile_and_eval_cached(text, db, CompileOptions::default(), cache) {
        Ok(out) => out,
        Err(_) => return None, // rejected formulas never enter the cache path
    };
    let full = compile_and_eval(text, db, CompileOptions::default())
        .unwrap_or_else(|e| panic!("{ctx}: cached path served {text:?} but full eval failed: {e}"));
    assert_eq!(
        cached.relation, full.relation,
        "{ctx}: refresh ≡ full re-evaluation violated for {text:?}"
    );
    if cached.result_refreshed {
        assert!(
            cached.result_cached,
            "{ctx}: result_refreshed implies result_cached"
        );
    }
    Some(cached.result_refreshed)
}

/// The whole paper corpus under three rounds of randomized deltas each:
/// every post-mutation serve must equal a from-scratch evaluation, and
/// the suite as a whole must actually exercise the refresh path (not
/// just fall back everywhere).
#[test]
fn corpus_delta_refresh_matches_full_reevaluation() {
    let mut refreshed = 0u64;
    let mut served = 0u64;
    for entry in corpus() {
        let f = formula_of(&entry);
        let (mut db, schema, domain) = db_for(&f, 11);
        let mut cache: PlanCache<Compiled> = PlanCache::new();
        if serve_and_check(entry.text, &db, &mut cache, entry.id).is_none() {
            continue; // rejected by the safety pipeline — nothing cached
        }
        let mut rng = StdRng::seed_from_u64(0x1704 ^ entry.text.len() as u64);
        for round in 0..3 {
            let delta = random_delta(&db, &schema, &domain, &mut rng);
            db.apply_delta(&delta)
                .expect("generated deltas are well-formed");
            let ctx = format!("{} round {round}", entry.id);
            if let Some(was_refresh) = serve_and_check(entry.text, &db, &mut cache, &ctx) {
                served += 1;
                refreshed += was_refresh as u64;
            }
        }
        let stats = cache.stats();
        assert!(
            stats.refreshed_results <= stats.stale_results,
            "{}: every refresh starts from a stale hit ({stats:?})",
            entry.id
        );
    }
    assert!(served >= 36, "corpus too small to be meaningful ({served})");
    assert!(
        refreshed >= 20,
        "the corpus stream must exercise the refresh path broadly (got {refreshed}/{served})"
    );
}

/// Generated allowed formulas under generated delta streams: same
/// differential, fresh shapes every seed instead of the fixed corpus.
#[test]
fn generated_formula_and_delta_streams_agree() {
    let cfg = GenConfig::default();
    let mut refreshed = 0u64;
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = rectified(&random_allowed_formula(
            &cfg,
            &[Var::new("x"), Var::new("y")],
            &mut rng,
            3,
        ));
        let text = f.to_string();
        let (mut db, schema, domain) = db_for(&f, seed ^ 0x5eed);
        let mut cache: PlanCache<Compiled> = PlanCache::new();
        if serve_and_check(&text, &db, &mut cache, "generated cold").is_none() {
            continue;
        }
        for round in 0..4 {
            let delta = random_delta(&db, &schema, &domain, &mut rng);
            db.apply_delta(&delta)
                .expect("generated deltas are well-formed");
            let ctx = format!("seed {seed} round {round}");
            if let Some(was_refresh) = serve_and_check(&text, &db, &mut cache, &ctx) {
                refreshed += was_refresh as u64;
            }
        }
    }
    assert!(
        refreshed >= 25,
        "generated streams must exercise the refresh path (got {refreshed})"
    );
}

/// Delete-then-reinsert round trip: deleting facts and putting them back
/// in a later delta must refresh the cached result back to its original
/// answer — the two-link journal chain composes to a near-no-op and the
/// refreshed relation is byte-identical to the first cold serve.
#[test]
fn delete_then_reinsert_round_trips_through_the_cache() {
    let mut db = Database::from_facts("P(1, 2)\nP(2, 3)\nP(3, 3)\nQ(3)").unwrap();
    let mut cache: PlanCache<Compiled> = PlanCache::new();
    let text = "P(x, y) & Q(y)";
    let cold = compile_and_eval_cached(text, &db, CompileOptions::default(), &mut cache).unwrap();
    assert_eq!(cold.relation.len(), 2);

    db.apply_delta("-P(2, 3)\n-Q(3)").unwrap();
    let shrunk = compile_and_eval_cached(text, &db, CompileOptions::default(), &mut cache).unwrap();
    assert!(
        shrunk.result_refreshed,
        "delete delta must refresh, not recompute"
    );
    assert_eq!(shrunk.relation.len(), 0);

    db.apply_delta("P(2, 3)\nQ(3)").unwrap();
    let restored =
        compile_and_eval_cached(text, &db, CompileOptions::default(), &mut cache).unwrap();
    assert!(restored.result_refreshed, "reinsert delta must refresh too");
    assert_eq!(
        restored.relation, cold.relation,
        "delete-then-reinsert must restore the original answer exactly"
    );
    assert_eq!(cache.stats().refreshed_results, 2);
}

/// Empty deltas keep results warm verbatim; deltas touching only tables
/// the query never reads refresh at zero delta cost (the cost gate's
/// `relevant == 0` fast path) without changing the answer.
#[test]
fn empty_and_unreferenced_deltas_keep_results_warm() {
    let mut db = Database::from_facts("P(1)\nP(2)\nR(7, 7)").unwrap();
    let mut cache: PlanCache<Compiled> = PlanCache::new();
    let cold = compile_and_eval_cached("P(x)", &db, CompileOptions::default(), &mut cache).unwrap();
    let v0 = db.version();

    // A net no-op delta: version does not move, the verbatim entry serves.
    let noop = db.apply_delta("P(1)\n-P(9)").unwrap();
    assert!(noop.is_empty());
    assert_eq!(db.version(), v0);
    let warm = compile_and_eval_cached("P(x)", &db, CompileOptions::default(), &mut cache).unwrap();
    assert!(warm.result_cached && !warm.result_refreshed);

    // A delta touching only `R`, which `P(x)` never reads: the version
    // moves, so the entry is stale — but the refresh is free (zero
    // relevant delta rows) and the answer is unchanged.
    db.apply_delta("R(8, 8)\n-R(7, 7)").unwrap();
    assert_ne!(db.version(), v0);
    let refreshed =
        compile_and_eval_cached("P(x)", &db, CompileOptions::default(), &mut cache).unwrap();
    assert!(
        refreshed.result_refreshed,
        "an unreferenced-table delta must refresh, never recompute"
    );
    assert_eq!(refreshed.relation, cold.relation);
    assert_eq!(
        refreshed.stats.tuples_produced, 0,
        "no delta rows touch the view — the refresh walk produces nothing"
    );
    let stats = cache.stats();
    assert_eq!((stats.stale_results, stats.refreshed_results), (1, 1));
}

/// Budget parity: a tuple budget too small for the answer trips the
/// refresh-serve path exactly as it trips a full evaluation — and the
/// trip leaves the cached entry untouched, so a later unbounded serve
/// still refreshes correctly.
#[test]
fn budget_trips_agree_between_refresh_and_full_paths() {
    let mut db = Database::from_facts("P(1)\nP(2)\nP(3)").unwrap();
    let mut cache: PlanCache<Compiled> = PlanCache::new();
    let text = "P(x)";
    let cold = compile_and_eval_cached(text, &db, CompileOptions::default(), &mut cache).unwrap();
    assert_eq!(cold.relation.len(), 3);
    db.apply_delta("P(4)").unwrap();

    let tight = CompileOptions {
        budget: Budget::new().with_max_tuples(2),
        ..CompileOptions::default()
    };
    let via_refresh = compile_and_eval_cached(text, &db, tight.clone(), &mut cache);
    let via_full = compile_and_eval(text, &db, tight);
    assert!(
        matches!(via_refresh, Err(PipelineError::Budget(_))),
        "refresh path must trip the tuple budget: {via_refresh:?}"
    );
    assert!(
        matches!(via_full, Err(PipelineError::Budget(_))),
        "full path must trip the tuple budget: {via_full:?}"
    );
    assert_eq!(
        cache.stats().refreshed_results,
        0,
        "a tripped refresh must not install anything"
    );

    // The abandoned refresh left the view intact: an unbounded serve now
    // refreshes and matches a from-scratch evaluation.
    let ok = compile_and_eval_cached(text, &db, CompileOptions::default(), &mut cache).unwrap();
    assert!(ok.result_refreshed);
    assert_eq!(
        ok.relation,
        compile_and_eval(text, &db, CompileOptions::default())
            .unwrap()
            .relation
    );
}

/// Refresh traces and evaluation traces agree on the final cardinality:
/// the root span of a traced refresh reports exactly the rows a traced
/// full evaluation reports, and carries the `ivm=refresh` annotation.
#[test]
fn refresh_traces_report_the_same_final_cardinality_as_full_eval() {
    let mut db = Database::from_facts("P(1)\nP(2)\nP(3)\nQ(2)\nQ(5)").unwrap();
    let x = Term::var("x");
    let expr = RaExpr::join(RaExpr::scan("P", vec![x]), RaExpr::scan("Q", vec![x]));
    let budget = Budget::new();
    let mut stats = EvalStats::default();
    let (_, view) = materialize(
        &expr,
        &db,
        db.version(),
        &mut stats,
        &budget,
        &mut Tracer::off(),
    )
    .unwrap();

    let delta = db.apply_delta("P(5)\n-Q(2)\nQ(3)").unwrap();
    let mut tr = Tracer::on();
    let mut rstats = EvalStats::default();
    let (view2, refreshed) =
        refresh(&view, &delta, db.version(), &mut rstats, &budget, &mut tr).unwrap();
    let root = tr.finish().expect("refresh span tree");

    let mut tr_full = Tracer::on();
    let mut fstats = EvalStats::default();
    let full = eval_traced(&expr, &db, &mut fstats, &budget, &mut tr_full).unwrap();
    let full_root = tr_full.finish().expect("eval span tree");

    assert_eq!(refreshed, full, "refreshed relation ≠ full re-evaluation");
    assert_eq!(view2.result(), &full);
    assert_eq!(
        root.rows_out, full_root.rows_out,
        "trace final cardinalities diverge between refresh and eval"
    );
    assert_eq!(root.rows_out, full.len());
    let note = root
        .ivm
        .as_ref()
        .expect("refresh root span carries an ivm note");
    assert_eq!(note.mode, "refresh");
}

/// Randomized mutate/serve interleavings under forced partitions: three
/// query texts share one cache while deltas land between serves in a
/// random order, every serve governed by a 3-way partitioned budget. Each
/// answer must equal a from-scratch evaluation under the same budget, and
/// across all seeds the stream must hit verbatim serves, refreshes, and
/// fallback recomputations alike.
#[test]
fn randomized_interleavings_under_forced_partitions() {
    let texts = ["P(x, y) & Q(y)", "P(x, y) & !Q(x)", "Q(x) | P(x, x)"];
    let schema = {
        let mut s = Schema::new();
        s.declare("P", 2);
        s.declare("Q", 1);
        s
    };
    let domain: Vec<Value> = (1..=5).map(Value::int).collect();
    let mut refreshed = 0u64;
    let mut verbatim = 0u64;
    let mut recomputed = 0u64;
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(0x9a37 ^ seed);
        let mut db = Database::random(&schema, &domain, 6, &mut rng);
        let mut cache: PlanCache<Compiled> = PlanCache::new();
        let opts = || CompileOptions {
            budget: Budget::new().with_partitions(3),
            ..CompileOptions::default()
        };
        for step in 0..24 {
            if rng.gen_bool(0.35) {
                let delta = random_delta(&db, &schema, &domain, &mut rng);
                db.apply_delta(&delta).expect("well-formed delta");
                continue;
            }
            let text = texts[rng.gen_range(0..texts.len())];
            let out = compile_and_eval_cached(text, &db, opts(), &mut cache)
                .unwrap_or_else(|e| panic!("seed {seed} step {step}: {e}"));
            let full = compile_and_eval(text, &db, opts())
                .unwrap_or_else(|e| panic!("seed {seed} step {step} full: {e}"));
            assert_eq!(
                out.relation, full.relation,
                "seed {seed} step {step}: {text:?} diverged under partitions"
            );
            match (out.result_refreshed, out.result_cached) {
                (true, _) => refreshed += 1,
                (false, true) => verbatim += 1,
                (false, false) => recomputed += 1,
            }
        }
        let stats = cache.stats();
        assert!(
            stats.refreshed_results <= stats.stale_results,
            "seed {seed}: {stats:?}"
        );
    }
    assert!(
        refreshed >= 20,
        "interleavings must refresh (got {refreshed})"
    );
    assert!(
        verbatim >= 20,
        "interleavings must hit verbatim (got {verbatim})"
    );
    assert!(recomputed >= 3, "cold serves must occur (got {recomputed})");
}
