#![allow(dead_code)]
//! Shared helpers for the integration suites.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rcsafe::formula::vars::free_vars;
use rcsafe::safety::interp::FiniteInterp;
use rcsafe::{Database, Formula, Schema, Value, Var};

/// The union of the schemas of two formulas (they must agree on arities).
pub fn joint_schema(a: &Formula, b: &Formula) -> Schema {
    let mut schema = Schema::infer(a).expect("consistent schema");
    for (p, ar) in Schema::infer(b).expect("consistent schema").predicates() {
        schema.declare(p, ar);
    }
    schema
}

/// Columns covering the free variables of both formulas.
pub fn joint_columns(a: &Formula, b: &Formula) -> Vec<Var> {
    let mut cols = free_vars(a);
    for v in free_vars(b) {
        if !cols.contains(&v) {
            cols.push(v);
        }
    }
    cols
}

/// Are `a` and `b` logically equivalent? Checked by brute-force evaluation
/// over `trials` random databases (plus the empty database) with the given
/// domain size. Constants of both formulas are folded into the domain.
pub fn equivalent_on_random_dbs(
    a: &Formula,
    b: &Formula,
    trials: u64,
    domain_size: i64,
    seed: u64,
) -> bool {
    let schema = joint_schema(a, b);
    let cols = joint_columns(a, b);
    let mut domain: Vec<Value> = (1..=domain_size).map(Value::int).collect();
    for c in a.constants().into_iter().chain(b.constants()) {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // The empty database first.
    let mut dbs: Vec<Database> = vec![{
        let mut d = Database::new();
        for (p, ar) in schema.predicates() {
            d.declare(p, ar);
        }
        d
    }];
    for _ in 0..trials {
        dbs.push(Database::random(&schema, &domain, 5, &mut rng));
    }
    for db in dbs {
        let interp = FiniteInterp::new(&db, domain.clone());
        if interp.answers(a, &cols) != interp.answers(b, &cols) {
            return false;
        }
    }
    true
}

/// Panic with context when `a` and `b` differ on some random database.
pub fn assert_equivalent(a: &Formula, b: &Formula, seed: u64) {
    assert!(
        equivalent_on_random_dbs(a, b, 8, 3, seed),
        "formulas differ:\n  {a}\n  {b}"
    );
}
