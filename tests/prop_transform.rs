//! Property tests for the transformation rules of Figs. 3 and 4:
//!
//! * every rule E1–E14 preserves logical equivalence;
//! * `gen`/`con` are invariant under conservative transformations
//!   (Lemma 6.1) and so is evaluability (Thm. 6.2);
//! * `con` is invariant under E11 and `gen` under E11–E12 (Lemma 6.5);
//! * the allowed property is invariant under distribution plus the
//!   conservative rules other than E7/E8 (Thm. 6.6).

mod common;

use common::assert_equivalent;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rcsafe::formula::generate::{random_formula, GenConfig};
use rcsafe::formula::transform::{
    applicable_rewrites, apply_at, Dir, Rewrite, Rule, CONSERVATIVE_RULES, DISTRIBUTIVE_RULES,
    EQUALITY_RULES,
};
use rcsafe::formula::vars::{free_vars, rectified, FreshVars};
use rcsafe::safety::gencon::{con, gen};
use rcsafe::{is_allowed, is_evaluable, Formula, Var};

fn sample_formula(seed: u64) -> Formula {
    let cfg = GenConfig {
        max_depth: 4,
        ..GenConfig::default()
    };
    rectified(&random_formula(&cfg, &mut StdRng::seed_from_u64(seed)))
}

/// All rewrites applicable to `f` from the given rule set, skipping the
/// always-applicable expanding rules when `skip_expanding`.
fn rewrites_of(f: &Formula, rules: &[Rule], skip_expanding: bool) -> Vec<(Vec<usize>, Rewrite)> {
    applicable_rewrites(f, rules)
        .into_iter()
        .filter(|(_, rw)| {
            !(skip_expanding
                && rw.dir == Dir::Rtl
                && matches!(rw.rule, Rule::E1DoubleNegation | Rule::VacuousQuantifier))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every conservative rewrite, in both directions, preserves logical
    /// equivalence (the identities of Fig. 3 are identities).
    #[test]
    fn conservative_rewrites_preserve_semantics(seed in 0u64..5_000) {
        let f = sample_formula(seed);
        let mut fresh = FreshVars::for_formula(&f);
        for (path, rw) in rewrites_of(&f, CONSERVATIVE_RULES, false).into_iter().take(12) {
            let g = apply_at(rw, &f, &path, &mut fresh).expect("applicable");
            assert_equivalent(&f, &g, seed.wrapping_mul(31));
        }
    }

    /// The distributive laws E11/E12 preserve logical equivalence.
    #[test]
    fn distributive_rewrites_preserve_semantics(seed in 0u64..5_000) {
        let f = sample_formula(seed);
        let mut fresh = FreshVars::for_formula(&f);
        for (path, rw) in rewrites_of(&f, DISTRIBUTIVE_RULES, false).into_iter().take(8) {
            let g = apply_at(rw, &f, &path, &mut fresh).expect("applicable");
            if g.node_count() > 200 { continue; }
            assert_equivalent(&f, &g, seed.wrapping_mul(37));
        }
    }

    /// E13/E14 (equality elimination) preserve logical equivalence.
    #[test]
    fn equality_rewrites_preserve_semantics(seed in 0u64..5_000) {
        let f = sample_formula(seed);
        let mut fresh = FreshVars::for_formula(&f);
        for (path, rw) in rewrites_of(&f, EQUALITY_RULES, false) {
            let g = apply_at(rw, &f, &path, &mut fresh).expect("applicable");
            assert_equivalent(&f, &g, seed.wrapping_mul(41));
        }
    }

    /// Lemma 6.1: gen and con are invariant under conservative rewrites
    /// applied at the ROOT (the lemma's statement is about whole-formula
    /// relations; structural invariance for nested positions follows by
    /// induction, which `evaluable_invariant…` below exercises).
    #[test]
    fn lemma_61_gen_con_invariant_at_root(seed in 0u64..5_000) {
        let f = sample_formula(seed);
        let mut fresh = FreshVars::for_formula(&f);
        let vars: Vec<Var> = free_vars(&f);
        for (path, rw) in rewrites_of(&f, CONSERVATIVE_RULES, true) {
            if !path.is_empty() { continue; }
            let g = apply_at(rw, &f, &path, &mut fresh).expect("applicable");
            for &v in &vars {
                prop_assert_eq!(gen(v, &f), gen(v, &g),
                    "gen({}) changed by {:?}: {} vs {}", v, rw, &f, &g);
                prop_assert_eq!(con(v, &f), con(v, &g),
                    "con({}) changed by {:?}: {} vs {}", v, rw, &f, &g);
            }
        }
    }

    /// Thm. 6.2: evaluability is invariant under conservative
    /// transformations applied anywhere.
    #[test]
    fn thm_62_evaluable_invariant_under_conservative(seed in 0u64..5_000) {
        let f = sample_formula(seed);
        let mut fresh = FreshVars::for_formula(&f);
        for (path, rw) in rewrites_of(&f, CONSERVATIVE_RULES, true).into_iter().take(16) {
            let g = apply_at(rw, &f, &path, &mut fresh).expect("applicable");
            prop_assert_eq!(
                is_evaluable(&f),
                is_evaluable(&g),
                "{:?} at {:?}: {} vs {}", rw, path, &f, &g
            );
        }
    }

    /// Lemma 6.5 (first half): con is invariant under E11 ("pushing
    /// ands"), in both directions, and gen under both E11 and E12.
    #[test]
    fn lemma_65_invariance(seed in 0u64..5_000) {
        let f = sample_formula(seed);
        let mut fresh = FreshVars::for_formula(&f);
        let vars: Vec<Var> = free_vars(&f);
        for (path, rw) in rewrites_of(&f, DISTRIBUTIVE_RULES, false) {
            if !path.is_empty() { continue; }
            let g = apply_at(rw, &f, &path, &mut fresh).expect("applicable");
            for &v in &vars {
                prop_assert_eq!(gen(v, &f), gen(v, &g),
                    "gen not invariant under {:?}: {} vs {}", rw, &f, &g);
                if rw.rule == Rule::E11DistributeAnd {
                    prop_assert_eq!(con(v, &f), con(v, &g),
                        "con not invariant under E11: {} vs {}", &f, &g);
                }
            }
        }
    }

    /// Thm. 6.6: the allowed property survives distribution and the
    /// conservative rules except E7/E8.
    #[test]
    fn thm_66_allowed_invariance(seed in 0u64..5_000) {
        use rcsafe::formula::generate::random_allowed_formula;
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let f = rectified(&random_allowed_formula(
            &cfg, &[Var::new("x")], &mut rng, 3,
        ));
        prop_assume!(is_allowed(&f));
        let mut fresh = FreshVars::for_formula(&f);
        let ok_rules: Vec<Rule> = CONSERVATIVE_RULES
            .iter()
            .chain(DISTRIBUTIVE_RULES)
            .copied()
            .filter(|r| !matches!(r, Rule::E7ForallOr | Rule::E8ExistsAnd))
            .collect();
        for (path, rw) in rewrites_of(&f, &ok_rules, true).into_iter().take(16) {
            let g = apply_at(rw, &f, &path, &mut fresh).expect("applicable");
            if g.node_count() > 250 { continue; }
            prop_assert!(
                is_allowed(&g),
                "allowed lost by {:?} at {:?}:\n  {}\n  {}", rw, path, &f, &g
            );
        }
    }
}

/// Example 6.1 concretely: E8 right-to-left can break allowed while
/// conservative rules keep evaluable (Thm. 6.2).
#[test]
fn example_61_e8_breaks_allowed_but_not_evaluable() {
    let f = rcsafe::parse("exists y. (Q(y) & ((exists x. A(x)) | B(y)))").unwrap();
    assert!(is_allowed(&f));
    // Pushing B into the ∃x (E8 Rtl at the disjunction… actually E7-style
    // merge): use the applicable-rewrites machinery to find a transform
    // that produces ∃x (A(x) ∨ B(y)).
    let g = rcsafe::parse("exists y. (Q(y) & exists x. (A(x) | B(y)))").unwrap();
    assert!(!is_allowed(&g));
    assert!(is_evaluable(&g));
    assert_equivalent(&f, &g, 99);
}
