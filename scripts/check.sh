#!/usr/bin/env bash
# The full local gate: formatting, lints, docs, the whole test suite, and
# the example smoke tests. CI runs exactly this script; keep the two in
# sync by construction.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (workspace, rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test (workspace)"
# Includes the golden-trace snapshot suite (tests/golden_trace.rs); after
# an intentional plan/cardinality change, regenerate the snapshots with
#   BLESS=1 cargo test --test golden_trace
cargo test -q --workspace

echo "==> cache and optimizer regression suites (named so a failure is obvious)"
cargo test -q --test cache_serving
cargo test -q --test trace_json
cargo test -q --test prop_relalg diff_heavy

echo "==> query-server suites (wire differential, concurrency, protocol robustness, faults)"
cargo test -q --test serve_differential
cargo test -q --test serve_concurrent
cargo test -q --test serve_protocol
cargo test -q --test fault_injection

echo "==> IVM differential suite (delta refresh must equal full re-evaluation)"
cargo test -q --test prop_ivm

echo "==> safe-pair differential suite (arbitrary formulas vs both active-domain oracles)"
cargo test -q --test prop_anyrc

echo "==> unicode lexing property suite"
cargo test -q --test prop_unicode

echo "==> example smoke tests"
cargo run -q --example quickstart > /dev/null
cargo run -q --example suppliers_parts > /dev/null

echo "==> trace overhead gate (tracing off must cost < 1% median, paired)"
TRACE_GATE=1 cargo run -q --release -p rc-bench --bin bench_eval

echo "==> cache gate (warm serves must hit; median repeated-query speedup >= 5x)"
CACHE_GATE=1 cargo run -q --release -p rc-bench --bin bench_eval

echo "==> partition gate (bit-identical results, fallback < 2%; 2x speedup at >= 8 cores)"
PAR_GATE=1 cargo run -q --release -p rc-bench --bin bench_eval

echo "==> optimizer gate (median multi_join speedup >= 2x; no family regresses > 5%)"
OPT_GATE=1 cargo run -q --release -p rc-bench --bin bench_eval

echo "==> IVM gate (every trickle re-serve refreshes; median speedup over full re-eval >= 10x)"
IVM_GATE=1 cargo run -q --release -p rc-bench --bin bench_eval

echo "==> any gate (every corpus formula — rejected included — serves via the safe pair, byte-identical to the oracle, flags surviving the wire)"
ANY_GATE=1 cargo run -q --release -p rc-bench --bin bench_eval

echo "==> egraph gate (corpus bit-identical across planner modes; saturated plans never priced above cost plans; median rewrite speedup >= 1.2x; no workload regresses >= 5%)"
EGRAPH_GATE=1 cargo run -q --release -p rc-bench --bin bench_eval

echo "==> rewrite catalog <-> registry drift check"
# Every rule registered in the e-graph must have a catalog section in
# docs/REWRITES.md, and every catalog section must name a registered
# rule. Both files change in the same commit or this gate fails.
registry_rules=$(sed -n 's/.*name: "\([a-z-]*\)".*/\1/p' crates/relalg/src/egraph.rs | sort -u)
catalog_rules=$(sed -n 's/^### `\([a-z-]*\)`$/\1/p' docs/REWRITES.md | sort -u)
if [ -z "$registry_rules" ]; then
  echo "error: no rules extracted from crates/relalg/src/egraph.rs (drift check pattern broke?)" >&2
  exit 1
fi
for r in $registry_rules; do
  if ! printf '%s\n' "$catalog_rules" | grep -qx "$r"; then
    echo "error: rule '$r' is registered in egraph.rs but has no '### \`$r\`' section in docs/REWRITES.md" >&2
    exit 1
  fi
done
for r in $catalog_rules; do
  if ! printf '%s\n' "$registry_rules" | grep -qx "$r"; then
    echo "error: docs/REWRITES.md documents rule '$r' but egraph.rs does not register it" >&2
    exit 1
  fi
done
echo "    $(printf '%s\n' "$registry_rules" | wc -l) rules in sync"

echo "==> serve gate (100 concurrent clients complete, zero errors, p99 bounded; 5x throughput at >= 8 cores)"
SERVE_GATE=1 cargo run -q --release -p rc-bench --bin bench_serve

echo "==> partitioned golden trace carries per-partition span fields"
# The blessed snapshot must pin per-partition cardinalities; if the field
# vanished, the partitioned projection regressed — regenerate intentionally
# with: BLESS=1 cargo test --test golden_trace
if ! grep -q 'parts=\[' tests/snapshots/partitioned-join.trace.txt; then
  echo "error: tests/snapshots/partitioned-join.trace.txt lacks parts=[..] fields" >&2
  echo "       (after an intentional change: BLESS=1 cargo test --test golden_trace)" >&2
  exit 1
fi

echo "==> trace export smoke test (the JSON artifact CI uploads)"
cargo run -q --release -p rc-bench --bin trace_export > /dev/null

echo "All checks passed."
