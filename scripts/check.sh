#!/usr/bin/env bash
# The full local gate: formatting, lints, and the whole test suite.
# CI runs exactly this script; keep the two in sync by construction.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace)"
cargo test -q --workspace

echo "All checks passed."
