#!/usr/bin/env bash
# The full local gate: formatting, lints, docs, the whole test suite, and
# the example smoke tests. CI runs exactly this script; keep the two in
# sync by construction.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (workspace, rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test (workspace)"
cargo test -q --workspace

echo "==> example smoke tests"
cargo run -q --example quickstart > /dev/null
cargo run -q --example suppliers_parts > /dev/null

echo "All checks passed."
