//! Databases: named relations plus loading helpers.

use crate::ivm::{Delta, DeltaLog, TableDelta};
use crate::relation::{PartitionedRelation, Relation, RelationBuilder, Tuple};
use crate::stats::{StatsStore, TableStats};
use rand::seq::SliceRandom;
use rand::Rng;
use rc_formula::fxhash::FxHashMap;
use rc_formula::{Formula, Schema, Symbol, Term, Value};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide version stamp allocator. Starting at 1 reserves version 0
/// for pristine empty databases (`Database::default()`), which are all
/// interchangeable anyway.
static VERSION_COUNTER: AtomicU64 = AtomicU64::new(1);

fn next_version() -> u64 {
    VERSION_COUNTER.fetch_add(1, Ordering::Relaxed)
}

/// An in-memory database: a map from predicate symbols to relations.
///
/// The active domain (Sec. 3's `Dom`, restricted to the database part) is
/// computed lazily and cached; every mutating method invalidates the
/// cache, so repeated `active_domain()` calls — the Dom-translation
/// baseline asks for it per query — cost one scan total, not one per call.
///
/// Every mutation also stamps the database with a fresh [`version`] drawn
/// from a process-wide monotonic counter. Because stamps are globally
/// unique (never reused by any database in the process), equal versions
/// imply equal contents: a clone keeps its original's stamp (it *is* the
/// same contents) until either side mutates, and two databases that
/// evolved independently can never collide on a stamp. This is the
/// invalidation signal for [`crate::cache::PlanCache`]'s result entries.
///
/// [`version`]: Database::version
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: FxHashMap<Symbol, Relation>,
    domain_cache: OnceLock<BTreeSet<Value>>,
    /// Hash-partitioned layouts of stored relations, keyed by
    /// `(predicate, key columns, partition count)` — computed on first use
    /// by [`Database::partitioned`] and dropped wholesale by any mutation,
    /// so the partition-parallel join never re-partitions a base relation
    /// two queries in a row. Clones share the map (their contents are
    /// identical until either side mutates, at which point the mutator
    /// swaps in a fresh empty cache).
    partition_cache: Arc<Mutex<PartitionCache>>,
    /// Per-relation statistics, the harvested-cardinality feedback map,
    /// and the stats epoch (see [`crate::stats`]) — same sharing
    /// discipline as the partition cache (clones share the store until
    /// either side mutates), but mutation only drops the *table*
    /// statistics: the feedback map and the epoch are carried over, so
    /// cached plans survive data mutations exactly like plan-cache entries
    /// do, and the epoch moves only when an *observation* changes.
    stats_cache: Arc<Mutex<StatsStore>>,
    /// The journal of deltas applied via [`Database::apply_delta`], shared
    /// by *all* clones (unlike the derived-state caches it is never
    /// swapped out by a mutation): the copy-on-write serving path clones,
    /// mutates, and swaps databases, and the maintenance layer must still
    /// be able to chain from the version a cached view was built against
    /// to the version currently served. Mutations that bypass
    /// `apply_delta` simply leave a gap in the journal, which chain
    /// resolution reports as "unknown" — forcing full re-evaluation.
    delta_log: Arc<Mutex<DeltaLog>>,
    version: u64,
}

/// Partitioned layouts keyed by `(predicate, key columns, partition count)`.
type PartitionCache = FxHashMap<(Symbol, Vec<usize>, usize), Arc<PartitionedRelation>>;

impl PartialEq for Database {
    fn eq(&self, other: &Database) -> bool {
        // The cache is derived state; equality is over the relations only.
        self.relations == other.relations
    }
}

/// Error raised while loading facts into a database.
#[derive(Clone, Debug, PartialEq)]
pub enum LoadError {
    /// The fact line did not parse as an atom.
    NotAnAtom(String),
    /// The atom contained a variable.
    NonGroundFact(String),
    /// An arity clash with previously loaded facts.
    ArityMismatch {
        /// The predicate.
        pred: Symbol,
        /// Previously seen arity.
        expected: usize,
        /// Arity in the offending fact.
        found: usize,
    },
    /// Underlying parse error.
    Parse(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::NotAnAtom(s) => write!(f, "fact is not an atom: {s}"),
            LoadError::NonGroundFact(s) => write!(f, "fact contains variables: {s}"),
            LoadError::ArityMismatch {
                pred,
                expected,
                found,
            } => write!(f, "predicate {pred}: arity {found} clashes with {expected}"),
            LoadError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// The monotonic version stamp: bumped (to a process-globally fresh
    /// value) by every mutating method. Equal stamps imply equal contents;
    /// a changed database always changes its stamp.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Invalidate derived state after a mutation: drop the active-domain
    /// and partition caches, drop the per-table statistics (row counts and
    /// distincts are stale the moment data changes), and take a fresh
    /// version stamp. The statistics *epoch* and the harvested-cardinality
    /// feedback map survive: the epoch keys plan-cache entries, and plans
    /// are data-independent (a mutation invalidates cached *results*
    /// through the version stamp, never compiled plans).
    fn bump(&mut self) {
        self.domain_cache.take();
        self.partition_cache = Arc::default();
        let carried = {
            let store = self.stats_cache.lock().expect("stats cache lock poisoned");
            StatsStore {
                epoch: store.epoch,
                tables: Default::default(),
                observed: store.observed.clone(),
            }
        };
        self.stats_cache = Arc::new(Mutex::new(carried));
        self.version = next_version();
    }

    /// The relation stored for `pred`, if any.
    pub fn relation(&self, pred: Symbol) -> Option<&Relation> {
        self.relations.get(&pred)
    }

    /// Declare an empty relation (or leave an existing one untouched).
    pub fn declare(&mut self, pred: impl Into<Symbol>, arity: usize) -> &mut Self {
        self.relations
            .entry(pred.into())
            .or_insert_with(|| Relation::new(arity));
        self.bump();
        self
    }

    /// Insert a whole relation, replacing any existing one.
    pub fn insert_relation(&mut self, pred: impl Into<Symbol>, rel: Relation) -> &mut Self {
        self.relations.insert(pred.into(), rel);
        self.bump();
        self
    }

    /// Insert one fact; creates the relation on first use.
    pub fn insert_fact(&mut self, pred: impl Into<Symbol>, t: Tuple) -> Result<(), LoadError> {
        let pred = pred.into();
        let rel = self
            .relations
            .entry(pred)
            .or_insert_with(|| Relation::new(t.len()));
        if rel.arity() != t.len() {
            return Err(LoadError::ArityMismatch {
                pred,
                expected: rel.arity(),
                found: t.len(),
            });
        }
        rel.insert(t);
        self.bump();
        Ok(())
    }

    /// Load newline-separated ground atoms, e.g.:
    ///
    /// ```text
    /// Part('bolt')
    /// Supplies('acme', 'bolt')
    /// Count(1, 2)
    /// ```
    ///
    /// Blank lines and `%` comments are skipped. Trailing `.` is allowed.
    /// Rows are batched per predicate and canonicalized once, so loading is
    /// O(n log n) rather than insert-at-a-time.
    pub fn load_facts(&mut self, text: &str) -> Result<(), LoadError> {
        let mut pending: FxHashMap<Symbol, RelationBuilder> = FxHashMap::default();
        for line in text.lines() {
            let line = line.trim().trim_end_matches('.');
            if line.is_empty() || line.starts_with('%') {
                continue;
            }
            let parsed = rc_formula::parse(line).map_err(|e| LoadError::Parse(e.to_string()))?;
            let atom = match parsed {
                Formula::Atom(a) => a,
                _ => return Err(LoadError::NotAnAtom(line.to_string())),
            };
            let mut vals = Vec::with_capacity(atom.terms.len());
            for t in &atom.terms {
                match t {
                    Term::Const(v) => vals.push(*v),
                    Term::Var(_) => return Err(LoadError::NonGroundFact(line.to_string())),
                }
            }
            let known_arity = self.relations.get(&atom.pred).map(|r| r.arity());
            let b = pending
                .entry(atom.pred)
                .or_insert_with(|| RelationBuilder::new(known_arity.unwrap_or(vals.len())));
            if b.arity() != vals.len() {
                return Err(LoadError::ArityMismatch {
                    pred: atom.pred,
                    expected: b.arity(),
                    found: vals.len(),
                });
            }
            b.push_row(&vals);
        }
        for (pred, b) in pending {
            let built = b.finish();
            let merged = match self.relations.get(&pred) {
                Some(existing) => existing.union(&built),
                None => built,
            };
            self.relations.insert(pred, merged);
        }
        self.bump();
        Ok(())
    }

    /// Parse a database from fact text.
    pub fn from_facts(text: &str) -> Result<Database, LoadError> {
        let mut db = Database::new();
        db.load_facts(text)?;
        Ok(db)
    }

    /// Apply a mutation expressed as newline-separated ground atoms,
    /// where a leading `-` marks a deletion:
    ///
    /// ```text
    /// Supplies('acme', 'bolt')
    /// -Part('nut').
    /// ```
    ///
    /// Inserts win over deletes of the same fact within one batch (the
    /// final contents are `(current \ deletes) ∪ inserts`). Returns the
    /// **net** [`Delta`] actually applied — inserting a present fact or
    /// deleting an absent one contributes nothing. An all-empty net delta
    /// is a no-op: the version stamp is *not* bumped, so cached results
    /// stay warm. Otherwise the version advances and the net delta is
    /// recorded in the shared delta journal, from which
    /// [`Database::delta_chain`] lets the maintenance layer refresh
    /// cached views instead of discarding them.
    pub fn apply_delta(&mut self, text: &str) -> Result<Delta, LoadError> {
        let mut inserts: FxHashMap<Symbol, RelationBuilder> = FxHashMap::default();
        let mut deletes: FxHashMap<Symbol, RelationBuilder> = FxHashMap::default();
        let mut preds: Vec<Symbol> = Vec::new();
        for line in text.lines() {
            let line = line.trim().trim_end_matches('.');
            if line.is_empty() || line.starts_with('%') {
                continue;
            }
            let (negated, line) = match line.strip_prefix('-') {
                Some(rest) => (true, rest.trim_start()),
                None => (false, line),
            };
            let parsed = rc_formula::parse(line).map_err(|e| LoadError::Parse(e.to_string()))?;
            let atom = match parsed {
                Formula::Atom(a) => a,
                _ => return Err(LoadError::NotAnAtom(line.to_string())),
            };
            let mut vals = Vec::with_capacity(atom.terms.len());
            for t in &atom.terms {
                match t {
                    Term::Const(v) => vals.push(*v),
                    Term::Var(_) => return Err(LoadError::NonGroundFact(line.to_string())),
                }
            }
            let known_arity = self
                .relations
                .get(&atom.pred)
                .map(|r| r.arity())
                .or_else(|| inserts.get(&atom.pred).map(|b| b.arity()))
                .or_else(|| deletes.get(&atom.pred).map(|b| b.arity()));
            let side = if negated { &mut deletes } else { &mut inserts };
            let b = side
                .entry(atom.pred)
                .or_insert_with(|| RelationBuilder::new(known_arity.unwrap_or(vals.len())));
            if b.arity() != vals.len() {
                return Err(LoadError::ArityMismatch {
                    pred: atom.pred,
                    expected: b.arity(),
                    found: vals.len(),
                });
            }
            if !preds.contains(&atom.pred) {
                preds.push(atom.pred);
            }
            b.push_row(&vals);
        }
        let mut delta = Delta::default();
        let mut updates: Vec<(Symbol, Relation)> = Vec::new();
        for pred in preds {
            let ins_b = inserts.remove(&pred);
            let del_b = deletes.remove(&pred);
            let arity = ins_b
                .as_ref()
                .or(del_b.as_ref())
                .map(RelationBuilder::arity)
                .expect("recorded predicates have a builder");
            let ins = ins_b
                .map(RelationBuilder::finish)
                .unwrap_or_else(|| Relation::new(arity));
            let del = del_b
                .map(RelationBuilder::finish)
                .unwrap_or_else(|| Relation::new(arity));
            let empty = Relation::new(arity);
            let current = self.relations.get(&pred).unwrap_or(&empty);
            // Net inserts: requested inserts not already present.
            let net_plus = ins.minus(current);
            // Net deletes: requested deletes that are present and not
            // re-inserted by the same batch (inserts win).
            let candidates = del.minus(&ins);
            let net_minus = candidates.minus(&candidates.minus(current));
            if net_plus.is_empty() && net_minus.is_empty() {
                continue;
            }
            updates.push((pred, current.minus(&net_minus).union(&net_plus)));
            delta.insert_table(
                pred,
                TableDelta {
                    plus: net_plus,
                    minus: net_minus,
                },
            );
        }
        if delta.is_empty() {
            // Net no-op: contents unchanged, so the version stamp (and
            // every cached result keyed by it) stays valid.
            return Ok(delta);
        }
        for (pred, rel) in updates {
            self.relations.insert(pred, rel);
        }
        let from = self.version;
        self.bump();
        self.delta_log
            .lock()
            .expect("delta log lock poisoned")
            .record(from, self.version, Arc::new(delta.clone()));
        Ok(delta)
    }

    /// Compose the journal's chain of deltas carrying version `from` to
    /// version `to`, or `None` when the chain is broken (a link was
    /// evicted, or the versions are bridged by a mutation that bypassed
    /// [`Database::apply_delta`]). The journal is shared by all clones of
    /// a database, so the chain resolves across the copy-on-write
    /// serving path's clone-mutate-swap cycle.
    pub fn delta_chain(&self, from: u64, to: u64) -> Option<Delta> {
        self.delta_log
            .lock()
            .expect("delta log lock poisoned")
            .chain(from, to)
    }

    /// Number of links currently retained in the delta journal
    /// (observability for tests).
    pub fn delta_log_len(&self) -> usize {
        self.delta_log
            .lock()
            .expect("delta log lock poisoned")
            .len()
    }

    /// The schema induced by the stored relations.
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        for (&p, r) in &self.relations {
            s.declare(p, r.arity());
        }
        s
    }

    /// All predicates, sorted by name.
    pub fn predicates(&self) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = self.relations.keys().copied().collect();
        out.sort();
        out
    }

    /// Every constant appearing in any relation — the database part of the
    /// paper's `Dom` relation (Sec. 3). Cached until the next mutation.
    pub fn active_domain(&self) -> &BTreeSet<Value> {
        self.domain_cache.get_or_init(|| {
            let mut out = BTreeSet::new();
            for r in self.relations.values() {
                out.extend(r.flat().iter().copied());
            }
            out
        })
    }

    /// Total number of stored tuples.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// The hash-partitioned layout of the stored relation for `pred` on
    /// `key_cols` with `n` partitions, computed once and cached until the
    /// next mutation (`None` if the predicate is absent). This is how the
    /// partition-parallel join reuses materializations across repeated
    /// queries and shared subtrees: a plain scan's partitions are a pure
    /// function of `(contents, key columns, n)`, so serving the cached
    /// [`PartitionedRelation`] is indistinguishable from re-partitioning.
    pub fn partitioned(
        &self,
        pred: Symbol,
        key_cols: &[usize],
        n: usize,
    ) -> Option<Arc<PartitionedRelation>> {
        let rel = self.relations.get(&pred)?;
        let mut cache = self
            .partition_cache
            .lock()
            .expect("partition cache lock poisoned");
        let entry = cache
            .entry((pred, key_cols.to_vec(), n))
            .or_insert_with(|| Arc::new(rel.partition_by(key_cols, n)));
        Some(Arc::clone(entry))
    }

    /// Statistics (row count, per-column distinct counts) of the stored
    /// relation for `pred`, computed on first use and cached until the
    /// next mutation (`None` if the predicate is absent). This feeds the
    /// cost-based optimizer's cardinality estimates (see
    /// [`crate::stats::Estimator`]).
    pub fn table_stats(&self, pred: Symbol) -> Option<Arc<TableStats>> {
        let rel = self.relations.get(&pred)?;
        let mut store = self.stats_cache.lock().expect("stats cache lock poisoned");
        let entry = store
            .tables
            .entry(pred)
            .or_insert_with(|| Arc::new(TableStats::of(rel)));
        Some(Arc::clone(entry))
    }

    /// The stats epoch: a process-globally fresh stamp assigned lazily and
    /// re-stamped whenever a harvested observation *changes* (see
    /// [`Database::record_observed`]) or the feedback is cleared. The
    /// cached serving path mixes this into its plan key so a query
    /// compiled under stale statistics is recompiled, never served.
    pub fn stats_epoch(&self) -> u64 {
        let mut store = self.stats_cache.lock().expect("stats cache lock poisoned");
        if store.epoch == 0 {
            store.epoch = next_version();
        }
        store.epoch
    }

    /// Record an observed cardinality for the subplan with the given
    /// structural [`plan_hash`](crate::plan::plan_hash). Returns whether
    /// the observation *changed* (first sighting or a different value);
    /// only a change bumps the stats epoch, so repeated identical runs
    /// leave cached plans valid.
    pub fn record_observed(&self, plan_hash: u64, rows: u64) -> bool {
        let mut store = self.stats_cache.lock().expect("stats cache lock poisoned");
        let changed = store.observed.insert(plan_hash, rows) != Some(rows);
        if changed {
            store.epoch = next_version();
        }
        changed
    }

    /// The observed cardinality recorded for a subplan hash, if any.
    pub fn observed_rows(&self, plan_hash: u64) -> Option<u64> {
        self.stats_cache
            .lock()
            .expect("stats cache lock poisoned")
            .observed
            .get(&plan_hash)
            .copied()
    }

    /// Number of harvested cardinality observations currently stored.
    pub fn observed_count(&self) -> usize {
        self.stats_cache
            .lock()
            .expect("stats cache lock poisoned")
            .observed
            .len()
    }

    /// Drop all harvested observations and cached table statistics, and
    /// take a fresh stats epoch (the REPL's `stats clear`).
    pub fn clear_stats(&self) {
        let mut store = self.stats_cache.lock().expect("stats cache lock poisoned");
        store.observed.clear();
        store.tables.clear();
        store.epoch = next_version();
    }

    /// How many per-relation statistics entries are currently cached
    /// (observability for tests, like [`Database::partition_cache_entries`]).
    pub fn stats_cache_entries(&self) -> usize {
        self.stats_cache
            .lock()
            .expect("stats cache lock poisoned")
            .tables
            .len()
    }

    /// How many partitioned layouts are currently cached (observability for
    /// tests; the cache itself is an implementation detail).
    pub fn partition_cache_entries(&self) -> usize {
        self.partition_cache
            .lock()
            .expect("partition cache lock poisoned")
            .len()
    }

    /// Generate a random database over `schema`: each relation receives
    /// `rows_per_relation` tuples drawn uniformly from `domain`.
    pub fn random(
        schema: &Schema,
        domain: &[Value],
        rows_per_relation: usize,
        rng: &mut impl Rng,
    ) -> Database {
        assert!(
            !domain.is_empty(),
            "random database needs a nonempty domain"
        );
        let mut db = Database::new();
        for (pred, arity) in schema.predicates() {
            // For nullary predicates, flip a coin for {()} vs {}.
            let rel = if arity == 0 {
                if rng.gen_bool(0.5) {
                    Relation::unit()
                } else {
                    Relation::empty_nullary()
                }
            } else {
                let mut b = RelationBuilder::with_capacity(arity, rows_per_relation);
                for _ in 0..rows_per_relation {
                    b.push_row_from(
                        (0..arity).map(|_| *domain.choose(rng).expect("domain nonempty")),
                    );
                }
                b.finish()
            };
            db.insert_relation(pred, rel);
        }
        db
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in self.predicates() {
            writeln!(
                f,
                "{p}/{} = {}",
                self.relations[&p].arity(),
                self.relations[&p]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::tuple;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn load_facts_roundtrip() {
        let db = Database::from_facts(
            "% suppliers\nSupplies('acme', 'bolt').\nSupplies('acme', 'nut')\nPart('bolt')\n\n",
        )
        .unwrap();
        let s = db.relation(Symbol::intern("Supplies")).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.arity(), 2);
        assert!(db.relation(Symbol::intern("Part")).unwrap().len() == 1);
    }

    #[test]
    fn reject_non_ground_and_non_atom() {
        assert!(matches!(
            Database::from_facts("P(x)"),
            Err(LoadError::NonGroundFact(_))
        ));
        assert!(matches!(
            Database::from_facts("P(1) & Q(2)"),
            Err(LoadError::NotAnAtom(_))
        ));
    }

    #[test]
    fn arity_clash_rejected() {
        assert!(matches!(
            Database::from_facts("P(1)\nP(1, 2)"),
            Err(LoadError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn active_domain_collects_all_values() {
        let mut db = Database::new();
        db.insert_fact("P", tuple([1i64])).unwrap();
        db.insert_fact("Q", tuple([2i64, 3])).unwrap();
        let dom: Vec<Value> = db.active_domain().iter().copied().collect();
        assert_eq!(dom, vec![Value::int(1), Value::int(2), Value::int(3)]);
    }

    #[test]
    fn active_domain_cache_invalidates_on_mutation() {
        let mut db = Database::new();
        db.insert_fact("P", tuple([1i64])).unwrap();
        assert_eq!(db.active_domain().len(), 1);
        // A second call must hit the cache (same answer, observable only as
        // correctness here); a mutation must invalidate it.
        assert_eq!(db.active_domain().len(), 1);
        db.insert_fact("P", tuple([7i64])).unwrap();
        assert_eq!(db.active_domain().len(), 2);
        db.insert_relation("Q", Relation::from_rows(1, [tuple([9i64])]));
        assert_eq!(db.active_domain().len(), 3);
        db.load_facts("R(11, 12)").unwrap();
        assert_eq!(db.active_domain().len(), 5);
    }

    #[test]
    fn load_facts_merges_into_existing_relations() {
        let mut db = Database::from_facts("P(1)\nP(2)").unwrap();
        db.load_facts("P(2)\nP(3)").unwrap();
        let p = db.relation(Symbol::intern("P")).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.to_string(), "{(1), (2), (3)}");
    }

    #[test]
    fn random_db_matches_schema() {
        let schema = Schema::new().with("P", 1).with("Q", 2);
        let domain: Vec<Value> = (0..10).map(Value::int).collect();
        let db = Database::random(&schema, &domain, 20, &mut StdRng::seed_from_u64(1));
        assert_eq!(db.relation(Symbol::intern("P")).unwrap().arity(), 1);
        assert_eq!(db.relation(Symbol::intern("Q")).unwrap().arity(), 2);
        // Set semantics may deduplicate, but some rows must exist.
        assert!(!db.relation(Symbol::intern("Q")).unwrap().is_empty());
    }

    #[test]
    fn partition_cache_serves_and_invalidates() {
        let mut db = Database::from_facts("P(1, 2)\nP(2, 3)\nP(3, 3)").unwrap();
        let p = Symbol::intern("P");
        assert_eq!(db.partition_cache_entries(), 0);
        let a = db.partitioned(p, &[1], 2).unwrap();
        let b = db.partitioned(p, &[1], 2).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second request must be a cache hit");
        assert_eq!(db.partition_cache_entries(), 1);
        // A different key or count is a different entry.
        db.partitioned(p, &[0], 2).unwrap();
        db.partitioned(p, &[1], 3).unwrap();
        assert_eq!(db.partition_cache_entries(), 3);
        // Unknown predicates don't cache.
        assert!(db.partitioned(Symbol::intern("Zzz"), &[0], 2).is_none());
        // Any mutation drops the cache.
        db.insert_fact("P", tuple([9i64, 9])).unwrap();
        assert_eq!(db.partition_cache_entries(), 0);
        let c = db.partitioned(p, &[1], 2).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.total_rows(), 4);
    }

    #[test]
    fn apply_delta_nets_out_noops() {
        let mut db = Database::from_facts("P(1, 2)\nP(2, 3)").unwrap();
        let v0 = db.version();
        // Inserting a present fact and deleting an absent one are both
        // net no-ops: no version bump, empty delta, caches stay warm.
        let d = db.apply_delta("P(1, 2)\n-P(9, 9)").unwrap();
        assert!(d.is_empty());
        assert_eq!(db.version(), v0);
        assert_eq!(db.delta_log_len(), 0);
        // A real mutation records a link.
        let d = db.apply_delta("P(4, 4)\n-P(1, 2)").unwrap();
        assert_eq!(d.summary(), vec![("P".to_string(), 1, 1)]);
        assert_ne!(db.version(), v0);
        assert_eq!(db.delta_log_len(), 1);
        assert_eq!(
            db.relation(Symbol::intern("P")).unwrap().to_string(),
            "{(2, 3), (4, 4)}"
        );
        assert!(db.delta_chain(v0, db.version()).is_some());
    }

    #[test]
    fn apply_delta_insert_wins_over_delete_in_one_batch() {
        let mut db = Database::from_facts("P(1)").unwrap();
        let d = db.apply_delta("-P(2)\nP(2)").unwrap();
        // The fact was absent, got both deleted and inserted: net insert.
        let td = d.table(Symbol::intern("P")).unwrap();
        assert_eq!((td.plus.len(), td.minus.len()), (1, 0));
        assert!(db
            .relation(Symbol::intern("P"))
            .unwrap()
            .contains(&[Value::int(2)]));
        // Present fact deleted and re-inserted in one batch: net no-op.
        let d = db.apply_delta("-P(1)\nP(1)").unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn apply_delta_creates_and_checks_arity() {
        let mut db = Database::new();
        let d = db.apply_delta("Fresh(1, 2)").unwrap();
        assert_eq!(d.summary(), vec![("Fresh".to_string(), 1, 0)]);
        assert!(matches!(
            db.apply_delta("Fresh(1)"),
            Err(LoadError::ArityMismatch { .. })
        ));
        assert!(matches!(
            db.apply_delta("-Fresh(x, y)"),
            Err(LoadError::NonGroundFact(_))
        ));
    }

    #[test]
    fn delta_log_is_shared_by_clones() {
        let mut db = Database::from_facts("P(1)").unwrap();
        let v0 = db.version();
        let mut clone = db.clone();
        clone.apply_delta("P(2)").unwrap();
        // The original still resolves the chain the clone recorded — the
        // copy-on-write serving path depends on this.
        assert!(db.delta_chain(v0, clone.version()).is_some());
        // But a non-delta mutation on the original leaves a gap.
        db.insert_fact("P", tuple([5i64])).unwrap();
        assert!(clone.delta_chain(v0, db.version()).is_none());
    }

    #[test]
    fn schema_roundtrip() {
        let db = Database::from_facts("P(1)\nQ(1, 2)").unwrap();
        let s = db.schema();
        assert_eq!(s.arity_of(Symbol::intern("P")), Some(1));
        assert_eq!(s.arity_of(Symbol::intern("Q")), Some(2));
    }
}
