//! Loading and saving databases: fact text (the inverse of
//! [`Database::from_facts`]) and tab-separated values per relation.
//!
//! TSV cell convention: a cell that parses as an `i64` is an integer value;
//! anything else is a string value. A string cell that *looks* like an
//! integer is written with single quotes so the round trip is faithful.

use crate::database::{Database, LoadError};
use crate::relation::{Relation, RelationBuilder, Tuple};
use rc_formula::{Symbol, Value};
use std::io::{self, BufRead, BufReader, Read, Write};

/// Render the whole database as fact text, sorted (predicates by name,
/// tuples in relation order) — parses back with [`Database::from_facts`].
pub fn to_fact_text(db: &Database) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for p in db.predicates() {
        let rel = db.relation(p).expect("listed predicate exists");
        if rel.is_empty() {
            let _ = writeln!(out, "% {p}/{} is empty", rel.arity());
            continue;
        }
        for t in rel.iter() {
            let _ = write!(out, "{p}(");
            for (i, v) in t.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                let _ = write!(out, "{v}");
            }
            let _ = writeln!(out, ")");
        }
    }
    out
}

/// Write one relation as TSV.
pub fn write_tsv(rel: &Relation, w: &mut impl Write) -> io::Result<()> {
    for t in rel.iter() {
        let line: Vec<String> = t.iter().map(tsv_cell).collect();
        writeln!(w, "{}", line.join("\t"))?;
    }
    Ok(())
}

fn tsv_cell(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Str(s) => {
            let s = s.as_str();
            // Quote strings that would read back as integers or that carry
            // significant whitespace.
            if s.parse::<i64>().is_ok() || s.starts_with('\'') || s.contains('\t') || s != s.trim()
            {
                format!("'{s}'")
            } else {
                s.to_string()
            }
        }
    }
}

/// Parse one TSV cell under the module's cell convention: single-quoted
/// cells are strings (quotes stripped), anything that parses as an `i64`
/// is an integer, and everything else is a plain string. The inverse of
/// the cell writer used by [`write_tsv`] — exposed so wire protocols that
/// ship relations as TSV (the `rc-serve` crate) decode with exactly the
/// convention the engine encodes with.
pub fn parse_tsv_cell(cell: &str) -> Value {
    let trimmed = cell.trim();
    if let Some(stripped) = trimmed
        .strip_prefix('\'')
        .and_then(|rest| rest.strip_suffix('\''))
    {
        return Value::str(stripped);
    }
    match trimmed.parse::<i64>() {
        Ok(i) => Value::Int(i),
        Err(_) => Value::str(trimmed),
    }
}

/// Read a TSV relation. Arity is taken from the first row; blank lines and
/// `#` comments are skipped. Rows are buffered flat and canonicalized once
/// at the end, so loading is O(n log n) rather than insert-at-a-time.
pub fn read_tsv(r: impl Read) -> Result<Relation, LoadError> {
    let reader = BufReader::new(r);
    let mut builder: Option<RelationBuilder> = None;
    for line in reader.lines() {
        let line = line.map_err(|e| LoadError::Parse(e.to_string()))?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        let tuple: Tuple = line.split('\t').map(parse_tsv_cell).collect();
        let b = builder.get_or_insert_with(|| RelationBuilder::new(tuple.len()));
        if b.arity() != tuple.len() {
            return Err(LoadError::Parse(format!(
                "row arity {} differs from first row's {}",
                tuple.len(),
                b.arity()
            )));
        }
        b.push_row(&tuple);
    }
    Ok(builder.map_or_else(|| Relation::new(0), RelationBuilder::finish))
}

/// Load a TSV file into the database as relation `pred`.
pub fn load_tsv_into(
    db: &mut Database,
    pred: impl Into<Symbol>,
    r: impl Read,
) -> Result<(), LoadError> {
    let rel = read_tsv(r)?;
    db.insert_relation(pred, rel);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::tuple;

    #[test]
    fn fact_text_roundtrips() {
        let mut db = Database::new();
        db.insert_fact("P", tuple([1i64])).unwrap();
        db.insert_fact("Q", tuple(["a", "b"])).unwrap();
        db.declare("Empty", 2);
        let text = to_fact_text(&db);
        let back = Database::from_facts(&text).unwrap();
        // Empty relations survive only as comments; declare to compare.
        let mut back = back;
        back.declare("Empty", 2);
        assert_eq!(back, db);
    }

    #[test]
    fn tsv_roundtrips_values() {
        let rel = Relation::from_rows(
            2,
            [
                tuple([Value::int(1), Value::str("plain")]),
                tuple([Value::int(-7), Value::str("42")]), // int-looking string
                tuple([Value::int(0), Value::str("with space")]),
            ],
        );
        let mut buf = Vec::new();
        write_tsv(&rel, &mut buf).unwrap();
        let back = read_tsv(buf.as_slice()).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn tsv_rejects_ragged_rows() {
        let data = b"1\t2\n3\n";
        assert!(matches!(read_tsv(&data[..]), Err(LoadError::Parse(_))));
    }

    #[test]
    fn tsv_skips_comments_and_blanks() {
        let data = b"# header\n1\t2\n\n3\t4\n";
        let rel = read_tsv(&data[..]).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.arity(), 2);
    }

    #[test]
    fn load_tsv_into_database() {
        let mut db = Database::new();
        load_tsv_into(&mut db, "Edges", &b"1\t2\n2\t3\n"[..]).unwrap();
        let rel = db.relation(Symbol::intern("Edges")).unwrap();
        assert_eq!(rel.len(), 2);
        assert!(rel.contains(&[Value::int(2), Value::int(3)]));
    }

    #[test]
    fn empty_tsv_gives_nullary_relation() {
        let rel = read_tsv(&b""[..]).unwrap();
        assert_eq!(rel.arity(), 0);
        assert!(rel.is_empty());
    }
}
