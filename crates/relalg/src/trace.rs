//! Pipeline observability: per-stage and per-operator span tracing.
//!
//! The pipeline is a sequence of meaning-preserving stages (classify →
//! genify → ranf → translate → optimize → eval), and when a query is slow,
//! trips a budget, or disagrees with a baseline the question is always
//! *where*: which transformation blew up the formula, or which algebra
//! operator produced the cardinality spike. This module records exactly
//! that as a span tree:
//!
//! * **stage spans** ([`StageSpan`], collected by [`StageTracer`]) carry
//!   formula/plan node counts and wall time per pipeline stage;
//! * **operator spans** ([`OpSpan`], collected by [`Tracer`]) carry input
//!   and output cardinalities, kernel row counts, pre-dedup row counts, and
//!   whether the parallel or the sequential evaluation path ran.
//!
//! Tracing is opt-in through the [`TraceSink`] enum and near-zero cost when
//! off: a disabled tracer's hooks are a branch on one bool, no allocation,
//! and `Instant::now` is never consulted. The instrumentation points are
//! the same operator boundaries the [`crate::govern::Governor`] checkpoints
//! at, so governance and tracing share one hook.
//!
//! **Determinism contract:** span structure, labels, cardinalities,
//! raw row counts and stage node counts are deterministic for a given
//! expression and database — identical under parallel and sequential
//! evaluation (parallel branches are adopted left-then-right, mirroring
//! the stats merge). Wall times, the parallel flag, per-partition
//! cardinalities ([`OpSpan::partitions`] — the auto partition count is
//! host-dependent), and kernel loop counts (a partitioned join may pick
//! different per-partition probe sides than the global kernel would) are
//! *not* part of the contract; [`PipelineTrace::deterministic`] projects
//! them away, and that projection is what the golden-trace snapshot suite
//! pins. Partition cardinalities get their own snapshot through
//! [`OpSpan::partitioned_projection`] under a forced partition count.

use crate::database::Database;
use crate::expr::RaExpr;
use crate::govern::Stage;
use crate::relation::Relation;
use std::fmt::Write as _;
use std::time::Instant;

/// Where trace spans go. [`TraceSink::Off`] is the default and makes every
/// tracing hook a no-op branch; [`TraceSink::Tree`] collects the full span
/// tree in memory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceSink {
    /// Record nothing (near-zero overhead).
    #[default]
    Off,
    /// Collect the span tree in memory.
    Tree,
}

// ---------------------------------------------------------------- spans --

/// IVM annotation on an operator span: how the operator's cached value
/// was brought up to date, plus the delta cardinalities that flowed
/// through it (see [`crate::ivm`]). Absent on ordinary evaluation spans,
/// so pre-IVM trace renders and JSON exports are byte-identical.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IvmNote {
    /// `"refresh"` (delta-maintained in place) or `"fallback"` (a full
    /// re-evaluation after maintenance was skipped or unsupported).
    pub mode: &'static str,
    /// Rows in this operator's Δ⁺ (insert delta).
    pub plus: u64,
    /// Rows in this operator's Δ⁻ (delete delta).
    pub minus: u64,
}

/// One evaluated algebra operator.
#[derive(Clone, Debug, PartialEq)]
pub struct OpSpan {
    /// Operator label, e.g. `scan P`, `join`, `select x=y`.
    pub op: String,
    /// Input cardinalities, in child order (base-relation size for scans).
    pub rows_in: Vec<usize>,
    /// Output cardinality (0 when the operator did not complete).
    pub rows_out: usize,
    /// Rows materialized before canonicalization/dedup; equals `rows_out`
    /// for order-preserving kernels.
    pub raw_rows: u64,
    /// Kernel loop iterations observed by the governor for this operator.
    pub kernel_rows: u64,
    /// Were the children evaluated on separate threads? (Excluded from the
    /// deterministic projection: spawn denial flips it, cardinalities not.)
    pub parallel: bool,
    /// Per-partition output cardinalities when the operator's kernel ran
    /// partition-parallel; empty for sequential kernels. Excluded from the
    /// deterministic projection (the auto partition count depends on the
    /// host's cores, and spawn denial empties it); the partition-pinning
    /// golden snapshot uses [`OpSpan::partitioned_projection`] under a
    /// forced partition count instead.
    pub partitions: Vec<u64>,
    /// Was this subplan served from the per-run memo table
    /// ([`crate::eval::eval_shared`])? Such spans are leaves — the subtree
    /// was traced at its first evaluation.
    pub cache_hit: bool,
    /// Did the operator run to completion? `false` when a budget trip or
    /// cancellation unwound it — the deepest incomplete span is the hot
    /// operator a `BudgetExceeded` is attributed to.
    pub completed: bool,
    /// Wall time (not deterministic; excluded from the projection).
    pub elapsed_ns: u64,
    /// Incremental-maintenance annotation (`None` on ordinary evaluation
    /// spans; set by [`crate::ivm`] refresh walks and fallbacks).
    pub ivm: Option<IvmNote>,
    /// Sub-operator spans, in evaluation order (left child first).
    pub children: Vec<OpSpan>,
}

impl OpSpan {
    fn new(op: String) -> OpSpan {
        OpSpan {
            op,
            rows_in: Vec::new(),
            rows_out: 0,
            raw_rows: 0,
            kernel_rows: 0,
            parallel: false,
            partitions: Vec::new(),
            cache_hit: false,
            completed: false,
            elapsed_ns: 0,
            ivm: None,
            children: Vec::new(),
        }
    }

    /// Rows materialized per surviving output row (1.0 = no dedup work).
    pub fn dedup_ratio(&self) -> f64 {
        if self.rows_out == 0 {
            if self.raw_rows == 0 {
                1.0
            } else {
                self.raw_rows as f64
            }
        } else {
            self.raw_rows as f64 / self.rows_out as f64
        }
    }

    /// Number of spans in this subtree.
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(OpSpan::span_count).sum::<usize>()
    }

    /// Total output rows across the subtree — equals
    /// `EvalStats::tuples_produced` for a completed evaluation.
    pub fn total_rows_out(&self) -> u64 {
        self.rows_out as u64
            + self
                .children
                .iter()
                .map(OpSpan::total_rows_out)
                .sum::<u64>()
    }

    /// The deepest, last-opened span that did not complete — the operator
    /// that was running when a budget tripped or a cancellation fired.
    pub fn last_incomplete(&self) -> Option<&OpSpan> {
        if self.completed {
            return None;
        }
        for c in self.children.iter().rev() {
            if let Some(deep) = c.last_incomplete() {
                return Some(deep);
            }
        }
        Some(self)
    }

    /// Any parallel span in the subtree?
    pub fn any_parallel(&self) -> bool {
        self.parallel || self.children.iter().any(OpSpan::any_parallel)
    }

    /// Any partition-parallel kernel in the subtree?
    pub fn any_partitioned(&self) -> bool {
        !self.partitions.is_empty() || self.children.iter().any(OpSpan::any_partitioned)
    }

    /// The deterministic projection *plus* per-partition cardinalities
    /// (`parts=[..]` on partitioned spans). Only machine-independent when
    /// the partition count is forced via
    /// [`crate::govern::Budget::with_partitions`] — which is exactly how
    /// the partitioned golden-trace snapshot pins it.
    pub fn partitioned_projection(&self) -> String {
        fn go(s: &OpSpan, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            let ins: Vec<String> = s.rows_in.iter().map(|n| n.to_string()).collect();
            let _ = write!(
                out,
                "{pad}op {}: in=[{}] out={} raw={}",
                s.op,
                ins.join(","),
                s.rows_out,
                s.raw_rows
            );
            if !s.partitions.is_empty() {
                let ps: Vec<String> = s.partitions.iter().map(|n| n.to_string()).collect();
                let _ = write!(out, " parts=[{}]", ps.join(","));
            }
            if let Some(note) = &s.ivm {
                let _ = write!(out, " ivm={} d+={} d-={}", note.mode, note.plus, note.minus);
            }
            if s.cache_hit {
                out.push_str(" MEMO");
            }
            if !s.completed {
                out.push_str(" INCOMPLETE");
            }
            out.push('\n');
            for c in &s.children {
                go(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        go(self, 0, &mut out);
        out
    }

    fn deterministic_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let ins: Vec<String> = self.rows_in.iter().map(|n| n.to_string()).collect();
        let _ = write!(
            out,
            "{pad}op {}: in=[{}] out={} raw={}",
            self.op,
            ins.join(","),
            self.rows_out,
            self.raw_rows
        );
        if let Some(note) = &self.ivm {
            let _ = write!(out, " ivm={} d+={} d-={}", note.mode, note.plus, note.minus);
        }
        if self.cache_hit {
            out.push_str(" MEMO");
        }
        if !self.completed {
            out.push_str(" INCOMPLETE");
        }
        out.push('\n');
        for c in &self.children {
            c.deterministic_into(depth + 1, out);
        }
    }

    fn json_deterministic_into(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"op\":{},\"rows_in\":[{}],\"rows_out\":{},\"raw_rows\":{},\
             \"cache_hit\":{},\"completed\":{}",
            json_str(&self.op),
            self.rows_in
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(","),
            self.rows_out,
            self.raw_rows,
            self.cache_hit,
            self.completed,
        );
        if let Some(note) = &self.ivm {
            let _ = write!(
                out,
                ",\"ivm\":{{\"mode\":{},\"plus\":{},\"minus\":{}}}",
                json_str(note.mode),
                note.plus,
                note.minus
            );
        }
        out.push_str(",\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.json_deterministic_into(out);
        }
        out.push_str("]}");
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let ins: Vec<String> = self.rows_in.iter().map(|n| n.to_string()).collect();
        let _ = write!(
            out,
            "{pad}{}  in=[{}] out={} raw={} kernel={}  {:.3} ms{}{}{}",
            self.op,
            ins.join(","),
            self.rows_out,
            self.raw_rows,
            self.kernel_rows,
            self.elapsed_ns as f64 / 1e6,
            if self.parallel { "  [parallel]" } else { "" },
            if self.cache_hit { "  [cached]" } else { "" },
            if self.completed { "" } else { "  [INCOMPLETE]" },
        );
        if let Some(note) = &self.ivm {
            let _ = write!(
                out,
                "  [ivm={} d+={} d-={}]",
                note.mode, note.plus, note.minus
            );
        }
        if !self.partitions.is_empty() {
            let _ = write!(out, "  [parts={}]", self.partitions.len());
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }

    fn json_into(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"op\":{},\"rows_in\":[{}],\"rows_out\":{},\"raw_rows\":{},\
             \"kernel_rows\":{},\"parallel\":{},\"partitions\":[{}],\
             \"cache_hit\":{},\"completed\":{},\
             \"elapsed_ns\":{}",
            json_str(&self.op),
            self.rows_in
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(","),
            self.rows_out,
            self.raw_rows,
            self.kernel_rows,
            self.parallel,
            self.partitions
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(","),
            self.cache_hit,
            self.completed,
            self.elapsed_ns,
        );
        if let Some(note) = &self.ivm {
            let _ = write!(
                out,
                ",\"ivm\":{{\"mode\":{},\"plus\":{},\"minus\":{}}}",
                json_str(note.mode),
                note.plus,
                note.minus
            );
        }
        out.push_str(",\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.json_into(out);
        }
        out.push_str("]}");
    }
}

/// One pipeline stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSpan {
    /// The stage.
    pub stage: Stage,
    /// Formula/plan node count entering the stage (query length for parse).
    pub nodes_in: u64,
    /// Node count leaving the stage (answer rows for eval).
    pub nodes_out: u64,
    /// Deterministic stage detail, e.g. `class=allowed` or `repairs=1`.
    pub detail: String,
    /// Wall time (not deterministic; excluded from the projection).
    pub elapsed_ns: u64,
    /// Did the stage run to completion?
    pub completed: bool,
}

// --------------------------------------------------------- stage tracer --

/// Collector for [`StageSpan`]s; the pipeline opens one span per stage.
/// Disabled tracers ([`StageTracer::off`]) make every call a no-op.
#[derive(Debug, Default)]
pub struct StageTracer {
    on: bool,
    stages: Vec<StageSpan>,
    current: Option<(StageSpan, Instant)>,
}

impl StageTracer {
    /// A tracer honoring `sink`.
    pub fn new(sink: TraceSink) -> StageTracer {
        StageTracer {
            on: sink == TraceSink::Tree,
            ..StageTracer::default()
        }
    }

    /// A disabled tracer (all hooks are no-ops).
    pub fn off() -> StageTracer {
        StageTracer::new(TraceSink::Off)
    }

    /// A collecting tracer.
    pub fn on() -> StageTracer {
        StageTracer::new(TraceSink::Tree)
    }

    /// Is this tracer collecting?
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Open a stage span. An unclosed previous span is closed as complete
    /// (defensive; the pipeline pairs begin/end).
    pub fn begin(&mut self, stage: Stage, nodes_in: u64) {
        if !self.on {
            return;
        }
        self.seal(true, None, None);
        let span = StageSpan {
            stage,
            nodes_in,
            nodes_out: 0,
            detail: String::new(),
            elapsed_ns: 0,
            completed: false,
        };
        self.current = Some((span, Instant::now()));
    }

    /// Close the open stage span as completed.
    pub fn end(&mut self, nodes_out: u64, detail: impl Into<String>) {
        if !self.on {
            return;
        }
        self.seal(true, Some(nodes_out), Some(detail.into()));
    }

    /// Close the open stage span as failed: the last stage span of the
    /// trace then names the stage a `BudgetExceeded` (or any other error)
    /// unwound from.
    pub fn fail(&mut self) {
        if !self.on {
            return;
        }
        self.seal(false, None, None);
    }

    fn seal(&mut self, completed: bool, nodes_out: Option<u64>, detail: Option<String>) {
        if let Some((mut span, start)) = self.current.take() {
            span.completed = completed;
            span.elapsed_ns = start.elapsed().as_nanos() as u64;
            if let Some(n) = nodes_out {
                span.nodes_out = n;
            }
            if let Some(d) = detail {
                span.detail = d;
            }
            self.stages.push(span);
        }
    }

    /// The stage spans recorded so far (an open span is not included).
    pub fn stages(&self) -> &[StageSpan] {
        &self.stages
    }

    /// Finish: close any open span as failed and package the stage spans
    /// with an operator span tree into a [`PipelineTrace`].
    pub fn into_trace(mut self, root: Option<OpSpan>) -> PipelineTrace {
        self.seal(false, None, None);
        PipelineTrace {
            stages: self.stages,
            root,
        }
    }
}

// ------------------------------------------------------ operator tracer --

/// Collector for the operator span tree, threaded through the evaluator
/// alongside `EvalStats`. Parallel branches evaluate into [`Tracer::fork`]s
/// that the parent adopts left-then-right, so the recorded tree is
/// identical to a sequential run's.
#[derive(Debug, Default)]
pub struct Tracer {
    on: bool,
    stack: Vec<(OpSpan, Instant)>,
    done: Vec<OpSpan>,
}

impl Tracer {
    /// A tracer honoring `sink`.
    pub fn new(sink: TraceSink) -> Tracer {
        Tracer {
            on: sink == TraceSink::Tree,
            ..Tracer::default()
        }
    }

    /// A disabled tracer: every hook is a branch on one bool, nothing is
    /// allocated, and `Instant::now` is never called.
    pub fn off() -> Tracer {
        Tracer::new(TraceSink::Off)
    }

    /// A collecting tracer.
    pub fn on() -> Tracer {
        Tracer::new(TraceSink::Tree)
    }

    /// Is this tracer collecting?
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// An empty tracer with the same sink, for a parallel branch.
    pub fn fork(&self) -> Tracer {
        Tracer {
            on: self.on,
            ..Tracer::default()
        }
    }

    /// Open a span for an operator about to be evaluated.
    pub(crate) fn open(&mut self, expr: &RaExpr) {
        if !self.on {
            return;
        }
        self.stack
            .push((OpSpan::new(op_label(expr)), Instant::now()));
    }

    /// Record one input cardinality on the open span.
    pub(crate) fn note_input(&mut self, rows: usize) {
        if let Some((span, _)) = self.stack.last_mut() {
            span.rows_in.push(rows);
        }
    }

    /// Record the pre-dedup row count on the open span.
    pub(crate) fn note_raw(&mut self, raw: u64) {
        if let Some((span, _)) = self.stack.last_mut() {
            span.raw_rows = raw;
        }
    }

    /// Record the kernel loop iteration count on the open span.
    pub(crate) fn note_kernel_rows(&mut self, n: u64) {
        if let Some((span, _)) = self.stack.last_mut() {
            span.kernel_rows = n;
        }
    }

    /// Mark the open span's children as evaluated in parallel.
    pub(crate) fn note_parallel(&mut self) {
        if let Some((span, _)) = self.stack.last_mut() {
            span.parallel = true;
        }
    }

    /// Record per-partition output cardinalities on the open span (the
    /// kernel ran partition-parallel).
    pub(crate) fn note_partitions(&mut self, sizes: &[u64]) {
        if let Some((span, _)) = self.stack.last_mut() {
            span.partitions = sizes.to_vec();
        }
    }

    /// Mark the open span as served from the evaluation memo table.
    pub(crate) fn note_cache_hit(&mut self) {
        if let Some((span, _)) = self.stack.last_mut() {
            span.cache_hit = true;
        }
    }

    /// Annotate the open span with an IVM note: refresh mode and the Δ
    /// cardinalities that flowed through this operator.
    pub(crate) fn note_ivm(&mut self, mode: &'static str, plus: u64, minus: u64) {
        if let Some((span, _)) = self.stack.last_mut() {
            span.ivm = Some(IvmNote { mode, plus, minus });
        }
    }

    /// Tag the most recently completed top-level span with an IVM note —
    /// used to mark a full re-evaluation as `ivm=fallback` after the
    /// fact, once the maintenance layer knows a refresh was abandoned.
    pub(crate) fn note_ivm_done(&mut self, mode: &'static str) {
        if let Some(span) = self.done.last_mut() {
            span.ivm = Some(IvmNote {
                mode,
                plus: 0,
                minus: 0,
            });
        }
    }

    /// Close the innermost open span: `Some(rel)` on success (records the
    /// output cardinality and, if no kernel reported one, the raw row
    /// count), `None` on error (the span stays marked incomplete).
    pub(crate) fn close(&mut self, out: Option<&Relation>) {
        if !self.on {
            return;
        }
        let Some((mut span, start)) = self.stack.pop() else {
            return;
        };
        span.elapsed_ns = start.elapsed().as_nanos() as u64;
        if let Some(rel) = out {
            span.completed = true;
            span.rows_out = rel.len();
            if span.raw_rows == 0 {
                span.raw_rows = rel.len() as u64;
            }
        }
        self.attach(span);
    }

    /// Graft a forked branch's spans under the currently open span, in the
    /// order the forks are adopted (left branch first for determinism).
    pub(crate) fn adopt(&mut self, forked: Tracer) {
        if !self.on {
            return;
        }
        for span in forked.into_spans() {
            self.attach(span);
        }
    }

    fn attach(&mut self, span: OpSpan) {
        match self.stack.last_mut() {
            Some((parent, _)) => parent.children.push(span),
            None => self.done.push(span),
        }
    }

    fn into_spans(mut self) -> Vec<OpSpan> {
        // Unwind anything still open (error paths close their own spans,
        // so this only fires on panics survived by a caller).
        while let Some((mut span, start)) = self.stack.pop() {
            span.elapsed_ns = start.elapsed().as_nanos() as u64;
            match self.stack.last_mut() {
                Some((parent, _)) => parent.children.push(span),
                None => self.done.push(span),
            }
        }
        self.done
    }

    /// Finish tracing and return the root operator span (None when the
    /// sink is off or nothing was evaluated). Partial trees from failed
    /// evaluations are returned too — that is the point.
    pub fn finish(self) -> Option<OpSpan> {
        self.into_spans().into_iter().next()
    }
}

/// The operator label of an expression node (deterministic).
fn op_label(expr: &RaExpr) -> String {
    match expr {
        RaExpr::Scan { pred, .. } => format!("scan {pred}"),
        RaExpr::Single { var, value } => format!("single {var}={value}"),
        RaExpr::Unit => "unit".into(),
        RaExpr::Empty { .. } => "empty".into(),
        RaExpr::Join(..) => "join".into(),
        RaExpr::Union(..) => "union".into(),
        RaExpr::Diff(..) => "diff".into(),
        RaExpr::Project { cols, .. } => {
            let cs: Vec<String> = cols.iter().map(|v| v.to_string()).collect();
            format!("project [{}]", cs.join(","))
        }
        RaExpr::Select { pred, .. } => format!("select {pred}"),
        RaExpr::Duplicate { src, dst, .. } => format!("duplicate {src}->{dst}"),
    }
}

// ------------------------------------------------------- pipeline trace --

/// The complete observability record of one pipeline run: stage spans plus
/// the operator span tree of the evaluation. Populated on both success and
/// failure — a partial trace names the stage and operator that tripped.
#[derive(Clone, Debug, Default)]
pub struct PipelineTrace {
    /// Per-stage spans, in execution order.
    pub stages: Vec<StageSpan>,
    /// The evaluation's operator span tree, when eval ran.
    pub root: Option<OpSpan>,
}

impl PipelineTrace {
    /// The stage that failed, if any (the last incomplete stage span).
    pub fn failed_stage(&self) -> Option<Stage> {
        self.stages
            .iter()
            .rev()
            .find(|s| !s.completed)
            .map(|s| s.stage)
    }

    /// The operator running when evaluation tripped, if any.
    pub fn hot_operator(&self) -> Option<&OpSpan> {
        self.root.as_ref().and_then(OpSpan::last_incomplete)
    }

    /// The deterministic projection: span tree shape, labels, per-operator
    /// in/out/raw cardinalities and stage node counts — everything except
    /// wall times and the parallel flag. Identical across parallel and
    /// sequential evaluation; this is what the golden-trace snapshots pin.
    pub fn deterministic(&self) -> String {
        let mut out = String::new();
        for s in &self.stages {
            let _ = write!(
                out,
                "stage {}: nodes {} -> {}",
                s.stage, s.nodes_in, s.nodes_out
            );
            if !s.detail.is_empty() {
                let _ = write!(out, " [{}]", s.detail);
            }
            if !s.completed {
                out.push_str(" FAILED");
            }
            out.push('\n');
        }
        if let Some(root) = &self.root {
            root.deterministic_into(0, &mut out);
        }
        out
    }

    /// Human-readable rendering with wall times (what `explain analyze`
    /// prints above the annotated plan).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.stages {
            let _ = writeln!(
                out,
                "stage {:<10} {:>8.3} ms  nodes {} -> {}{}{}",
                s.stage,
                s.elapsed_ns as f64 / 1e6,
                s.nodes_in,
                s.nodes_out,
                if s.detail.is_empty() {
                    String::new()
                } else {
                    format!("  [{}]", s.detail)
                },
                if s.completed { "" } else { "  [FAILED]" },
            );
        }
        if let Some(root) = &self.root {
            out.push_str("operators:\n");
            root.render_into(1, &mut out);
        }
        out
    }

    /// Machine-readable JSON export (hand-rolled; the workspace is
    /// dependency-free). Includes wall times — consumers wanting the
    /// deterministic projection should use [`PipelineTrace::deterministic`].
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"stages\":[");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":{},\"nodes_in\":{},\"nodes_out\":{},\"detail\":{},\
                 \"elapsed_ns\":{},\"completed\":{}}}",
                json_str(&s.stage.to_string()),
                s.nodes_in,
                s.nodes_out,
                json_str(&s.detail),
                s.elapsed_ns,
                s.completed,
            );
        }
        out.push_str("],\"eval\":");
        match &self.root {
            Some(root) => root.json_into(&mut out),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// The JSON form of the deterministic projection: the same span tree as
    /// [`PipelineTrace::to_json`] but without wall times, kernel tick
    /// counts, the parallel flag, or per-partition splits — exactly the
    /// fields that are reproducible for a given expression and database
    /// whatever the execution policy. This is what a query *server* sends
    /// on the wire, so a response can be compared byte-for-byte against an
    /// in-process evaluation (see `tests/serve_differential.rs`).
    pub fn to_json_deterministic(&self) -> String {
        let mut out = String::from("{\"stages\":[");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":{},\"nodes_in\":{},\"nodes_out\":{},\"detail\":{},\
                 \"completed\":{}}}",
                json_str(&s.stage.to_string()),
                s.nodes_in,
                s.nodes_out,
                json_str(&s.detail),
                s.completed,
            );
        }
        out.push_str("],\"eval\":");
        match &self.root {
            Some(root) => root.json_deterministic_into(&mut out),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

/// Encode `s` as a JSON string literal (quotes included): `"`, `\\`, and
/// all control characters are escaped, so the output is valid under a
/// strict parser whatever bytes a [`Symbol`](rc_formula::Symbol) or stage
/// detail carried. Public because every hand-rolled JSON emitter in the
/// workspace must share one escaper rather than interpolate raw strings.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ------------------------------------------------- cardinality estimates --

/// The deterministic cardinality estimate for a plan node — what `explain`
/// prints next to (and `explain analyze` against) the actual cardinalities.
/// Since the statistics module landed this simply delegates to
/// [`crate::stats::Estimator`], so the numbers shown by `explain` are
/// exactly the ones the cost-based planner optimized against (including any
/// feedback recorded for the subplan).
pub fn estimate_rows(expr: &RaExpr, db: &Database) -> u64 {
    crate::stats::Estimator::new(db).rows(expr)
}

/// The estimated evaluation cost (abstract ns units) the planner assigned
/// to `expr` — shown by `explain` next to the root cardinality.
pub fn estimate_cost(expr: &RaExpr, db: &Database) -> u64 {
    crate::stats::Estimator::new(db).cost(expr).round() as u64
}

/// Render a plan tree annotated with estimated cardinalities — the
/// `explain` view (no evaluation required).
///
/// Estimates are recomputed on the tree passed in, with one
/// [`Estimator`](crate::stats::Estimator) shared across every node: each
/// node's `(est, cost)` pair comes from one
/// [`cost_and_estimate`](crate::stats::Estimator::cost_and_estimate) walk,
/// so the printed cost is always the cost of the printed estimate — the
/// two can never come from different rewrite rounds of the plan.
pub fn render_plan(expr: &RaExpr, db: &Database) -> String {
    let est = crate::stats::Estimator::new(db);
    let mut out = String::new();
    plan_into(expr, &est, 0, &mut out);
    out
}

fn plan_into(expr: &RaExpr, est: &crate::stats::Estimator, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    let (cost, card) = est.cost_and_estimate(expr);
    let _ = writeln!(
        out,
        "{pad}{}  (est {}, cost {})",
        op_label(expr),
        card.rows.round() as u64,
        cost.round() as u64
    );
    for c in expr.children() {
        plan_into(c, est, depth + 1, out);
    }
}

/// Render the plan tree annotated with estimated *and* actual
/// cardinalities (plus raw rows and per-operator wall time) by zipping the
/// expression with its operator span tree — the `explain analyze` view.
/// Span-less nodes (unreached after a mid-plan trip) render with `actual=-`.
pub fn render_analyze(expr: &RaExpr, db: &Database, span: Option<&OpSpan>) -> String {
    let estimator = crate::stats::Estimator::new(db);
    let mut out = String::new();
    analyze_into(expr, &estimator, span, 0, &mut out);
    out
}

fn analyze_into(
    expr: &RaExpr,
    estimator: &crate::stats::Estimator,
    span: Option<&OpSpan>,
    depth: usize,
    out: &mut String,
) {
    let pad = "  ".repeat(depth);
    let est = estimator.rows(expr);
    match span {
        Some(s) => {
            let _ = writeln!(
                out,
                "{pad}{}  est={} actual={} raw={}  {:.3} ms{}{}",
                s.op,
                est,
                if s.completed {
                    s.rows_out.to_string()
                } else {
                    "-".into()
                },
                s.raw_rows,
                s.elapsed_ns as f64 / 1e6,
                if s.parallel { "  [parallel]" } else { "" },
                if s.completed { "" } else { "  [INCOMPLETE]" },
            );
        }
        None => {
            let _ = writeln!(out, "{pad}{}  est={} actual=-", op_label(expr), est);
        }
    }
    let spans = span.map(|s| s.children.as_slice()).unwrap_or(&[]);
    for (i, c) in expr.children().into_iter().enumerate() {
        analyze_into(c, estimator, spans.get(i), depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_formula::Term;

    #[test]
    fn off_tracer_records_nothing_and_allocates_nothing() {
        let mut t = Tracer::off();
        let e = RaExpr::Unit;
        t.open(&e);
        t.note_input(5);
        t.note_parallel();
        t.close(Some(&Relation::unit()));
        assert!(t.finish().is_none());
    }

    #[test]
    fn span_tree_mirrors_open_close_nesting() {
        let mut t = Tracer::on();
        let join = RaExpr::join(
            RaExpr::scan("P", vec![Term::var("x")]),
            RaExpr::scan("Q", vec![Term::var("x")]),
        );
        t.open(&join);
        t.open(join.children()[0]);
        t.close(Some(&Relation::new(1)));
        t.open(join.children()[1]);
        t.close(Some(&Relation::new(1)));
        t.close(Some(&Relation::new(1)));
        let root = t.finish().expect("one root span");
        assert_eq!(root.op, "join");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].op, "scan P");
        assert_eq!(root.children[1].op, "scan Q");
        assert!(root.completed);
        assert_eq!(root.span_count(), 3);
    }

    #[test]
    fn error_close_leaves_incomplete_partial_tree() {
        let mut t = Tracer::on();
        let join = RaExpr::join(
            RaExpr::scan("P", vec![Term::var("x")]),
            RaExpr::scan("Q", vec![Term::var("x")]),
        );
        t.open(&join);
        t.open(join.children()[0]);
        t.close(None); // the scan tripped
        t.close(None); // so the join unwinds too
        let root = t.finish().expect("partial root");
        assert!(!root.completed);
        let hot = root.last_incomplete().unwrap();
        assert_eq!(hot.op, "scan P");
    }

    #[test]
    fn forked_branches_adopt_in_call_order() {
        let mut t = Tracer::on();
        let join = RaExpr::join(
            RaExpr::scan("P", vec![Term::var("x")]),
            RaExpr::scan("Q", vec![Term::var("x")]),
        );
        t.open(&join);
        let mut l = t.fork();
        let mut r = t.fork();
        r.open(join.children()[1]);
        r.close(Some(&Relation::new(1)));
        l.open(join.children()[0]);
        l.close(Some(&Relation::new(1)));
        t.note_parallel();
        t.adopt(l);
        t.adopt(r);
        t.close(Some(&Relation::new(1)));
        let root = t.finish().unwrap();
        assert!(root.parallel);
        assert_eq!(root.children[0].op, "scan P", "left adopted first");
        assert_eq!(root.children[1].op, "scan Q");
    }

    #[test]
    fn stage_tracer_round_trip_and_failure_attribution() {
        let mut st = StageTracer::on();
        st.begin(Stage::Classify, 7);
        st.end(7, "class=allowed");
        st.begin(Stage::Ranf, 7);
        st.fail();
        let trace = st.into_trace(None);
        assert_eq!(trace.stages.len(), 2);
        assert_eq!(trace.failed_stage(), Some(Stage::Ranf));
        let det = trace.deterministic();
        assert!(det.contains("stage classify: nodes 7 -> 7 [class=allowed]"));
        assert!(det.contains("stage ranf: nodes 7 -> 0 FAILED"));
    }

    #[test]
    fn json_export_is_well_formed_enough() {
        let mut st = StageTracer::on();
        st.begin(Stage::Eval, 3);
        st.end(1, "tuples=\"quoted\"");
        let mut t = Tracer::on();
        t.open(&RaExpr::Unit);
        t.close(Some(&Relation::unit()));
        let json = st.into_trace(t.finish()).to_json();
        assert!(json.starts_with("{\"stages\":["));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"eval\":{\"op\":\"unit\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces: {json}"
        );
    }

    #[test]
    fn estimates_are_deterministic_and_ordered() {
        let db = Database::from_facts("P(1, 2)\nP(2, 3)\nP(3, 3)\nQ(2)\nQ(3)").unwrap();
        let scan = RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]);
        assert_eq!(estimate_rows(&scan, &db), 3);
        let constrained = RaExpr::scan("P", vec![Term::var("x"), Term::val(3)]);
        assert!(estimate_rows(&constrained, &db) <= 3);
        let join = RaExpr::join(scan.clone(), RaExpr::scan("Q", vec![Term::var("y")]));
        // Containment assumption: 3*2 / max(d_y(P)=2, d_y(Q)=2) = 3.
        assert_eq!(estimate_rows(&join, &db), 3);
        assert_eq!(estimate_rows(&RaExpr::scan("Zzz", vec![]), &db), 0);
        let plan = render_plan(&join, &db);
        assert!(plan.contains("join  (est 3, cost "), "{plan}");
        assert!(plan.contains("  scan P  (est 3, cost "), "{plan}");
        assert!(
            estimate_cost(&join, &db) > estimate_cost(&scan, &db),
            "a join must cost more than one of its scans"
        );
    }
}
