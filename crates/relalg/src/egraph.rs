//! Equality saturation over relational algebra plans — the
//! `planner=saturate` layer on top of the cost-based optimizer.
//!
//! The cost-based pass ([`crate::optimize::optimize`]) explores exactly one
//! algebraic dimension: join order. This module explores the *rewrite
//! space* around a plan the way cranelift's mid-end explores pure
//! expressions: the plan is loaded into an **e-graph** (equivalence
//! classes of e-nodes, merged by union-find), a curated registry of
//! soundness-proven rewrite rules ([`rules`]) enriches the classes until a
//! fixpoint or a bound is reached, and a cost-based **extraction** walks
//! the saturated graph picking the cheapest representative of every class
//! under the [`Estimator`]'s model. The chosen plan is *never costlier
//! than the input*: extraction competes against the cost-based seed plan
//! and the seed wins ties.
//!
//! ## Equivalence modulo column order
//!
//! Relations here carry variable-*named* columns, and every operator
//! (natural join, union with right-side realignment, the generalized
//! difference, selections and projections by name) is insensitive to the
//! *order* of its operands' columns — only the column *set* and the set of
//! named rows matter. An e-class therefore holds plans equal as **sets of
//! named rows over one column set**, which is what lets join commutativity
//! live in the graph even though `A ⨝ B` and `B ⨝ A` present their columns
//! in different orders. The final presentation order is restored after
//! extraction with one projection onto the seed plan's column sequence, so
//! callers observe bit-identical answers.
//!
//! ## Budgets
//!
//! Saturation is bounded three ways, all charged to the [`Budget`]
//! governor: every iteration passes a [`Budget::checkpoint`] (deadlines,
//! cancellation, fault injection), the seed plan is charged against
//! [`Budget::check_nodes`] exactly like the rewriting stages before it,
//! and the e-graph stops growing — gracefully, keeping everything proven
//! so far — once it holds `min(max_nodes, 2048)` e-nodes or has run
//! [`MAX_ITERATIONS`] rounds. Exceeding a bound never yields a wrong
//! plan: extraction only reads equalities that were fully proven.
//!
//! The rule catalog is documented (statement, side conditions, soundness
//! argument, provenance, before/after plans) in `docs/REWRITES.md`;
//! `scripts/check.sh` greps this module's registry against the catalog so
//! the two can never drift.

use crate::database::Database;
use crate::expr::{RaExpr, SelPred};
use crate::govern::{Budget, BudgetExceeded, Stage};
use crate::optimize::optimize;
use crate::stats::Estimator;
use rc_formula::fxhash::FxHashMap;
use rc_formula::Var;
use std::fmt;
use std::sync::Arc;

/// Saturation stops after this many rule-matching rounds even when the
/// graph has not reached a fixpoint (join commutativity/associativity
/// alone would otherwise enumerate every join tree).
pub const MAX_ITERATIONS: usize = 6;

/// The e-graph never grows beyond this many e-nodes; a tighter
/// [`Budget::max_nodes`] lowers the cap further.
pub const MAX_ENODES: usize = 2048;

// --------------------------------------------------------------- e-graph --

/// An e-node: one operator application whose children are e-class ids.
/// Leaves (`Scan`/`Single`/`Unit`/`Empty`) carry the leaf expression
/// verbatim.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum ENode {
    Leaf(RaExpr),
    Join(usize, usize),
    Union(usize, usize),
    Diff(usize, usize),
    Project(usize, Vec<Var>),
    Select(usize, SelPred),
    Duplicate(usize, Var, Var),
}

impl ENode {
    /// The node with every child id routed to its class root.
    fn canon(&self, g: &EGraph) -> ENode {
        match self {
            ENode::Leaf(e) => ENode::Leaf(e.clone()),
            ENode::Join(a, b) => ENode::Join(g.find(*a), g.find(*b)),
            ENode::Union(a, b) => ENode::Union(g.find(*a), g.find(*b)),
            ENode::Diff(a, b) => ENode::Diff(g.find(*a), g.find(*b)),
            ENode::Project(a, cols) => ENode::Project(g.find(*a), cols.clone()),
            ENode::Select(a, p) => ENode::Select(g.find(*a), *p),
            ENode::Duplicate(a, s, d) => ENode::Duplicate(g.find(*a), *s, *d),
        }
    }
}

/// One equivalence class: the e-nodes proven equal, plus the class
/// invariant — the sorted column *set* every member produces (members may
/// present those columns in different orders; see the module docs).
#[derive(Default)]
struct EClass {
    nodes: Vec<ENode>,
    cols: Vec<Var>,
}

/// The e-graph: a union-find over class ids, the classes, and the
/// hash-cons memo mapping canonical e-nodes to their class (the same idea
/// as [`crate::plan::Interner`], extended with merging).
#[derive(Default)]
struct EGraph {
    parent: Vec<usize>,
    classes: Vec<EClass>,
    memo: FxHashMap<ENode, usize>,
}

impl EGraph {
    fn find(&self, mut i: usize) -> usize {
        while self.parent[i] != i {
            i = self.parent[i];
        }
        i
    }

    /// Root class ids in ascending order — the deterministic iteration
    /// order every matcher and the extractor use.
    fn roots(&self) -> Vec<usize> {
        (0..self.classes.len())
            .filter(|&i| self.find(i) == i)
            .collect()
    }

    fn nodes(&self, c: usize) -> &[ENode] {
        &self.classes[self.find(c)].nodes
    }

    /// The class's column set, sorted (an invariant of every member).
    fn colset(&self, c: usize) -> &[Var] {
        &self.classes[self.find(c)].cols
    }

    fn total_enodes(&self) -> usize {
        self.roots()
            .iter()
            .map(|&r| self.classes[r].nodes.len())
            .sum()
    }

    fn colset_of(&self, n: &ENode) -> Vec<Var> {
        let mut cols = match n {
            ENode::Leaf(e) => e.cols(),
            ENode::Join(a, b) => {
                let mut cols = self.colset(*a).to_vec();
                for v in self.colset(*b) {
                    if !cols.contains(v) {
                        cols.push(*v);
                    }
                }
                cols
            }
            ENode::Union(a, _) | ENode::Diff(a, _) | ENode::Select(a, _) => {
                self.colset(*a).to_vec()
            }
            ENode::Project(_, cols) => cols.clone(),
            ENode::Duplicate(a, _, dst) => {
                let mut cols = self.colset(*a).to_vec();
                cols.push(*dst);
                cols
            }
        };
        cols.sort();
        cols.dedup();
        cols
    }

    /// Intern a whole expression tree, returning its class.
    fn add_expr(&mut self, e: &RaExpr) -> usize {
        let node = match e {
            RaExpr::Join(l, r) => ENode::Join(self.add_expr(l), self.add_expr(r)),
            RaExpr::Union(l, r) => ENode::Union(self.add_expr(l), self.add_expr(r)),
            RaExpr::Diff(l, r) => ENode::Diff(self.add_expr(l), self.add_expr(r)),
            RaExpr::Project { input, cols } => ENode::Project(self.add_expr(input), cols.clone()),
            RaExpr::Select { input, pred } => ENode::Select(self.add_expr(input), *pred),
            RaExpr::Duplicate { input, src, dst } => {
                ENode::Duplicate(self.add_expr(input), *src, *dst)
            }
            leaf => ENode::Leaf(leaf.clone()),
        };
        self.add(node)
    }

    /// Intern one node, creating a fresh class when it is unknown.
    fn add(&mut self, node: ENode) -> usize {
        let node = node.canon(self);
        if let Some(&id) = self.memo.get(&node) {
            return self.find(id);
        }
        let cols = self.colset_of(&node);
        let id = self.classes.len();
        self.classes.push(EClass {
            nodes: vec![node.clone()],
            cols,
        });
        self.parent.push(id);
        self.memo.insert(node, id);
        id
    }

    /// Record that `node` is equal to everything in `target`. When the
    /// node is already interned elsewhere this *merges* the two classes
    /// (the union-find half of saturation). Returns whether the graph
    /// changed.
    fn add_to(&mut self, target: usize, node: ENode) -> bool {
        let target = self.find(target);
        let node = node.canon(self);
        if let Some(&id) = self.memo.get(&node) {
            return self.merge(id, target);
        }
        debug_assert_eq!(
            self.colset_of(&node),
            self.classes[target].cols,
            "rewrite changed the column set — unsound rule"
        );
        self.memo.insert(node.clone(), target);
        self.classes[target].nodes.push(node);
        true
    }

    /// Union two classes; the smaller root id wins (deterministic).
    fn merge(&mut self, a: usize, b: usize) -> bool {
        let (a, b) = (self.find(a), self.find(b));
        if a == b {
            return false;
        }
        let (winner, loser) = if a < b { (a, b) } else { (b, a) };
        debug_assert_eq!(self.classes[winner].cols, self.classes[loser].cols);
        self.parent[loser] = winner;
        let moved = std::mem::take(&mut self.classes[loser].nodes);
        self.classes[winner].nodes.extend(moved);
        true
    }

    /// Restore congruence after a batch of additions and merges:
    /// re-canonicalize every node, dedup within classes, and merge classes
    /// that now share a node, repeating until no merge fires.
    fn rebuild(&mut self) {
        loop {
            let mut memo: FxHashMap<ENode, usize> = FxHashMap::default();
            let mut pending: Vec<(usize, usize)> = Vec::new();
            for id in 0..self.classes.len() {
                if self.find(id) != id {
                    continue;
                }
                let nodes = std::mem::take(&mut self.classes[id].nodes);
                let mut fresh: Vec<ENode> = Vec::with_capacity(nodes.len());
                for n in nodes {
                    let c = n.canon(self);
                    if !fresh.contains(&c) {
                        fresh.push(c);
                    }
                }
                for n in &fresh {
                    match memo.get(n) {
                        Some(&other) if self.find(other) != id => pending.push((other, id)),
                        Some(_) => {}
                        None => {
                            memo.insert(n.clone(), id);
                        }
                    }
                }
                self.classes[id].nodes = fresh;
            }
            self.memo = memo;
            if pending.is_empty() {
                break;
            }
            for (a, b) in pending {
                self.merge(a, b);
            }
        }
    }

    // ---------------------------------------------------------- extract --

    /// Cost-based extraction: pick, per class, the cheapest expression
    /// buildable from already-extracted children, iterating to a fixpoint
    /// (classes in a cycle become extractable as soon as one member's
    /// children resolve). Costs come from the full [`Estimator`] model —
    /// including harvested-cardinality feedback — evaluated on the rebuilt
    /// subtree, exactly like the cost-based planner's own gate.
    fn extract(&self, root: usize, est: &Estimator) -> Option<RaExpr> {
        let mut best: Vec<Option<(f64, RaExpr)>> = vec![None; self.classes.len()];
        for _ in 0..self.classes.len().max(1) {
            let mut changed = false;
            for id in self.roots() {
                for node in self.nodes(id) {
                    let Some(expr) = self.build(node, &best) else {
                        continue;
                    };
                    let cost = est.cost(&expr);
                    match &best[id] {
                        Some((c, _)) if *c <= cost => {}
                        _ => {
                            best[id] = Some((cost, expr));
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        best[self.find(root)].clone().map(|(_, e)| e)
    }

    fn build(&self, node: &ENode, best: &[Option<(f64, RaExpr)>]) -> Option<RaExpr> {
        let get = |i: &usize| best[self.find(*i)].as_ref().map(|(_, e)| e.clone());
        Some(match node {
            ENode::Leaf(e) => e.clone(),
            ENode::Join(a, b) => RaExpr::join(get(a)?, get(b)?),
            ENode::Union(a, b) => RaExpr::union(get(a)?, get(b)?),
            ENode::Diff(a, b) => RaExpr::diff(get(a)?, get(b)?),
            ENode::Project(a, cols) => RaExpr::project(get(a)?, cols.clone()),
            ENode::Select(a, p) => RaExpr::select(get(a)?, *p),
            ENode::Duplicate(a, src, dst) => RaExpr::Duplicate {
                input: Arc::new(get(a)?),
                src: *src,
                dst: *dst,
            },
        })
    }
}

// ----------------------------------------------------------------- rules --

/// A recipe for a new e-node over existing classes: matchers return these
/// so rule application (which needs `&mut` access to intern intermediate
/// nodes) stays separate from matching (which holds `&` borrows).
enum Sketch {
    /// An existing class, used verbatim.
    C(usize),
    Join(Box<Sketch>, Box<Sketch>),
    Union(Box<Sketch>, Box<Sketch>),
    Diff(Box<Sketch>, Box<Sketch>),
    Select(Box<Sketch>, SelPred),
    Project(Box<Sketch>, Vec<Var>),
}

impl Sketch {
    fn class(self, g: &mut EGraph) -> usize {
        match self {
            Sketch::C(id) => g.find(id),
            other => {
                let n = other.node(g);
                g.add(n)
            }
        }
    }

    /// The top-level e-node this sketch describes (interning every
    /// intermediate level). Matchers never emit a bare `C` at top level.
    fn node(self, g: &mut EGraph) -> ENode {
        match self {
            Sketch::C(_) => unreachable!("top-level sketch is never a bare class"),
            Sketch::Join(a, b) => ENode::Join(a.class(g), b.class(g)),
            Sketch::Union(a, b) => ENode::Union(a.class(g), b.class(g)),
            Sketch::Diff(a, b) => ENode::Diff(a.class(g), b.class(g)),
            Sketch::Select(a, p) => ENode::Select(a.class(g), p),
            Sketch::Project(a, cols) => ENode::Project(a.class(g), cols),
        }
    }
}

fn c(id: usize) -> Box<Sketch> {
    Box::new(Sketch::C(id))
}

/// One registered rewrite rule: a named, soundness-proven relational
/// algebra equivalence. The `name` is the stable key `docs/REWRITES.md`
/// documents the rule under — `scripts/check.sh` cross-greps the two so
/// registry and catalog cannot drift.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RewriteRule {
    /// Stable kebab-case rule name (the catalog key).
    pub name: &'static str,
    /// One-line statement of the equivalence with its side conditions.
    pub equivalence: &'static str,
}

struct RuleDef {
    meta: RewriteRule,
    find: fn(&EGraph) -> Vec<(usize, Sketch)>,
}

/// σp(A ⨝ B) = σp(A) ⨝ B when cols(p) ⊆ cols(A), and symmetrically into B.
///
/// # Soundness
///
/// A row survives σp iff its values on cols(p) satisfy p, and the natural
/// join assembles each output row from one A-row and one B-row agreeing on
/// the shared columns. When cols(p) ⊆ cols(A), the output row's values on
/// cols(p) are exactly the contributing A-row's values there, so filtering
/// the output by p equals filtering A's contributions by p first — the
/// same argument Van Gelder & Topor's Sec. 9.3 translation relies on when
/// it fuses restrictive conjuncts into their generators.
fn find_select_push_join(g: &EGraph) -> Vec<(usize, Sketch)> {
    let mut out = Vec::new();
    for cls in g.roots() {
        for n in g.nodes(cls) {
            let ENode::Select(input, pred) = n else {
                continue;
            };
            for m in g.nodes(*input) {
                let ENode::Join(l, r) = m else {
                    continue;
                };
                let pc = pred.cols();
                if pc.iter().all(|v| g.colset(*l).contains(v)) {
                    let side = Box::new(Sketch::Select(c(*l), *pred));
                    out.push((cls, Sketch::Join(side, c(*r))));
                }
                if pc.iter().all(|v| g.colset(*r).contains(v)) {
                    let side = Box::new(Sketch::Select(c(*r), *pred));
                    out.push((cls, Sketch::Join(c(*l), side)));
                }
            }
        }
    }
    out
}

/// σp(A ∪ B) = σp(A) ∪ σp(B).
///
/// # Soundness
///
/// Union (with the right side realigned to the left's column order) is
/// row-set union over one column set, and σp is a per-row filter on
/// cols(p) ⊆ that set; a per-row filter distributes over set union
/// unconditionally. No side condition beyond the union's own validity.
fn find_select_push_union(g: &EGraph) -> Vec<(usize, Sketch)> {
    let mut out = Vec::new();
    for cls in g.roots() {
        for n in g.nodes(cls) {
            let ENode::Select(input, pred) = n else {
                continue;
            };
            for m in g.nodes(*input) {
                let ENode::Union(l, r) = m else {
                    continue;
                };
                let sl = Box::new(Sketch::Select(c(*l), *pred));
                let sr = Box::new(Sketch::Select(c(*r), *pred));
                out.push((cls, Sketch::Union(sl, sr)));
            }
        }
    }
    out
}

/// σp(A − B) = σp(A) − B — the **left side only**.
///
/// # Soundness
///
/// The generalized difference keeps each A-row whose projection onto
/// cols(B) does not appear in B; σp then filters the survivors on
/// cols(p) ⊆ cols(A). Filtering before or after the membership test is
/// the same set because the test never changes a row. Pushing into the
/// *right* side is **unsound**: with A = {1, 2}, B = {2} and p = (x ≠ 2),
/// σp(A − B) = {1} but A − σp(B) = A − ∅ = {1, 2} — the audit pinned in
/// [`crate::optimize`]'s module docs.
fn find_select_push_diff(g: &EGraph) -> Vec<(usize, Sketch)> {
    let mut out = Vec::new();
    for cls in g.roots() {
        for n in g.nodes(cls) {
            let ENode::Select(input, pred) = n else {
                continue;
            };
            for m in g.nodes(*input) {
                let ENode::Diff(l, r) = m else {
                    continue;
                };
                let sl = Box::new(Sketch::Select(c(*l), *pred));
                out.push((cls, Sketch::Diff(sl, c(*r))));
            }
        }
    }
    out
}

/// (A ⨝ C) ∪ (B ⨝ C) = (A ∪ B) ⨝ C when cols(A) = cols(B) as sets (and
/// the mirrored common-left-factor form).
///
/// # Soundness
///
/// The natural join distributes over union: a row is in (A ∪ B) ⨝ C iff
/// it decomposes into a C-row and an (A ∪ B)-row agreeing on the shared
/// columns, iff it is in A ⨝ C or in B ⨝ C. The side condition
/// cols(A) = cols(B) makes A ∪ B well-formed *and* pins both joins to the
/// same shared-column set with C, so "agreeing on the shared columns"
/// means the same thing on both sides of the equation. The common factor
/// C is recognized as one e-*class* (anything proven equal), not one
/// syntactic subtree.
fn find_union_factor(g: &EGraph) -> Vec<(usize, Sketch)> {
    let mut out = Vec::new();
    for cls in g.roots() {
        for n in g.nodes(cls) {
            let ENode::Union(x, y) = n else {
                continue;
            };
            for jx in g.nodes(*x) {
                let ENode::Join(a, b) = jx else {
                    continue;
                };
                for jy in g.nodes(*y) {
                    let ENode::Join(p, q) = jy else {
                        continue;
                    };
                    // Common right factor: (A ⨝ C) ∪ (B ⨝ C).
                    if g.find(*b) == g.find(*q) && g.colset(*a) == g.colset(*p) {
                        let u = Box::new(Sketch::Union(c(*a), c(*p)));
                        out.push((cls, Sketch::Join(u, c(*b))));
                    }
                    // Common left factor: (C ⨝ A) ∪ (C ⨝ B).
                    if g.find(*a) == g.find(*p) && g.colset(*b) == g.colset(*q) {
                        let u = Box::new(Sketch::Union(c(*b), c(*q)));
                        out.push((cls, Sketch::Join(c(*a), u)));
                    }
                }
            }
        }
    }
    out
}

/// (A ∪ B) − W = (A − W) ∪ (B − W), matched in both orientations (the
/// factoring direction requires cols(A) = cols(B) and one shared W class).
///
/// # Soundness
///
/// The generalized difference is a per-row filter on its left operand:
/// keep t iff t's projection onto cols(W) is absent from W. A per-row
/// filter distributes over set union, in both directions. Distribution
/// needs no side condition beyond the input's validity (cols(W) ⊆ the
/// union's column set, which equals both branches' sets); factoring
/// additionally checks cols(A) = cols(B) so A ∪ B is well-formed, and
/// recognizes W as one e-class on both branches.
fn find_diff_distribute(g: &EGraph) -> Vec<(usize, Sketch)> {
    let mut out = Vec::new();
    for cls in g.roots() {
        for n in g.nodes(cls) {
            match n {
                // Distribute: (A ∪ B) − W.
                ENode::Diff(u, w) => {
                    for m in g.nodes(*u) {
                        let ENode::Union(a, b) = m else {
                            continue;
                        };
                        let da = Box::new(Sketch::Diff(c(*a), c(*w)));
                        let db = Box::new(Sketch::Diff(c(*b), c(*w)));
                        out.push((cls, Sketch::Union(da, db)));
                    }
                }
                // Factor: (A − W) ∪ (B − W).
                ENode::Union(x, y) => {
                    for dx in g.nodes(*x) {
                        let ENode::Diff(a, w1) = dx else {
                            continue;
                        };
                        for dy in g.nodes(*y) {
                            let ENode::Diff(b, w2) = dy else {
                                continue;
                            };
                            if g.find(*w1) == g.find(*w2) && g.colset(*a) == g.colset(*b) {
                                let u = Box::new(Sketch::Union(c(*a), c(*b)));
                                out.push((cls, Sketch::Diff(u, c(*w1))));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// π\[C\](A ⨝ B) = π\[C\](π\[Ca\](A) ⨝ π\[Cb\](B)) where Ca/Cb keep each
/// side's needed and shared join columns.
///
/// # Soundness
///
/// The join matches rows on the shared columns only, and the outer
/// projection keeps C only — so a column of A that is neither shared nor
/// in C influences nothing but set-semantics multiplicity, which set
/// semantics erases. Keeping Ca = cols(A) ∩ (C ∪ shared) therefore
/// preserves exactly the joinable combinations and their projections
/// (likewise Cb). Dropping a *shared* column would change the join
/// predicate, so shared columns are always retained. A side that becomes
/// 0-ary (π\[∅\]) degenerates to an existence test, which is precisely the
/// cross-product semantics the natural join gives 0-ary operands. This is
/// the e-graph form of the cost pass's early-projection heuristic
/// ([`crate::optimize`]), generalized past the single shape it rewrote.
fn find_project_narrow(g: &EGraph) -> Vec<(usize, Sketch)> {
    let mut out = Vec::new();
    for cls in g.roots() {
        for n in g.nodes(cls) {
            let ENode::Project(input, cols) = n else {
                continue;
            };
            for m in g.nodes(*input) {
                let ENode::Join(l, r) = m else {
                    continue;
                };
                let (lc, rc) = (g.colset(*l), g.colset(*r));
                let shared: Vec<Var> = lc.iter().filter(|v| rc.contains(v)).copied().collect();
                let keep = |side: &[Var]| -> Vec<Var> {
                    side.iter()
                        .filter(|v| cols.contains(v) || shared.contains(v))
                        .copied()
                        .collect()
                };
                let (kl, kr) = (keep(lc), keep(rc));
                if kl.len() == lc.len() && kr.len() == rc.len() {
                    continue;
                }
                let narrow = |id: usize, k: Vec<Var>, full: usize| -> Box<Sketch> {
                    if k.len() == full {
                        c(id)
                    } else {
                        Box::new(Sketch::Project(c(id), k))
                    }
                };
                let j = Sketch::Join(narrow(*l, kl, lc.len()), narrow(*r, kr, rc.len()));
                out.push((cls, Sketch::Project(Box::new(j), cols.clone())));
            }
        }
    }
    out
}

/// A ⨝ B = B ⨝ A.
///
/// # Soundness
///
/// The natural join matches rows by column *name*; the set of assembled
/// named rows is symmetric in the operands. Only the column presentation
/// order differs, and e-class equivalence is modulo column order (the
/// extracted plan is re-projected onto the seed's column sequence, so the
/// answer presentation never changes).
fn find_join_commute(g: &EGraph) -> Vec<(usize, Sketch)> {
    let mut out = Vec::new();
    for cls in g.roots() {
        for n in g.nodes(cls) {
            let ENode::Join(l, r) = n else {
                continue;
            };
            out.push((cls, Sketch::Join(c(*r), c(*l))));
        }
    }
    out
}

/// (A ⨝ B) ⨝ C = A ⨝ (B ⨝ C).
///
/// # Soundness
///
/// Either side assembles exactly the named rows whose projections onto
/// cols(A), cols(B), cols(C) lie in A, B, C respectively — the natural
/// join is associative over named rows regardless of how the three column
/// sets overlap. Together with `join-commute` this lets saturation reach
/// alternative join trees; the cheapest is then chosen by extraction and
/// polished by the existing DP reorderer, which the saturating planner
/// runs on the extracted tree.
fn find_join_associate(g: &EGraph) -> Vec<(usize, Sketch)> {
    let mut out = Vec::new();
    for cls in g.roots() {
        for n in g.nodes(cls) {
            let ENode::Join(x, z) = n else {
                continue;
            };
            for m in g.nodes(*x) {
                let ENode::Join(a, b) = m else {
                    continue;
                };
                let inner = Box::new(Sketch::Join(c(*b), c(*z)));
                out.push((cls, Sketch::Join(c(*a), inner)));
            }
        }
    }
    out
}

const RULE_DEFS: &[RuleDef] = &[
    RuleDef {
        meta: RewriteRule {
            name: "select-push-join",
            equivalence: "σp(A ⨝ B) = σp(A) ⨝ B  when cols(p) ⊆ cols(A); symmetrically into B",
        },
        find: find_select_push_join,
    },
    RuleDef {
        meta: RewriteRule {
            name: "select-push-union",
            equivalence: "σp(A ∪ B) = σp(A) ∪ σp(B)",
        },
        find: find_select_push_union,
    },
    RuleDef {
        meta: RewriteRule {
            name: "select-push-diff",
            equivalence: "σp(A − B) = σp(A) − B  (left side only; right-side pushdown is unsound)",
        },
        find: find_select_push_diff,
    },
    RuleDef {
        meta: RewriteRule {
            name: "union-factor",
            equivalence: "(A ⨝ C) ∪ (B ⨝ C) = (A ∪ B) ⨝ C  when cols(A) = cols(B)",
        },
        find: find_union_factor,
    },
    RuleDef {
        meta: RewriteRule {
            name: "diff-distribute",
            equivalence: "(A ∪ B) − W = (A − W) ∪ (B − W)  (both orientations)",
        },
        find: find_diff_distribute,
    },
    RuleDef {
        meta: RewriteRule {
            name: "project-narrow",
            equivalence: "π[C](A ⨝ B) = π[C](π[Ca](A) ⨝ π[Cb](B)), Ca/Cb = needed ∪ shared cols",
        },
        find: find_project_narrow,
    },
    RuleDef {
        meta: RewriteRule {
            name: "join-commute",
            equivalence: "A ⨝ B = B ⨝ A  (named columns; presentation restored at extraction)",
        },
        find: find_join_commute,
    },
    RuleDef {
        meta: RewriteRule {
            name: "join-associate",
            equivalence: "(A ⨝ B) ⨝ C = A ⨝ (B ⨝ C)",
        },
        find: find_join_associate,
    },
];

/// The registered rewrite rules, in application order. Every entry has a
/// matching section in `docs/REWRITES.md` (enforced by `scripts/check.sh`).
pub fn rules() -> Vec<RewriteRule> {
    RULE_DEFS.iter().map(|d| d.meta).collect()
}

// ---------------------------------------------------------------- driver --

/// What one saturation run did — surfaced verbatim as the `egraph=`
/// fragment of the Optimize stage's trace detail (deterministic: no wall
/// times, only counts).
#[derive(Clone, Debug, PartialEq)]
pub struct SaturationReport {
    /// Rule-matching rounds run.
    pub iterations: usize,
    /// E-classes in the final graph.
    pub classes: usize,
    /// E-nodes in the final graph.
    pub enodes: usize,
    /// Graph-changing applications per registered rule, in registry order
    /// (zero entries retained so the vector always mirrors [`rules`]).
    pub applied: Vec<(&'static str, usize)>,
    /// Did saturation reach a fixpoint (vs stopping on the node cap or
    /// [`MAX_ITERATIONS`])?
    pub saturated: bool,
    /// Was the extracted plan strictly cheaper than the cost-based seed?
    pub improved: bool,
}

impl SaturationReport {
    /// Total graph-changing rule applications across all rules.
    pub fn total_applied(&self) -> usize {
        self.applied.iter().map(|(_, n)| n).sum()
    }
}

impl fmt::Display for SaturationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "classes:{},nodes:{},iters:{},applied:{}",
            self.classes,
            self.enodes,
            self.iterations,
            self.total_applied()
        )?;
        let fired: Vec<String> = self
            .applied
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(name, n)| format!("{name}:{n}"))
            .collect();
        if !fired.is_empty() {
            write!(f, "[{}]", fired.join(","))?;
        }
        write!(
            f,
            ",saturated:{},improved:{}",
            self.saturated, self.improved
        )
    }
}

/// Equality-saturate a plan under a resource [`Budget`].
///
/// Seeds the e-graph with the cost-based plan ([`optimize`]), saturates it
/// under the registered [`rules`] (bounded by [`MAX_ITERATIONS`], the
/// e-node cap, and the budget's checkpoints), extracts the cheapest
/// representative under `db`'s [`Estimator`], re-projects it onto the
/// seed's column order, polishes it with one more [`optimize`] pass (this
/// is how commutativity/associativity feed the existing DP join
/// reorderer), and keeps whichever of {extracted, seed} the estimator
/// prices lower — the **extraction-never-costlier** invariant.
///
/// Errors only through the governor: cancellation, deadline, fault
/// injection, or a [`Budget::max_nodes`] bound smaller than the seed plan.
pub fn saturate_governed(
    e: &RaExpr,
    db: &Database,
    budget: &Budget,
) -> Result<(RaExpr, SaturationReport), BudgetExceeded> {
    budget.checkpoint(Stage::Optimize)?;
    let seed = optimize(e, db);
    budget.check_nodes(Stage::Optimize, seed.node_count() as u64)?;
    let cap = budget
        .max_nodes()
        .map_or(MAX_ENODES, |n| (n as usize).min(MAX_ENODES));

    let mut g = EGraph::default();
    let root = g.add_expr(&seed);
    let mut applied = vec![0usize; RULE_DEFS.len()];
    let mut iterations = 0;
    let mut saturated = false;
    'outer: while iterations < MAX_ITERATIONS {
        budget.checkpoint(Stage::Optimize)?;
        iterations += 1;
        let mut changed = false;
        for (i, def) in RULE_DEFS.iter().enumerate() {
            for (target, sketch) in (def.find)(&g) {
                if g.total_enodes() >= cap {
                    // Stop growing gracefully: everything proven so far
                    // stays usable by extraction.
                    g.rebuild();
                    break 'outer;
                }
                let node = sketch.node(&mut g);
                if g.add_to(target, node) {
                    applied[i] += 1;
                    changed = true;
                }
            }
        }
        g.rebuild();
        if !changed {
            saturated = true;
            break;
        }
    }

    let est = Estimator::new(db);
    let (expr, improved) = match g.extract(g.find(root), &est) {
        Some(extracted) => {
            let aligned = align_columns(extracted, seed.cols());
            let candidate = optimize(&aligned, db);
            if est.cost(&candidate) < est.cost(&seed) {
                (candidate, true)
            } else {
                (seed, false)
            }
        }
        None => (seed, false),
    };
    let report = SaturationReport {
        iterations,
        classes: g.roots().len(),
        enodes: g.total_enodes(),
        applied: RULE_DEFS
            .iter()
            .zip(&applied)
            .map(|(d, &n)| (d.meta.name, n))
            .collect(),
        saturated,
        improved,
    };
    Ok((expr, report))
}

/// Present `e`'s columns in exactly the order `want` (a permutation of
/// `e`'s column set) — the projection that restores the caller-visible
/// column sequence after order-insensitive rewriting.
fn align_columns(e: RaExpr, want: Vec<Var>) -> RaExpr {
    if e.cols() == want {
        e
    } else {
        RaExpr::project(e, want)
    }
}

/// Equality-saturate a plan with an unlimited budget — the convenience
/// form of [`saturate_governed`].
///
/// The result computes the same relation as `e` (same rows, same column
/// order) and is never estimated costlier:
///
/// ```
/// use rc_formula::Term;
/// use rc_relalg::{eval, saturate, Database, Estimator, RaExpr};
///
/// let db = Database::from_facts(
///     "A(1, 10)\nB(2, 10)\nC(10, 5)\nC(10, 6)\nC(11, 7)",
/// ).unwrap();
/// let ab = |p: &str| RaExpr::scan(p, vec![Term::var("x"), Term::var("y")]);
/// let cc = || RaExpr::scan("C", vec![Term::var("y"), Term::var("z")]);
/// // (A ⨝ C) ∪ (B ⨝ C): the cost-based planner keeps both joins; the
/// // union-factor rule proves (A ∪ B) ⨝ C equal and extraction picks it.
/// let plan = RaExpr::union(RaExpr::join(ab("A"), cc()), RaExpr::join(ab("B"), cc()));
/// let rewritten = saturate(&plan, &db);
/// assert_eq!(eval(&rewritten, &db).unwrap(), eval(&plan, &db).unwrap());
/// let est = Estimator::new(&db);
/// assert!(est.cost(&rewritten) <= est.cost(&plan));
/// ```
pub fn saturate(e: &RaExpr, db: &Database) -> RaExpr {
    saturate_governed(e, db, Budget::unlimited())
        .expect("unlimited budget cannot trip")
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::optimize::simplify;
    use rc_formula::{Term, Value};

    fn var(s: &str) -> Var {
        Var::new(s)
    }

    fn skewed_db() -> Database {
        // A and B small, C large: factoring the shared C join wins.
        let mut facts = String::new();
        for i in 0..6 {
            facts.push_str(&format!("A({i}, {})\n", i % 3));
            facts.push_str(&format!("B({}, {})\n", i + 10, i % 3));
        }
        for i in 0..60 {
            facts.push_str(&format!("C({}, {i})\n", i % 3));
        }
        Database::from_facts(&facts).unwrap()
    }

    fn ab(p: &str) -> RaExpr {
        RaExpr::scan(p, vec![Term::var("x"), Term::var("y")])
    }

    fn cscan() -> RaExpr {
        RaExpr::scan("C", vec![Term::var("y"), Term::var("z")])
    }

    #[test]
    fn registry_names_are_unique_kebab_case() {
        let names: Vec<&str> = rules().iter().map(|r| r.name).collect();
        for (i, n) in names.iter().enumerate() {
            assert!(!names[..i].contains(n), "duplicate rule name {n}");
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "rule name {n} is not kebab-case"
            );
        }
        assert_eq!(names.len(), RULE_DEFS.len());
    }

    #[test]
    fn union_factor_fires_and_improves() {
        let db = skewed_db();
        let plan = RaExpr::union(
            RaExpr::join(ab("A"), cscan()),
            RaExpr::join(ab("B"), cscan()),
        );
        let (rewritten, report) = saturate_governed(&plan, &db, Budget::unlimited()).unwrap();
        let fired = report
            .applied
            .iter()
            .find(|(n, _)| *n == "union-factor")
            .unwrap()
            .1;
        assert!(fired > 0, "union-factor should match: {report}");
        assert!(report.improved, "factored plan should cost less: {report}");
        assert_eq!(rewritten.cols(), plan.cols(), "column order preserved");
        assert_eq!(eval(&rewritten, &db).unwrap(), eval(&plan, &db).unwrap());
        let est = Estimator::new(&db);
        assert!(est.cost(&rewritten) < est.cost(&optimize(&plan, &db)));
    }

    #[test]
    fn diff_factoring_discovered_from_distributed_form() {
        let db = skewed_db();
        let w = RaExpr::scan("C", vec![Term::var("x"), Term::var("y")]);
        let plan = RaExpr::union(
            RaExpr::diff(ab("A"), w.clone()),
            RaExpr::diff(ab("B"), w.clone()),
        );
        let (rewritten, report) = saturate_governed(&plan, &db, Budget::unlimited()).unwrap();
        let fired = report
            .applied
            .iter()
            .find(|(n, _)| *n == "diff-distribute")
            .unwrap()
            .1;
        assert!(fired > 0, "diff-distribute should match: {report}");
        assert_eq!(eval(&rewritten, &db).unwrap(), eval(&plan, &db).unwrap());
    }

    #[test]
    fn select_never_pushes_into_diff_right_side() {
        // The classic counterexample: A = {1, 2}, B = {2}, p = (x ≠ 2).
        let db = Database::from_facts("A(1)\nA(2)\nB(2)").unwrap();
        let a = RaExpr::scan("A", vec![Term::var("x")]);
        let b = RaExpr::scan("B", vec![Term::var("x")]);
        let plan = RaExpr::select(
            RaExpr::diff(a, b),
            SelPred::NeqConst(var("x"), Value::int(2)),
        );
        let rewritten = saturate(&plan, &db);
        let ans = eval(&rewritten, &db).unwrap();
        assert_eq!(ans, eval(&plan, &db).unwrap());
        assert_eq!(ans.len(), 1, "σ[x≠2](A − B) = {{1}}");
    }

    #[test]
    fn extraction_never_costlier_than_cost_plan() {
        let db = skewed_db();
        let est = Estimator::new(&db);
        let shapes = vec![
            RaExpr::union(
                RaExpr::join(ab("A"), cscan()),
                RaExpr::join(ab("B"), cscan()),
            ),
            RaExpr::project(RaExpr::join(ab("A"), cscan()), vec![var("x")]),
            RaExpr::select(
                RaExpr::diff(ab("A"), ab("B")),
                SelPred::NeqConst(var("x"), Value::int(1)),
            ),
            RaExpr::join(RaExpr::join(cscan(), ab("A")), ab("B")),
        ];
        for plan in shapes {
            let rewritten = saturate(&plan, &db);
            assert!(
                est.cost(&rewritten) <= est.cost(&optimize(&plan, &db)),
                "saturate must never cost more than optimize on {plan}"
            );
            assert!(
                est.cost(&rewritten) <= est.cost(&simplify(&plan)),
                "saturate must never cost more than simplify on {plan}"
            );
            assert_eq!(eval(&rewritten, &db).unwrap(), eval(&plan, &db).unwrap());
        }
    }

    #[test]
    fn cancelled_budget_trips_saturation() {
        let db = skewed_db();
        let budget = Budget::new();
        budget.cancel_handle().cancel();
        let plan = RaExpr::join(ab("A"), cscan());
        let err = saturate_governed(&plan, &db, &budget).unwrap_err();
        assert_eq!(err.stage, Stage::Optimize);
    }

    #[test]
    fn node_budget_smaller_than_seed_trips() {
        let db = skewed_db();
        let plan = RaExpr::union(
            RaExpr::join(ab("A"), cscan()),
            RaExpr::join(ab("B"), cscan()),
        );
        let budget = Budget::new().with_max_nodes(2);
        assert!(saturate_governed(&plan, &db, &budget).is_err());
    }

    #[test]
    fn tight_node_cap_degrades_gracefully() {
        let db = skewed_db();
        let plan = RaExpr::union(
            RaExpr::join(ab("A"), cscan()),
            RaExpr::join(ab("B"), cscan()),
        );
        // Enough for the seed, too tight to saturate: falls back to the
        // cost-based plan, never errors, never wrong.
        let budget = Budget::new().with_max_nodes(plan.node_count() as u64 + 2);
        let (rewritten, report) = saturate_governed(&plan, &db, &budget).unwrap();
        assert!(!report.saturated);
        assert_eq!(eval(&rewritten, &db).unwrap(), eval(&plan, &db).unwrap());
    }

    #[test]
    fn report_display_is_deterministic_and_compact() {
        let db = skewed_db();
        let plan = RaExpr::union(
            RaExpr::join(ab("A"), cscan()),
            RaExpr::join(ab("B"), cscan()),
        );
        let (_, r1) = saturate_governed(&plan, &db, Budget::unlimited()).unwrap();
        let (_, r2) = saturate_governed(&plan, &db, Budget::unlimited()).unwrap();
        assert_eq!(r1, r2, "saturation is deterministic");
        let s = r1.to_string();
        assert!(s.starts_with("classes:"), "{s}");
        assert!(s.contains("saturated:"), "{s}");
        assert!(!s.contains(' '), "no spaces in the trace fragment: {s}");
    }

    #[test]
    fn saturated_plans_validate() {
        let db = skewed_db();
        let shapes = vec![
            RaExpr::union(
                RaExpr::join(ab("A"), cscan()),
                RaExpr::join(ab("B"), cscan()),
            ),
            RaExpr::project(RaExpr::join(ab("A"), cscan()), vec![var("z"), var("x")]),
        ];
        for plan in shapes {
            let rewritten = saturate(&plan, &db);
            rewritten.validate(None).expect("extracted plan validates");
        }
    }
}
