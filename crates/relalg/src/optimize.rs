//! Algebraic simplification of expressions.
//!
//! The paper notes that "many simplifications of the relational algebra
//! expressions produced by the procedures of this section can be made during
//! their construction" (Sec. 9.3). The translation in `rc-safety` emits
//! straightforward expressions; this pass cleans them up:
//!
//! * cascade projections; drop identity projections;
//! * `⊤ ⋈ e → e` and `e ⋈ ⊤ → e`; `e ⋈ e → e` (set semantics — guarded by
//!   a column-set equality check, `join_dedup_applies`);
//! * propagate empty relations through join/select/project/diff/union;
//! * `e diff ∅ → e`;
//! * deduplicate syntactically equal union branches;
//! * push selections below joins (into the side holding their columns) and
//!   through unions;
//! * push projections through unions.
//!
//! Simplification is purely *plan-shaping*: it runs before any execution
//! policy is chosen, so it neither sees nor influences how the kernels
//! later partition an operator's data (`crate::eval`'s partition plan is
//! a function of runtime cardinalities and the [`crate::Budget`], not of
//! plan shape). Rewrites only have to preserve the relation — partition
//! invisibility then guarantees the row order too.
//!
//! ## Selection pushdown around `Diff` — soundness audit
//!
//! For the generalized difference `A diff B` the **only** sound pushdown is
//! into the *left* operand: `σ(A diff B) = σ(A) diff B`, because `diff`
//! keeps a subset of `A`'s rows and the filter commutes with "keep rows
//! whose projection has no partner in B". Pushing the predicate into the
//! *right* side instead — `A diff σ(B)` — is **unsound**: shrinking `B`
//! can only *grow* the difference, so rows that σ would have rejected (or
//! rows whose partners σ removed from `B`) leak into the output. Concretely
//! with `A = {1, 2}`, `B = {2}` and `σ = (x ≠ 2)`:
//! `σ(A − B) = {1}` but `A − σ(B) = A − ∅ = {1, 2}`. `push_select`
//! therefore never touches the right operand of a `Diff`; regression tests
//! below and the Diff-heavy property suite in `tests/prop_relalg.rs` pin
//! this.
//!
//! Simplification is semantics-preserving; a property test in the workspace
//! integration suite evaluates optimized and raw expressions side by side.

use crate::expr::{RaExpr, SelPred};
use std::sync::Arc;

/// May `e ⋈ e → e` fire for these (already simplified) operands? Requires
/// syntactic equality **and** column-*sequence* equality. Syntactic
/// equality implies equal column order today, but the guard keeps the
/// rewrite locally auditable: if a future rewrite ever reorders one side's
/// children (changing its column order) without renaming it, the dedup
/// stays off rather than silently changing the output column order.
fn join_dedup_applies(l: &RaExpr, r: &RaExpr) -> bool {
    l == r && l.cols() == r.cols()
}

/// Simplify to a fixpoint (each rewrite strictly shrinks the tree, so one
/// bottom-up pass that re-simplifies rebuilt nodes suffices).
pub fn simplify(e: &RaExpr) -> RaExpr {
    match e {
        RaExpr::Scan { .. } | RaExpr::Single { .. } | RaExpr::Unit | RaExpr::Empty { .. } => {
            e.clone()
        }
        RaExpr::Join(l, r) => {
            let l = simplify(l);
            let r = simplify(r);
            if matches!(l, RaExpr::Unit) {
                return r;
            }
            if matches!(r, RaExpr::Unit) {
                return l;
            }
            // Join with an empty side is empty over the merged columns.
            if is_empty(&l) || is_empty(&r) {
                let cols = RaExpr::Join(Arc::new(l), Arc::new(r)).cols();
                return RaExpr::Empty { cols };
            }
            // Set semantics: joining an expression with itself on all
            // columns is the identity (column-set guard included).
            if join_dedup_applies(&l, &r) {
                return l;
            }
            RaExpr::Join(Arc::new(l), Arc::new(r))
        }
        RaExpr::Union(l, r) => {
            let l = simplify(l);
            let r = simplify(r);
            if is_empty(&l) {
                return align_union_result(r, &l);
            }
            if is_empty(&r) || l == r {
                return l;
            }
            RaExpr::Union(Arc::new(l), Arc::new(r))
        }
        RaExpr::Diff(l, r) => {
            let l = simplify(l);
            let r = simplify(r);
            if is_empty(&r) {
                return l;
            }
            if is_empty(&l) {
                return RaExpr::Empty { cols: l.cols() };
            }
            RaExpr::Diff(Arc::new(l), Arc::new(r))
        }
        RaExpr::Project { input, cols } => {
            let input = simplify(input);
            if input.cols() == *cols {
                return input;
            }
            if is_empty(&input) {
                return RaExpr::Empty { cols: cols.clone() };
            }
            // Cascade: π[c](π[d](e)) = π[c](e).
            if let RaExpr::Project { input: inner, .. } = input {
                return simplify(&RaExpr::Project {
                    input: inner,
                    cols: cols.clone(),
                });
            }
            // Push through union: π(a ∪ b) = π(a) ∪ π(b).
            if let RaExpr::Union(a, b) = input {
                return simplify(&RaExpr::Union(
                    Arc::new(RaExpr::Project {
                        input: a,
                        cols: cols.clone(),
                    }),
                    Arc::new(RaExpr::Project {
                        input: b,
                        cols: cols.clone(),
                    }),
                ));
            }
            RaExpr::Project {
                input: Arc::new(input),
                cols: cols.clone(),
            }
        }
        RaExpr::Select { input, pred } => {
            let input = simplify(input);
            if is_empty(&input) {
                return RaExpr::Empty { cols: input.cols() };
            }
            if let Some(pushed) = push_select(&input, *pred) {
                return pushed;
            }
            RaExpr::Select {
                input: Arc::new(input),
                pred: *pred,
            }
        }
        RaExpr::Duplicate { input, src, dst } => {
            let input = simplify(input);
            if is_empty(&input) {
                let mut cols = input.cols();
                cols.push(*dst);
                return RaExpr::Empty { cols };
            }
            RaExpr::Duplicate {
                input: Arc::new(input),
                src: *src,
                dst: *dst,
            }
        }
    }
}

fn is_empty(e: &RaExpr) -> bool {
    matches!(e, RaExpr::Empty { .. })
}

/// Try to push a selection below its input operator:
///
/// * `σ(a ⋈ b) → σ(a) ⋈ b` (or the right side) when one side holds every
///   selected column — shrinks join inputs;
/// * `σ(a ∪ b) → σ(a) ∪ σ(b)`;
/// * `σ(a diff b) → σ(a) diff b` — left side **only**; pushing into the
///   right side of a difference is unsound (`σ(A−B) ≠ A−σ(B)`, see the
///   module docs), even when every selected column lives in `b`'s columns.
fn push_select(input: &RaExpr, pred: SelPred) -> Option<RaExpr> {
    let need = pred.cols();
    match input {
        RaExpr::Join(l, r) => {
            if need.iter().all(|v| l.cols().contains(v)) {
                Some(simplify(&RaExpr::Join(
                    Arc::new(RaExpr::Select {
                        input: l.clone(),
                        pred,
                    }),
                    r.clone(),
                )))
            } else if need.iter().all(|v| r.cols().contains(v)) {
                Some(simplify(&RaExpr::Join(
                    l.clone(),
                    Arc::new(RaExpr::Select {
                        input: r.clone(),
                        pred,
                    }),
                )))
            } else {
                None
            }
        }
        RaExpr::Union(a, b) => Some(simplify(&RaExpr::Union(
            Arc::new(RaExpr::Select {
                input: a.clone(),
                pred,
            }),
            Arc::new(RaExpr::Select {
                input: b.clone(),
                pred,
            }),
        ))),
        RaExpr::Diff(a, b) => Some(simplify(&RaExpr::Diff(
            Arc::new(RaExpr::Select {
                input: a.clone(),
                pred,
            }),
            b.clone(),
        ))),
        _ => None,
    }
}

/// When the left union branch vanished, the surviving right branch may have
/// its columns in a different order than the union advertised; project to
/// restore the original order if needed.
fn align_union_result(survivor: RaExpr, vanished_left: &RaExpr) -> RaExpr {
    let want = vanished_left.cols();
    if survivor.cols() == want {
        survivor
    } else {
        simplify(&RaExpr::Project {
            input: Arc::new(survivor),
            cols: want,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_formula::{Term, Var};

    fn p() -> RaExpr {
        RaExpr::scan("P", vec![Term::var("x"), Term::var("y")])
    }

    #[test]
    fn unit_join_elided() {
        assert_eq!(simplify(&RaExpr::join(RaExpr::Unit, p())), p());
        assert_eq!(simplify(&RaExpr::join(p(), RaExpr::Unit)), p());
    }

    #[test]
    fn empty_propagates_through_join() {
        let e = RaExpr::join(
            p(),
            RaExpr::Empty {
                cols: vec![Var::new("y"), Var::new("z")],
            },
        );
        match simplify(&e) {
            RaExpr::Empty { cols } => {
                assert_eq!(cols, vec![Var::new("x"), Var::new("y"), Var::new("z")])
            }
            other => panic!("expected Empty, got {other}"),
        }
    }

    #[test]
    fn union_drops_empty_and_duplicates() {
        let empty = RaExpr::Empty {
            cols: vec![Var::new("x"), Var::new("y")],
        };
        assert_eq!(simplify(&RaExpr::union(p(), empty.clone())), p());
        assert_eq!(simplify(&RaExpr::union(empty, p())), p());
        assert_eq!(simplify(&RaExpr::union(p(), p())), p());
    }

    #[test]
    fn diff_with_empty_rhs_elided() {
        let e = RaExpr::diff(
            p(),
            RaExpr::Empty {
                cols: vec![Var::new("y")],
            },
        );
        assert_eq!(simplify(&e), p());
    }

    #[test]
    fn projection_cascade_and_identity() {
        let inner = RaExpr::project(p(), vec![Var::new("x"), Var::new("y")]);
        // Identity projection vanishes.
        assert_eq!(simplify(&inner), p());
        let cascade = RaExpr::project(
            RaExpr::project(p(), vec![Var::new("y"), Var::new("x")]),
            vec![Var::new("x")],
        );
        assert_eq!(
            simplify(&cascade),
            RaExpr::project(p(), vec![Var::new("x")])
        );
    }

    #[test]
    fn self_join_collapses() {
        assert_eq!(simplify(&RaExpr::join(p(), p())), p());
    }

    #[test]
    fn join_dedup_fires_only_after_rewriting_makes_sides_equal() {
        // π[x,y](P(x,y)) ⋈ P(x,y): the sides are NOT syntactically equal in
        // the input; the identity projection is dropped during
        // simplification and only then does e ⋈ e → e apply. This pins that
        // the dedup check runs on the *simplified* children (and that the
        // column-set guard accepts the rewritten pair).
        let wrapped = RaExpr::project(p(), vec![Var::new("x"), Var::new("y")]);
        let e = RaExpr::join(wrapped, p());
        assert_eq!(simplify(&e), p());
    }

    #[test]
    fn join_dedup_requires_equal_column_sequences() {
        // Directly exercise the guard: equal trees always share a column
        // sequence, and a reordered twin is not a candidate.
        let q_xy = RaExpr::scan("Q", vec![Term::var("x"), Term::var("y")]);
        let q_yx = RaExpr::scan("Q", vec![Term::var("y"), Term::var("x")]);
        assert!(join_dedup_applies(&q_xy, &q_xy));
        assert!(!join_dedup_applies(&q_xy, &q_yx));
        // The full join of the reordered twins must therefore survive as a
        // join (it computes the intersection with x/y matched crosswise —
        // not the identity).
        assert!(matches!(
            simplify(&RaExpr::join(q_xy, q_yx)),
            RaExpr::Join(..)
        ));
    }

    #[test]
    fn selection_pushes_into_join_side() {
        use rc_formula::Value;
        // σ[x=1](P(x,y) ⋈ Q(y,z)): x only lives on the P side.
        let q = RaExpr::scan("Q", vec![Term::var("y"), Term::var("z")]);
        let e = RaExpr::select(
            RaExpr::join(p(), q.clone()),
            SelPred::EqConst(Var::new("x"), Value::int(1)),
        );
        match simplify(&e) {
            RaExpr::Join(l, r) => {
                assert!(matches!(*l, RaExpr::Select { .. }), "got {l}");
                assert_eq!(*r, q);
            }
            other => panic!("expected pushed join, got {other}"),
        }
    }

    #[test]
    fn selection_stays_when_columns_span_both_sides() {
        let q = RaExpr::scan("Q", vec![Term::var("z")]);
        let e = RaExpr::select(
            RaExpr::join(p(), q),
            SelPred::NeqCols(Var::new("x"), Var::new("z")),
        );
        assert!(matches!(simplify(&e), RaExpr::Select { .. }));
    }

    #[test]
    fn selection_distributes_over_union() {
        use rc_formula::Value;
        let e = RaExpr::select(
            RaExpr::union(p(), RaExpr::scan("R", vec![Term::var("x"), Term::var("y")])),
            SelPred::EqConst(Var::new("x"), Value::int(1)),
        );
        match simplify(&e) {
            RaExpr::Union(l, r) => {
                assert!(matches!(*l, RaExpr::Select { .. }));
                assert!(matches!(*r, RaExpr::Select { .. }));
            }
            other => panic!("expected union of selects, got {other}"),
        }
    }

    #[test]
    fn selection_pushes_past_diff() {
        use rc_formula::Value;
        let e = RaExpr::select(
            RaExpr::diff(p(), RaExpr::scan("R", vec![Term::var("y")])),
            SelPred::EqConst(Var::new("x"), Value::int(1)),
        );
        match simplify(&e) {
            RaExpr::Diff(l, _) => assert!(matches!(*l, RaExpr::Select { .. })),
            other => panic!("expected diff with pushed select, got {other}"),
        }
    }

    #[test]
    fn diff_pushdown_never_touches_the_right_side() {
        use rc_formula::Value;
        // σ[y≠1](P(x,y) diff R(y)): every selected column (y) lives in the
        // right operand's columns too — the unsound rewrite A diff σ(B)
        // would be "applicable" by the join-side column test. Pin that the
        // selection lands on the left operand and the right one is the
        // untouched scan.
        let r_scan = RaExpr::scan("R", vec![Term::var("y")]);
        let e = RaExpr::select(
            RaExpr::diff(p(), r_scan.clone()),
            SelPred::NeqConst(Var::new("y"), Value::int(1)),
        );
        match simplify(&e) {
            RaExpr::Diff(l, r) => {
                assert!(
                    matches!(&*l, RaExpr::Select { .. }),
                    "selection must move to the LEFT of diff, got {l}"
                );
                assert_eq!(*r, r_scan, "right side of diff must stay unfiltered");
            }
            other => panic!("expected diff, got {other}"),
        }
    }

    #[test]
    fn diff_pushdown_semantics_on_concrete_data() {
        use crate::database::Database;
        use crate::eval::eval;
        use rc_formula::Value;
        // The σ(A−B) = σ(A)−B identity on the module-doc counterexample
        // shape: A = {1,2}, B = {2}, σ = (x ≠ 2). σ(A−B) = {1}; the unsound
        // A−σ(B) would be {1,2}.
        let db = Database::from_facts("A(1)\nA(2)\nB(2)").unwrap();
        let raw = RaExpr::select(
            RaExpr::diff(
                RaExpr::scan("A", vec![Term::var("x")]),
                RaExpr::scan("B", vec![Term::var("x")]),
            ),
            SelPred::NeqConst(Var::new("x"), Value::int(2)),
        );
        let opt = simplify(&raw);
        let want = eval(&raw, &db).unwrap();
        let got = eval(&opt, &db).unwrap();
        assert_eq!(want, got, "optimized diff plan changed the answer");
        assert_eq!(want.len(), 1);
        assert!(want.contains(&[Value::int(1)]));
    }

    #[test]
    fn projection_distributes_over_union() {
        let e = RaExpr::project(
            RaExpr::union(p(), RaExpr::scan("R", vec![Term::var("y"), Term::var("x")])),
            vec![Var::new("y")],
        );
        match simplify(&e) {
            RaExpr::Union(l, r) => {
                assert!(matches!(*l, RaExpr::Project { .. }));
                assert!(matches!(*r, RaExpr::Project { .. }));
            }
            other => panic!("expected union of projections, got {other}"),
        }
    }

    #[test]
    fn union_empty_left_preserves_column_order() {
        // Union advertised [y, x] (left's order); survivor has [x, y].
        let left = RaExpr::Empty {
            cols: vec![Var::new("y"), Var::new("x")],
        };
        let out = simplify(&RaExpr::union(left, p()));
        assert_eq!(out.cols(), vec![Var::new("y"), Var::new("x")]);
    }
}
