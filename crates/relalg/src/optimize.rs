//! Algebraic simplification of expressions.
//!
//! The paper notes that "many simplifications of the relational algebra
//! expressions produced by the procedures of this section can be made during
//! their construction" (Sec. 9.3). The translation in `rc-safety` emits
//! straightforward expressions; this pass cleans them up:
//!
//! * cascade projections; drop identity projections;
//! * `⊤ ⋈ e → e` and `e ⋈ ⊤ → e`; `e ⋈ e → e` (set semantics);
//! * propagate empty relations through join/select/project/diff/union;
//! * `e diff ∅ → e`;
//! * deduplicate syntactically equal union branches;
//! * push selections below joins (into the side holding their columns) and
//!   through unions;
//! * push projections through unions.
//!
//! Simplification is semantics-preserving; a property test in the workspace
//! integration suite evaluates optimized and raw expressions side by side.

use crate::expr::{RaExpr, SelPred};

/// Simplify to a fixpoint (each rewrite strictly shrinks the tree, so one
/// bottom-up pass that re-simplifies rebuilt nodes suffices).
pub fn simplify(e: &RaExpr) -> RaExpr {
    match e {
        RaExpr::Scan { .. } | RaExpr::Single { .. } | RaExpr::Unit | RaExpr::Empty { .. } => {
            e.clone()
        }
        RaExpr::Join(l, r) => {
            let l = simplify(l);
            let r = simplify(r);
            if matches!(l, RaExpr::Unit) {
                return r;
            }
            if matches!(r, RaExpr::Unit) {
                return l;
            }
            // Join with an empty side is empty over the merged columns.
            if is_empty(&l) || is_empty(&r) {
                let cols = RaExpr::Join(Box::new(l), Box::new(r)).cols();
                return RaExpr::Empty { cols };
            }
            // Set semantics: joining an expression with itself on all
            // columns is the identity.
            if l == r {
                return l;
            }
            RaExpr::Join(Box::new(l), Box::new(r))
        }
        RaExpr::Union(l, r) => {
            let l = simplify(l);
            let r = simplify(r);
            if is_empty(&l) {
                return align_union_result(r, &l);
            }
            if is_empty(&r) || l == r {
                return l;
            }
            RaExpr::Union(Box::new(l), Box::new(r))
        }
        RaExpr::Diff(l, r) => {
            let l = simplify(l);
            let r = simplify(r);
            if is_empty(&r) {
                return l;
            }
            if is_empty(&l) {
                return RaExpr::Empty { cols: l.cols() };
            }
            RaExpr::Diff(Box::new(l), Box::new(r))
        }
        RaExpr::Project { input, cols } => {
            let input = simplify(input);
            if input.cols() == *cols {
                return input;
            }
            if is_empty(&input) {
                return RaExpr::Empty { cols: cols.clone() };
            }
            // Cascade: π[c](π[d](e)) = π[c](e).
            if let RaExpr::Project { input: inner, .. } = input {
                return simplify(&RaExpr::Project {
                    input: inner,
                    cols: cols.clone(),
                });
            }
            // Push through union: π(a ∪ b) = π(a) ∪ π(b).
            if let RaExpr::Union(a, b) = input {
                return simplify(&RaExpr::Union(
                    Box::new(RaExpr::Project {
                        input: a,
                        cols: cols.clone(),
                    }),
                    Box::new(RaExpr::Project {
                        input: b,
                        cols: cols.clone(),
                    }),
                ));
            }
            RaExpr::Project {
                input: Box::new(input),
                cols: cols.clone(),
            }
        }
        RaExpr::Select { input, pred } => {
            let input = simplify(input);
            if is_empty(&input) {
                return RaExpr::Empty { cols: input.cols() };
            }
            if let Some(pushed) = push_select(&input, *pred) {
                return pushed;
            }
            RaExpr::Select {
                input: Box::new(input),
                pred: *pred,
            }
        }
        RaExpr::Duplicate { input, src, dst } => {
            let input = simplify(input);
            if is_empty(&input) {
                let mut cols = input.cols();
                cols.push(*dst);
                return RaExpr::Empty { cols };
            }
            RaExpr::Duplicate {
                input: Box::new(input),
                src: *src,
                dst: *dst,
            }
        }
    }
}

fn is_empty(e: &RaExpr) -> bool {
    matches!(e, RaExpr::Empty { .. })
}

/// Try to push a selection below its input operator:
///
/// * `σ(a ⋈ b) → σ(a) ⋈ b` (or the right side) when one side holds every
///   selected column — shrinks join inputs;
/// * `σ(a ∪ b) → σ(a) ∪ σ(b)`;
/// * `σ(a diff b) → σ(a) diff b` (the filter only concerns kept tuples).
fn push_select(input: &RaExpr, pred: SelPred) -> Option<RaExpr> {
    let need = pred.cols();
    match input {
        RaExpr::Join(l, r) => {
            if need.iter().all(|v| l.cols().contains(v)) {
                Some(simplify(&RaExpr::Join(
                    Box::new(RaExpr::Select {
                        input: l.clone(),
                        pred,
                    }),
                    r.clone(),
                )))
            } else if need.iter().all(|v| r.cols().contains(v)) {
                Some(simplify(&RaExpr::Join(
                    l.clone(),
                    Box::new(RaExpr::Select {
                        input: r.clone(),
                        pred,
                    }),
                )))
            } else {
                None
            }
        }
        RaExpr::Union(a, b) => Some(simplify(&RaExpr::Union(
            Box::new(RaExpr::Select {
                input: a.clone(),
                pred,
            }),
            Box::new(RaExpr::Select {
                input: b.clone(),
                pred,
            }),
        ))),
        RaExpr::Diff(a, b) => Some(simplify(&RaExpr::Diff(
            Box::new(RaExpr::Select {
                input: a.clone(),
                pred,
            }),
            b.clone(),
        ))),
        _ => None,
    }
}

/// When the left union branch vanished, the surviving right branch may have
/// its columns in a different order than the union advertised; project to
/// restore the original order if needed.
fn align_union_result(survivor: RaExpr, vanished_left: &RaExpr) -> RaExpr {
    let want = vanished_left.cols();
    if survivor.cols() == want {
        survivor
    } else {
        simplify(&RaExpr::Project {
            input: Box::new(survivor),
            cols: want,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_formula::{Term, Var};

    fn p() -> RaExpr {
        RaExpr::scan("P", vec![Term::var("x"), Term::var("y")])
    }

    #[test]
    fn unit_join_elided() {
        assert_eq!(simplify(&RaExpr::join(RaExpr::Unit, p())), p());
        assert_eq!(simplify(&RaExpr::join(p(), RaExpr::Unit)), p());
    }

    #[test]
    fn empty_propagates_through_join() {
        let e = RaExpr::join(
            p(),
            RaExpr::Empty {
                cols: vec![Var::new("y"), Var::new("z")],
            },
        );
        match simplify(&e) {
            RaExpr::Empty { cols } => {
                assert_eq!(cols, vec![Var::new("x"), Var::new("y"), Var::new("z")])
            }
            other => panic!("expected Empty, got {other}"),
        }
    }

    #[test]
    fn union_drops_empty_and_duplicates() {
        let empty = RaExpr::Empty {
            cols: vec![Var::new("x"), Var::new("y")],
        };
        assert_eq!(simplify(&RaExpr::union(p(), empty.clone())), p());
        assert_eq!(simplify(&RaExpr::union(empty, p())), p());
        assert_eq!(simplify(&RaExpr::union(p(), p())), p());
    }

    #[test]
    fn diff_with_empty_rhs_elided() {
        let e = RaExpr::diff(
            p(),
            RaExpr::Empty {
                cols: vec![Var::new("y")],
            },
        );
        assert_eq!(simplify(&e), p());
    }

    #[test]
    fn projection_cascade_and_identity() {
        let inner = RaExpr::project(p(), vec![Var::new("x"), Var::new("y")]);
        // Identity projection vanishes.
        assert_eq!(simplify(&inner), p());
        let cascade = RaExpr::project(
            RaExpr::project(p(), vec![Var::new("y"), Var::new("x")]),
            vec![Var::new("x")],
        );
        assert_eq!(
            simplify(&cascade),
            RaExpr::project(p(), vec![Var::new("x")])
        );
    }

    #[test]
    fn self_join_collapses() {
        assert_eq!(simplify(&RaExpr::join(p(), p())), p());
    }

    #[test]
    fn selection_pushes_into_join_side() {
        use rc_formula::Value;
        // σ[x=1](P(x,y) ⋈ Q(y,z)): x only lives on the P side.
        let q = RaExpr::scan("Q", vec![Term::var("y"), Term::var("z")]);
        let e = RaExpr::select(
            RaExpr::join(p(), q.clone()),
            SelPred::EqConst(Var::new("x"), Value::int(1)),
        );
        match simplify(&e) {
            RaExpr::Join(l, r) => {
                assert!(matches!(*l, RaExpr::Select { .. }), "got {l}");
                assert_eq!(*r, q);
            }
            other => panic!("expected pushed join, got {other}"),
        }
    }

    #[test]
    fn selection_stays_when_columns_span_both_sides() {
        let q = RaExpr::scan("Q", vec![Term::var("z")]);
        let e = RaExpr::select(
            RaExpr::join(p(), q),
            SelPred::NeqCols(Var::new("x"), Var::new("z")),
        );
        assert!(matches!(simplify(&e), RaExpr::Select { .. }));
    }

    #[test]
    fn selection_distributes_over_union() {
        use rc_formula::Value;
        let e = RaExpr::select(
            RaExpr::union(p(), RaExpr::scan("R", vec![Term::var("x"), Term::var("y")])),
            SelPred::EqConst(Var::new("x"), Value::int(1)),
        );
        match simplify(&e) {
            RaExpr::Union(l, r) => {
                assert!(matches!(*l, RaExpr::Select { .. }));
                assert!(matches!(*r, RaExpr::Select { .. }));
            }
            other => panic!("expected union of selects, got {other}"),
        }
    }

    #[test]
    fn selection_pushes_past_diff() {
        use rc_formula::Value;
        let e = RaExpr::select(
            RaExpr::diff(p(), RaExpr::scan("R", vec![Term::var("y")])),
            SelPred::EqConst(Var::new("x"), Value::int(1)),
        );
        match simplify(&e) {
            RaExpr::Diff(l, _) => assert!(matches!(*l, RaExpr::Select { .. })),
            other => panic!("expected diff with pushed select, got {other}"),
        }
    }

    #[test]
    fn projection_distributes_over_union() {
        let e = RaExpr::project(
            RaExpr::union(p(), RaExpr::scan("R", vec![Term::var("y"), Term::var("x")])),
            vec![Var::new("y")],
        );
        match simplify(&e) {
            RaExpr::Union(l, r) => {
                assert!(matches!(*l, RaExpr::Project { .. }));
                assert!(matches!(*r, RaExpr::Project { .. }));
            }
            other => panic!("expected union of projections, got {other}"),
        }
    }

    #[test]
    fn union_empty_left_preserves_column_order() {
        // Union advertised [y, x] (left's order); survivor has [x, y].
        let left = RaExpr::Empty {
            cols: vec![Var::new("y"), Var::new("x")],
        };
        let out = simplify(&RaExpr::union(left, p()));
        assert_eq!(out.cols(), vec![Var::new("y"), Var::new("x")]);
    }
}
