//! Algebraic simplification of expressions.
//!
//! The paper notes that "many simplifications of the relational algebra
//! expressions produced by the procedures of this section can be made during
//! their construction" (Sec. 9.3). The translation in `rc-safety` emits
//! straightforward expressions; this pass cleans them up:
//!
//! * cascade projections; drop identity projections;
//! * `⊤ ⋈ e → e` and `e ⋈ ⊤ → e`; `e ⋈ e → e` (set semantics — guarded by
//!   a column-set equality check, `join_dedup_applies`);
//! * propagate empty relations through join/select/project/diff/union;
//! * `e diff ∅ → e`;
//! * deduplicate syntactically equal union branches;
//! * push selections below joins (into the side holding their columns),
//!   through unions, and beneath projections that keep every predicate
//!   column;
//! * push projections through unions.
//!
//! On top of `simplify`, [`optimize`] runs the **cost-based pass**: using
//! the per-database statistics and estimator in [`crate::stats`], it
//! reorders flattened join trees (dynamic programming over subsets up to 8
//! relations, a greedy pairing above) and pushes projections beneath joins
//! — each rewrite applied **iff the estimated cost strictly drops**, which
//! also makes the pass idempotent: re-optimizing an optimized plan is a
//! no-op (pinned by `tests/prop_optimizer.rs`). Selection pushdown stays
//! unconditional in `simplify` because it is cost-monotone under the
//! model: a selection never grows rows, so filtering earlier can only
//! shrink every operator above it.
//!
//! Join reordering changes the natural join's *output column order* (left
//! columns first); the pass restores the original order with a projection,
//! so a reordered plan is column-for-column interchangeable with the
//! original — parents (unions, diffs, the answer projection) never see a
//! difference.
//!
//! Simplification is purely *plan-shaping*: it runs before any execution
//! policy is chosen, so it neither sees nor influences how the kernels
//! later partition an operator's data (`crate::eval`'s partition plan is
//! a function of runtime cardinalities and the [`crate::Budget`], not of
//! plan shape). Rewrites only have to preserve the relation — partition
//! invisibility then guarantees the row order too.
//!
//! ## Selection pushdown around `Diff` — soundness audit
//!
//! For the generalized difference `A diff B` the **only** sound pushdown is
//! into the *left* operand: `σ(A diff B) = σ(A) diff B`, because `diff`
//! keeps a subset of `A`'s rows and the filter commutes with "keep rows
//! whose projection has no partner in B". Pushing the predicate into the
//! *right* side instead — `A diff σ(B)` — is **unsound**: shrinking `B`
//! can only *grow* the difference, so rows that σ would have rejected (or
//! rows whose partners σ removed from `B`) leak into the output. Concretely
//! with `A = {1, 2}`, `B = {2}` and `σ = (x ≠ 2)`:
//! `σ(A − B) = {1}` but `A − σ(B) = A − ∅ = {1, 2}`. `push_select`
//! therefore never touches the right operand of a `Diff`; regression tests
//! below and the Diff-heavy property suite in `tests/prop_relalg.rs` pin
//! this.
//!
//! Simplification is semantics-preserving; a property test in the workspace
//! integration suite evaluates optimized and raw expressions side by side.

use crate::database::Database;
use crate::expr::{RaExpr, SelPred};
use crate::stats::{CardEst, Estimator};
use rc_formula::Var;
use std::sync::Arc;

/// May `e ⋈ e → e` fire for these (already simplified) operands? Requires
/// syntactic equality **and** column-*sequence* equality. Syntactic
/// equality implies equal column order today, but the guard keeps the
/// rewrite locally auditable: if a future rewrite ever reorders one side's
/// children (changing its column order) without renaming it, the dedup
/// stays off rather than silently changing the output column order.
fn join_dedup_applies(l: &RaExpr, r: &RaExpr) -> bool {
    l == r && l.cols() == r.cols()
}

/// Simplify to a fixpoint (each rewrite strictly shrinks the tree, so one
/// bottom-up pass that re-simplifies rebuilt nodes suffices).
pub fn simplify(e: &RaExpr) -> RaExpr {
    match e {
        RaExpr::Scan { .. } | RaExpr::Single { .. } | RaExpr::Unit | RaExpr::Empty { .. } => {
            e.clone()
        }
        RaExpr::Join(l, r) => {
            let l = simplify(l);
            let r = simplify(r);
            if matches!(l, RaExpr::Unit) {
                return r;
            }
            if matches!(r, RaExpr::Unit) {
                return l;
            }
            // Join with an empty side is empty over the merged columns.
            if is_empty(&l) || is_empty(&r) {
                let cols = RaExpr::Join(Arc::new(l), Arc::new(r)).cols();
                return RaExpr::Empty { cols };
            }
            // Set semantics: joining an expression with itself on all
            // columns is the identity (column-set guard included).
            if join_dedup_applies(&l, &r) {
                return l;
            }
            RaExpr::Join(Arc::new(l), Arc::new(r))
        }
        RaExpr::Union(l, r) => {
            let l = simplify(l);
            let r = simplify(r);
            if is_empty(&l) {
                return align_union_result(r, &l);
            }
            if is_empty(&r) || l == r {
                return l;
            }
            RaExpr::Union(Arc::new(l), Arc::new(r))
        }
        RaExpr::Diff(l, r) => {
            let l = simplify(l);
            let r = simplify(r);
            if is_empty(&r) {
                return l;
            }
            if is_empty(&l) {
                return RaExpr::Empty { cols: l.cols() };
            }
            RaExpr::Diff(Arc::new(l), Arc::new(r))
        }
        RaExpr::Project { input, cols } => {
            let input = simplify(input);
            if input.cols() == *cols {
                return input;
            }
            if is_empty(&input) {
                return RaExpr::Empty { cols: cols.clone() };
            }
            // Cascade: π[c](π[d](e)) = π[c](e).
            if let RaExpr::Project { input: inner, .. } = input {
                return simplify(&RaExpr::Project {
                    input: inner,
                    cols: cols.clone(),
                });
            }
            // Push through union: π(a ∪ b) = π(a) ∪ π(b).
            if let RaExpr::Union(a, b) = input {
                return simplify(&RaExpr::Union(
                    Arc::new(RaExpr::Project {
                        input: a,
                        cols: cols.clone(),
                    }),
                    Arc::new(RaExpr::Project {
                        input: b,
                        cols: cols.clone(),
                    }),
                ));
            }
            RaExpr::Project {
                input: Arc::new(input),
                cols: cols.clone(),
            }
        }
        RaExpr::Select { input, pred } => {
            let input = simplify(input);
            if is_empty(&input) {
                return RaExpr::Empty { cols: input.cols() };
            }
            if let Some(pushed) = push_select(&input, *pred) {
                return pushed;
            }
            RaExpr::Select {
                input: Arc::new(input),
                pred: *pred,
            }
        }
        RaExpr::Duplicate { input, src, dst } => {
            let input = simplify(input);
            if is_empty(&input) {
                let mut cols = input.cols();
                cols.push(*dst);
                return RaExpr::Empty { cols };
            }
            RaExpr::Duplicate {
                input: Arc::new(input),
                src: *src,
                dst: *dst,
            }
        }
    }
}

fn is_empty(e: &RaExpr) -> bool {
    matches!(e, RaExpr::Empty { .. })
}

/// Try to push a selection below its input operator:
///
/// * `σ(a ⋈ b) → σ(a) ⋈ b` (or the right side) when one side holds every
///   selected column — shrinks join inputs;
/// * `σ(a ∪ b) → σ(a) ∪ σ(b)`;
/// * `σ(π[c](a)) → π[c](σ(a))` when every predicate column survives the
///   projection — selections emitted above the RANF translation's
///   projections keep sinking toward the scans;
/// * `σ(a diff b) → σ(a) diff b` — left side **only**; pushing into the
///   right side of a difference is unsound (`σ(A−B) ≠ A−σ(B)`, see the
///   module docs), even when every selected column lives in `b`'s columns.
fn push_select(input: &RaExpr, pred: SelPred) -> Option<RaExpr> {
    let need = pred.cols();
    match input {
        RaExpr::Project { input: inner, cols } if need.iter().all(|v| cols.contains(v)) => {
            Some(simplify(&RaExpr::Project {
                input: Arc::new(RaExpr::Select {
                    input: inner.clone(),
                    pred,
                }),
                cols: cols.clone(),
            }))
        }
        RaExpr::Join(l, r) => {
            if need.iter().all(|v| l.cols().contains(v)) {
                Some(simplify(&RaExpr::Join(
                    Arc::new(RaExpr::Select {
                        input: l.clone(),
                        pred,
                    }),
                    r.clone(),
                )))
            } else if need.iter().all(|v| r.cols().contains(v)) {
                Some(simplify(&RaExpr::Join(
                    l.clone(),
                    Arc::new(RaExpr::Select {
                        input: r.clone(),
                        pred,
                    }),
                )))
            } else {
                None
            }
        }
        RaExpr::Union(a, b) => Some(simplify(&RaExpr::Union(
            Arc::new(RaExpr::Select {
                input: a.clone(),
                pred,
            }),
            Arc::new(RaExpr::Select {
                input: b.clone(),
                pred,
            }),
        ))),
        RaExpr::Diff(a, b) => Some(simplify(&RaExpr::Diff(
            Arc::new(RaExpr::Select {
                input: a.clone(),
                pred,
            }),
            b.clone(),
        ))),
        _ => None,
    }
}

// ---------------------------------------------- cost-based optimization --

/// Cost-based optimization: [`simplify`], then statistics-driven join
/// reordering and projection placement over `db`'s [`crate::stats`]
/// estimates. Every cost-gated rewrite preserves the output columns *and
/// their order* (reordered joins are re-projected to the original order),
/// so the result is interchangeable with `simplify(e)` — same relation,
/// same rows, same column sequence. Rewrites apply iff the estimated cost
/// strictly drops.
///
/// The two passes alternate to a fixpoint: a reorder can expose a rewrite
/// the simplifier could not see syntactically (two identical scans made
/// adjacent dedup to one), and the shrunken plan may in turn reorder
/// differently. Iterating until nothing changes makes `optimize`
/// idempotent — re-optimizing its own output returns it unchanged, so the
/// plan hash is stable. Each cost-gated change strictly lowers estimated
/// cost and each simplifier change shrinks the plan, so the loop
/// terminates; the iteration cap is a safety net, not a tuning knob.
///
/// ```
/// use rc_formula::Term;
/// use rc_relalg::{eval, optimize, Database, Estimator, RaExpr};
///
/// let db = Database::from_facts("P(1)\nP(2)\nQ(2, 5)").unwrap();
/// let plan = RaExpr::join(
///     RaExpr::scan("P", vec![Term::var("x")]),
///     RaExpr::scan("Q", vec![Term::var("x"), Term::var("y")]),
/// );
/// let planned = optimize(&plan, &db);
/// // Same rows, same column order, never estimated costlier.
/// assert_eq!(eval(&planned, &db).unwrap(), eval(&plan, &db).unwrap());
/// assert_eq!(planned.cols(), plan.cols());
/// let est = Estimator::new(&db);
/// assert!(est.cost(&planned) <= est.cost(&plan));
/// ```
pub fn optimize(e: &RaExpr, db: &Database) -> RaExpr {
    let est = Estimator::new(db);
    let mut cur = simplify(e);
    for _ in 0..8 {
        let next = simplify(&cost_pass(&cur, &est));
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

/// Bottom-up cost-gated rewriting of an already-simplified expression.
fn cost_pass(e: &RaExpr, est: &Estimator) -> RaExpr {
    match e {
        RaExpr::Scan { .. } | RaExpr::Single { .. } | RaExpr::Unit | RaExpr::Empty { .. } => {
            e.clone()
        }
        RaExpr::Join(..) => {
            let mut raw_leaves = Vec::new();
            collect_join_leaves(e, &mut raw_leaves);
            let leaves: Vec<RaExpr> = raw_leaves.into_iter().map(|l| cost_pass(l, est)).collect();
            // The original join shape with optimized leaves is the
            // baseline the reordered candidate must strictly beat.
            let mut it = leaves.iter();
            let baseline = rebuild_join_shape(e, &mut it);
            let reordered = order_join(&leaves, est);
            let candidate = restore_columns(reordered, baseline.cols());
            if est.cost(&candidate) < est.cost(&baseline) {
                candidate
            } else {
                baseline
            }
        }
        RaExpr::Union(l, r) => {
            RaExpr::Union(Arc::new(cost_pass(l, est)), Arc::new(cost_pass(r, est)))
        }
        RaExpr::Diff(l, r) => {
            RaExpr::Diff(Arc::new(cost_pass(l, est)), Arc::new(cost_pass(r, est)))
        }
        RaExpr::Project { input, cols } => {
            let input = cost_pass(input, est);
            // Re-simplify the rebuilt node: a reordered child may have
            // gained a column-restoring projection that cascades with
            // this one.
            let baseline = simplify(&RaExpr::Project {
                input: Arc::new(input),
                cols: cols.clone(),
            });
            try_early_project(baseline, est)
        }
        RaExpr::Select { input, pred } => RaExpr::Select {
            input: Arc::new(cost_pass(input, est)),
            pred: *pred,
        },
        RaExpr::Duplicate { input, src, dst } => RaExpr::Duplicate {
            input: Arc::new(cost_pass(input, est)),
            src: *src,
            dst: *dst,
        },
    }
}

/// Flatten a nested join tree into its non-join leaves, left to right.
fn collect_join_leaves<'a>(e: &'a RaExpr, out: &mut Vec<&'a RaExpr>) {
    match e {
        RaExpr::Join(l, r) => {
            collect_join_leaves(l, out);
            collect_join_leaves(r, out);
        }
        other => out.push(other),
    }
}

/// Rebuild the original join skeleton, substituting leaves in order.
fn rebuild_join_shape(e: &RaExpr, leaves: &mut std::slice::Iter<'_, RaExpr>) -> RaExpr {
    match e {
        RaExpr::Join(l, r) => {
            let nl = rebuild_join_shape(l, leaves);
            let nr = rebuild_join_shape(r, leaves);
            RaExpr::Join(Arc::new(nl), Arc::new(nr))
        }
        _ => leaves
            .next()
            .expect("one optimized leaf per flat leaf")
            .clone(),
    }
}

/// Restore the original output column order after a reorder (a natural
/// join's columns are left-side-first, so a different order is a different
/// column sequence). Identity when the order already matches.
fn restore_columns(e: RaExpr, want: Vec<Var>) -> RaExpr {
    if e.cols() == want {
        e
    } else {
        RaExpr::Project {
            input: Arc::new(e),
            cols: want,
        }
    }
}

/// A join-order search entry: the plan so far with its cardinality
/// estimate and accumulated cost.
struct Planned {
    expr: RaExpr,
    est: CardEst,
    cost: f64,
}

/// Pick a join order over the flattened leaves: exhaustive
/// subset-dynamic-programming up to 8 leaves, greedy pairing above.
/// Cardinalities combine through
/// [`Estimator::join_cardinality`] so the search never re-walks subtrees;
/// the caller's final cost gate re-checks the winner against the full
/// (feedback-aware) cost model.
fn order_join(leaves: &[RaExpr], est: &Estimator) -> RaExpr {
    debug_assert!(leaves.len() >= 2);
    if leaves.len() <= 8 {
        dp_join(leaves, est)
    } else {
        greedy_join(leaves, est)
    }
}

fn planned_leaf(e: &RaExpr, est: &Estimator) -> Planned {
    let (cost, card) = est.cost_and_estimate(e);
    Planned {
        expr: e.clone(),
        est: card,
        cost,
    }
}

fn join_planned(l: &Planned, r: &Planned, est: &Estimator) -> Planned {
    let card = est.join_cardinality(&l.est, &r.est);
    let cost = l.cost + r.cost + Estimator::join_step_cost(&l.est, &r.est, &card);
    Planned {
        expr: RaExpr::Join(Arc::new(l.expr.clone()), Arc::new(r.expr.clone())),
        est: card,
        cost,
    }
}

/// Do the two leaf sets share at least one column name (an equijoin
/// predicate) — i.e. is joining them *not* a cross product?
fn masks_connected(s: usize, t: usize, col_sets: &[Vec<Var>]) -> bool {
    for (i, ci) in col_sets.iter().enumerate() {
        if s & (1 << i) == 0 {
            continue;
        }
        for (j, cj) in col_sets.iter().enumerate() {
            if t & (1 << j) == 0 {
                continue;
            }
            if ci.iter().any(|v| cj.contains(v)) {
                return true;
            }
        }
    }
    false
}

/// Selinger-style dynamic programming over leaf subsets. Splits are
/// enumerated deterministically (canonical orientation: the side holding
/// the lowest leaf index is the left operand), cross-product splits are
/// skipped whenever a connected split exists, and ties keep the first
/// candidate found — so the result is a deterministic function of the
/// leaves and the statistics.
fn dp_join(leaves: &[RaExpr], est: &Estimator) -> RaExpr {
    let n = leaves.len();
    let full: usize = (1 << n) - 1;
    let col_sets: Vec<Vec<Var>> = leaves.iter().map(RaExpr::cols).collect();
    let mut best: Vec<Option<Planned>> = Vec::with_capacity(full + 1);
    best.resize_with(full + 1, || None);
    for (i, l) in leaves.iter().enumerate() {
        best[1 << i] = Some(planned_leaf(l, est));
    }
    for mask in 3..=full {
        if (mask as u32).count_ones() < 2 {
            continue;
        }
        let lowest = mask & mask.wrapping_neg();
        // First pass: does any canonical split avoid a cross product?
        let mut any_connected = false;
        let mut s = (mask - 1) & mask;
        while s > 0 {
            if s & lowest != 0 && masks_connected(s, mask ^ s, &col_sets) {
                any_connected = true;
                break;
            }
            s = (s - 1) & mask;
        }
        let mut chosen: Option<Planned> = None;
        let mut s = (mask - 1) & mask;
        while s > 0 {
            let t = mask ^ s;
            if s & lowest != 0 && (!any_connected || masks_connected(s, t, &col_sets)) {
                let (l, r) = (
                    best[s].as_ref().expect("smaller mask planned"),
                    best[t].as_ref().expect("smaller mask planned"),
                );
                let cand = join_planned(l, r, est);
                if chosen.as_ref().is_none_or(|c| cand.cost < c.cost) {
                    chosen = Some(cand);
                }
            }
            s = (s - 1) & mask;
        }
        best[mask] = chosen;
    }
    best[full].take().expect("full mask planned").expr
}

/// Greedy fallback for > 8 leaves: repeatedly join the (connected, if
/// possible) pair with the smallest estimated output, deterministically
/// preferring lower indices on ties.
fn greedy_join(leaves: &[RaExpr], est: &Estimator) -> RaExpr {
    let mut work: Vec<Planned> = leaves.iter().map(|l| planned_leaf(l, est)).collect();
    while work.len() > 1 {
        let mut pick: Option<(usize, usize, f64, bool)> = None;
        for i in 0..work.len() {
            for j in (i + 1)..work.len() {
                let connected = work[i]
                    .est
                    .cols()
                    .iter()
                    .any(|v| work[j].est.cols().contains(v));
                let rows = est.join_cardinality(&work[i].est, &work[j].est).rows;
                let better = match pick {
                    None => true,
                    // A connected pair always beats a cross product; then
                    // smaller output wins.
                    Some((_, _, best_rows, best_conn)) => {
                        (connected && !best_conn) || (connected == best_conn && rows < best_rows)
                    }
                };
                if better {
                    pick = Some((i, j, rows, connected));
                }
            }
        }
        let (i, j, _, _) = pick.expect("at least one pair");
        let joined = join_planned(&work[i], &work[j], est);
        work.remove(j);
        work[i] = joined;
    }
    work.pop().expect("one plan left").expr
}

/// Cost-gated early projection: for `π[C](A ⋈ B)`, project each join side
/// down to the columns it must carry (`C` plus the join columns) *before*
/// the join when the estimator says the dedup pays for the extra
/// projections — `π[C](A ⋈ B) = π[C](π[Cₐ](A) ⋈ π[C_b](B))` with the join
/// columns retained on both sides (set semantics; the classic pushdown).
fn try_early_project(baseline: RaExpr, est: &Estimator) -> RaExpr {
    if let RaExpr::Project { input, cols } = &baseline {
        if let RaExpr::Join(l, r) = &**input {
            if let Some(candidate) = early_project(l, r, cols) {
                let candidate = simplify(&candidate);
                if est.cost(&candidate) < est.cost(&baseline) {
                    return candidate;
                }
            }
        }
    }
    baseline
}

fn early_project(l: &Arc<RaExpr>, r: &Arc<RaExpr>, cols: &[Var]) -> Option<RaExpr> {
    let (lc, rc) = (l.cols(), r.cols());
    let shared: Vec<Var> = lc.iter().copied().filter(|v| rc.contains(v)).collect();
    let keep = |side: &[Var]| -> Vec<Var> {
        side.iter()
            .copied()
            .filter(|v| cols.contains(v) || shared.contains(v))
            .collect()
    };
    let (keep_l, keep_r) = (keep(&lc), keep(&rc));
    if keep_l.len() == lc.len() && keep_r.len() == rc.len() {
        return None; // nothing to drop early
    }
    let narrow = |side: &Arc<RaExpr>, keep: Vec<Var>, full: &[Var]| -> RaExpr {
        if keep.len() == full.len() {
            (**side).clone()
        } else {
            RaExpr::Project {
                input: side.clone(),
                cols: keep,
            }
        }
    };
    Some(RaExpr::Project {
        input: Arc::new(RaExpr::join(narrow(l, keep_l, &lc), narrow(r, keep_r, &rc))),
        cols: cols.to_vec(),
    })
}

/// When the left union branch vanished, the surviving right branch may have
/// its columns in a different order than the union advertised; project to
/// restore the original order if needed.
fn align_union_result(survivor: RaExpr, vanished_left: &RaExpr) -> RaExpr {
    let want = vanished_left.cols();
    if survivor.cols() == want {
        survivor
    } else {
        simplify(&RaExpr::Project {
            input: Arc::new(survivor),
            cols: want,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_formula::{Term, Var};

    fn p() -> RaExpr {
        RaExpr::scan("P", vec![Term::var("x"), Term::var("y")])
    }

    #[test]
    fn unit_join_elided() {
        assert_eq!(simplify(&RaExpr::join(RaExpr::Unit, p())), p());
        assert_eq!(simplify(&RaExpr::join(p(), RaExpr::Unit)), p());
    }

    #[test]
    fn empty_propagates_through_join() {
        let e = RaExpr::join(
            p(),
            RaExpr::Empty {
                cols: vec![Var::new("y"), Var::new("z")],
            },
        );
        match simplify(&e) {
            RaExpr::Empty { cols } => {
                assert_eq!(cols, vec![Var::new("x"), Var::new("y"), Var::new("z")])
            }
            other => panic!("expected Empty, got {other}"),
        }
    }

    #[test]
    fn union_drops_empty_and_duplicates() {
        let empty = RaExpr::Empty {
            cols: vec![Var::new("x"), Var::new("y")],
        };
        assert_eq!(simplify(&RaExpr::union(p(), empty.clone())), p());
        assert_eq!(simplify(&RaExpr::union(empty, p())), p());
        assert_eq!(simplify(&RaExpr::union(p(), p())), p());
    }

    #[test]
    fn diff_with_empty_rhs_elided() {
        let e = RaExpr::diff(
            p(),
            RaExpr::Empty {
                cols: vec![Var::new("y")],
            },
        );
        assert_eq!(simplify(&e), p());
    }

    #[test]
    fn projection_cascade_and_identity() {
        let inner = RaExpr::project(p(), vec![Var::new("x"), Var::new("y")]);
        // Identity projection vanishes.
        assert_eq!(simplify(&inner), p());
        let cascade = RaExpr::project(
            RaExpr::project(p(), vec![Var::new("y"), Var::new("x")]),
            vec![Var::new("x")],
        );
        assert_eq!(
            simplify(&cascade),
            RaExpr::project(p(), vec![Var::new("x")])
        );
    }

    #[test]
    fn self_join_collapses() {
        assert_eq!(simplify(&RaExpr::join(p(), p())), p());
    }

    #[test]
    fn join_dedup_fires_only_after_rewriting_makes_sides_equal() {
        // π[x,y](P(x,y)) ⋈ P(x,y): the sides are NOT syntactically equal in
        // the input; the identity projection is dropped during
        // simplification and only then does e ⋈ e → e apply. This pins that
        // the dedup check runs on the *simplified* children (and that the
        // column-set guard accepts the rewritten pair).
        let wrapped = RaExpr::project(p(), vec![Var::new("x"), Var::new("y")]);
        let e = RaExpr::join(wrapped, p());
        assert_eq!(simplify(&e), p());
    }

    #[test]
    fn join_dedup_requires_equal_column_sequences() {
        // Directly exercise the guard: equal trees always share a column
        // sequence, and a reordered twin is not a candidate.
        let q_xy = RaExpr::scan("Q", vec![Term::var("x"), Term::var("y")]);
        let q_yx = RaExpr::scan("Q", vec![Term::var("y"), Term::var("x")]);
        assert!(join_dedup_applies(&q_xy, &q_xy));
        assert!(!join_dedup_applies(&q_xy, &q_yx));
        // The full join of the reordered twins must therefore survive as a
        // join (it computes the intersection with x/y matched crosswise —
        // not the identity).
        assert!(matches!(
            simplify(&RaExpr::join(q_xy, q_yx)),
            RaExpr::Join(..)
        ));
    }

    #[test]
    fn selection_pushes_into_join_side() {
        use rc_formula::Value;
        // σ[x=1](P(x,y) ⋈ Q(y,z)): x only lives on the P side.
        let q = RaExpr::scan("Q", vec![Term::var("y"), Term::var("z")]);
        let e = RaExpr::select(
            RaExpr::join(p(), q.clone()),
            SelPred::EqConst(Var::new("x"), Value::int(1)),
        );
        match simplify(&e) {
            RaExpr::Join(l, r) => {
                assert!(matches!(*l, RaExpr::Select { .. }), "got {l}");
                assert_eq!(*r, q);
            }
            other => panic!("expected pushed join, got {other}"),
        }
    }

    #[test]
    fn selection_stays_when_columns_span_both_sides() {
        let q = RaExpr::scan("Q", vec![Term::var("z")]);
        let e = RaExpr::select(
            RaExpr::join(p(), q),
            SelPred::NeqCols(Var::new("x"), Var::new("z")),
        );
        assert!(matches!(simplify(&e), RaExpr::Select { .. }));
    }

    #[test]
    fn selection_distributes_over_union() {
        use rc_formula::Value;
        let e = RaExpr::select(
            RaExpr::union(p(), RaExpr::scan("R", vec![Term::var("x"), Term::var("y")])),
            SelPred::EqConst(Var::new("x"), Value::int(1)),
        );
        match simplify(&e) {
            RaExpr::Union(l, r) => {
                assert!(matches!(*l, RaExpr::Select { .. }));
                assert!(matches!(*r, RaExpr::Select { .. }));
            }
            other => panic!("expected union of selects, got {other}"),
        }
    }

    #[test]
    fn selection_pushes_past_diff() {
        use rc_formula::Value;
        let e = RaExpr::select(
            RaExpr::diff(p(), RaExpr::scan("R", vec![Term::var("y")])),
            SelPred::EqConst(Var::new("x"), Value::int(1)),
        );
        match simplify(&e) {
            RaExpr::Diff(l, _) => assert!(matches!(*l, RaExpr::Select { .. })),
            other => panic!("expected diff with pushed select, got {other}"),
        }
    }

    #[test]
    fn diff_pushdown_never_touches_the_right_side() {
        use rc_formula::Value;
        // σ[y≠1](P(x,y) diff R(y)): every selected column (y) lives in the
        // right operand's columns too — the unsound rewrite A diff σ(B)
        // would be "applicable" by the join-side column test. Pin that the
        // selection lands on the left operand and the right one is the
        // untouched scan.
        let r_scan = RaExpr::scan("R", vec![Term::var("y")]);
        let e = RaExpr::select(
            RaExpr::diff(p(), r_scan.clone()),
            SelPred::NeqConst(Var::new("y"), Value::int(1)),
        );
        match simplify(&e) {
            RaExpr::Diff(l, r) => {
                assert!(
                    matches!(&*l, RaExpr::Select { .. }),
                    "selection must move to the LEFT of diff, got {l}"
                );
                assert_eq!(*r, r_scan, "right side of diff must stay unfiltered");
            }
            other => panic!("expected diff, got {other}"),
        }
    }

    #[test]
    fn diff_pushdown_semantics_on_concrete_data() {
        use crate::database::Database;
        use crate::eval::eval;
        use rc_formula::Value;
        // The σ(A−B) = σ(A)−B identity on the module-doc counterexample
        // shape: A = {1,2}, B = {2}, σ = (x ≠ 2). σ(A−B) = {1}; the unsound
        // A−σ(B) would be {1,2}.
        let db = Database::from_facts("A(1)\nA(2)\nB(2)").unwrap();
        let raw = RaExpr::select(
            RaExpr::diff(
                RaExpr::scan("A", vec![Term::var("x")]),
                RaExpr::scan("B", vec![Term::var("x")]),
            ),
            SelPred::NeqConst(Var::new("x"), Value::int(2)),
        );
        let opt = simplify(&raw);
        let want = eval(&raw, &db).unwrap();
        let got = eval(&opt, &db).unwrap();
        assert_eq!(want, got, "optimized diff plan changed the answer");
        assert_eq!(want.len(), 1);
        assert!(want.contains(&[Value::int(1)]));
    }

    #[test]
    fn projection_distributes_over_union() {
        let e = RaExpr::project(
            RaExpr::union(p(), RaExpr::scan("R", vec![Term::var("y"), Term::var("x")])),
            vec![Var::new("y")],
        );
        match simplify(&e) {
            RaExpr::Union(l, r) => {
                assert!(matches!(*l, RaExpr::Project { .. }));
                assert!(matches!(*r, RaExpr::Project { .. }));
            }
            other => panic!("expected union of projections, got {other}"),
        }
    }

    #[test]
    fn union_empty_left_preserves_column_order() {
        // Union advertised [y, x] (left's order); survivor has [x, y].
        let left = RaExpr::Empty {
            cols: vec![Var::new("y"), Var::new("x")],
        };
        let out = simplify(&RaExpr::union(left, p()));
        assert_eq!(out.cols(), vec![Var::new("y"), Var::new("x")]);
    }

    #[test]
    fn select_pushes_beneath_projection_when_columns_survive() {
        use rc_formula::Value;
        // σ[y = c](π[x, y](R(x, y, z))) → π[x, y](σ[y = c](R)).
        let r = RaExpr::scan("R", vec![Term::var("x"), Term::var("y"), Term::var("z")]);
        let e = RaExpr::select(
            RaExpr::project(r, vec![Var::new("x"), Var::new("y")]),
            SelPred::EqConst(Var::new("y"), Value::int(1)),
        );
        match simplify(&e) {
            RaExpr::Project { input, cols } => {
                assert_eq!(cols, vec![Var::new("x"), Var::new("y")]);
                assert!(
                    matches!(&*input, RaExpr::Select { .. }),
                    "selection should sit beneath the projection, got {input}"
                );
            }
            other => panic!("expected projection over selection, got {other}"),
        }
        // When the predicate column is projected away, the select stays put.
        let r2 = RaExpr::scan("R", vec![Term::var("x"), Term::var("y")]);
        let stuck = RaExpr::select(
            RaExpr::project(r2, vec![Var::new("x")]),
            SelPred::EqConst(Var::new("x"), Value::int(1)),
        );
        // x survives so this one *does* push; check the negative case with a
        // predicate over a dropped column is impossible to build (pred cols
        // must be in scope), so instead pin that the rewrite preserves
        // results on data.
        let db = crate::database::Database::from_facts("R(1, 10)\nR(2, 20)").unwrap();
        let want = crate::eval::eval(&stuck, &db).unwrap();
        let got = crate::eval::eval(&simplify(&stuck), &db).unwrap();
        assert_eq!(want, got);
    }

    mod cost {
        use super::*;
        use crate::database::Database;
        use crate::eval::eval;

        /// A database where join order matters: Big × Big is huge but either
        /// Big ⋈ Tiny collapses.
        fn skewed_db() -> Database {
            let mut facts = String::new();
            for i in 0..50 {
                facts.push_str(&format!("A({i}, {})\n", i % 10));
                facts.push_str(&format!("B({}, {i})\n", i % 10));
            }
            facts.push_str("T(0)\nT(1)\n");
            Database::from_facts(&facts).unwrap()
        }

        fn three_way() -> RaExpr {
            // A(x, y) ⋈ B(y, z) ⋈ T(y): T last even though it is the most
            // selective leaf.
            RaExpr::join(
                RaExpr::join(
                    RaExpr::scan("A", vec![Term::var("x"), Term::var("y")]),
                    RaExpr::scan("B", vec![Term::var("y"), Term::var("z")]),
                ),
                RaExpr::scan("T", vec![Term::var("y")]),
            )
        }

        #[test]
        fn reorder_preserves_results_and_column_order() {
            let db = skewed_db();
            let e = three_way();
            let opt = optimize(&e, &db);
            assert_eq!(opt.cols(), e.cols(), "column order must be preserved");
            assert_eq!(eval(&opt, &db).unwrap(), eval(&simplify(&e), &db).unwrap());
        }

        #[test]
        fn reorder_joins_selective_leaf_early() {
            let db = skewed_db();
            let opt = optimize(&three_way(), &db);
            // The tiny T scan must appear inside the innermost join of the
            // chosen plan, not dangling at the end.
            fn innermost_preds(e: &RaExpr, out: &mut Vec<String>) {
                match e {
                    RaExpr::Join(l, r) => {
                        innermost_preds(l, out);
                        innermost_preds(r, out);
                    }
                    RaExpr::Project { input, .. } => innermost_preds(input, out),
                    RaExpr::Scan { pred, .. } => out.push(pred.as_str().to_string()),
                    _ => {}
                }
            }
            let mut order = Vec::new();
            innermost_preds(&opt, &mut order);
            assert_eq!(order.len(), 3);
            let t_pos = order.iter().position(|p| p == "T").expect("T in plan");
            assert!(
                t_pos < 2,
                "selective scan should join early, got order {order:?}"
            );
        }

        #[test]
        fn optimize_is_idempotent() {
            let db = skewed_db();
            let e = three_way();
            let once = optimize(&e, &db);
            let twice = optimize(&once, &db);
            assert_eq!(
                crate::plan::plan_hash(&once),
                crate::plan::plan_hash(&twice),
                "re-optimization must be a fixpoint"
            );
        }

        #[test]
        fn cross_product_query_still_correct() {
            // No shared columns at all — the planner must not invent joins.
            let db = Database::from_facts("A(1)\nA(2)\nB(7)").unwrap();
            let e = RaExpr::join(
                RaExpr::scan("A", vec![Term::var("x")]),
                RaExpr::scan("B", vec![Term::var("y")]),
            );
            let opt = optimize(&e, &db);
            assert_eq!(opt.cols(), e.cols());
            assert_eq!(eval(&opt, &db).unwrap().len(), 2);
        }

        #[test]
        fn greedy_path_handles_many_leaves() {
            // 9 leaves forces the greedy fallback (> 8).
            let mut facts = String::new();
            for i in 0..4 {
                for r in 1..=9 {
                    facts.push_str(&format!("R{r}({i}, {})\n", (i + 1) % 4));
                }
            }
            let db = Database::from_facts(&facts).unwrap();
            let vars: Vec<&str> = vec!["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"];
            let mut e: Option<RaExpr> = None;
            for r in 1..=9usize {
                let leaf = RaExpr::scan(
                    format!("R{r}").as_str(),
                    vec![Term::var(vars[r - 1]), Term::var(vars[r])],
                );
                e = Some(match e {
                    None => leaf,
                    Some(prev) => RaExpr::join(prev, leaf),
                });
            }
            let e = e.unwrap();
            let opt = optimize(&e, &db);
            assert_eq!(opt.cols(), e.cols());
            assert_eq!(eval(&opt, &db).unwrap(), eval(&simplify(&e), &db).unwrap());
        }

        #[test]
        fn early_projection_is_cost_gated_and_sound() {
            // π[x](A(x, y) ⋈ B(y, z)): y is the join column, z is dead weight
            // on B's side — droppable early. Whatever the gate decides, the
            // result must match the unoptimized plan.
            let db = skewed_db();
            let e = RaExpr::project(
                RaExpr::join(
                    RaExpr::scan("A", vec![Term::var("x"), Term::var("y")]),
                    RaExpr::scan("B", vec![Term::var("y"), Term::var("z")]),
                ),
                vec![Var::new("x")],
            );
            let opt = optimize(&e, &db);
            assert_eq!(opt.cols(), vec![Var::new("x")]);
            assert_eq!(eval(&opt, &db).unwrap(), eval(&simplify(&e), &db).unwrap());
        }

        #[test]
        fn feedback_changes_the_chosen_plan() {
            // Seed an observed cardinality that contradicts the estimate and
            // check the planner reacts (the A ⋈ B intermediate is claimed to
            // be tiny, so joining it first becomes attractive again).
            let db = skewed_db();
            let e = three_way();
            let before = optimize(&e, &db);
            let ab = simplify(&RaExpr::join(
                RaExpr::scan("A", vec![Term::var("x"), Term::var("y")]),
                RaExpr::scan("B", vec![Term::var("y"), Term::var("z")]),
            ));
            db.record_observed(crate::plan::plan_hash(&ab), 1);
            let after = optimize(&e, &db);
            // Either the plan changed or it was already optimal; both plans
            // must stay correct.
            assert_eq!(eval(&after, &db).unwrap(), eval(&before, &db).unwrap());
        }
    }
}
