//! Reference evaluator preserving the original engine's data plane.
//!
//! This is a faithful port of the evaluator this crate shipped before the
//! flat-row storage rewrite: every relation is a `BTreeSet<Box<[Value]>>`
//! (one heap allocation per tuple), join probes allocate a key `Vec` per
//! row, `diff` probes a `contains` per row, and every output row is an
//! individually boxed insert. It exists for two reasons:
//!
//! 1. **Differential testing** — the property suite evaluates random
//!    expressions with both engines and asserts identical results,
//!    pinning the batch kernels in `eval` to the original observable
//!    semantics (same tuples, same deterministic order).
//! 2. **Benchmarking** — `BENCH_eval.json` reports the flat-kernel
//!    speedup against this baseline on identical inputs, keeping the
//!    comparison apples-to-apples within one binary.
//!
//! Do not use it for real evaluation; it is deliberately slow.

use crate::database::Database;
use crate::eval::EvalError;
use crate::expr::{RaExpr, SelPred};
use crate::relation::Relation;
use rc_formula::fxhash::FxHashMap;
use rc_formula::{Term, Value, Var};
use std::collections::BTreeSet;

/// A tuple in the baseline representation: one boxed slice per row.
type BTuple = Box<[Value]>;

/// The baseline relation: set-of-boxed-rows, ordered by `Value`'s `Ord`.
struct BRel {
    arity: usize,
    rows: BTreeSet<BTuple>,
}

impl BRel {
    fn new(arity: usize) -> BRel {
        BRel {
            arity,
            rows: BTreeSet::new(),
        }
    }

    fn unit() -> BRel {
        let mut r = BRel::new(0);
        r.rows.insert(Vec::new().into_boxed_slice());
        r
    }

    fn into_relation(self) -> Relation {
        // BTreeSet iterates in ascending order, which is exactly the
        // canonical order of the flat representation; the builder's
        // sorted-input detection makes this conversion linear.
        Relation::from_rows(self.arity, self.rows)
    }
}

/// Evaluate `expr` with the original tuple-at-a-time data plane. The
/// result's column order is `expr.cols()`, like [`crate::eval::eval`].
pub fn eval_baseline(expr: &RaExpr, db: &Database) -> Result<Relation, EvalError> {
    expr.validate(None)?;
    eval_rec(expr, db).map(BRel::into_relation)
}

fn positions(haystack: &[Var], needles: &[Var]) -> Vec<usize> {
    needles
        .iter()
        .map(|v| {
            haystack
                .iter()
                .position(|w| w == v)
                .expect("column present (validated)")
        })
        .collect()
}

fn eval_rec(expr: &RaExpr, db: &Database) -> Result<BRel, EvalError> {
    let out = match expr {
        RaExpr::Scan { pred, pattern } => {
            let base = db
                .relation(*pred)
                .ok_or(EvalError::MissingRelation(*pred))?;
            if base.arity() != pattern.len() {
                return Err(EvalError::ArityMismatch {
                    pred: *pred,
                    stored: base.arity(),
                    pattern: pattern.len(),
                });
            }
            let cols = expr.cols();
            let mut out = BRel::new(cols.len());
            let first_pos: Vec<usize> = cols
                .iter()
                .map(|v| {
                    pattern
                        .iter()
                        .position(|t| *t == Term::Var(*v))
                        .expect("column came from pattern")
                })
                .collect();
            'rows: for row in base.iter() {
                for (i, t) in pattern.iter().enumerate() {
                    match t {
                        Term::Const(c) => {
                            if row[i] != *c {
                                continue 'rows;
                            }
                        }
                        Term::Var(v) => {
                            let fp = first_pos[cols.iter().position(|w| w == v).unwrap()];
                            if row[i] != row[fp] {
                                continue 'rows;
                            }
                        }
                    }
                }
                let tup: BTuple = first_pos.iter().map(|&i| row[i]).collect();
                out.rows.insert(tup);
            }
            out
        }
        RaExpr::Single { value, .. } => {
            let mut out = BRel::new(1);
            out.rows.insert(vec![*value].into_boxed_slice());
            out
        }
        RaExpr::Unit => BRel::unit(),
        RaExpr::Empty { cols } => BRel::new(cols.len()),
        RaExpr::Join(l, r) => {
            let lrel = eval_rec(l, db)?;
            let rrel = eval_rec(r, db)?;
            let lcols = l.cols();
            let rcols = r.cols();
            let shared: Vec<Var> = rcols
                .iter()
                .filter(|v| lcols.contains(v))
                .copied()
                .collect();
            let l_shared = positions(&lcols, &shared);
            let r_shared = positions(&rcols, &shared);
            let r_extra: Vec<usize> = rcols
                .iter()
                .enumerate()
                .filter(|(_, v)| !lcols.contains(v))
                .map(|(i, _)| i)
                .collect();
            // Build on the right side, one key Vec per row (the original
            // allocation pattern).
            let mut index: FxHashMap<Vec<Value>, Vec<&BTuple>> = FxHashMap::default();
            for row in rrel.rows.iter() {
                let key: Vec<Value> = r_shared.iter().map(|&i| row[i]).collect();
                index.entry(key).or_default().push(row);
            }
            let mut out = BRel::new(lcols.len() + r_extra.len());
            for lrow in lrel.rows.iter() {
                let key: Vec<Value> = l_shared.iter().map(|&i| lrow[i]).collect();
                if let Some(matches) = index.get(&key) {
                    for rrow in matches {
                        let mut tup: Vec<Value> = lrow.to_vec();
                        tup.extend(r_extra.iter().map(|&i| rrow[i]));
                        out.rows.insert(tup.into_boxed_slice());
                    }
                }
            }
            out
        }
        RaExpr::Union(l, r) => {
            let lrel = eval_rec(l, db)?;
            let rrel = eval_rec(r, db)?;
            let lcols = l.cols();
            let rcols = r.cols();
            let perm = positions(&rcols, &lcols);
            let mut out = lrel;
            for row in rrel.rows.iter() {
                let tup: BTuple = perm.iter().map(|&i| row[i]).collect();
                out.rows.insert(tup);
            }
            out
        }
        RaExpr::Diff(l, r) => {
            let lrel = eval_rec(l, db)?;
            let rrel = eval_rec(r, db)?;
            let lcols = l.cols();
            let rcols = r.cols();
            let proj = positions(&lcols, &rcols);
            let mut out = BRel::new(lcols.len());
            for row in lrel.rows.iter() {
                let key: Vec<Value> = proj.iter().map(|&i| row[i]).collect();
                if !rrel.rows.contains(key.as_slice()) {
                    out.rows.insert(row.clone());
                }
            }
            out
        }
        RaExpr::Project { input, cols } => {
            let rel = eval_rec(input, db)?;
            let icols = input.cols();
            let proj = positions(&icols, cols);
            let mut out = BRel::new(cols.len());
            for row in rel.rows.iter() {
                let tup: BTuple = proj.iter().map(|&i| row[i]).collect();
                out.rows.insert(tup);
            }
            out
        }
        RaExpr::Select { input, pred } => {
            let rel = eval_rec(input, db)?;
            let icols = input.cols();
            let keep: Box<dyn Fn(&BTuple) -> bool> = match *pred {
                SelPred::EqCols(a, b) => {
                    let (i, j) = (positions(&icols, &[a])[0], positions(&icols, &[b])[0]);
                    Box::new(move |t: &BTuple| t[i] == t[j])
                }
                SelPred::NeqCols(a, b) => {
                    let (i, j) = (positions(&icols, &[a])[0], positions(&icols, &[b])[0]);
                    Box::new(move |t: &BTuple| t[i] != t[j])
                }
                SelPred::EqConst(a, c) => {
                    let i = positions(&icols, &[a])[0];
                    Box::new(move |t: &BTuple| t[i] == c)
                }
                SelPred::NeqConst(a, c) => {
                    let i = positions(&icols, &[a])[0];
                    Box::new(move |t: &BTuple| t[i] != c)
                }
            };
            let mut out = BRel::new(icols.len());
            for row in rel.rows.iter() {
                if keep(row) {
                    out.rows.insert(row.clone());
                }
            }
            out
        }
        RaExpr::Duplicate { input, src, .. } => {
            let rel = eval_rec(input, db)?;
            let icols = input.cols();
            let i = positions(&icols, &[*src])[0];
            let mut out = BRel::new(icols.len() + 1);
            for row in rel.rows.iter() {
                let mut tup: Vec<Value> = row.to_vec();
                tup.push(row[i]);
                out.rows.insert(tup.into_boxed_slice());
            }
            out
        }
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use std::sync::Arc;

    fn db() -> Database {
        Database::from_facts("P(1, 2)\nP(2, 3)\nP(3, 3)\nQ(2)\nQ(3)\nR(1)\nS(1, 2)\nS(9, 9)")
            .unwrap()
    }

    /// Every operator shape, evaluated by both engines.
    #[test]
    fn baseline_agrees_with_kernels_on_operator_zoo() {
        let p = || RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]);
        let q = || RaExpr::scan("Q", vec![Term::var("y")]);
        let exprs: Vec<RaExpr> = vec![
            p(),
            RaExpr::scan("P", vec![Term::var("x"), Term::val(3)]),
            RaExpr::scan("P", vec![Term::var("x"), Term::var("x")]),
            RaExpr::join(p(), q()),
            RaExpr::join(q(), RaExpr::scan("R", vec![Term::var("z")])),
            RaExpr::union(p(), RaExpr::scan("S", vec![Term::var("y"), Term::var("x")])),
            RaExpr::diff(p(), q()),
            RaExpr::diff(p(), RaExpr::scan("R", vec![Term::var("y")])),
            RaExpr::project(p(), vec![Var::new("y")]),
            RaExpr::select(p(), SelPred::NeqCols(Var::new("x"), Var::new("y"))),
            RaExpr::Duplicate {
                input: Arc::new(q()),
                src: Var::new("y"),
                dst: Var::new("y2"),
            },
            RaExpr::Unit,
            RaExpr::Single {
                var: Var::new("x"),
                value: Value::int(5),
            },
        ];
        let d = db();
        for e in exprs {
            let fast = eval(&e, &d).unwrap();
            let slow = eval_baseline(&e, &d).unwrap();
            assert_eq!(fast, slow, "engines disagree on {e}");
            assert_eq!(fast.to_string(), slow.to_string(), "order differs on {e}");
        }
    }

    #[test]
    fn baseline_reports_same_errors() {
        let d = db();
        let missing = RaExpr::scan("Zzz", vec![Term::var("x")]);
        assert_eq!(
            eval_baseline(&missing, &d).unwrap_err(),
            eval(&missing, &d).unwrap_err()
        );
    }
}
