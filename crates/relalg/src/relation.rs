//! Relations: finite sets of same-arity tuples, stored flat.
//!
//! A relation is a single arity-strided `Vec<Value>` held behind an `Arc`,
//! kept **canonical** at every public boundary: rows sorted ascending in
//! value order and deduplicated. Canonical storage gives set semantics,
//! deterministic iteration order (important for reproducible experiment
//! output), O(log n) membership, O(n) merge-based union/difference, and
//! O(1) clone — while eliminating the per-row `Box` allocation and
//! pointer-chasing comparisons of the previous `BTreeSet<Box<[Value]>>`
//! representation. `Value` is 16 bytes and `Copy`, so a million-row binary
//! relation is one 32 MB buffer instead of a million small heap objects.
//!
//! Row order is lexicographic in [`Value`]'s order (integers before
//! strings, strings in string order). String comparisons go through a
//! [`rc_formula::SymbolOrder`] rank snapshot fetched once per bulk
//! operation, so sorting never touches the symbol interner lock per
//! element.
//!
//! Nullary relations are first-class: over zero columns there are exactly
//! two relations, `{}` ("false") and `{()}` ("true"), which is how closed
//! formulas come back from the algebra evaluator. The flat buffer cannot
//! distinguish them (both are zero values), so the row count is stored
//! explicitly.

use crate::govern::{Budget, BudgetExceeded, Governor, Stage};
use rc_formula::{symbol_order, SymbolOrder, Value};
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A database tuple.
pub type Tuple = Box<[Value]>;

/// Build a tuple from anything value-like.
pub fn tuple(vals: impl IntoIterator<Item = impl Into<Value>>) -> Tuple {
    vals.into_iter().map(Into::into).collect()
}

/// Compare two rows lexicographically under one order snapshot.
#[inline]
pub(crate) fn cmp_rows(a: &[Value], b: &[Value], order: &SymbolOrder) -> Ordering {
    for (&x, &y) in a.iter().zip(b.iter()) {
        match x.cmp_with(y, order) {
            Ordering::Equal => continue,
            non_eq => return non_eq,
        }
    }
    a.len().cmp(&b.len())
}

/// A finite relation: a set of tuples sharing one arity.
///
/// Always canonical: rows sorted ascending, no duplicates. Cloning is O(1)
/// (the row buffer is shared copy-on-write via `Arc`).
#[derive(Clone)]
pub struct Relation {
    arity: usize,
    n_rows: usize,
    data: Arc<Vec<Value>>,
}

impl Relation {
    /// The empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            n_rows: 0,
            data: Arc::new(Vec::new()),
        }
    }

    /// The nullary relation `{()}` — the algebra's "true".
    pub fn unit() -> Relation {
        Relation {
            arity: 0,
            n_rows: 1,
            data: Arc::new(Vec::new()),
        }
    }

    /// The nullary empty relation — the algebra's "false".
    pub fn empty_nullary() -> Relation {
        Relation::new(0)
    }

    /// A one-tuple relation.
    pub fn singleton(t: Tuple) -> Relation {
        Relation {
            arity: t.len(),
            n_rows: 1,
            data: Arc::new(t.into_vec()),
        }
    }

    /// Build from rows; panics if arities disagree.
    pub fn from_rows(arity: usize, rows: impl IntoIterator<Item = Tuple>) -> Relation {
        let mut b = RelationBuilder::new(arity);
        for row in rows {
            b.push_row(&row);
        }
        b.finish()
    }

    /// Wrap a buffer that is already canonical (sorted, deduplicated).
    /// Kernel internal: callers must guarantee the invariant.
    pub(crate) fn from_canonical(arity: usize, n_rows: usize, data: Vec<Value>) -> Relation {
        debug_assert_eq!(data.len(), arity * n_rows);
        debug_assert!(
            {
                let order = symbol_order();
                (1..n_rows).all(|i| {
                    cmp_rows(
                        &data[(i - 1) * arity..i * arity],
                        &data[i * arity..(i + 1) * arity],
                        &order,
                    ) == Ordering::Less
                })
            },
            "from_canonical called with non-canonical rows"
        );
        Relation {
            arity,
            n_rows,
            data: Arc::new(data),
        }
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// The `i`-th row in sorted order.
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// The whole row buffer, arity-strided, canonical order.
    #[inline]
    pub fn flat(&self) -> &[Value] {
        &self.data
    }

    /// Binary-search for a row, returning its index or the insertion point.
    fn search(&self, t: &[Value], order: &SymbolOrder) -> Result<usize, usize> {
        let (mut lo, mut hi) = (0usize, self.n_rows);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match cmp_rows(self.row(mid), t, order) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Insert a tuple; returns whether it was new. Panics on arity mismatch
    /// (a programming error, not a data error — loaders validate before
    /// inserting).
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            t.len(),
            self.arity
        );
        let order = symbol_order();
        match self.search(&t, &order) {
            Ok(_) => false,
            Err(pos) => {
                let data = Arc::make_mut(&mut self.data);
                let at = pos * self.arity;
                data.splice(at..at, t.iter().copied());
                self.n_rows += 1;
                true
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, t: &[Value]) -> bool {
        if t.len() != self.arity {
            return false;
        }
        let order = symbol_order();
        self.search(t, &order).is_ok()
    }

    /// Iterate over rows in sorted order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[Value]> + Clone + '_ {
        let arity = self.arity;
        let data: &[Value] = &self.data;
        (0..self.n_rows).map(move |i| &data[i * arity..(i + 1) * arity])
    }

    /// For a nullary relation: is it "true" (`{()}`)?
    pub fn as_bool(&self) -> Option<bool> {
        if self.arity == 0 {
            Some(self.n_rows > 0)
        } else {
            None
        }
    }

    /// Every value appearing in any tuple, deduplicated, sorted.
    pub fn values(&self) -> BTreeSet<Value> {
        self.data.iter().copied().collect()
    }

    /// Set union with another relation of the same arity (linear merge).
    pub fn union(&self, other: &Relation) -> Relation {
        let mut gov = Governor::new(Budget::unlimited(), Stage::Eval);
        self.union_governed(other, &mut gov)
            .expect("unlimited budget cannot trip")
    }

    /// [`Relation::union`] under a [`Governor`]: checkpoints every
    /// [`crate::govern::CHECK_INTERVAL`] merged rows so huge merges stay
    /// cancellable. Either the exact union or a budget error — never a
    /// partial relation.
    pub fn union_governed(
        &self,
        other: &Relation,
        gov: &mut Governor<'_>,
    ) -> Result<Relation, BudgetExceeded> {
        assert_eq!(self.arity, other.arity, "union arity mismatch");
        if self.is_empty() || Arc::ptr_eq(&self.data, &other.data) {
            return Ok(other.clone());
        }
        if other.is_empty() {
            return Ok(self.clone());
        }
        if self.arity == 0 {
            return Ok(Relation::unit());
        }
        let order = symbol_order();
        let arity = self.arity;
        let mut out = Vec::with_capacity(self.data.len() + other.data.len());
        let (mut i, mut j) = (0usize, 0usize);
        let mut n = 0usize;
        while i < self.n_rows && j < other.n_rows {
            gov.tick(n)?;
            match cmp_rows(self.row(i), other.row(j), &order) {
                Ordering::Less => {
                    out.extend_from_slice(self.row(i));
                    i += 1;
                }
                Ordering::Greater => {
                    out.extend_from_slice(other.row(j));
                    j += 1;
                }
                Ordering::Equal => {
                    out.extend_from_slice(self.row(i));
                    i += 1;
                    j += 1;
                }
            }
            n += 1;
        }
        if i < self.n_rows {
            out.extend_from_slice(&self.data[i * arity..]);
            n += self.n_rows - i;
        }
        if j < other.n_rows {
            out.extend_from_slice(&other.data[j * arity..]);
            n += other.n_rows - j;
        }
        Ok(Relation {
            arity,
            n_rows: n,
            data: Arc::new(out),
        })
    }

    /// Plain set difference with another relation of the same arity
    /// (linear merge).
    pub fn minus(&self, other: &Relation) -> Relation {
        let mut gov = Governor::new(Budget::unlimited(), Stage::Eval);
        self.minus_governed(other, &mut gov)
            .expect("unlimited budget cannot trip")
    }

    /// [`Relation::minus`] under a [`Governor`]: checkpoints every
    /// [`crate::govern::CHECK_INTERVAL`] scanned rows. Either the exact
    /// difference or a budget error — never a partial relation.
    pub fn minus_governed(
        &self,
        other: &Relation,
        gov: &mut Governor<'_>,
    ) -> Result<Relation, BudgetExceeded> {
        assert_eq!(self.arity, other.arity, "difference arity mismatch");
        if self.is_empty() || Arc::ptr_eq(&self.data, &other.data) && self.n_rows == other.n_rows {
            return Ok(Relation::new(self.arity));
        }
        if other.is_empty() {
            return Ok(self.clone());
        }
        if self.arity == 0 {
            // other is non-empty {()}, so the difference is empty.
            return Ok(Relation::empty_nullary());
        }
        let order = symbol_order();
        let arity = self.arity;
        let mut out = Vec::new();
        let mut n = 0usize;
        let mut j = 0usize;
        for i in 0..self.n_rows {
            gov.tick(i)?;
            let row = self.row(i);
            let mut keep = true;
            while j < other.n_rows {
                match cmp_rows(other.row(j), row, &order) {
                    Ordering::Less => j += 1,
                    Ordering::Equal => {
                        keep = false;
                        break;
                    }
                    Ordering::Greater => break,
                }
            }
            if keep {
                out.extend_from_slice(row);
                n += 1;
            }
        }
        Ok(Relation {
            arity,
            n_rows: n,
            data: Arc::new(out),
        })
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        self.arity == other.arity
            && self.n_rows == other.n_rows
            && (Arc::ptr_eq(&self.data, &other.data) || self.data == other.data)
    }
}

impl Eq for Relation {}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation(arity={}, {})", self.arity, self)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(")?;
            for (j, v) in t.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Tuple> for Relation {
    /// Collect tuples into a relation; arity is taken from the first tuple
    /// (empty iterators produce a nullary relation).
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Relation {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().map(|t| t.len()).unwrap_or(0);
        Relation::from_rows(arity, it)
    }
}

/// Accumulates rows into a flat buffer, canonicalizing once at the end.
///
/// This is the bulk-construction path: `push_row` is an `extend` into one
/// growing `Vec`, and `finish` sorts + dedups only if the rows are not
/// already in order (one linear scan detects that, so merge-shaped
/// producers pay nothing).
pub struct RelationBuilder {
    arity: usize,
    n_rows: usize,
    data: Vec<Value>,
}

impl RelationBuilder {
    /// A builder for rows of the given arity.
    pub fn new(arity: usize) -> RelationBuilder {
        RelationBuilder {
            arity,
            n_rows: 0,
            data: Vec::new(),
        }
    }

    /// A builder pre-sized for `rows` rows.
    pub fn with_capacity(arity: usize, rows: usize) -> RelationBuilder {
        RelationBuilder {
            arity,
            n_rows: 0,
            data: Vec::with_capacity(arity * rows),
        }
    }

    /// Append one row. Panics on arity mismatch.
    #[inline]
    pub fn push_row(&mut self, row: &[Value]) {
        assert_eq!(
            row.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            row.len(),
            self.arity
        );
        self.data.extend_from_slice(row);
        self.n_rows += 1;
    }

    /// Append one row given as exactly `arity` values.
    #[inline]
    pub fn push_row_from(&mut self, row: impl IntoIterator<Item = Value>) {
        let before = self.data.len();
        self.data.extend(row);
        assert_eq!(
            self.data.len() - before,
            self.arity,
            "pushed row does not match relation arity {}",
            self.arity
        );
        self.n_rows += 1;
    }

    /// The arity rows must have.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// Any rows yet?
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Sort, deduplicate, and seal the relation.
    pub fn finish(self) -> Relation {
        let RelationBuilder {
            arity,
            mut n_rows,
            mut data,
        } = self;
        if arity == 0 {
            return if n_rows == 0 {
                Relation::empty_nullary()
            } else {
                Relation::unit()
            };
        }
        if n_rows > 1 {
            let order = symbol_order();
            let row = |i: usize| &data[i * arity..(i + 1) * arity];
            // One linear scan classifies the buffer: already canonical
            // (sorted, strictly increasing), sorted-but-with-dups, or
            // unsorted.
            let mut sorted = true;
            let mut has_dups = false;
            for i in 1..n_rows {
                match cmp_rows(row(i - 1), row(i), &order) {
                    Ordering::Less => {}
                    Ordering::Equal => has_dups = true,
                    Ordering::Greater => {
                        sorted = false;
                        break;
                    }
                }
            }
            if !sorted {
                let mut idx: Vec<u32> = (0..n_rows as u32).collect();
                idx.sort_unstable_by(|&a, &b| cmp_rows(row(a as usize), row(b as usize), &order));
                let mut rebuilt = Vec::with_capacity(data.len());
                let mut kept = 0usize;
                for &i in &idx {
                    let r = row(i as usize);
                    if kept > 0 {
                        let last = &rebuilt[(kept - 1) * arity..kept * arity];
                        if cmp_rows(last, r, &order) == Ordering::Equal {
                            continue;
                        }
                    }
                    rebuilt.extend_from_slice(r);
                    kept += 1;
                }
                data = rebuilt;
                n_rows = kept;
            } else if has_dups {
                let mut kept = 1usize;
                for i in 1..n_rows {
                    let prev = &data[(kept - 1) * arity..kept * arity];
                    let cur = &data[i * arity..(i + 1) * arity];
                    if cmp_rows(prev, cur, &order) == Ordering::Equal {
                        continue;
                    }
                    data.copy_within(i * arity..(i + 1) * arity, kept * arity);
                    kept += 1;
                }
                data.truncate(kept * arity);
                n_rows = kept;
            }
        }
        data.shrink_to_fit();
        Relation {
            arity,
            n_rows,
            data: Arc::new(data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_semantics() {
        let mut r = Relation::new(2);
        assert!(r.insert(tuple([1i64, 2])));
        assert!(!r.insert(tuple([1i64, 2])));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[Value::int(1), Value::int(2)]));
        assert!(!r.contains(&[Value::int(2), Value::int(1)]));
    }

    #[test]
    fn nullary_booleans() {
        assert_eq!(Relation::unit().as_bool(), Some(true));
        assert_eq!(Relation::empty_nullary().as_bool(), Some(false));
        assert_eq!(Relation::new(1).as_bool(), None);
    }

    #[test]
    fn nullary_insert_roundtrip() {
        let mut r = Relation::empty_nullary();
        assert!(!r.contains(&[]));
        assert!(r.insert(Vec::new().into_boxed_slice()));
        assert!(!r.insert(Vec::new().into_boxed_slice()));
        assert_eq!(r.as_bool(), Some(true));
        assert!(r.contains(&[]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(1);
        r.insert(tuple([1i64, 2]));
    }

    #[test]
    fn union_and_minus() {
        let a = Relation::from_rows(1, [tuple([1i64]), tuple([2i64])]);
        let b = Relation::from_rows(1, [tuple([2i64]), tuple([3i64])]);
        assert_eq!(a.union(&b).len(), 3);
        let d = a.minus(&b);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&[Value::int(1)]));
    }

    #[test]
    fn deterministic_display() {
        let r = Relation::from_rows(1, [tuple([3i64]), tuple([1i64]), tuple([2i64])]);
        assert_eq!(r.to_string(), "{(1), (2), (3)}");
    }

    #[test]
    fn values_flatten() {
        let r = Relation::from_rows(2, [tuple([1i64, 2]), tuple([2i64, 3])]);
        let vals: Vec<Value> = r.values().into_iter().collect();
        assert_eq!(vals, vec![Value::int(1), Value::int(2), Value::int(3)]);
    }

    #[test]
    fn builder_matches_insert_loop() {
        // Random-ish interleavings, duplicates included.
        let rows = [[5i64, 1], [2, 2], [5, 1], [0, 9], [2, 2], [2, 1], [9, 0]];
        let mut by_insert = Relation::new(2);
        let mut b = RelationBuilder::new(2);
        for r in rows {
            by_insert.insert(tuple(r));
            b.push_row(&[Value::int(r[0]), Value::int(r[1])]);
        }
        let built = b.finish();
        assert_eq!(built, by_insert);
        assert_eq!(built.to_string(), by_insert.to_string());
        assert_eq!(built.len(), 5);
    }

    #[test]
    fn builder_sorted_input_is_preserved() {
        let mut b = RelationBuilder::new(1);
        for i in 0..10i64 {
            b.push_row(&[Value::int(i)]);
        }
        let r = b.finish();
        assert_eq!(r.len(), 10);
        let got: Vec<i64> = r
            .iter()
            .map(|t| match t[0] {
                Value::Int(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clone_is_shared_and_copy_on_write() {
        let a = Relation::from_rows(1, [tuple([1i64]), tuple([2i64])]);
        let mut b = a.clone();
        assert_eq!(a, b);
        b.insert(tuple([3i64]));
        assert_eq!(a.len(), 2, "insert into clone must not affect original");
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn string_rows_sort_by_string_order() {
        let r = Relation::from_rows(
            1,
            [
                tuple(["zeta"]),
                tuple(["alpha"]),
                tuple([Value::int(10)]),
                tuple(["miguel"]),
            ],
        );
        assert_eq!(r.to_string(), "{(10), ('alpha'), ('miguel'), ('zeta')}");
    }

    #[test]
    fn mixed_arity_contains_is_false() {
        let r = Relation::from_rows(2, [tuple([1i64, 2])]);
        assert!(!r.contains(&[Value::int(1)]));
        assert!(!r.contains(&[]));
    }
}
