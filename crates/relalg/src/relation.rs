//! Relations: finite sets of same-arity tuples.
//!
//! Rows are stored in a `BTreeSet`, which gives set semantics *and*
//! deterministic iteration order (important for reproducible experiment
//! output). Nullary relations are first-class: over zero columns there are
//! exactly two relations, `{}` ("false") and `{()}` ("true"), which is how
//! closed formulas come back from the algebra evaluator.

use rc_formula::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A database tuple.
pub type Tuple = Box<[Value]>;

/// Build a tuple from anything value-like.
pub fn tuple(vals: impl IntoIterator<Item = impl Into<Value>>) -> Tuple {
    vals.into_iter().map(Into::into).collect()
}

/// A finite relation: a set of tuples sharing one arity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Relation {
    arity: usize,
    rows: BTreeSet<Tuple>,
}

impl Relation {
    /// The empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            rows: BTreeSet::new(),
        }
    }

    /// The nullary relation `{()}` — the algebra's "true".
    pub fn unit() -> Relation {
        let mut r = Relation::new(0);
        r.insert(Vec::new().into_boxed_slice());
        r
    }

    /// The nullary empty relation — the algebra's "false".
    pub fn empty_nullary() -> Relation {
        Relation::new(0)
    }

    /// A one-tuple relation.
    pub fn singleton(t: Tuple) -> Relation {
        let mut r = Relation::new(t.len());
        r.insert(t);
        r
    }

    /// Build from rows; panics if arities disagree.
    pub fn from_rows(arity: usize, rows: impl IntoIterator<Item = Tuple>) -> Relation {
        let mut r = Relation::new(arity);
        for row in rows {
            r.insert(row);
        }
        r
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a tuple. Panics on arity mismatch (a programming error, not a
    /// data error — loaders validate before inserting).
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            t.len(),
            self.arity
        );
        self.rows.insert(t)
    }

    /// Membership test.
    pub fn contains(&self, t: &[Value]) -> bool {
        // BTreeSet<Box<[Value]>> lookups can borrow as [Value].
        self.rows.contains(t)
    }

    /// Iterate over tuples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.rows.iter()
    }

    /// For a nullary relation: is it "true" (`{()}`)?
    pub fn as_bool(&self) -> Option<bool> {
        if self.arity == 0 {
            Some(!self.rows.is_empty())
        } else {
            None
        }
    }

    /// Every value appearing in any tuple, deduplicated, sorted.
    pub fn values(&self) -> BTreeSet<Value> {
        self.rows.iter().flat_map(|t| t.iter().copied()).collect()
    }

    /// Set union with another relation of the same arity.
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity, "union arity mismatch");
        let mut out = self.clone();
        for t in other.iter() {
            out.rows.insert(t.clone());
        }
        out
    }

    /// Plain set difference with another relation of the same arity.
    pub fn minus(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity, "difference arity mismatch");
        Relation {
            arity: self.arity,
            rows: self.rows.difference(&other.rows).cloned().collect(),
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.rows.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(")?;
            for (j, v) in t.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Tuple> for Relation {
    /// Collect tuples into a relation; arity is taken from the first tuple
    /// (empty iterators produce a nullary relation).
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Relation {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().map(|t| t.len()).unwrap_or(0);
        Relation::from_rows(arity, it)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_semantics() {
        let mut r = Relation::new(2);
        assert!(r.insert(tuple([1i64, 2])));
        assert!(!r.insert(tuple([1i64, 2])));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[Value::int(1), Value::int(2)]));
        assert!(!r.contains(&[Value::int(2), Value::int(1)]));
    }

    #[test]
    fn nullary_booleans() {
        assert_eq!(Relation::unit().as_bool(), Some(true));
        assert_eq!(Relation::empty_nullary().as_bool(), Some(false));
        assert_eq!(Relation::new(1).as_bool(), None);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(1);
        r.insert(tuple([1i64, 2]));
    }

    #[test]
    fn union_and_minus() {
        let a = Relation::from_rows(1, [tuple([1i64]), tuple([2i64])]);
        let b = Relation::from_rows(1, [tuple([2i64]), tuple([3i64])]);
        assert_eq!(a.union(&b).len(), 3);
        let d = a.minus(&b);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&[Value::int(1)]));
    }

    #[test]
    fn deterministic_display() {
        let r = Relation::from_rows(1, [tuple([3i64]), tuple([1i64]), tuple([2i64])]);
        assert_eq!(r.to_string(), "{(1), (2), (3)}");
    }

    #[test]
    fn values_flatten() {
        let r = Relation::from_rows(2, [tuple([1i64, 2]), tuple([2i64, 3])]);
        let vals: Vec<Value> = r.values().into_iter().collect();
        assert_eq!(vals, vec![Value::int(1), Value::int(2), Value::int(3)]);
    }
}
