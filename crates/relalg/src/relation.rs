//! Relations: finite sets of same-arity tuples, stored flat.
//!
//! A relation is a single arity-strided `Vec<Value>` held behind an `Arc`,
//! kept **canonical** at every public boundary: rows sorted ascending in
//! value order and deduplicated. Canonical storage gives set semantics,
//! deterministic iteration order (important for reproducible experiment
//! output), O(log n) membership, O(n) merge-based union/difference, and
//! O(1) clone — while eliminating the per-row `Box` allocation and
//! pointer-chasing comparisons of the previous `BTreeSet<Box<[Value]>>`
//! representation. `Value` is 16 bytes and `Copy`, so a million-row binary
//! relation is one 32 MB buffer instead of a million small heap objects.
//!
//! Row order is lexicographic in [`Value`]'s order (integers before
//! strings, strings in string order). String comparisons go through a
//! [`rc_formula::SymbolOrder`] rank snapshot fetched once per bulk
//! operation, so sorting never touches the symbol interner lock per
//! element.
//!
//! Nullary relations are first-class: over zero columns there are exactly
//! two relations, `{}` ("false") and `{()}` ("true"), which is how closed
//! formulas come back from the algebra evaluator. The flat buffer cannot
//! distinguish them (both are zero values), so the row count is stored
//! explicitly.
//!
//! **Canonical invariant.** Every constructed `Relation` satisfies
//! [`Relation::debug_assert_canonical`]: the buffer is exactly
//! `arity × n_rows` values, rows strictly ascending (sorted *and*
//! deduplicated). The invariant is what makes `PartialEq` a buffer compare,
//! membership a binary search, union/difference linear merges — and it is
//! debug-checked at builder finish, at every trusted `from_canonical`
//! construction, and at partition merges.
//!
//! For partition-parallel evaluation, [`Relation::partition_by`] splits a
//! relation into disjoint hash partitions ([`PartitionedRelation`]) that
//! are each canonical by construction (a subsequence of a sorted sequence),
//! so per-partition kernel outputs merge back into canonical form without
//! a global re-sort.

use crate::govern::{Budget, BudgetExceeded, Governor, Stage};
use rc_formula::fxhash::FxHasher;
use rc_formula::{symbol_order, SymbolOrder, Value};
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A database tuple.
pub type Tuple = Box<[Value]>;

/// Build a tuple from anything value-like.
pub fn tuple(vals: impl IntoIterator<Item = impl Into<Value>>) -> Tuple {
    vals.into_iter().map(Into::into).collect()
}

/// Compare two rows lexicographically under one order snapshot.
#[inline]
pub(crate) fn cmp_rows(a: &[Value], b: &[Value], order: &SymbolOrder) -> Ordering {
    for (&x, &y) in a.iter().zip(b.iter()) {
        match x.cmp_with(y, order) {
            Ordering::Equal => continue,
            non_eq => return non_eq,
        }
    }
    a.len().cmp(&b.len())
}

/// Hash the listed columns of a row (order-sensitive). This is the shared
/// key hash for the join kernels *and* for [`Relation::partition_by`]: two
/// rows agreeing on their key columns hash identically, so co-partitioning
/// both join inputs on the shared columns sends every matching pair to the
/// same partition.
#[inline]
pub(crate) fn hash_cols(row: &[Value], cols: &[usize]) -> u64 {
    let mut h = FxHasher::default();
    for &c in cols {
        row[c].hash(&mut h);
    }
    h.finish()
}

/// Fewest input rows that justify giving a partition a worker thread of its
/// own; below this the spawn/merge overhead exceeds the kernel work.
pub const MIN_PARTITION_ROWS: usize = 4096;

/// Deterministic partition count for an operator over `rows` input rows on
/// this machine: one partition per [`MIN_PARTITION_ROWS`] rows, capped at
/// the available cores, never zero. Depends only on the cardinality and the
/// host's core count, so repeated runs on one machine always pick the same
/// layout (the golden-trace suite pins partition cardinalities under an
/// explicit [`crate::govern::Budget::with_partitions`] override instead, so
/// its snapshots stay machine-independent).
pub fn partition_count(rows: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    cores.min(rows / MIN_PARTITION_ROWS).max(1)
}

/// Side-size ceiling for the binary-search-and-stitch fast path in
/// [`Relation::union_governed`] and [`Relation::minus_governed`]: a side
/// at most this big (and at least 8× smaller than the other) is located
/// by per-row binary search and the output assembled from whole-segment
/// copies, instead of walking the big side row by row.
const SMALL_MERGE: usize = 64;

/// A finite relation: a set of tuples sharing one arity.
///
/// Always canonical: rows sorted ascending, no duplicates. Cloning is O(1)
/// (the row buffer is shared copy-on-write via `Arc`).
#[derive(Clone)]
pub struct Relation {
    arity: usize,
    n_rows: usize,
    data: Arc<Vec<Value>>,
}

impl Relation {
    /// The empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            n_rows: 0,
            data: Arc::new(Vec::new()),
        }
    }

    /// The nullary relation `{()}` — the algebra's "true".
    pub fn unit() -> Relation {
        Relation {
            arity: 0,
            n_rows: 1,
            data: Arc::new(Vec::new()),
        }
    }

    /// The nullary empty relation — the algebra's "false".
    pub fn empty_nullary() -> Relation {
        Relation::new(0)
    }

    /// A one-tuple relation.
    pub fn singleton(t: Tuple) -> Relation {
        Relation {
            arity: t.len(),
            n_rows: 1,
            data: Arc::new(t.into_vec()),
        }
    }

    /// Build from rows; panics if arities disagree.
    pub fn from_rows(arity: usize, rows: impl IntoIterator<Item = Tuple>) -> Relation {
        let mut b = RelationBuilder::new(arity);
        for row in rows {
            b.push_row(&row);
        }
        b.finish()
    }

    /// Wrap a buffer that is already canonical (sorted, deduplicated).
    /// Kernel internal: callers must guarantee the invariant.
    pub(crate) fn from_canonical(arity: usize, n_rows: usize, data: Vec<Value>) -> Relation {
        let rel = Relation {
            arity,
            n_rows,
            data: Arc::new(data),
        };
        rel.debug_assert_canonical();
        rel
    }

    /// Debug-assert the canonical-storage invariant every construction path
    /// must uphold: the buffer holds exactly `n_rows` arity-strided rows,
    /// sorted strictly ascending under the current symbol order (sorted
    /// *and* duplicate-free), and a nullary relation has at most one row.
    /// Called at builder finish, at every trusted `from_canonical`
    /// construction, and at partition merges; a no-op in release builds.
    #[inline]
    pub fn debug_assert_canonical(&self) {
        #[cfg(debug_assertions)]
        {
            assert_eq!(
                self.data.len(),
                self.arity * self.n_rows,
                "relation buffer length {} disagrees with arity {} × rows {}",
                self.data.len(),
                self.arity,
                self.n_rows
            );
            if self.arity == 0 {
                assert!(
                    self.n_rows <= 1,
                    "nullary relation claims {} rows",
                    self.n_rows
                );
            } else {
                let order = symbol_order();
                for i in 1..self.n_rows {
                    assert!(
                        cmp_rows(self.row(i - 1), self.row(i), &order) == Ordering::Less,
                        "rows {} and {} are out of order or duplicated",
                        i - 1,
                        i
                    );
                }
            }
        }
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// The `i`-th row in sorted order.
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// The whole row buffer, arity-strided, canonical order.
    #[inline]
    pub fn flat(&self) -> &[Value] {
        &self.data
    }

    /// Binary-search for a row, returning its index or the insertion point.
    fn search(&self, t: &[Value], order: &SymbolOrder) -> Result<usize, usize> {
        let (mut lo, mut hi) = (0usize, self.n_rows);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match cmp_rows(self.row(mid), t, order) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Index of the first row `>= probe` in canonical order (the insertion
    /// point of `probe`) — used by the range-parallel union/difference
    /// kernels to align a split of one relation with the other.
    pub(crate) fn lower_bound(&self, probe: &[Value], order: &SymbolOrder) -> usize {
        let (mut lo, mut hi) = (0usize, self.n_rows);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if cmp_rows(self.row(mid), probe, order) == Ordering::Less {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Split the relation into `n` hash partitions on `key_cols`: each row
    /// goes to partition `hash(key columns) mod n`. Rows are taken in
    /// canonical order, so every partition is a strictly ascending
    /// subsequence — itself a canonical [`Relation`] — and
    /// [`PartitionedRelation::merge`] restores exactly the source relation.
    /// Rows agreeing on the key columns always share a partition, which is
    /// what makes partition-wise joins on those columns sound.
    ///
    /// Panics if `n == 0` or a key column is out of range. `n` may exceed
    /// the row count (the surplus partitions are empty); nullary relations
    /// put their at-most-one row in partition 0.
    ///
    /// ```
    /// use rc_relalg::{Relation, RelationBuilder};
    /// use rc_formula::Value;
    ///
    /// let mut b = RelationBuilder::new(2);
    /// for i in 0..100i64 {
    ///     b.push_row(&[Value::int(i), Value::int(i % 7)]);
    /// }
    /// let rel = b.finish();
    /// // Partition on the second column into 4 disjoint parts.
    /// let parts = rel.partition_by(&[1], 4);
    /// assert_eq!(parts.parts().len(), 4);
    /// assert_eq!(parts.parts().iter().map(Relation::len).sum::<usize>(), rel.len());
    /// // Merging restores exactly the original canonical relation.
    /// assert_eq!(parts.merge(), rel);
    /// ```
    pub fn partition_by(&self, key_cols: &[usize], n: usize) -> PartitionedRelation {
        assert!(n > 0, "partition count must be positive");
        for &c in key_cols {
            assert!(
                c < self.arity,
                "partition key column {c} out of range for arity {}",
                self.arity
            );
        }
        if n == 1 || self.arity == 0 {
            let mut parts = vec![self.clone()];
            parts.resize(n, Relation::new(self.arity));
            return PartitionedRelation {
                arity: self.arity,
                key_cols: key_cols.to_vec(),
                parts,
            };
        }
        let mut bufs: Vec<Vec<Value>> = vec![Vec::new(); n];
        let mut counts = vec![0usize; n];
        for row in self.iter() {
            let b = (hash_cols(row, key_cols) % n as u64) as usize;
            bufs[b].extend_from_slice(row);
            counts[b] += 1;
        }
        let parts = bufs
            .into_iter()
            .zip(counts)
            .map(|(buf, rows)| Relation::from_canonical(self.arity, rows, buf))
            .collect();
        PartitionedRelation {
            arity: self.arity,
            key_cols: key_cols.to_vec(),
            parts,
        }
    }

    /// Insert a tuple; returns whether it was new. Panics on arity mismatch
    /// (a programming error, not a data error — loaders validate before
    /// inserting).
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            t.len(),
            self.arity
        );
        let order = symbol_order();
        match self.search(&t, &order) {
            Ok(_) => false,
            Err(pos) => {
                let data = Arc::make_mut(&mut self.data);
                let at = pos * self.arity;
                data.splice(at..at, t.iter().copied());
                self.n_rows += 1;
                true
            }
        }
    }

    /// Do `self` and `other` share the same underlying row buffer?
    /// Exact (pointer) identity, not value equality: a no-op
    /// `Relation::apply_delta` and plain clones propagate the same
    /// `Arc`'d buffer, so the IVM refresh path uses this to decide a
    /// cached hash index is still valid for a node's unchanged value.
    pub fn shares_data(&self, other: &Relation) -> bool {
        self.arity == other.arity
            && self.n_rows == other.n_rows
            && Arc::ptr_eq(&self.data, &other.data)
    }

    /// Membership test.
    pub fn contains(&self, t: &[Value]) -> bool {
        if t.len() != self.arity {
            return false;
        }
        let order = symbol_order();
        self.search(t, &order).is_ok()
    }

    /// Iterate over rows in sorted order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[Value]> + Clone + '_ {
        let arity = self.arity;
        let data: &[Value] = &self.data;
        (0..self.n_rows).map(move |i| &data[i * arity..(i + 1) * arity])
    }

    /// For a nullary relation: is it "true" (`{()}`)?
    pub fn as_bool(&self) -> Option<bool> {
        if self.arity == 0 {
            Some(self.n_rows > 0)
        } else {
            None
        }
    }

    /// Every value appearing in any tuple, deduplicated, sorted.
    pub fn values(&self) -> BTreeSet<Value> {
        self.data.iter().copied().collect()
    }

    /// Set union with another relation of the same arity (linear merge).
    pub fn union(&self, other: &Relation) -> Relation {
        let mut gov = Governor::new(Budget::unlimited(), Stage::Eval);
        self.union_governed(other, &mut gov)
            .expect("unlimited budget cannot trip")
    }

    /// [`Relation::union`] under a [`Governor`]: checkpoints every
    /// [`crate::govern::CHECK_INTERVAL`] merged rows so huge merges stay
    /// cancellable. Either the exact union or a budget error — never a
    /// partial relation.
    pub fn union_governed(
        &self,
        other: &Relation,
        gov: &mut Governor<'_>,
    ) -> Result<Relation, BudgetExceeded> {
        assert_eq!(self.arity, other.arity, "union arity mismatch");
        if self.is_empty() || Arc::ptr_eq(&self.data, &other.data) {
            return Ok(other.clone());
        }
        if other.is_empty() {
            return Ok(self.clone());
        }
        if self.arity == 0 {
            return Ok(Relation::unit());
        }
        let order = symbol_order();
        let arity = self.arity;
        // Tiny right side into a big left side: binary-search each row's
        // slot and stitch the output from whole-segment copies instead of
        // a per-row comparison merge. This is the IVM trickle path — a
        // handful of delta rows applied to a buffer of hundreds of
        // thousands — where memcpy beats row-at-a-time by an order of
        // magnitude.
        if other.n_rows <= SMALL_MERGE && other.n_rows * 8 <= self.n_rows {
            let mut inserts: Vec<(usize, usize)> = Vec::with_capacity(other.n_rows);
            for j in 0..other.n_rows {
                gov.tick(j)?;
                if let Err(pos) = self.search(other.row(j), &order) {
                    inserts.push((pos, j));
                }
            }
            if inserts.is_empty() {
                return Ok(self.clone());
            }
            let mut out = Vec::with_capacity(self.data.len() + inserts.len() * arity);
            let mut prev = 0usize;
            // `other` is sorted, so the slot positions are nondecreasing.
            for &(pos, j) in &inserts {
                out.extend_from_slice(&self.data[prev * arity..pos * arity]);
                out.extend_from_slice(other.row(j));
                prev = pos;
            }
            out.extend_from_slice(&self.data[prev * arity..]);
            return Ok(Relation::from_canonical(
                arity,
                self.n_rows + inserts.len(),
                out,
            ));
        }
        let mut out = Vec::with_capacity(self.data.len() + other.data.len());
        let (mut i, mut j) = (0usize, 0usize);
        let mut n = 0usize;
        while i < self.n_rows && j < other.n_rows {
            gov.tick(n)?;
            match cmp_rows(self.row(i), other.row(j), &order) {
                Ordering::Less => {
                    out.extend_from_slice(self.row(i));
                    i += 1;
                }
                Ordering::Greater => {
                    out.extend_from_slice(other.row(j));
                    j += 1;
                }
                Ordering::Equal => {
                    out.extend_from_slice(self.row(i));
                    i += 1;
                    j += 1;
                }
            }
            n += 1;
        }
        if i < self.n_rows {
            out.extend_from_slice(&self.data[i * arity..]);
            n += self.n_rows - i;
        }
        if j < other.n_rows {
            out.extend_from_slice(&other.data[j * arity..]);
            n += other.n_rows - j;
        }
        Ok(Relation::from_canonical(arity, n, out))
    }

    /// Plain set difference with another relation of the same arity
    /// (linear merge).
    pub fn minus(&self, other: &Relation) -> Relation {
        let mut gov = Governor::new(Budget::unlimited(), Stage::Eval);
        self.minus_governed(other, &mut gov)
            .expect("unlimited budget cannot trip")
    }

    /// [`Relation::minus`] under a [`Governor`]: checkpoints every
    /// [`crate::govern::CHECK_INTERVAL`] scanned rows. Either the exact
    /// difference or a budget error — never a partial relation.
    pub fn minus_governed(
        &self,
        other: &Relation,
        gov: &mut Governor<'_>,
    ) -> Result<Relation, BudgetExceeded> {
        assert_eq!(self.arity, other.arity, "difference arity mismatch");
        if self.is_empty() || Arc::ptr_eq(&self.data, &other.data) && self.n_rows == other.n_rows {
            return Ok(Relation::new(self.arity));
        }
        if other.is_empty() {
            return Ok(self.clone());
        }
        if self.arity == 0 {
            // other is non-empty {()}, so the difference is empty.
            return Ok(Relation::empty_nullary());
        }
        let order = symbol_order();
        let arity = self.arity;
        // Tiny subtrahend from a big relation: locate the doomed rows by
        // binary search and stitch the survivors from whole-segment
        // copies (see the twin fast path in [`Relation::union_governed`]).
        if other.n_rows <= SMALL_MERGE && other.n_rows * 8 <= self.n_rows {
            let mut hits: Vec<usize> = Vec::with_capacity(other.n_rows);
            for j in 0..other.n_rows {
                gov.tick(j)?;
                if let Ok(pos) = self.search(other.row(j), &order) {
                    hits.push(pos);
                }
            }
            if hits.is_empty() {
                return Ok(self.clone());
            }
            let mut out = Vec::with_capacity((self.n_rows - hits.len()) * arity);
            let mut prev = 0usize;
            // Distinct sorted rows give strictly increasing positions.
            for &pos in &hits {
                out.extend_from_slice(&self.data[prev * arity..pos * arity]);
                prev = pos + 1;
            }
            out.extend_from_slice(&self.data[prev * arity..]);
            return Ok(Relation::from_canonical(
                arity,
                self.n_rows - hits.len(),
                out,
            ));
        }
        let mut out = Vec::new();
        let mut n = 0usize;
        let mut j = 0usize;
        for i in 0..self.n_rows {
            gov.tick(i)?;
            let row = self.row(i);
            let mut keep = true;
            while j < other.n_rows {
                match cmp_rows(other.row(j), row, &order) {
                    Ordering::Less => j += 1,
                    Ordering::Equal => {
                        keep = false;
                        break;
                    }
                    Ordering::Greater => break,
                }
            }
            if keep {
                out.extend_from_slice(row);
                n += 1;
            }
        }
        Ok(Relation::from_canonical(arity, n, out))
    }

    /// Apply a delta pair to a canonical relation: `(self \ minus) ∪
    /// plus`, in exactly that order. The minus-then-plus schedule is what
    /// makes composed delta chains exact: a row deleted by one link and
    /// reinserted by a later one sits in *both* sides of the composed
    /// delta, and subtracting first guarantees the reinsert survives.
    /// Empty deltas are O(1) (a clone of the shared buffer).
    pub(crate) fn apply_delta(
        &self,
        plus: &Relation,
        minus: &Relation,
        gov: &mut Governor<'_>,
    ) -> Result<Relation, BudgetExceeded> {
        if minus.is_empty() && plus.is_empty() {
            return Ok(self.clone());
        }
        self.minus_governed(minus, gov)?.union_governed(plus, gov)
    }
}

/// Merge already-canonical relations pairwise (a balanced binary union
/// tree) under one governor. The workhorse behind
/// [`PartitionedRelation::merge_governed`] and the partition-wise join's
/// result merge.
pub(crate) fn merge_sorted(
    mut layer: Vec<Relation>,
    arity: usize,
    gov: &mut Governor<'_>,
) -> Result<Relation, BudgetExceeded> {
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            next.push(match pair {
                [a, b] => a.union_governed(b, gov)?,
                [a] => a.clone(),
                _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
            });
        }
        layer = next;
    }
    let out = layer.pop().unwrap_or_else(|| Relation::new(arity));
    out.debug_assert_canonical();
    Ok(out)
}

/// A hash-partitioned layout of a [`Relation`], produced by
/// [`Relation::partition_by`]: disjoint canonical parts whose union is the
/// source relation, with rows assigned by hashing the key columns. The
/// partition-parallel kernels evaluate one worker per part;
/// [`crate::database::Database`] caches these layouts per stored relation
/// so repeated queries reuse the materialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionedRelation {
    arity: usize,
    key_cols: Vec<usize>,
    parts: Vec<Relation>,
}

impl PartitionedRelation {
    /// The partitions, each canonical, in partition-index order.
    pub fn parts(&self) -> &[Relation] {
        &self.parts
    }

    /// The key columns rows were hashed on.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// The shared arity of the source and every part.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Per-partition row counts, in partition order (what trace spans
    /// record as partition cardinalities).
    pub fn part_sizes(&self) -> Vec<u64> {
        self.parts.iter().map(|p| p.len() as u64).collect()
    }

    /// Total rows across all partitions (= the source relation's row count).
    pub fn total_rows(&self) -> usize {
        self.parts.iter().map(Relation::len).sum()
    }

    /// Reassemble the source relation: a balanced merge of the (disjoint,
    /// individually canonical) parts, asserted canonical at the end.
    pub fn merge(&self) -> Relation {
        let mut gov = Governor::new(Budget::unlimited(), Stage::Eval);
        self.merge_governed(&mut gov)
            .expect("unlimited budget cannot trip")
    }

    /// [`PartitionedRelation::merge`] under a [`Governor`], checkpointing
    /// every [`crate::govern::CHECK_INTERVAL`] merged rows.
    pub fn merge_governed(&self, gov: &mut Governor<'_>) -> Result<Relation, BudgetExceeded> {
        merge_sorted(self.parts.clone(), self.arity, gov)
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        self.arity == other.arity
            && self.n_rows == other.n_rows
            && (Arc::ptr_eq(&self.data, &other.data) || self.data == other.data)
    }
}

impl Eq for Relation {}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation(arity={}, {})", self.arity, self)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(")?;
            for (j, v) in t.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Tuple> for Relation {
    /// Collect tuples into a relation; arity is taken from the first tuple
    /// (empty iterators produce a nullary relation).
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Relation {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().map(|t| t.len()).unwrap_or(0);
        Relation::from_rows(arity, it)
    }
}

/// Accumulates rows into a flat buffer, canonicalizing once at the end.
///
/// This is the bulk-construction path: `push_row` is an `extend` into one
/// growing `Vec`, and `finish` sorts + dedups only if the rows are not
/// already in order (one linear scan detects that, so merge-shaped
/// producers pay nothing).
pub struct RelationBuilder {
    arity: usize,
    n_rows: usize,
    data: Vec<Value>,
}

impl RelationBuilder {
    /// A builder for rows of the given arity.
    pub fn new(arity: usize) -> RelationBuilder {
        RelationBuilder {
            arity,
            n_rows: 0,
            data: Vec::new(),
        }
    }

    /// A builder pre-sized for `rows` rows.
    pub fn with_capacity(arity: usize, rows: usize) -> RelationBuilder {
        RelationBuilder {
            arity,
            n_rows: 0,
            data: Vec::with_capacity(arity * rows),
        }
    }

    /// Append one row. Panics on arity mismatch.
    #[inline]
    pub fn push_row(&mut self, row: &[Value]) {
        assert_eq!(
            row.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            row.len(),
            self.arity
        );
        self.data.extend_from_slice(row);
        self.n_rows += 1;
    }

    /// Append one row given as exactly `arity` values.
    #[inline]
    pub fn push_row_from(&mut self, row: impl IntoIterator<Item = Value>) {
        let before = self.data.len();
        self.data.extend(row);
        assert_eq!(
            self.data.len() - before,
            self.arity,
            "pushed row does not match relation arity {}",
            self.arity
        );
        self.n_rows += 1;
    }

    /// The arity rows must have.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// Any rows yet?
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Sort, deduplicate, and seal the relation.
    pub fn finish(self) -> Relation {
        let RelationBuilder {
            arity,
            mut n_rows,
            mut data,
        } = self;
        if arity == 0 {
            return if n_rows == 0 {
                Relation::empty_nullary()
            } else {
                Relation::unit()
            };
        }
        if n_rows > 1 {
            let order = symbol_order();
            let row = |i: usize| &data[i * arity..(i + 1) * arity];
            // One linear scan classifies the buffer: already canonical
            // (sorted, strictly increasing), sorted-but-with-dups, or
            // unsorted.
            let mut sorted = true;
            let mut has_dups = false;
            for i in 1..n_rows {
                match cmp_rows(row(i - 1), row(i), &order) {
                    Ordering::Less => {}
                    Ordering::Equal => has_dups = true,
                    Ordering::Greater => {
                        sorted = false;
                        break;
                    }
                }
            }
            if !sorted {
                let mut idx: Vec<u32> = (0..n_rows as u32).collect();
                idx.sort_unstable_by(|&a, &b| cmp_rows(row(a as usize), row(b as usize), &order));
                let mut rebuilt = Vec::with_capacity(data.len());
                let mut kept = 0usize;
                for &i in &idx {
                    let r = row(i as usize);
                    if kept > 0 {
                        let last = &rebuilt[(kept - 1) * arity..kept * arity];
                        if cmp_rows(last, r, &order) == Ordering::Equal {
                            continue;
                        }
                    }
                    rebuilt.extend_from_slice(r);
                    kept += 1;
                }
                data = rebuilt;
                n_rows = kept;
            } else if has_dups {
                let mut kept = 1usize;
                for i in 1..n_rows {
                    let prev = &data[(kept - 1) * arity..kept * arity];
                    let cur = &data[i * arity..(i + 1) * arity];
                    if cmp_rows(prev, cur, &order) == Ordering::Equal {
                        continue;
                    }
                    data.copy_within(i * arity..(i + 1) * arity, kept * arity);
                    kept += 1;
                }
                data.truncate(kept * arity);
                n_rows = kept;
            }
        }
        data.shrink_to_fit();
        let rel = Relation {
            arity,
            n_rows,
            data: Arc::new(data),
        };
        rel.debug_assert_canonical();
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_semantics() {
        let mut r = Relation::new(2);
        assert!(r.insert(tuple([1i64, 2])));
        assert!(!r.insert(tuple([1i64, 2])));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[Value::int(1), Value::int(2)]));
        assert!(!r.contains(&[Value::int(2), Value::int(1)]));
    }

    #[test]
    fn nullary_booleans() {
        assert_eq!(Relation::unit().as_bool(), Some(true));
        assert_eq!(Relation::empty_nullary().as_bool(), Some(false));
        assert_eq!(Relation::new(1).as_bool(), None);
    }

    #[test]
    fn nullary_insert_roundtrip() {
        let mut r = Relation::empty_nullary();
        assert!(!r.contains(&[]));
        assert!(r.insert(Vec::new().into_boxed_slice()));
        assert!(!r.insert(Vec::new().into_boxed_slice()));
        assert_eq!(r.as_bool(), Some(true));
        assert!(r.contains(&[]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(1);
        r.insert(tuple([1i64, 2]));
    }

    #[test]
    fn union_and_minus() {
        let a = Relation::from_rows(1, [tuple([1i64]), tuple([2i64])]);
        let b = Relation::from_rows(1, [tuple([2i64]), tuple([3i64])]);
        assert_eq!(a.union(&b).len(), 3);
        let d = a.minus(&b);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&[Value::int(1)]));
    }

    #[test]
    fn deterministic_display() {
        let r = Relation::from_rows(1, [tuple([3i64]), tuple([1i64]), tuple([2i64])]);
        assert_eq!(r.to_string(), "{(1), (2), (3)}");
    }

    #[test]
    fn values_flatten() {
        let r = Relation::from_rows(2, [tuple([1i64, 2]), tuple([2i64, 3])]);
        let vals: Vec<Value> = r.values().into_iter().collect();
        assert_eq!(vals, vec![Value::int(1), Value::int(2), Value::int(3)]);
    }

    #[test]
    fn builder_matches_insert_loop() {
        // Random-ish interleavings, duplicates included.
        let rows = [[5i64, 1], [2, 2], [5, 1], [0, 9], [2, 2], [2, 1], [9, 0]];
        let mut by_insert = Relation::new(2);
        let mut b = RelationBuilder::new(2);
        for r in rows {
            by_insert.insert(tuple(r));
            b.push_row(&[Value::int(r[0]), Value::int(r[1])]);
        }
        let built = b.finish();
        assert_eq!(built, by_insert);
        assert_eq!(built.to_string(), by_insert.to_string());
        assert_eq!(built.len(), 5);
    }

    #[test]
    fn builder_sorted_input_is_preserved() {
        let mut b = RelationBuilder::new(1);
        for i in 0..10i64 {
            b.push_row(&[Value::int(i)]);
        }
        let r = b.finish();
        assert_eq!(r.len(), 10);
        let got: Vec<i64> = r
            .iter()
            .map(|t| match t[0] {
                Value::Int(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clone_is_shared_and_copy_on_write() {
        let a = Relation::from_rows(1, [tuple([1i64]), tuple([2i64])]);
        let mut b = a.clone();
        assert_eq!(a, b);
        b.insert(tuple([3i64]));
        assert_eq!(a.len(), 2, "insert into clone must not affect original");
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn string_rows_sort_by_string_order() {
        let r = Relation::from_rows(
            1,
            [
                tuple(["zeta"]),
                tuple(["alpha"]),
                tuple([Value::int(10)]),
                tuple(["miguel"]),
            ],
        );
        assert_eq!(r.to_string(), "{(10), ('alpha'), ('miguel'), ('zeta')}");
    }

    #[test]
    fn mixed_arity_contains_is_false() {
        let r = Relation::from_rows(2, [tuple([1i64, 2])]);
        assert!(!r.contains(&[Value::int(1)]));
        assert!(!r.contains(&[]));
    }

    fn numbered(rows: i64) -> Relation {
        let mut b = RelationBuilder::new(2);
        for i in 0..rows {
            b.push_row(&[Value::int(i), Value::int(i % 13)]);
        }
        b.finish()
    }

    #[test]
    fn partition_by_is_a_disjoint_canonical_cover() {
        let rel = numbered(500);
        for n in [1usize, 2, 3, 7, 16] {
            let parts = rel.partition_by(&[1], n);
            assert_eq!(parts.parts().len(), n);
            assert_eq!(parts.total_rows(), rel.len());
            for p in parts.parts() {
                p.debug_assert_canonical();
                // Disjointness: every row of a part is in the source.
                for row in p.iter() {
                    assert!(rel.contains(row));
                }
            }
            assert_eq!(parts.merge(), rel, "merge must restore the source (n={n})");
        }
    }

    #[test]
    fn partition_by_more_parts_than_rows() {
        let rel = numbered(3);
        let parts = rel.partition_by(&[0], 64);
        assert_eq!(parts.parts().len(), 64);
        assert_eq!(parts.total_rows(), 3);
        assert_eq!(parts.merge(), rel);
    }

    #[test]
    fn partition_by_groups_equal_keys_together() {
        let rel = numbered(500);
        let parts = rel.partition_by(&[1], 5);
        // Each distinct key value must land in exactly one partition.
        for key in 0..13i64 {
            let holders = parts
                .parts()
                .iter()
                .filter(|p| p.iter().any(|row| row[1] == Value::int(key)))
                .count();
            assert_eq!(holders, 1, "key {key} split across partitions");
        }
    }

    #[test]
    fn partition_by_empty_and_nullary() {
        let empty = Relation::new(2);
        let parts = empty.partition_by(&[0], 4);
        assert_eq!(parts.total_rows(), 0);
        assert_eq!(parts.merge(), empty);

        let unit = Relation::unit();
        let parts = unit.partition_by(&[], 4);
        assert_eq!(parts.parts().len(), 4);
        assert_eq!(parts.merge(), unit);
    }

    #[test]
    fn partition_count_is_monotone_and_floored() {
        assert_eq!(partition_count(0), 1);
        assert_eq!(partition_count(MIN_PARTITION_ROWS - 1), 1);
        let big = partition_count(1 << 24);
        assert!(big >= 1);
        assert!(big >= partition_count(MIN_PARTITION_ROWS));
    }

    #[test]
    #[should_panic(expected = "partition count")]
    fn partition_by_zero_parts_panics() {
        numbered(4).partition_by(&[0], 0);
    }
}
