//! Incremental view maintenance: delta-evaluate cached results instead
//! of invalidating them.
//!
//! Raszyk–Basin–Krstić–Traytel's monitoring work evaluates standing
//! queries by *delta propagation* over exactly the RANF operator trees
//! this crate evaluates; classical Δ-rules are defined per operator, and
//! our canonical sorted flat buffers make the final merge (`(old \ Δ⁻) ∪
//! Δ⁺`) a pair of linear scans. This module treats a cached plan as a
//! standing query:
//!
//! * [`Delta`] — the canonical insert/delete relations per table produced
//!   by [`Database::apply_delta`](crate::database::Database::apply_delta);
//! * [`DeltaLog`] — a bounded journal of applied deltas
//!   (`from_version → (to_version, Δ)`), shared by every clone of a
//!   database, from which a *chain* between two version stamps is
//!   composed;
//! * [`MaintainedView`] — a materialized operator DAG: the interned plan
//!   plus one canonical relation per node, stamped with the database
//!   version it reflects;
//! * [`refresh`] — the Δ-rules themselves, walking the DAG bottom-up and
//!   producing a *new* view (never mutating the old one, so an abandoned
//!   refresh can never tear a cached entry);
//! * [`worth_refreshing`] — the cost gate: a refresh is only attempted
//!   when the delta is small relative to the estimated full
//!   re-evaluation cost (the PR 6 [`crate::stats::Estimator`] provides
//!   the full-side estimate).
//!
//! # Delta invariants
//!
//! A per-node delta pair `(Δ⁺, Δ⁻)` relating an old value `O` to a new
//! value `N` satisfies the *relaxed* invariants
//!
//! 1. `Δ⁺ ⊆ N` (inserts are present afterwards),
//! 2. `O \ N ⊆ Δ⁻` (every disappearance is recorded),
//! 3. `Δ⁻ ∩ N ⊆ Δ⁺` (a recorded delete that survives is re-inserted),
//! 4. `N \ O ⊆ Δ⁺` (every appearance is recorded),
//!
//! under which `(O \ Δ⁻) ∪ Δ⁺ = N` *exactly* — the minus-then-plus
//! schedule of `Relation::apply_delta`. The relaxation (Δ⁻ may
//! intersect `N`) is what lets composed chains stay cheap: composing
//! `d₁; d₂` as `Δ⁻ = d₁⁻ ∪ d₂⁻`, `Δ⁺ = (d₁⁺ \ d₂⁻) ∪ d₂⁺` preserves
//! 1–4 without re-probing the base tables, and a delete-then-reinsert
//! lands in both sides harmlessly.
//!
//! # Δ-rules
//!
//! With `P`/`Q` the children's *new* values (computed bottom-up) and
//! `ΔP`/`ΔQ` their delta pairs (see DESIGN.md §14 for the proofs):
//!
//! * **Scan**: the table delta filtered through the pattern's
//!   constant/diagonal checks and projected to first occurrences — the
//!   projection is injective on passing rows, so both sides transfer.
//! * **Select/Duplicate**: per-row transforms of the child delta.
//! * **Join**: `Δ⁺ = (Δ⁺P ⋈ Q) ∪ (P ⋈ Δ⁺Q)`;
//!   `Δ⁻ = (Δ⁻P ⋈ Q) ∪ (P ⋈ Δ⁻Q) ∪ (Δ⁻P ⋈ Δ⁻Q)` — sound because the
//!   join output carries every input column, so an output row has
//!   unique witnesses.
//! * **Union**: `Δ⁺ = Δ⁺P ∪ π(Δ⁺Q)`; `Δ⁻` is the candidate deletes
//!   filtered by membership in neither new child.
//! * **Diff** (anti-join): `Δ⁺ = σ_{∄Q}(Δ⁺P) ∪ σ_{∄Q}(P ⋉ Δ⁻Q)`;
//!   `Δ⁻ = Δ⁻P ∪ (P ⋉ Δ⁺Q)` — the two-sided rule re-probing the
//!   unchanged side.
//! * **Project**: `Δ⁺ = π(Δ⁺in)`; `Δ⁻` is `π(Δ⁻in)` filtered by a
//!   scan-and-mark pass over the materialized new input (a projected
//!   row dies only when *no* surviving input row still produces it).
//!
//! Refresh work is charged to [`Stage::Maintain`] and traced with
//! `ivm=refresh` spans carrying per-operator Δ cardinalities; any budget
//! trip or cancellation abandons the walk with the old view intact.

use crate::database::Database;
use crate::eval::{
    antijoin_kernel, antijoin_probe_prebuilt, eval_shared_recording, join_kernel,
    join_probe_prebuilt, positions, EvalError, EvalStats, RowTable,
};
use crate::expr::{RaExpr, SelPred};
use crate::govern::{Budget, BudgetExceeded, Governor, Stage};
use crate::relation::{Relation, RelationBuilder};
use crate::trace::Tracer;
use rc_formula::fxhash::{FxHashMap, FxHashSet};
use rc_formula::{Symbol, Term, Value, Var};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// The canonical insert/delete pair for one table (or one operator's
/// output): two canonical sorted relations of the same arity.
#[derive(Clone, Debug, PartialEq)]
pub struct TableDelta {
    /// Net inserted rows.
    pub plus: Relation,
    /// Net deleted rows.
    pub minus: Relation,
}

impl TableDelta {
    /// An empty delta pair of the given arity.
    pub fn empty(arity: usize) -> TableDelta {
        TableDelta {
            plus: Relation::new(arity),
            minus: Relation::new(arity),
        }
    }

    /// No rows on either side?
    pub fn is_empty(&self) -> bool {
        self.plus.is_empty() && self.minus.is_empty()
    }

    /// Total rows across both sides.
    pub fn rows(&self) -> usize {
        self.plus.len() + self.minus.len()
    }
}

/// One applied mutation as canonical per-table insert/delete relations.
/// Tables with an all-empty net change are not stored.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Delta {
    tables: FxHashMap<Symbol, TableDelta>,
}

impl Delta {
    /// The delta pair recorded for `pred`, if any.
    pub fn table(&self, pred: Symbol) -> Option<&TableDelta> {
        self.tables.get(&pred)
    }

    /// Record a delta pair for `pred` (dropped if empty, keeping
    /// [`Delta::is_empty`] meaningful).
    pub fn insert_table(&mut self, pred: impl Into<Symbol>, delta: TableDelta) {
        if !delta.is_empty() {
            self.tables.insert(pred.into(), delta);
        }
    }

    /// No table changed?
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total rows across every table's insert and delete sides.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(TableDelta::rows).sum()
    }

    /// Per-table `(name, inserted, deleted)` counts, sorted by table name
    /// — the wire summary the query server returns from its mutate verb.
    pub fn summary(&self) -> Vec<(String, u64, u64)> {
        let mut out: Vec<(String, u64, u64)> = self
            .tables
            .iter()
            .map(|(p, d)| (p.to_string(), d.plus.len() as u64, d.minus.len() as u64))
            .collect();
        out.sort();
        out
    }

    /// Sequential composition `self; later`: `Δ⁻ = d₁⁻ ∪ d₂⁻`,
    /// `Δ⁺ = (d₁⁺ \ d₂⁻) ∪ d₂⁺`. Preserves the relaxed delta invariants
    /// (see the module docs), so a composed chain applies exactly.
    pub fn compose(&self, later: &Delta) -> Delta {
        let preds: BTreeSet<Symbol> = self
            .tables
            .keys()
            .chain(later.tables.keys())
            .copied()
            .collect();
        let mut out = Delta::default();
        for pred in preds {
            let td = match (self.tables.get(&pred), later.tables.get(&pred)) {
                (Some(a), None) => a.clone(),
                (None, Some(b)) => b.clone(),
                (Some(a), Some(b)) => TableDelta {
                    plus: a.plus.minus(&b.minus).union(&b.plus),
                    minus: a.minus.union(&b.minus),
                },
                (None, None) => unreachable!("pred came from one of the key sets"),
            };
            out.insert_table(pred, td);
        }
        out
    }
}

/// How many delta links the journal retains before evicting the oldest.
/// Sixty-four single-mutation links cover a long trickle between two
/// serves of the same query; anything older falls back to full
/// re-evaluation, which is always correct.
pub const DELTA_LOG_CAP: usize = 64;

/// A bounded journal of applied deltas: `from_version → (to_version,
/// Δ)`. Shared (behind one `Arc<Mutex<_>>`) by every clone of a
/// [`Database`], so the server's copy-on-write mutation path and the
/// snapshot a cached view was built against agree on the chain between
/// any two version stamps. Mutations that bypass
/// [`Database::apply_delta`] (bulk loads, declarations) leave a gap —
/// chains across a gap are unresolvable and force the fallback path.
#[derive(Debug, Default)]
pub struct DeltaLog {
    links: FxHashMap<u64, (u64, Arc<Delta>)>,
    order: VecDeque<u64>,
}

impl DeltaLog {
    /// Record one applied delta link, evicting the oldest past capacity.
    pub(crate) fn record(&mut self, from: u64, to: u64, delta: Arc<Delta>) {
        if !self.links.contains_key(&from) && self.links.len() >= DELTA_LOG_CAP {
            if let Some(evicted) = self.order.pop_front() {
                self.links.remove(&evicted);
            }
        }
        if self.links.insert(from, (to, delta)).is_none() {
            self.order.push_back(from);
        }
    }

    /// Compose the chain of recorded deltas carrying version `from` to
    /// version `to`, or `None` when any link is missing (evicted, or the
    /// versions are bridged by a non-delta mutation).
    pub fn chain(&self, from: u64, to: u64) -> Option<Delta> {
        if from == to {
            return Some(Delta::default());
        }
        let mut acc = Delta::default();
        let mut cur = from;
        // Bounded walk: links form a forest of forward chains, so more
        // hops than stored links means we will never reach `to`.
        for _ in 0..=self.links.len() {
            let (next, delta) = self.links.get(&cur)?;
            acc = acc.compose(delta);
            cur = *next;
            if cur == to {
                return Some(acc);
            }
        }
        None
    }

    /// Number of links currently retained.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// No links retained?
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

/// A materialized standing query: the hash-consed plan DAG, one
/// canonical relation per DAG node (keyed by `Arc` address, stable
/// because the view owns the root), and the database version the values
/// reflect. Produced by [`materialize`], advanced by [`refresh`].
#[derive(Clone, Debug)]
pub struct MaintainedView {
    root: Arc<RaExpr>,
    preds: Vec<Symbol>,
    vals: FxHashMap<usize, Relation>,
    indexes: FxHashMap<usize, Arc<JoinIndex>>,
    base_version: u64,
}

/// A hash index over one node's materialized value, kept alive across
/// refreshes so a small-delta probe does not rebuild an `O(n)` table
/// every serve. Valid exactly while the node's value is
/// pointer-identical ([`Relation::shares_data`]) to `built_from` — an
/// empty per-node delta propagates the same `Arc`'d buffer, so identity
/// tracks "unchanged since the table was built" precisely.
struct JoinIndex {
    built_from: Relation,
    table: RowTable,
}

impl fmt::Debug for JoinIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JoinIndex({} rows)", self.built_from.len())
    }
}

impl MaintainedView {
    /// The database version the per-node values reflect.
    pub fn base_version(&self) -> u64 {
        self.base_version
    }

    /// The root result currently materialized.
    pub fn result(&self) -> &Relation {
        self.vals
            .get(&(Arc::as_ptr(&self.root) as usize))
            .expect("view holds its root value")
    }

    /// Number of distinct DAG nodes materialized.
    pub fn node_count(&self) -> usize {
        self.vals.len()
    }

    /// Total rows materialized across every node — the linear-merge cost
    /// floor of one refresh.
    pub fn total_rows(&self) -> usize {
        self.vals.values().map(Relation::len).sum()
    }

    /// The scanned predicates, sorted (the only tables whose deltas can
    /// affect this view).
    pub fn preds(&self) -> &[Symbol] {
        &self.preds
    }

    /// The materialized contents of a *full-table* scan of `pred` — a
    /// `Scan` node whose pattern binds every column to a distinct
    /// variable, so its cached value is the base table verbatim (modulo
    /// column naming). `None` when the plan contains no such scan, or
    /// its value is missing.
    ///
    /// This exists for callers that serve plans over *derived* tables
    /// the database does not store (e.g. active-domain guard relations):
    /// to hand [`refresh`] a delta for such a table they must first
    /// recover the old contents the view's values reflect.
    pub fn scan_contents(&self, pred: Symbol) -> Option<&Relation> {
        fn walk<'a>(
            view: &'a MaintainedView,
            node: &'a Arc<RaExpr>,
            pred: Symbol,
            seen: &mut FxHashSet<usize>,
        ) -> Option<&'a Relation> {
            let key = Arc::as_ptr(node) as usize;
            if !seen.insert(key) {
                return None;
            }
            match &**node {
                RaExpr::Scan {
                    pred: p, pattern, ..
                } => {
                    if *p == pred && node.cols().len() == pattern.len() {
                        view.vals.get(&key)
                    } else {
                        None
                    }
                }
                RaExpr::Single { .. } | RaExpr::Unit | RaExpr::Empty { .. } => None,
                RaExpr::Join(l, r) | RaExpr::Union(l, r) | RaExpr::Diff(l, r) => {
                    walk(view, l, pred, seen).or_else(|| walk(view, r, pred, seen))
                }
                RaExpr::Project { input, .. }
                | RaExpr::Select { input, .. }
                | RaExpr::Duplicate { input, .. } => walk(view, input, pred, seen),
            }
        }
        let mut seen = FxHashSet::default();
        walk(self, &self.root, pred, &mut seen)
    }
}

/// Why a refresh walk stopped.
#[derive(Clone, Debug, PartialEq)]
pub enum RefreshError {
    /// A resource budget tripped or a cancellation fired mid-walk; the
    /// caller must surface it like any governed evaluation error (the
    /// old view is untouched — never fall back silently, the work was
    /// charged).
    Budget(BudgetExceeded),
    /// The delta rules cannot apply (missing materialized value, delta
    /// arity clash with a scan pattern); fall back to full
    /// re-evaluation.
    Unsupported(&'static str),
}

impl fmt::Display for RefreshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefreshError::Budget(b) => write!(f, "{b}"),
            RefreshError::Unsupported(why) => write!(f, "refresh unsupported: {why}"),
        }
    }
}

impl std::error::Error for RefreshError {}

impl From<BudgetExceeded> for RefreshError {
    fn from(b: BudgetExceeded) -> RefreshError {
        RefreshError::Budget(b)
    }
}

/// Evaluate `expr` against `db` while materializing every subplan — the
/// standing-query registration path. Evaluation semantics, statistics,
/// and governance are identical to the memoizing DAG evaluator
/// ([`crate::eval::eval_shared`]); `base_version` should be the version
/// stamp of the database the caller serves results for (the caller may
/// evaluate against a prepared clone whose own stamp differs).
pub fn materialize(
    expr: &RaExpr,
    db: &Database,
    base_version: u64,
    stats: &mut EvalStats,
    budget: &Budget,
    tracer: &mut Tracer,
) -> Result<(Relation, MaintainedView), EvalError> {
    let mut interner = crate::plan::Interner::new();
    let (root, _) = interner.intern(expr);
    let (out, vals) = eval_shared_recording(&root, db, stats, budget, tracer)?;
    let mut preds = FxHashSet::default();
    collect_preds(&root, &mut preds);
    let mut preds: Vec<Symbol> = preds.into_iter().collect();
    preds.sort();
    Ok((
        out,
        MaintainedView {
            root,
            preds,
            vals,
            indexes: FxHashMap::default(),
            base_version,
        },
    ))
}

/// Mark the most recent completed top-level trace span as an IVM
/// fallback (a full re-evaluation that replaced an abandoned or skipped
/// refresh). No-op on a disabled tracer.
pub fn note_fallback(tracer: &mut Tracer) {
    tracer.note_ivm_done("fallback");
}

/// The cost gate: is refreshing `view` by `delta` expected to beat a
/// full re-evaluation with estimated cost `full_cost()` (from
/// [`crate::stats::Estimator::cost`], in calibrated nanoseconds)? Only
/// deltas on tables the view actually scans count; a delta touching
/// only unreferenced tables is always worth "refreshing" (it is a
/// version-stamp advance at merge cost zero).
///
/// The full cost is a *closure*: a trickle-sized relevant delta skips
/// the estimate entirely and refreshes unconditionally. That matters
/// beyond the comparison itself — a mutation invalidates the cached
/// [`crate::stats::TableStats`], so asking the estimator right after
/// one pays an `O(n)` statistics rebuild on the serving path, which
/// would dwarf the refresh it is gating.
pub fn worth_refreshing(
    view: &MaintainedView,
    delta: &Delta,
    full_cost: impl FnOnce() -> f64,
) -> bool {
    let relevant: usize = view
        .preds
        .iter()
        .filter_map(|p| delta.table(*p))
        .map(TableDelta::rows)
        .sum();
    if relevant == 0 {
        return true;
    }
    // A handful of delta rows is O(|Δ|·fanout) probe work against the
    // view's persistent indexes — cheaper than any full re-evaluation
    // and cheaper than estimating one.
    const TRICKLE_ROWS: usize = 16;
    if relevant <= TRICKLE_ROWS {
        return true;
    }
    // Each relevant delta row costs roughly one hash-join probe per
    // operator it flows through; the constant matches the estimator's
    // join calibration. The flat allowance keeps tiny queries (whose
    // full cost is a handful of nanoseconds) refreshable for the
    // single-fact trickles they actually see.
    const DELTA_ROW_NS: f64 = 60.0;
    DELTA_ROW_NS * relevant as f64 <= 0.5 * full_cost() + 1024.0
}

/// Refresh a materialized view by one delta (or composed chain),
/// producing a **new** view stamped `new_version` and its root relation.
/// The input view is never mutated: an error (budget trip, cancellation,
/// unsupported shape) leaves the caller holding exactly the old state,
/// so a cached entry can only ever be the old version or the new one —
/// never a torn merge.
///
/// Work is charged to [`Stage::Maintain`] (one checkpoint and the Δ
/// cardinality per operator, plus kernel ticks inside the delta joins
/// and merges); spans carry `ivm=refresh` with per-operator Δ
/// cardinalities when `tracer` collects.
pub fn refresh(
    view: &MaintainedView,
    delta: &Delta,
    new_version: u64,
    stats: &mut EvalStats,
    budget: &Budget,
    tracer: &mut Tracer,
) -> Result<(MaintainedView, Relation), RefreshError> {
    let mut ctx = Ctx {
        delta,
        old: &view.vals,
        old_indexes: &view.indexes,
        new_vals: FxHashMap::default(),
        new_indexes: FxHashMap::default(),
        done: FxHashMap::default(),
        budget,
    };
    refresh_node(&view.root, &mut ctx, stats, tracer)?;
    let root_key = Arc::as_ptr(&view.root) as usize;
    let relation = ctx.new_vals[&root_key].clone();
    Ok((
        MaintainedView {
            root: Arc::clone(&view.root),
            preds: view.preds.clone(),
            vals: ctx.new_vals,
            indexes: ctx.new_indexes,
            base_version: new_version,
        },
        relation,
    ))
}

/// Shared state of one refresh walk over the view DAG.
struct Ctx<'a> {
    delta: &'a Delta,
    old: &'a FxHashMap<usize, Relation>,
    old_indexes: &'a FxHashMap<usize, Arc<JoinIndex>>,
    new_vals: FxHashMap<usize, Relation>,
    new_indexes: FxHashMap<usize, Arc<JoinIndex>>,
    done: FxHashMap<usize, TableDelta>,
    budget: &'a Budget,
}

impl Ctx<'_> {
    /// The refreshed value of an already-visited child.
    fn new_val(&self, node: &Arc<RaExpr>) -> Relation {
        self.new_vals[&(Arc::as_ptr(node) as usize)].clone()
    }

    /// Get (building on demand) node `key`'s hash index over `rel`'s
    /// `key_cols`, reusing the previous refresh's table whenever the
    /// indexed value is unchanged ([`Relation::shares_data`]). The
    /// index is recorded for the *next* refresh either way.
    fn index(&mut self, key: usize, rel: &Relation, key_cols: &[usize]) -> Arc<JoinIndex> {
        if let Some(ix) = self.old_indexes.get(&key) {
            if ix.built_from.shares_data(rel) {
                let ix = Arc::clone(ix);
                self.new_indexes.insert(key, Arc::clone(&ix));
                return ix;
            }
        }
        let ix = Arc::new(JoinIndex {
            built_from: rel.clone(),
            table: RowTable::build(rel, key_cols),
        });
        self.new_indexes.insert(key, Arc::clone(&ix));
        ix
    }

    /// Carry node `key`'s still-valid index into the new view without
    /// using it this round (the round's delta never probed `rel`). A
    /// stale index is dropped, not rebuilt — the next refresh that
    /// actually probes will rebuild it.
    fn carry_index(&mut self, key: usize, rel: &Relation) {
        if self.new_indexes.contains_key(&key) {
            return;
        }
        if let Some(ix) = self.old_indexes.get(&key) {
            if ix.built_from.shares_data(rel) {
                self.new_indexes.insert(key, Arc::clone(ix));
            }
        }
    }
}

/// Span-wrapping shell around [`refresh_inner`], mirroring the
/// evaluator's `eval_rec`: one span per DAG node (shared nodes are
/// refreshed once and their delta replayed from the memo).
fn refresh_node(
    node: &Arc<RaExpr>,
    ctx: &mut Ctx<'_>,
    stats: &mut EvalStats,
    tr: &mut Tracer,
) -> Result<TableDelta, RefreshError> {
    let key = Arc::as_ptr(node) as usize;
    if let Some(done) = ctx.done.get(&key) {
        return Ok(done.clone());
    }
    tr.open(node);
    let res = refresh_inner(node, key, ctx, stats, tr);
    match &res {
        Ok((pair, new_val)) => {
            tr.note_ivm("refresh", pair.plus.len() as u64, pair.minus.len() as u64);
            tr.close(Some(new_val));
        }
        Err(_) => tr.close(None),
    }
    res.map(|(pair, _)| pair)
}

/// Compute one node's delta pair from its children's (already-refreshed)
/// values and deltas, apply it to the node's old value, and account the
/// work.
fn refresh_inner(
    node: &Arc<RaExpr>,
    key: usize,
    ctx: &mut Ctx<'_>,
    stats: &mut EvalStats,
    tr: &mut Tracer,
) -> Result<(TableDelta, Relation), RefreshError> {
    let budget = ctx.budget;
    let mut gov = Governor::new(budget, Stage::Maintain);
    let pair = match &**node {
        RaExpr::Scan { pred, pattern } => {
            let cols = node.cols();
            match ctx.delta.table(*pred) {
                None => TableDelta::empty(cols.len()),
                Some(td) if td.is_empty() => TableDelta::empty(cols.len()),
                Some(td) => {
                    if td.plus.arity() != pattern.len() || td.minus.arity() != pattern.len() {
                        return Err(RefreshError::Unsupported(
                            "table delta arity clashes with scan pattern",
                        ));
                    }
                    TableDelta {
                        plus: scan_transform(&td.plus, pattern, &cols, &mut gov)?,
                        minus: scan_transform(&td.minus, pattern, &cols, &mut gov)?,
                    }
                }
            }
        }
        RaExpr::Single { .. } => TableDelta::empty(1),
        RaExpr::Unit => TableDelta::empty(0),
        RaExpr::Empty { cols } => TableDelta::empty(cols.len()),
        RaExpr::Select { input, pred } => {
            let d = refresh_node(input, ctx, stats, tr)?;
            let icols = input.cols();
            let keep = select_pred(*pred, &icols);
            TableDelta {
                plus: filter(&d.plus, &keep, &mut gov)?,
                minus: filter(&d.minus, &keep, &mut gov)?,
            }
        }
        RaExpr::Duplicate { input, src, .. } => {
            let d = refresh_node(input, ctx, stats, tr)?;
            let icols = input.cols();
            let i = positions(&icols, &[*src])[0];
            TableDelta {
                plus: duplicate_col(&d.plus, i, &mut gov)?,
                minus: duplicate_col(&d.minus, i, &mut gov)?,
            }
        }
        RaExpr::Join(l, r) => {
            let dl = refresh_node(l, ctx, stats, tr)?;
            let dr = refresh_node(r, ctx, stats, tr)?;
            let ln = ctx.new_val(l);
            let rn = ctx.new_val(r);
            let lcols = l.cols();
            let rcols = r.cols();
            let shared: Vec<Var> = rcols
                .iter()
                .filter(|v| lcols.contains(v))
                .copied()
                .collect();
            let l_shared = positions(&lcols, &shared);
            let r_shared = positions(&rcols, &shared);
            let r_extra: Vec<usize> = rcols
                .iter()
                .enumerate()
                .filter(|(_, v)| !lcols.contains(v))
                .map(|(i, _)| i)
                .collect();
            let mut raw = 0u64;
            // The Δ⋈Q legs probe the full (new) right side: route them
            // through the node's persistent hash index so a small delta
            // pays O(|Δ|·fanout), not an O(|Q|) table build per serve.
            // The remaining legs pair a full side with a tiny delta,
            // where the kernel already builds on the smaller input. A
            // cross join (no shared columns) never uses a table.
            let r_index = if !l_shared.is_empty()
                && !rn.is_empty()
                && (!dl.plus.is_empty() || !dl.minus.is_empty())
            {
                Some(ctx.index(key, &rn, &r_shared))
            } else {
                None
            };
            let dj = |a: &Relation, b: &Relation, gov: &mut Governor<'_>, raw: &mut u64| {
                join_kernel(a, b, &l_shared, &r_shared, &r_extra, gov, raw)
            };
            let probe = |a: &Relation, gov: &mut Governor<'_>, raw: &mut u64| match &r_index {
                Some(ix) => {
                    join_probe_prebuilt(a, &rn, &l_shared, &r_shared, &r_extra, &ix.table, gov, raw)
                }
                None => join_kernel(a, &rn, &l_shared, &r_shared, &r_extra, gov, raw),
            };
            // Δ⁺ = (Δ⁺P ⋈ Q) ∪ (P ⋈ Δ⁺Q); an output row's witnesses are
            // unique (the output keeps all columns), so covering each
            // changed witness covers every changed output row.
            let plus = probe(&dl.plus, &mut gov, &mut raw)?
                .union_governed(&dj(&ln, &dr.plus, &mut gov, &mut raw)?, &mut gov)?;
            // Δ⁻ re-probes the *unchanged* side on both flanks plus the
            // both-sides-deleted corner.
            let minus = probe(&dl.minus, &mut gov, &mut raw)?
                .union_governed(&dj(&ln, &dr.minus, &mut gov, &mut raw)?, &mut gov)?
                .union_governed(&dj(&dl.minus, &dr.minus, &mut gov, &mut raw)?, &mut gov)?;
            ctx.carry_index(key, &rn);
            tr.note_raw(raw);
            TableDelta { plus, minus }
        }
        RaExpr::Union(l, r) => {
            let dl = refresh_node(l, ctx, stats, tr)?;
            let dr = refresh_node(r, ctx, stats, tr)?;
            let ln = ctx.new_val(l);
            let rn = ctx.new_val(r);
            let lcols = l.cols();
            let rcols = r.cols();
            let perm = positions(&rcols, &lcols);
            let inv = positions(&lcols, &rcols);
            let plus = dl
                .plus
                .union_governed(&permute(&dr.plus, &perm, &mut gov)?, &mut gov)?;
            // A deleted row only leaves the union when *neither* new
            // child still produces it.
            let cand = dl
                .minus
                .union_governed(&permute(&dr.minus, &perm, &mut gov)?, &mut gov)?;
            let mut kept: Vec<Value> = Vec::new();
            let mut n = 0usize;
            for row in cand.iter() {
                gov.tick(n)?;
                if ln.contains(row) {
                    continue;
                }
                let probe: Vec<Value> = inv.iter().map(|&j| row[j]).collect();
                if rn.contains(&probe) {
                    continue;
                }
                kept.extend_from_slice(row);
                n += 1;
            }
            TableDelta {
                plus,
                minus: Relation::from_canonical(lcols.len(), n, kept),
            }
        }
        RaExpr::Diff(l, r) => {
            let dl = refresh_node(l, ctx, stats, tr)?;
            let dr = refresh_node(r, ctx, stats, tr)?;
            let ln = ctx.new_val(l);
            let rn = ctx.new_val(r);
            let lcols = l.cols();
            let rcols = r.cols();
            let proj = positions(&lcols, &rcols);
            let r_all: Vec<usize> = (0..rcols.len()).collect();
            let mut raw = 0u64;
            // Left rows revived because their last blocker was deleted:
            // P ⋉ Δ⁻Q (a semijoin — r_extra empty keeps left columns).
            let revived = join_kernel(&ln, &dr.minus, &proj, &r_all, &[], &mut gov, &mut raw)?;
            // Both anti-join legs probe the full (new) right side: use
            // the node's persistent hash index, as in the join rule.
            let r_index = if !rn.is_empty() && (!dl.plus.is_empty() || !revived.is_empty()) {
                Some(ctx.index(key, &rn, &r_all))
            } else {
                None
            };
            let aj = |l: &Relation, gov: &mut Governor<'_>| match &r_index {
                Some(ix) => antijoin_probe_prebuilt(l, &rn, &proj, &ix.table, gov),
                None => antijoin_kernel(l, &rn, &proj, gov),
            };
            // Δ⁺: new or revived left rows that have no blocker in the
            // *new* right side.
            let plus =
                aj(&dl.plus, &mut gov)?.union_governed(&aj(&revived, &mut gov)?, &mut gov)?;
            ctx.carry_index(key, &rn);
            // Δ⁻: left deletions, plus left rows newly blocked by Δ⁺Q.
            let blocked = join_kernel(&ln, &dr.plus, &proj, &r_all, &[], &mut gov, &mut raw)?;
            let minus = dl.minus.union_governed(&blocked, &mut gov)?;
            TableDelta { plus, minus }
        }
        RaExpr::Project { input, cols } => {
            let d = refresh_node(input, ctx, stats, tr)?;
            let new_in = ctx.new_val(input);
            let icols = input.cols();
            let proj = positions(&icols, cols);
            let plus = project(&d.plus, &proj, &mut gov)?;
            // A projected row dies only when no surviving input row
            // still produces it: scan-and-mark over the new input.
            let cand = project(&d.minus, &proj, &mut gov)?;
            let minus = if cand.is_empty() {
                cand
            } else {
                let mut alive: FxHashSet<&[Value]> = FxHashSet::default();
                let mut scratch: Vec<Value> = Vec::with_capacity(proj.len());
                for (i, row) in new_in.iter().enumerate() {
                    gov.tick(i)?;
                    scratch.clear();
                    scratch.extend(proj.iter().map(|&j| row[j]));
                    if cand.contains(&scratch) {
                        // Borrow the candidate's own storage so the set
                        // outlives `scratch`.
                        let idx = cand
                            .iter()
                            .position(|c| c == scratch.as_slice())
                            .expect("contains implies present");
                        alive.insert(cand.row(idx));
                    }
                }
                let mut kept: Vec<Value> = Vec::new();
                let mut n = 0usize;
                for row in cand.iter() {
                    if !alive.contains(row) {
                        kept.extend_from_slice(row);
                        n += 1;
                    }
                }
                Relation::from_canonical(cols.len(), n, kept)
            };
            TableDelta { plus, minus }
        }
    };
    let old = ctx.old.get(&key).ok_or(RefreshError::Unsupported(
        "subplan has no materialized value",
    ))?;
    let new_val = old.apply_delta(&pair.plus, &pair.minus, &mut gov)?;
    stats.operators += 1;
    stats.tuples_produced += pair.rows() as u64;
    stats.max_intermediate = stats.max_intermediate.max(new_val.len());
    stats.budget_checks += gov.checks() + 1;
    tr.note_kernel_rows(gov.ticks() as u64);
    budget.checkpoint(Stage::Maintain)?;
    budget.charge_tuples(Stage::Maintain, pair.rows() as u64)?;
    ctx.new_vals.insert(key, new_val.clone());
    ctx.done.insert(key, pair.clone());
    Ok((pair, new_val))
}

/// Apply a scan pattern's constant/diagonal checks and first-occurrence
/// projection to one side of a table delta. Injective on passing rows
/// (every output column pins a pattern position), so delta membership
/// transfers through it.
fn scan_transform(
    rel: &Relation,
    pattern: &[Term],
    cols: &[Var],
    gov: &mut Governor<'_>,
) -> Result<Relation, BudgetExceeded> {
    // All-distinct-variable pattern: the delta side transfers as-is.
    if cols.len() == pattern.len() {
        return Ok(rel.clone());
    }
    let first_pos: Vec<usize> = cols
        .iter()
        .map(|v| {
            pattern
                .iter()
                .position(|t| *t == Term::Var(*v))
                .expect("column came from pattern")
        })
        .collect();
    enum Check {
        Const(Value),
        SameAs(usize),
        Free,
    }
    let checks: Vec<Check> = pattern
        .iter()
        .enumerate()
        .map(|(i, t)| match t {
            Term::Const(c) => Check::Const(*c),
            Term::Var(v) => {
                let fp = first_pos[cols.iter().position(|w| w == v).expect("var in cols")];
                if fp == i {
                    Check::Free
                } else {
                    Check::SameAs(fp)
                }
            }
        })
        .collect();
    let mut out = RelationBuilder::with_capacity(cols.len(), rel.len());
    'rows: for row in rel.iter() {
        gov.tick(out.len())?;
        for (i, chk) in checks.iter().enumerate() {
            match chk {
                Check::Const(c) => {
                    if row[i] != *c {
                        continue 'rows;
                    }
                }
                Check::SameAs(fp) => {
                    if row[i] != row[*fp] {
                        continue 'rows;
                    }
                }
                Check::Free => {}
            }
        }
        out.push_row_from(first_pos.iter().map(|&i| row[i]));
    }
    Ok(out.finish())
}

/// A compiled row predicate, boxed for storage in the Δ-rule closures.
type RowPred = Box<dyn Fn(&[Value]) -> bool>;

/// The compiled row predicate for a `Select` node.
fn select_pred(pred: SelPred, icols: &[Var]) -> RowPred {
    match pred {
        SelPred::EqCols(a, b) => {
            let (i, j) = (positions(icols, &[a])[0], positions(icols, &[b])[0]);
            Box::new(move |t: &[Value]| t[i] == t[j])
        }
        SelPred::NeqCols(a, b) => {
            let (i, j) = (positions(icols, &[a])[0], positions(icols, &[b])[0]);
            Box::new(move |t: &[Value]| t[i] != t[j])
        }
        SelPred::EqConst(a, c) => {
            let i = positions(icols, &[a])[0];
            Box::new(move |t: &[Value]| t[i] == c)
        }
        SelPred::NeqConst(a, c) => {
            let i = positions(icols, &[a])[0];
            Box::new(move |t: &[Value]| t[i] != c)
        }
    }
}

/// Filter a canonical relation by a row predicate (order-preserving).
fn filter(
    rel: &Relation,
    keep: &dyn Fn(&[Value]) -> bool,
    gov: &mut Governor<'_>,
) -> Result<Relation, BudgetExceeded> {
    if rel.is_empty() {
        return Ok(rel.clone());
    }
    let mut kept: Vec<Value> = Vec::new();
    let mut n = 0usize;
    for row in rel.iter() {
        gov.tick(n)?;
        if keep(row) {
            kept.extend_from_slice(row);
            n += 1;
        }
    }
    Ok(Relation::from_canonical(rel.arity(), n, kept))
}

/// Append a copy of column `i` to every row (order-preserving: rows
/// already differ within the original prefix).
fn duplicate_col(
    rel: &Relation,
    i: usize,
    gov: &mut Governor<'_>,
) -> Result<Relation, BudgetExceeded> {
    let mut data: Vec<Value> = Vec::with_capacity(rel.len() * (rel.arity() + 1));
    for (k, row) in rel.iter().enumerate() {
        gov.tick(k)?;
        data.extend_from_slice(row);
        data.push(row[i]);
    }
    Ok(Relation::from_canonical(rel.arity() + 1, rel.len(), data))
}

/// Reorder columns by `perm` (identity permutations are O(1)).
fn permute(
    rel: &Relation,
    perm: &[usize],
    gov: &mut Governor<'_>,
) -> Result<Relation, BudgetExceeded> {
    if perm.iter().enumerate().all(|(i, &p)| i == p) {
        return Ok(rel.clone());
    }
    let mut out = RelationBuilder::with_capacity(perm.len(), rel.len());
    for row in rel.iter() {
        gov.tick(out.len())?;
        out.push_row_from(perm.iter().map(|&i| row[i]));
    }
    Ok(out.finish())
}

/// Project columns `proj` out of every row, deduplicating.
fn project(
    rel: &Relation,
    proj: &[usize],
    gov: &mut Governor<'_>,
) -> Result<Relation, BudgetExceeded> {
    let mut out = RelationBuilder::with_capacity(proj.len(), rel.len());
    for row in rel.iter() {
        gov.tick(out.len())?;
        out.push_row_from(proj.iter().map(|&i| row[i]));
    }
    Ok(out.finish())
}

/// Collect every scanned predicate in the plan.
fn collect_preds(e: &RaExpr, out: &mut FxHashSet<Symbol>) {
    match e {
        RaExpr::Scan { pred, .. } => {
            out.insert(*pred);
        }
        RaExpr::Single { .. } | RaExpr::Unit | RaExpr::Empty { .. } => {}
        RaExpr::Join(l, r) | RaExpr::Union(l, r) | RaExpr::Diff(l, r) => {
            collect_preds(l, out);
            collect_preds(r, out);
        }
        RaExpr::Project { input, .. }
        | RaExpr::Select { input, .. }
        | RaExpr::Duplicate { input, .. } => collect_preds(input, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use rc_formula::Term;

    fn delta_of(db: &mut Database, text: &str) -> Delta {
        db.apply_delta(text).expect("delta applies")
    }

    /// Materialize, apply a delta, refresh, and check the refreshed root
    /// equals a from-scratch evaluation on the mutated database.
    fn check_refresh(expr: &RaExpr, facts: &str, delta_text: &str) {
        let mut db = Database::from_facts(facts).unwrap();
        let mut stats = EvalStats::default();
        let budget = Budget::unlimited();
        let (cold, view) = materialize(
            expr,
            &db,
            db.version(),
            &mut stats,
            budget,
            &mut Tracer::off(),
        )
        .unwrap();
        let delta = delta_of(&mut db, delta_text);
        let (new_view, refreshed) = refresh(
            &view,
            &delta,
            db.version(),
            &mut EvalStats::default(),
            budget,
            &mut Tracer::off(),
        )
        .unwrap();
        let full = eval(expr, &db).unwrap();
        assert_eq!(refreshed, full, "refresh must equal full re-evaluation");
        assert_eq!(new_view.result(), &full);
        assert_eq!(new_view.base_version(), db.version());
        // The old view is untouched.
        assert_eq!(view.result(), &cold);
    }

    fn scan2(p: &str) -> RaExpr {
        RaExpr::scan(p, vec![Term::var("x"), Term::var("y")])
    }

    #[test]
    fn join_refresh_matches_full_eval() {
        let e = RaExpr::join(scan2("P"), RaExpr::scan("Q", vec![Term::var("y")]));
        check_refresh(
            &e,
            "P(1, 2)\nP(2, 3)\nP(3, 3)\nQ(2)\nQ(3)",
            "P(4, 2)\n-P(2, 3)\n-Q(3)\nQ(9)",
        );
    }

    #[test]
    fn diff_refresh_covers_both_sides() {
        let e = RaExpr::diff(scan2("P"), RaExpr::scan("Q", vec![Term::var("y")]));
        check_refresh(
            &e,
            "P(1, 2)\nP(2, 3)\nQ(2)",
            "-Q(2)\nQ(3)\nP(5, 5)\n-P(1, 2)",
        );
    }

    #[test]
    fn union_and_project_refresh() {
        let e = RaExpr::project(RaExpr::union(scan2("P"), scan2("S")), vec![Var::new("y")]);
        check_refresh(
            &e,
            "P(1, 2)\nP(2, 2)\nS(7, 2)\nS(1, 9)",
            "-P(1, 2)\n-P(2, 2)\n-S(7, 2)\nS(3, 4)",
        );
    }

    #[test]
    fn scan_pattern_checks_apply_to_deltas() {
        // P(x, x) — diagonal; and P(x, 3) — constant.
        let diag = RaExpr::scan("P", vec![Term::var("x"), Term::var("x")]);
        check_refresh(&diag, "P(1, 2)\nP(3, 3)", "P(4, 4)\n-P(3, 3)\nP(5, 6)");
        let konst = RaExpr::scan("P", vec![Term::var("x"), Term::val(3)]);
        check_refresh(&konst, "P(1, 3)\nP(2, 2)", "-P(1, 3)\nP(9, 3)\nP(8, 1)");
    }

    #[test]
    fn delete_then_reinsert_round_trips() {
        let e = scan2("P");
        let mut db = Database::from_facts("P(1, 2)\nP(2, 3)").unwrap();
        let budget = Budget::unlimited();
        let (_, view) = materialize(
            &e,
            &db,
            db.version(),
            &mut EvalStats::default(),
            budget,
            &mut Tracer::off(),
        )
        .unwrap();
        let v0 = db.version();
        db.apply_delta("-P(1, 2)").unwrap();
        db.apply_delta("P(1, 2)").unwrap();
        let chain = db.delta_chain(v0, db.version()).expect("chain recorded");
        let (_, refreshed) = refresh(
            &view,
            &chain,
            db.version(),
            &mut EvalStats::default(),
            budget,
            &mut Tracer::off(),
        )
        .unwrap();
        assert_eq!(refreshed, eval(&e, &db).unwrap());
    }

    #[test]
    fn empty_and_unreferenced_deltas_are_cheap_version_advances() {
        let e = scan2("P");
        let mut db = Database::from_facts("P(1, 2)\nZzz(5)").unwrap();
        let budget = Budget::unlimited();
        let (cold, view) = materialize(
            &e,
            &db,
            db.version(),
            &mut EvalStats::default(),
            budget,
            &mut Tracer::off(),
        )
        .unwrap();
        let delta = db.apply_delta("Zzz(6)").unwrap();
        assert!(worth_refreshing(&view, &delta, || 0.0));
        let (nv, refreshed) = refresh(
            &view,
            &delta,
            db.version(),
            &mut EvalStats::default(),
            budget,
            &mut Tracer::off(),
        )
        .unwrap();
        assert_eq!(refreshed, cold);
        assert_eq!(nv.base_version(), db.version());
    }

    #[test]
    fn refresh_spans_carry_ivm_notes() {
        let e = RaExpr::join(scan2("P"), RaExpr::scan("Q", vec![Term::var("y")]));
        let mut db = Database::from_facts("P(1, 2)\nQ(2)").unwrap();
        let budget = Budget::unlimited();
        let (_, view) = materialize(
            &e,
            &db,
            db.version(),
            &mut EvalStats::default(),
            budget,
            &mut Tracer::off(),
        )
        .unwrap();
        let delta = db.apply_delta("P(7, 2)").unwrap();
        let mut tr = Tracer::on();
        refresh(
            &view,
            &delta,
            db.version(),
            &mut EvalStats::default(),
            budget,
            &mut tr,
        )
        .unwrap();
        let root = tr.finish().expect("refresh produced a span tree");
        let note = root.ivm.as_ref().expect("refresh spans carry ivm notes");
        assert_eq!(note.mode, "refresh");
        assert_eq!(note.plus, 1);
        assert!(root.partitioned_projection().contains("ivm=refresh"));
    }

    #[test]
    fn budget_trip_mid_refresh_charges_maintain_stage() {
        let e = RaExpr::join(scan2("P"), RaExpr::scan("Q", vec![Term::var("y")]));
        let mut db = Database::from_facts("P(1, 2)\nP(2, 2)\nQ(2)").unwrap();
        let budget = Budget::unlimited();
        let (_, view) = materialize(
            &e,
            &db,
            db.version(),
            &mut EvalStats::default(),
            budget,
            &mut Tracer::off(),
        )
        .unwrap();
        let delta = db.apply_delta("P(3, 2)\nP(4, 2)\nP(5, 2)").unwrap();
        let tight = Budget::new().with_max_tuples(1);
        let err = refresh(
            &view,
            &delta,
            db.version(),
            &mut EvalStats::default(),
            &tight,
            &mut Tracer::off(),
        )
        .unwrap_err();
        match err {
            RefreshError::Budget(b) => assert_eq!(b.stage, Stage::Maintain),
            other => panic!("expected a budget trip, got {other:?}"),
        }
    }

    #[test]
    fn chain_composition_and_log_gaps() {
        let mut db = Database::from_facts("P(1, 2)").unwrap();
        let v0 = db.version();
        db.apply_delta("P(2, 3)").unwrap();
        let v1 = db.version();
        db.apply_delta("-P(1, 2)").unwrap();
        let v2 = db.version();
        let chain = db.delta_chain(v0, v2).expect("two-link chain");
        let td = chain.table(Symbol::intern("P")).unwrap();
        assert_eq!(td.plus.len(), 1);
        assert_eq!(td.minus.len(), 1);
        assert!(db.delta_chain(v1, v2).is_some());
        // A non-delta mutation leaves a gap.
        db.load_facts("P(9, 9)").unwrap();
        assert!(db.delta_chain(v2, db.version()).is_none());
        assert!(db.delta_chain(v0, db.version()).is_none());
    }

    #[test]
    fn cost_gate_rejects_oversized_deltas() {
        let e = scan2("P");
        let mut db = Database::from_facts("P(1, 2)").unwrap();
        let budget = Budget::unlimited();
        let (_, view) = materialize(
            &e,
            &db,
            db.version(),
            &mut EvalStats::default(),
            budget,
            &mut Tracer::off(),
        )
        .unwrap();
        let mut big = String::new();
        for i in 0..200 {
            big.push_str(&format!("P({i}, {i})\n"));
        }
        let delta = db.apply_delta(&big).unwrap();
        // Tiny full cost, 200-row delta: fall back.
        assert!(!worth_refreshing(&view, &delta, || 10.0));
        // A one-row delta on the same view refreshes.
        let small = db.apply_delta("P(9999, 1)").unwrap();
        assert!(worth_refreshing(&view, &small, || 10.0));
    }
}
