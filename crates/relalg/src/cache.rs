//! Cross-run plan and result caching for repeated-query serving.
//!
//! A REPL or server loop re-serving the same formula should not pay for
//! parse → classify → genify → RANF → translate → optimize on every
//! request, and — until the database changes — should not pay for
//! evaluation either. [`PlanCache`] provides both layers:
//!
//! * **Plan entries** map the query *text* (plus a caller-supplied options
//!   fingerprint and the database's *statistics epoch*) to an arbitrary
//!   compiled payload `P` and its structural
//!   [`plan_hash`](crate::plan::plan_hash). Compilation is a pure function
//!   of the text, options, and the statistics the cost-based planner read,
//!   so plan entries never need in-place invalidation — when trace feedback
//!   changes the statistics store, the epoch
//!   ([`Database::stats_epoch`](crate::database::Database::stats_epoch))
//!   moves and re-plans land under a fresh key instead of overwriting a
//!   plan another caller may still hold. Callers compiling without the
//!   cost-based planner pass epoch `0`.
//! * **Result entries** map a plan hash to the materialized [`Relation`]
//!   *stamped with the database version it was computed against*
//!   ([`Database::version`](crate::database::Database::version)). A lookup
//!   with any other version misses: version stamps are globally unique and
//!   bumped by every mutation, so a stale entry can never be served. Each
//!   plan keeps at most one result (the latest), so a mutate–reserve loop
//!   self-evicts instead of accumulating garbage; [`purge_stale`] drops
//!   leftovers eagerly.
//!
//! The payload type is generic because this crate only knows about algebra
//! expressions — `rc-core` instantiates `PlanCache` with its full compiled
//! pipeline artifact.
//!
//! Governance interaction: the cache stores only *completed* results.
//! Serving a hit still passes through the caller's budget accounting (see
//! `compile_and_eval_cached` in `rc-core`), charging the materialized
//! cardinality, so a cached answer cannot bypass tuple limits.
//!
//! [`purge_stale`]: PlanCache::purge_stale

use crate::ivm::MaintainedView;
use crate::relation::Relation;
use rc_formula::fxhash::{FxHashMap, FxHasher};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Hit/miss counters for a [`PlanCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Plan lookups served from the cache.
    pub plan_hits: u64,
    /// Plan lookups that had to compile.
    pub plan_misses: u64,
    /// Result lookups served from the cache (same plan, same db version).
    pub result_hits: u64,
    /// Result lookups that had to evaluate.
    pub result_misses: u64,
    /// Result lookups that found an entry for a *different* database
    /// version — evidence of invalidation working (also counted in
    /// `result_misses`).
    pub stale_results: u64,
    /// Stale results that were *refreshed* in place by delta propagation
    /// (see [`crate::ivm`]) rather than discarded and recomputed. Always
    /// ≤ `stale_results` over any window where only the maintenance layer
    /// writes refreshed entries.
    pub refreshed_results: u64,
    /// Result entries dropped by [`PlanCache::purge_stale`] — stale
    /// entries that were *evicted* rather than refreshed.
    pub evicted_results: u64,
}

impl CacheStats {
    /// Fraction of plan lookups served from the cache (0.0 when none).
    pub fn plan_hit_rate(&self) -> f64 {
        rate(self.plan_hits, self.plan_misses)
    }

    /// Fraction of result lookups served from the cache (0.0 when none).
    pub fn result_hit_rate(&self) -> f64 {
        rate(self.result_hits, self.result_misses)
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// A versioned plan/result cache; see the [module docs](self) for the key
/// and invalidation contract.
pub struct PlanCache<P> {
    plans: FxHashMap<(String, u64, u64), (Arc<P>, u64)>,
    results: FxHashMap<u64, (u64, Relation)>,
    /// Materialized standing queries keyed by plan hash — the substrate
    /// the maintenance layer refreshes when a result entry goes stale by
    /// a known delta chain. At most one view per plan (latest wins), and
    /// views deliberately survive [`PlanCache::purge_stale`]: a purged
    /// result is gone, but the view can still be delta-advanced to the
    /// current version, which is the whole point.
    views: FxHashMap<u64, MaintainedView>,
    stats: CacheStats,
}

impl<P> Default for PlanCache<P> {
    fn default() -> Self {
        PlanCache {
            plans: FxHashMap::default(),
            results: FxHashMap::default(),
            views: FxHashMap::default(),
            stats: CacheStats::default(),
        }
    }
}

impl<P> PlanCache<P> {
    /// An empty cache.
    pub fn new() -> PlanCache<P> {
        PlanCache::default()
    }

    /// Look up a compiled plan by query text, options fingerprint, and the
    /// statistics epoch it was planned under (`0` when the cost-based
    /// planner was off). Returns the payload and its plan hash.
    pub fn lookup_plan(
        &mut self,
        text: &str,
        opts_key: u64,
        stats_epoch: u64,
    ) -> Option<(Arc<P>, u64)> {
        // Keying by (text, opts, epoch) without allocating would need a
        // borrowed tuple key; one short String per lookup is noise next to
        // the compile it saves.
        match self.plans.get(&(text.to_string(), opts_key, stats_epoch)) {
            Some((p, h)) => {
                self.stats.plan_hits += 1;
                Some((p.clone(), *h))
            }
            None => {
                self.stats.plan_misses += 1;
                None
            }
        }
    }

    /// Store a compiled plan under its query text, options fingerprint, and
    /// statistics epoch. Returns the shared payload for immediate use.
    pub fn insert_plan(
        &mut self,
        text: impl Into<String>,
        opts_key: u64,
        stats_epoch: u64,
        payload: P,
        plan_hash: u64,
    ) -> Arc<P> {
        let payload = Arc::new(payload);
        self.plans.insert(
            (text.into(), opts_key, stats_epoch),
            (payload.clone(), plan_hash),
        );
        payload
    }

    /// Look up a materialized result for a plan, valid only against the
    /// exact database version it was computed for.
    pub fn lookup_result(&mut self, plan_hash: u64, db_version: u64) -> Option<Relation> {
        match self.results.get(&plan_hash) {
            Some((v, rel)) if *v == db_version => {
                self.stats.result_hits += 1;
                Some(rel.clone())
            }
            Some(_) => {
                self.stats.stale_results += 1;
                self.stats.result_misses += 1;
                None
            }
            None => {
                self.stats.result_misses += 1;
                None
            }
        }
    }

    /// Store a materialized result, replacing any entry for the same plan
    /// (including stale ones from earlier database versions).
    pub fn insert_result(&mut self, plan_hash: u64, db_version: u64, rel: Relation) {
        self.results.insert(plan_hash, (db_version, rel));
    }

    /// Drop every result entry not computed against `db_version`. Returns
    /// the number evicted (also accumulated into
    /// [`CacheStats::evicted_results`]). Plan entries are untouched (they
    /// are version-independent), and so are maintained views — a view is
    /// exactly the state that lets a *future* lookup skip recomputation,
    /// stale or not.
    pub fn purge_stale(&mut self, db_version: u64) -> usize {
        let before = self.results.len();
        self.results.retain(|_, (v, _)| *v == db_version);
        let evicted = before - self.results.len();
        self.stats.evicted_results += evicted as u64;
        evicted
    }

    /// Register (or replace) the materialized standing query backing a
    /// result entry, so later mutations can refresh instead of evict.
    pub fn register_view(&mut self, plan_hash: u64, view: MaintainedView) {
        self.views.insert(plan_hash, view);
    }

    /// A clone of the maintained view registered for a plan, if any. The
    /// clone is cheap in spirit (canonical buffers are contiguous) and
    /// deliberate in letter: refresh happens *outside* any cache lock,
    /// against a snapshot, and only a fully successful refresh is
    /// installed back — a failed or abandoned refresh leaves the cache
    /// holding exactly the old state.
    pub fn view_snapshot(&self, plan_hash: u64) -> Option<MaintainedView> {
        self.views.get(&plan_hash).cloned()
    }

    /// Install a successfully refreshed view and its root result, bumping
    /// [`CacheStats::refreshed_results`]. The result entry is stamped
    /// with the view's new base version.
    pub fn install_refreshed(&mut self, plan_hash: u64, view: MaintainedView, rel: Relation) {
        self.results.insert(plan_hash, (view.base_version(), rel));
        self.views.insert(plan_hash, view);
        self.stats.refreshed_results += 1;
    }

    /// Number of maintained views currently registered.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    /// Number of cached plans.
    pub fn plan_count(&self) -> usize {
        self.plans.len()
    }

    /// Number of cached results.
    pub fn result_count(&self) -> usize {
        self.results.len()
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop all entries (including maintained views) and reset the
    /// counters.
    pub fn clear(&mut self) {
        self.plans.clear();
        self.results.clear();
        self.views.clear();
        self.stats = CacheStats::default();
    }
}

/// How many independently locked shards a [`SharedPlanCache`] spreads its
/// entries over. A power of two so the shard pick is a mask; 16 keeps lock
/// contention negligible for any worker count this process can host while
/// costing only 16 small maps.
pub const CACHE_SHARDS: usize = 16;

/// A process-wide, concurrently shareable [`PlanCache`]: the same
/// plan/result layers and the same key-and-invalidation contract, but
/// callable from any number of threads through `&self`.
///
/// Internally the cache is *lock-sharded*: [`CACHE_SHARDS`] independent
/// `Mutex<PlanCache>` shards, with plan entries routed by a hash of the
/// query text and result entries routed by the plan hash. Two requests for
/// different queries almost never touch the same lock, and no lock is ever
/// held across compilation or evaluation — only across the map probe
/// itself. This is the wasmtime engine/store discipline applied to plans:
/// the compiled artifact is immutable and `Arc`-shared, so concurrent
/// sessions hand out the same plan without copying or blocking each other.
///
/// A poisoned shard (a panic while holding the lock) is recovered rather
/// than propagated: cache contents are derived state, so serving from a
/// shard some earlier panicking thread touched is always safe — worst case
/// the entry is stale-free but cold.
pub struct SharedPlanCache<P> {
    shards: Vec<Mutex<PlanCache<P>>>,
}

impl<P> Default for SharedPlanCache<P> {
    fn default() -> Self {
        SharedPlanCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(PlanCache::new()))
                .collect(),
        }
    }
}

fn shard_of_text(text: &str, opts_key: u64, stats_epoch: u64) -> usize {
    let mut h = FxHasher::default();
    text.hash(&mut h);
    opts_key.hash(&mut h);
    stats_epoch.hash(&mut h);
    (h.finish() as usize) & (CACHE_SHARDS - 1)
}

fn shard_of_hash(plan_hash: u64) -> usize {
    // The low bits of an FxHash-derived plan hash are well mixed.
    (plan_hash as usize) & (CACHE_SHARDS - 1)
}

impl<P> SharedPlanCache<P> {
    /// An empty shared cache.
    pub fn new() -> SharedPlanCache<P> {
        SharedPlanCache::default()
    }

    fn plan_shard(&self, text: &str, opts_key: u64, epoch: u64) -> &Mutex<PlanCache<P>> {
        &self.shards[shard_of_text(text, opts_key, epoch)]
    }

    fn result_shard(&self, plan_hash: u64) -> &Mutex<PlanCache<P>> {
        &self.shards[shard_of_hash(plan_hash)]
    }

    fn lock(shard: &Mutex<PlanCache<P>>) -> std::sync::MutexGuard<'_, PlanCache<P>> {
        shard.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Concurrent [`PlanCache::lookup_plan`].
    pub fn lookup_plan(
        &self,
        text: &str,
        opts_key: u64,
        stats_epoch: u64,
    ) -> Option<(Arc<P>, u64)> {
        Self::lock(self.plan_shard(text, opts_key, stats_epoch)).lookup_plan(
            text,
            opts_key,
            stats_epoch,
        )
    }

    /// Concurrent [`PlanCache::insert_plan`]. When another thread raced the
    /// same compile and inserted first, *its* payload wins and is returned,
    /// so every caller converges on one shared `Arc` per key.
    pub fn insert_plan(
        &self,
        text: &str,
        opts_key: u64,
        stats_epoch: u64,
        payload: P,
        plan_hash: u64,
    ) -> Arc<P> {
        let mut shard = Self::lock(self.plan_shard(text, opts_key, stats_epoch));
        // Probe the map directly: a racing-insert convergence check is not
        // a lookup and must not touch the hit/miss counters.
        if let Some((existing, _)) = shard.plans.get(&(text.to_string(), opts_key, stats_epoch)) {
            return existing.clone();
        }
        shard.insert_plan(text, opts_key, stats_epoch, payload, plan_hash)
    }

    /// Concurrent [`PlanCache::lookup_result`].
    pub fn lookup_result(&self, plan_hash: u64, db_version: u64) -> Option<Relation> {
        Self::lock(self.result_shard(plan_hash)).lookup_result(plan_hash, db_version)
    }

    /// Concurrent [`PlanCache::insert_result`].
    pub fn insert_result(&self, plan_hash: u64, db_version: u64, rel: Relation) {
        Self::lock(self.result_shard(plan_hash)).insert_result(plan_hash, db_version, rel)
    }

    /// Concurrent [`PlanCache::register_view`] (routed like results, by
    /// plan hash).
    pub fn register_view(&self, plan_hash: u64, view: MaintainedView) {
        Self::lock(self.result_shard(plan_hash)).register_view(plan_hash, view)
    }

    /// Concurrent [`PlanCache::view_snapshot`]. The shard lock covers only
    /// the clone — never the refresh computed against the snapshot.
    pub fn view_snapshot(&self, plan_hash: u64) -> Option<MaintainedView> {
        Self::lock(self.result_shard(plan_hash)).view_snapshot(plan_hash)
    }

    /// Concurrent [`PlanCache::install_refreshed`]. Racing refreshers for
    /// the same plan both install; last writer wins with a complete
    /// (view, result) pair either way — both are self-consistent states.
    pub fn install_refreshed(&self, plan_hash: u64, view: MaintainedView, rel: Relation) {
        Self::lock(self.result_shard(plan_hash)).install_refreshed(plan_hash, view, rel)
    }

    /// Total maintained views across all shards.
    pub fn view_count(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).view_count()).sum()
    }

    /// [`PlanCache::purge_stale`] across every shard; returns the total
    /// number of result entries evicted.
    pub fn purge_stale(&self, db_version: u64) -> usize {
        self.shards
            .iter()
            .map(|s| Self::lock(s).purge_stale(db_version))
            .sum()
    }

    /// Total cached plans across all shards.
    pub fn plan_count(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).plan_count()).sum()
    }

    /// Total cached results across all shards.
    pub fn result_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| Self::lock(s).result_count())
            .sum()
    }

    /// Aggregated hit/miss counters across all shards. Each counter is the
    /// sum of per-shard counters; a snapshot taken while other threads are
    /// serving is a consistent-enough lower bound (shards are read one at a
    /// time), which is all cache statistics can promise under concurrency.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            let s = Self::lock(s).stats();
            total.plan_hits += s.plan_hits;
            total.plan_misses += s.plan_misses;
            total.result_hits += s.result_hits;
            total.result_misses += s.result_misses;
            total.stale_results += s.stale_results;
            total.refreshed_results += s.refreshed_results;
            total.evicted_results += s.evicted_results;
        }
        total
    }

    /// Drop every entry and reset the counters in every shard.
    pub fn clear(&self) {
        for s in &self.shards {
            Self::lock(s).clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::tuple;

    fn rel(vals: [i64; 2]) -> Relation {
        Relation::from_rows(1, vals.map(|v| tuple([v])))
    }

    #[test]
    fn plan_entries_key_on_text_options_and_epoch() {
        let mut c: PlanCache<&'static str> = PlanCache::new();
        assert!(c.lookup_plan("E x: P(x)", 0, 0).is_none());
        c.insert_plan("E x: P(x)", 0, 0, "payload", 42);
        let (p, h) = c.lookup_plan("E x: P(x)", 0, 0).expect("hit");
        assert_eq!((*p, h), ("payload", 42));
        // Same text under different options is a different plan.
        assert!(c.lookup_plan("E x: P(x)", 1, 0).is_none());
        assert!(c.lookup_plan("E x: Q(x)", 0, 0).is_none());
        // A moved statistics epoch forces a re-plan rather than serving the
        // plan built against stale statistics.
        assert!(c.lookup_plan("E x: P(x)", 0, 7).is_none());
        c.insert_plan("E x: P(x)", 0, 7, "replanned", 43);
        let (p, h) = c.lookup_plan("E x: P(x)", 0, 7).expect("hit");
        assert_eq!((*p, h), ("replanned", 43));
        let s = c.stats();
        assert_eq!((s.plan_hits, s.plan_misses), (2, 4));
    }

    #[test]
    fn results_hit_only_on_exact_version() {
        let mut c: PlanCache<()> = PlanCache::new();
        c.insert_result(7, 100, rel([1, 2]));
        assert_eq!(c.lookup_result(7, 100), Some(rel([1, 2])));
        assert_eq!(c.lookup_result(7, 101), None, "stale version must miss");
        assert_eq!(c.lookup_result(8, 100), None, "unknown plan must miss");
        let s = c.stats();
        assert_eq!((s.result_hits, s.result_misses, s.stale_results), (1, 2, 1));
        assert!(s.result_hit_rate() > 0.3 && s.result_hit_rate() < 0.34);
    }

    #[test]
    fn insert_replaces_stale_entry_for_same_plan() {
        let mut c: PlanCache<()> = PlanCache::new();
        c.insert_result(7, 100, rel([1, 2]));
        c.insert_result(7, 101, rel([3, 4]));
        assert_eq!(c.result_count(), 1);
        assert_eq!(c.lookup_result(7, 100), None);
        assert_eq!(c.lookup_result(7, 101), Some(rel([3, 4])));
    }

    #[test]
    fn purge_stale_drops_only_other_versions() {
        let mut c: PlanCache<()> = PlanCache::new();
        c.insert_result(1, 100, rel([1, 2]));
        c.insert_result(2, 101, rel([3, 4]));
        c.insert_result(3, 101, rel([5, 6]));
        assert_eq!(c.purge_stale(101), 1);
        assert_eq!(c.result_count(), 2);
        assert_eq!(c.lookup_result(2, 101), Some(rel([3, 4])));
    }

    #[test]
    fn shared_cache_mirrors_plan_cache_contract() {
        let c: SharedPlanCache<&'static str> = SharedPlanCache::new();
        assert!(c.lookup_plan("q", 0, 0).is_none());
        let first = c.insert_plan("q", 0, 0, "mine", 7);
        // A racing insert under the same key converges on the first payload.
        let second = c.insert_plan("q", 0, 0, "theirs", 7);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(*c.lookup_plan("q", 0, 0).expect("hit").0, "mine");
        c.insert_result(7, 100, rel([1, 2]));
        assert_eq!(c.lookup_result(7, 100), Some(rel([1, 2])));
        assert_eq!(c.lookup_result(7, 101), None);
        let s = c.stats();
        assert_eq!((s.plan_hits, s.plan_misses), (1, 1));
        assert_eq!((s.result_hits, s.result_misses, s.stale_results), (1, 1, 1));
        assert_eq!((c.plan_count(), c.result_count()), (1, 1));
        assert_eq!(c.purge_stale(999), 1);
        c.clear();
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!((c.plan_count(), c.result_count()), (0, 0));
    }

    #[test]
    fn shared_cache_is_coherent_under_contention() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let c: Arc<SharedPlanCache<u64>> = Arc::new(SharedPlanCache::new());
        let built = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let c = Arc::clone(&c);
                let built = Arc::clone(&built);
                s.spawn(move || {
                    for i in 0..100u64 {
                        let key = i % 10;
                        let text = format!("q{key}");
                        let payload = match c.lookup_plan(&text, 0, 0) {
                            Some((p, h)) => {
                                assert_eq!(h, key);
                                p
                            }
                            None => {
                                built.fetch_add(1, Ordering::Relaxed);
                                c.insert_plan(&text, 0, 0, key * 1000, key)
                            }
                        };
                        // Every thread must observe the converged payload,
                        // never a torn or thread-local one.
                        assert_eq!(*payload % 1000, 0);
                        assert_eq!(*payload / 1000, key);
                        c.insert_result(key, t, rel([key as i64, i as i64 % 7]));
                        let _ = c.lookup_result(key, t);
                    }
                });
            }
        });
        assert_eq!(c.plan_count(), 10);
        let s = c.stats();
        assert_eq!(s.plan_hits + s.plan_misses, 800);
    }

    fn tiny_view() -> (crate::Database, Relation, MaintainedView) {
        use crate::eval::EvalStats;
        use crate::govern::Budget;
        use crate::ivm::materialize;
        use crate::trace::Tracer;
        let db = crate::Database::from_facts("P(1)").unwrap();
        let e = crate::expr::RaExpr::scan("P", vec![rc_formula::Term::var("x")]);
        let (out, view) = materialize(
            &e,
            &db,
            db.version(),
            &mut EvalStats::default(),
            Budget::unlimited(),
            &mut Tracer::off(),
        )
        .unwrap();
        (db, out, view)
    }

    #[test]
    fn stale_refreshed_and_evicted_counters_are_split() {
        use crate::eval::EvalStats;
        use crate::govern::Budget;
        use crate::ivm::refresh;
        use crate::trace::Tracer;
        let (mut db, out, view) = tiny_view();
        let v0 = db.version();
        let mut c: PlanCache<()> = PlanCache::new();
        c.insert_result(7, v0, out.clone());
        c.register_view(7, view);
        assert_eq!(c.view_count(), 1);
        let delta = db.apply_delta("P(2)").unwrap();
        // The result entry is now stale: counted as stale + miss, but the
        // view snapshot can still be delta-advanced.
        assert!(c.lookup_result(7, db.version()).is_none());
        let snap = c.view_snapshot(7).expect("view registered");
        assert_eq!(snap.base_version(), v0);
        let (nv, rel) = refresh(
            &snap,
            &delta,
            db.version(),
            &mut EvalStats::default(),
            Budget::unlimited(),
            &mut Tracer::off(),
        )
        .unwrap();
        c.install_refreshed(7, nv, rel.clone());
        assert_eq!(c.lookup_result(7, db.version()), Some(rel));
        // A different plan's stale entry gets purged: evicted, not
        // refreshed — the three counters move independently.
        c.insert_result(8, v0, out);
        assert_eq!(c.purge_stale(db.version()), 1);
        let s = c.stats();
        assert_eq!(
            (s.stale_results, s.refreshed_results, s.evicted_results),
            (1, 1, 1)
        );
        assert_eq!(c.view_count(), 1, "views survive purge_stale");
        c.clear();
        assert_eq!(c.view_count(), 0);
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn shared_cache_mirrors_view_registry() {
        let (db, out, view) = tiny_view();
        let c: SharedPlanCache<()> = SharedPlanCache::new();
        c.insert_result(7, db.version(), out.clone());
        c.register_view(7, view.clone());
        assert_eq!(c.view_count(), 1);
        let snap = c.view_snapshot(7).expect("view registered");
        assert_eq!(snap.base_version(), view.base_version());
        c.install_refreshed(7, view, out);
        let s = c.stats();
        assert_eq!(s.refreshed_results, 1);
        assert_eq!(c.purge_stale(0), 1);
        assert_eq!(c.stats().evicted_results, 1);
        assert_eq!(c.view_count(), 1, "views survive purge_stale");
        c.clear();
        assert_eq!(c.view_count(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c: PlanCache<u8> = PlanCache::new();
        c.insert_plan("q", 0, 0, 1, 9);
        c.insert_result(9, 100, rel([1, 2]));
        c.lookup_plan("q", 0, 0);
        c.clear();
        assert_eq!(c.plan_count(), 0);
        assert_eq!(c.result_count(), 0);
        assert_eq!(c.stats(), CacheStats::default());
    }
}
