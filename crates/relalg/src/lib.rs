//! # rc-relalg
//!
//! In-memory relational algebra engine — the evaluation substrate for the
//! `rcsafe` reproduction of Van Gelder & Topor (PODS 1987).
//!
//! The paper translates *allowed* relational-calculus formulas into algebra
//! expressions built from scans, natural joins, unions, projections,
//! selections, the generalized set difference `diff` (anti-join, Def. 9.3),
//! on-the-fly constant singletons (`x = c`, Sec. 5.3) and a column
//! duplication primitive (Appendix A). This crate implements exactly that
//! operator set over set-semantics relations with variable-named columns:
//!
//! * [`relation::Relation`], [`database::Database`] — storage, including
//!   hash-partitioned layouts ([`relation::Relation::partition_by`],
//!   [`relation::PartitionedRelation`]) behind the partition-parallel
//!   kernels and the per-database partition cache;
//! * [`expr::RaExpr`] — the expression tree, with structural validation;
//! * [`eval`](mod@eval) — hash-join/anti-join evaluation with [`eval::EvalStats`],
//!   including the memoizing DAG evaluator [`eval::eval_shared`];
//! * [`plan`] — hash-consing expressions into DAGs with physically shared
//!   subtrees ([`plan::intern`]) and structural plan hashes;
//! * [`cache`] — cross-run plan/result cache keyed by (plan hash,
//!   [`database::Database`] version), invalidated by any mutation;
//! * [`ivm`](mod@ivm) — incremental view maintenance: delta journals and
//!   per-operator Δ-rules that *refresh* cached results in O(|Δ|·fanout)
//!   instead of discarding them on mutation;
//! * [`govern`] — resource budgets, cooperative cancellation, fault
//!   injection for the whole pipeline (shared with `rc-core`'s stages);
//! * [`trace`] — opt-in span tracing of stages and operators (cardinalities,
//!   dedup ratios, wall times) hooked at the same operator boundaries the
//!   governor checkpoints;
//! * [`stats`] — per-relation statistics, cardinality/cost estimation, and
//!   the trace-fed feedback store behind the cost-based planner;
//! * [`optimize::simplify`] — semantics-preserving cleanup — and
//!   [`optimize::optimize`], the cost-based pass on top of it
//!   (join reordering, cost-gated projection placement);
//! * [`egraph`] — equality saturation over plans: e-classes with
//!   union-find merging, a documented registry of soundness-proven
//!   rewrites (`docs/REWRITES.md`), budget-bounded saturation, and
//!   cost-based extraction that is never costlier than the input;
//! * display impls that mimic the paper's `π/σ/⋈/∪/diff` notation;
//! * [`io`] — fact-text and TSV import/export.

#![deny(missing_docs)]

pub mod baseline;
pub mod cache;
pub mod database;
pub mod display;
pub mod egraph;
pub mod eval;
pub mod expr;
pub mod govern;
pub mod io;
pub mod ivm;
pub mod optimize;
pub mod plan;
pub mod relation;
pub mod stats;
pub mod trace;

pub use baseline::eval_baseline;
pub use cache::{CacheStats, PlanCache, SharedPlanCache, CACHE_SHARDS};
pub use database::Database;
pub use egraph::{rules, saturate, saturate_governed, RewriteRule, SaturationReport};
pub use eval::{
    eval, eval_governed, eval_shared, eval_traced, eval_with_stats, EvalError, EvalStats,
};
pub use expr::{RaExpr, SelPred};
pub use govern::{Budget, BudgetExceeded, CancelHandle, FaultInjector, Governor, Resource, Stage};
pub use ivm::{
    materialize, refresh, worth_refreshing, Delta, DeltaLog, MaintainedView, RefreshError,
    TableDelta,
};
pub use optimize::{optimize, simplify};
pub use plan::{intern, plan_hash, InternStats, Interner};
pub use relation::{
    partition_count, tuple, PartitionedRelation, Relation, RelationBuilder, Tuple,
    MIN_PARTITION_ROWS,
};
pub use stats::{harvest_actuals, CardEst, Estimator, TableStats};
pub use trace::{IvmNote, OpSpan, PipelineTrace, StageSpan, StageTracer, TraceSink, Tracer};
