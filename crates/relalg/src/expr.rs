//! Relational algebra expressions.
//!
//! The operator set is exactly what the paper's RANF translation emits
//! (Sec. 9.3): base-relation scans (with the selections/projections implied
//! by repeated variables and constants in an atom), natural join for
//! conjunction, union for disjunction (operands share columns), projection
//! for `∃`, selection for equality conjuncts, the **generalized set
//! difference** `diff` (Def. 9.3 — an anti-join, kept primitive as the paper
//! recommends), the on-the-fly singleton `q̲` relation for `x = c`
//! (Sec. 5.3), and the column-duplication primitive from Appendix A step 3.
//!
//! Columns are *named by variables*; a closed formula evaluates to a nullary
//! relation (`{()}` = true, `{}` = false).

use rc_formula::{Schema, Symbol, Term, Value, Var};
use std::fmt;
use std::sync::Arc;

/// A selection predicate for [`RaExpr::Select`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SelPred {
    /// Keep rows where two columns are equal.
    EqCols(Var, Var),
    /// Keep rows where two columns differ.
    NeqCols(Var, Var),
    /// Keep rows where a column equals a constant.
    EqConst(Var, Value),
    /// Keep rows where a column differs from a constant.
    NeqConst(Var, Value),
}

impl SelPred {
    /// Columns mentioned by the predicate.
    pub fn cols(&self) -> Vec<Var> {
        match *self {
            SelPred::EqCols(a, b) | SelPred::NeqCols(a, b) => vec![a, b],
            SelPred::EqConst(a, _) | SelPred::NeqConst(a, _) => vec![a],
        }
    }
}

/// A relational algebra expression with variable-named columns.
///
/// Children are held behind [`Arc`] so that hash-consing
/// ([`crate::plan::intern`]) can *physically share* duplicate subtrees: the
/// genify/RANF pipeline routinely emits the same scan/join/diff subplan in
/// several union branches, and interning turns that tree into a DAG whose
/// shared nodes the memoizing evaluator ([`crate::eval::eval_shared`])
/// computes once. Cloning an expression is cheap (reference bumps).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum RaExpr {
    /// Scan of a base relation through an atom pattern. Constants select,
    /// repeated variables select equality, and the output columns are the
    /// distinct variables in first-occurrence order.
    Scan {
        /// The base predicate.
        pred: Symbol,
        /// One term per column of the base relation.
        pattern: Vec<Term>,
    },
    /// The singleton relation `{(c)}` with one column — the paper's
    /// on-the-fly `q̲` relation for `x = c` atoms.
    Single {
        /// Output column.
        var: Var,
        /// The constant.
        value: Value,
    },
    /// The nullary relation `{()}` ("true"). Emitted for the `true ∧ G`
    /// rewrite of Alg. 9.1 step 2.
    Unit,
    /// An empty relation with the given columns ("false", or the `⊥`
    /// generator placeholder).
    Empty {
        /// Output columns.
        cols: Vec<Var>,
    },
    /// Natural join on shared column names (the equijoin of Sec. 2.1).
    Join(Arc<RaExpr>, Arc<RaExpr>),
    /// Union. Operands must have the same column *set*; the right side is
    /// re-ordered to match the left (the paper's "possibly after a column
    /// permutation").
    Union(Arc<RaExpr>, Arc<RaExpr>),
    /// Generalized set difference `P diff Q` (Def. 9.3): tuples of `P` whose
    /// projection onto `Q`'s columns is not in `Q`. Requires
    /// `cols(Q) ⊆ cols(P)`.
    Diff(Arc<RaExpr>, Arc<RaExpr>),
    /// Projection onto a subset of columns.
    Project {
        /// Input expression.
        input: Arc<RaExpr>,
        /// Columns to keep (order defines the output order).
        cols: Vec<Var>,
    },
    /// Selection.
    Select {
        /// Input expression.
        input: Arc<RaExpr>,
        /// The predicate.
        pred: SelPred,
    },
    /// Column duplication (Appendix A step 3): append a copy of column
    /// `src` named `dst`.
    Duplicate {
        /// Input expression.
        input: Arc<RaExpr>,
        /// Column to copy.
        src: Var,
        /// Name of the new column.
        dst: Var,
    },
}

/// Structural validity error for an algebra expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExprError {
    /// Union operands have different column sets.
    UnionColumnsDiffer(Vec<Var>, Vec<Var>),
    /// Diff right columns are not a subset of the left's.
    DiffNotSubset(Vec<Var>, Vec<Var>),
    /// Projection mentions a column the input lacks.
    ProjectUnknownColumn(Var),
    /// Selection mentions a column the input lacks.
    SelectUnknownColumn(Var),
    /// Duplicate source missing or destination already present.
    DuplicateBadColumns(Var, Var),
    /// A scan pattern's arity disagrees with the schema.
    ScanArity {
        /// Predicate scanned.
        pred: Symbol,
        /// Declared arity.
        expected: usize,
        /// Pattern length.
        found: usize,
    },
    /// A scanned predicate is not in the schema.
    UnknownPredicate(Symbol),
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnionColumnsDiffer(a, b) => {
                write!(f, "union operands have different columns: {a:?} vs {b:?}")
            }
            ExprError::DiffNotSubset(a, b) => {
                write!(f, "diff requires right columns {b:?} ⊆ left columns {a:?}")
            }
            ExprError::ProjectUnknownColumn(v) => write!(f, "projection onto unknown column {v}"),
            ExprError::SelectUnknownColumn(v) => write!(f, "selection on unknown column {v}"),
            ExprError::DuplicateBadColumns(s, d) => {
                write!(f, "duplicate: bad source {s} or duplicate destination {d}")
            }
            ExprError::ScanArity {
                pred,
                expected,
                found,
            } => write!(f, "scan of {pred}: arity {found}, schema says {expected}"),
            ExprError::UnknownPredicate(p) => write!(f, "scan of unknown predicate {p}"),
        }
    }
}

impl std::error::Error for ExprError {}

impl RaExpr {
    /// Scan shorthand.
    pub fn scan(pred: impl Into<Symbol>, pattern: Vec<Term>) -> RaExpr {
        RaExpr::Scan {
            pred: pred.into(),
            pattern,
        }
    }

    /// Join shorthand.
    pub fn join(l: RaExpr, r: RaExpr) -> RaExpr {
        RaExpr::Join(Arc::new(l), Arc::new(r))
    }

    /// Union shorthand.
    pub fn union(l: RaExpr, r: RaExpr) -> RaExpr {
        RaExpr::Union(Arc::new(l), Arc::new(r))
    }

    /// Diff shorthand.
    pub fn diff(l: RaExpr, r: RaExpr) -> RaExpr {
        RaExpr::Diff(Arc::new(l), Arc::new(r))
    }

    /// Projection shorthand.
    pub fn project(input: RaExpr, cols: Vec<Var>) -> RaExpr {
        RaExpr::Project {
            input: Arc::new(input),
            cols,
        }
    }

    /// Selection shorthand.
    pub fn select(input: RaExpr, pred: SelPred) -> RaExpr {
        RaExpr::Select {
            input: Arc::new(input),
            pred,
        }
    }

    /// Output columns, in order.
    pub fn cols(&self) -> Vec<Var> {
        match self {
            RaExpr::Scan { pattern, .. } => {
                let mut out = Vec::new();
                for t in pattern {
                    if let Term::Var(v) = *t {
                        if !out.contains(&v) {
                            out.push(v);
                        }
                    }
                }
                out
            }
            RaExpr::Single { var, .. } => vec![*var],
            RaExpr::Unit => Vec::new(),
            RaExpr::Empty { cols } => cols.clone(),
            RaExpr::Join(l, r) => {
                let mut out = l.cols();
                for v in r.cols() {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
                out
            }
            RaExpr::Union(l, _) => l.cols(),
            RaExpr::Diff(l, _) => l.cols(),
            RaExpr::Project { cols, .. } => cols.clone(),
            RaExpr::Select { input, .. } => input.cols(),
            RaExpr::Duplicate { input, dst, .. } => {
                let mut out = input.cols();
                out.push(*dst);
                out
            }
        }
    }

    /// `Some(pred)` when this node is a *plain* scan — a pattern binding
    /// every column to a distinct variable — so evaluating it returns the
    /// stored relation itself, columns in stored order. The
    /// partition-parallel join uses this to serve co-partitioned layouts
    /// from [`crate::database::Database`]'s partition cache instead of
    /// re-partitioning per query.
    pub fn plain_scan(&self) -> Option<Symbol> {
        match self {
            RaExpr::Scan { pred, pattern } => {
                let all_distinct_vars = pattern.iter().enumerate().all(|(i, t)| match t {
                    Term::Var(v) => !pattern[..i].contains(&Term::Var(*v)),
                    Term::Const(_) => false,
                });
                all_distinct_vars.then_some(*pred)
            }
            _ => None,
        }
    }

    /// Immediate sub-expressions.
    pub fn children(&self) -> Vec<&RaExpr> {
        match self {
            RaExpr::Scan { .. } | RaExpr::Single { .. } | RaExpr::Unit | RaExpr::Empty { .. } => {
                Vec::new()
            }
            RaExpr::Join(l, r) | RaExpr::Union(l, r) | RaExpr::Diff(l, r) => vec![l, r],
            RaExpr::Project { input, .. }
            | RaExpr::Select { input, .. }
            | RaExpr::Duplicate { input, .. } => vec![input],
        }
    }

    /// Number of operator nodes.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Validate structure (column disciplines) and, when a schema is given,
    /// scan arities.
    pub fn validate(&self, schema: Option<&Schema>) -> Result<(), ExprError> {
        match self {
            RaExpr::Scan { pred, pattern } => {
                if let Some(s) = schema {
                    match s.arity_of(*pred) {
                        None => return Err(ExprError::UnknownPredicate(*pred)),
                        Some(a) if a != pattern.len() => {
                            return Err(ExprError::ScanArity {
                                pred: *pred,
                                expected: a,
                                found: pattern.len(),
                            })
                        }
                        _ => {}
                    }
                }
                Ok(())
            }
            RaExpr::Single { .. } | RaExpr::Unit | RaExpr::Empty { .. } => Ok(()),
            RaExpr::Join(l, r) => {
                l.validate(schema)?;
                r.validate(schema)
            }
            RaExpr::Union(l, r) => {
                l.validate(schema)?;
                r.validate(schema)?;
                let (lc, rc) = (l.cols(), r.cols());
                let mut ls = lc.clone();
                let mut rs = rc.clone();
                ls.sort();
                rs.sort();
                if ls != rs {
                    return Err(ExprError::UnionColumnsDiffer(lc, rc));
                }
                Ok(())
            }
            RaExpr::Diff(l, r) => {
                l.validate(schema)?;
                r.validate(schema)?;
                let (lc, rc) = (l.cols(), r.cols());
                if !rc.iter().all(|v| lc.contains(v)) {
                    return Err(ExprError::DiffNotSubset(lc, rc));
                }
                Ok(())
            }
            RaExpr::Project { input, cols } => {
                input.validate(schema)?;
                let ic = input.cols();
                for v in cols {
                    if !ic.contains(v) {
                        return Err(ExprError::ProjectUnknownColumn(*v));
                    }
                }
                Ok(())
            }
            RaExpr::Select { input, pred } => {
                input.validate(schema)?;
                let ic = input.cols();
                for v in pred.cols() {
                    if !ic.contains(&v) {
                        return Err(ExprError::SelectUnknownColumn(v));
                    }
                }
                Ok(())
            }
            RaExpr::Duplicate { input, src, dst } => {
                input.validate(schema)?;
                let ic = input.cols();
                if !ic.contains(src) || ic.contains(dst) {
                    return Err(ExprError::DuplicateBadColumns(*src, *dst));
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    #[test]
    fn scan_cols_dedup_in_order() {
        // P(x, 3, x, y) has columns [x, y].
        let e = RaExpr::scan(
            "P",
            vec![Term::var("x"), Term::val(3), Term::var("x"), Term::var("y")],
        );
        assert_eq!(e.cols(), vec![v("x"), v("y")]);
    }

    #[test]
    fn join_cols_merge() {
        let l = RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]);
        let r = RaExpr::scan("Q", vec![Term::var("y"), Term::var("z")]);
        assert_eq!(RaExpr::join(l, r).cols(), vec![v("x"), v("y"), v("z")]);
    }

    #[test]
    fn union_validates_column_sets() {
        let l = RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]);
        let r = RaExpr::scan("Q", vec![Term::var("y"), Term::var("x")]);
        assert!(RaExpr::union(l.clone(), r).validate(None).is_ok());
        let bad = RaExpr::scan("Q", vec![Term::var("y"), Term::var("z")]);
        assert!(matches!(
            RaExpr::union(l, bad).validate(None),
            Err(ExprError::UnionColumnsDiffer(..))
        ));
    }

    #[test]
    fn diff_requires_subset() {
        let l = RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]);
        let r = RaExpr::scan("Q", vec![Term::var("y")]);
        assert!(RaExpr::diff(l.clone(), r).validate(None).is_ok());
        let bad = RaExpr::scan("Q", vec![Term::var("z")]);
        assert!(matches!(
            RaExpr::diff(l, bad).validate(None),
            Err(ExprError::DiffNotSubset(..))
        ));
    }

    #[test]
    fn schema_checked_scans() {
        let schema = Schema::new().with("P", 2);
        let ok = RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]);
        assert!(ok.validate(Some(&schema)).is_ok());
        let wrong = RaExpr::scan("P", vec![Term::var("x")]);
        assert!(matches!(
            wrong.validate(Some(&schema)),
            Err(ExprError::ScanArity { .. })
        ));
        let unknown = RaExpr::scan("Z", vec![Term::var("x")]);
        assert!(matches!(
            unknown.validate(Some(&schema)),
            Err(ExprError::UnknownPredicate(_))
        ));
    }

    #[test]
    fn duplicate_validation() {
        let p = RaExpr::scan("P", vec![Term::var("x")]);
        let good = RaExpr::Duplicate {
            input: Arc::new(p.clone()),
            src: v("x"),
            dst: v("x2"),
        };
        assert!(good.validate(None).is_ok());
        assert_eq!(good.cols(), vec![v("x"), v("x2")]);
        let bad = RaExpr::Duplicate {
            input: Arc::new(p),
            src: v("z"),
            dst: v("x2"),
        };
        assert!(bad.validate(None).is_err());
    }
}
