//! Textual rendering of algebra expressions.
//!
//! The inline form mimics the paper's notation:
//! `π₍x₎(P(x, y) ⋈ Q(y)) ∪ R(x)`, with `diff` spelled out. A multi-line
//! tree form ([`render_tree`]) is used by the experiment harnesses.

use crate::expr::{RaExpr, SelPred};
use std::fmt;
use std::fmt::Write as _;

impl fmt::Display for SelPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelPred::EqCols(a, b) => write!(f, "{a}={b}"),
            SelPred::NeqCols(a, b) => write!(f, "{a}≠{b}"),
            SelPred::EqConst(a, c) => write!(f, "{a}={c}"),
            SelPred::NeqConst(a, c) => write!(f, "{a}≠{c}"),
        }
    }
}

fn prec(e: &RaExpr) -> u8 {
    match e {
        RaExpr::Union(..) => 1,
        RaExpr::Diff(..) => 2,
        RaExpr::Join(..) => 3,
        _ => 4,
    }
}

fn write_expr(out: &mut fmt::Formatter<'_>, e: &RaExpr, parent: u8) -> fmt::Result {
    let me = prec(e);
    let parens = me < parent;
    if parens {
        write!(out, "(")?;
    }
    match e {
        RaExpr::Scan { pred, pattern } => {
            write!(out, "{pred}")?;
            if !pattern.is_empty() {
                write!(out, "(")?;
                for (i, t) in pattern.iter().enumerate() {
                    if i > 0 {
                        write!(out, ", ")?;
                    }
                    write!(out, "{t}")?;
                }
                write!(out, ")")?;
            }
        }
        RaExpr::Single { var, value } => write!(out, "⟨{var}={value}⟩")?,
        RaExpr::Unit => write!(out, "⊤")?,
        RaExpr::Empty { cols } => {
            write!(out, "∅[")?;
            for (i, v) in cols.iter().enumerate() {
                if i > 0 {
                    write!(out, ", ")?;
                }
                write!(out, "{v}")?;
            }
            write!(out, "]")?;
        }
        RaExpr::Join(l, r) => {
            write_expr(out, l, me)?;
            write!(out, " ⋈ ")?;
            write_expr(out, r, me + 1)?;
        }
        RaExpr::Union(l, r) => {
            write_expr(out, l, me)?;
            write!(out, " ∪ ")?;
            write_expr(out, r, me + 1)?;
        }
        RaExpr::Diff(l, r) => {
            write_expr(out, l, me + 1)?;
            write!(out, " diff ")?;
            write_expr(out, r, me + 1)?;
        }
        RaExpr::Project { input, cols } => {
            write!(out, "π[")?;
            for (i, v) in cols.iter().enumerate() {
                if i > 0 {
                    write!(out, ", ")?;
                }
                write!(out, "{v}")?;
            }
            write!(out, "](")?;
            write_expr(out, input, 0)?;
            write!(out, ")")?;
        }
        RaExpr::Select { input, pred } => {
            write!(out, "σ[{pred}](")?;
            write_expr(out, input, 0)?;
            write!(out, ")")?;
        }
        RaExpr::Duplicate { input, src, dst } => {
            write!(out, "dup[{src}→{dst}](")?;
            write_expr(out, input, 0)?;
            write!(out, ")")?;
        }
    }
    if parens {
        write!(out, ")")?;
    }
    Ok(())
}

impl fmt::Display for RaExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(f, self, 0)
    }
}

/// Render an expression as an indented operator tree.
pub fn render_tree(e: &RaExpr) -> String {
    let mut out = String::new();
    fn go(e: &RaExpr, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let label = match e {
            RaExpr::Scan { .. } | RaExpr::Single { .. } | RaExpr::Unit | RaExpr::Empty { .. } => {
                format!("{e}")
            }
            RaExpr::Join(..) => "⋈".to_string(),
            RaExpr::Union(..) => "∪".to_string(),
            RaExpr::Diff(..) => "diff".to_string(),
            RaExpr::Project { cols, .. } => format!(
                "π[{}]",
                cols.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            RaExpr::Select { pred, .. } => format!("σ[{pred}]"),
            RaExpr::Duplicate { src, dst, .. } => format!("dup[{src}→{dst}]"),
        };
        let _ = writeln!(out, "{pad}{label}");
        for c in e.children() {
            go(c, depth + 1, out);
        }
    }
    go(e, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_formula::{Term, Value, Var};

    #[test]
    fn inline_rendering_matches_paper_style() {
        // π[x](P(x, y) ⋈ Q(y)) ∪ R(x)
        let e = RaExpr::union(
            RaExpr::project(
                RaExpr::join(
                    RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]),
                    RaExpr::scan("Q", vec![Term::var("y")]),
                ),
                vec![Var::new("x")],
            ),
            RaExpr::scan("R", vec![Term::var("x")]),
        );
        assert_eq!(e.to_string(), "π[x](P(x, y) ⋈ Q(y)) ∪ R(x)");
    }

    #[test]
    fn diff_binds_tighter_than_union() {
        let e = RaExpr::union(
            RaExpr::diff(
                RaExpr::scan("P", vec![Term::var("x")]),
                RaExpr::scan("Q", vec![Term::var("x")]),
            ),
            RaExpr::scan("R", vec![Term::var("x")]),
        );
        assert_eq!(e.to_string(), "P(x) diff Q(x) ∪ R(x)");
    }

    #[test]
    fn singleton_and_unit_rendering() {
        let s = RaExpr::Single {
            var: Var::new("y"),
            value: Value::str("none"),
        };
        assert_eq!(s.to_string(), "⟨y='none'⟩");
        assert_eq!(RaExpr::Unit.to_string(), "⊤");
    }

    #[test]
    fn tree_rendering_indents() {
        let e = RaExpr::join(
            RaExpr::scan("P", vec![Term::var("x")]),
            RaExpr::scan("Q", vec![Term::var("x")]),
        );
        let t = render_tree(&e);
        assert!(t.starts_with("⋈\n"));
        assert!(t.contains("\n  P(x)\n"));
    }
}
