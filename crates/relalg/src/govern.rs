//! Pipeline-wide resource governance: budgets, cooperative cancellation,
//! and fault injection.
//!
//! The paper's central promise is that unsafety is *reported, not papered
//! over* (Sec. 3, Thm. 9.5). This module extends that discipline from
//! logical safety to *resource* safety: a [`Budget`] carries a wall-clock
//! deadline, a cap on intermediate tuples, a cap on formula/expression
//! blowup, and a cooperative cancellation flag through every pipeline
//! stage (genify → ranf → translate → eval). Exceeding a bound never
//! yields a wrong or truncated relation — the stage that trips returns a
//! structured [`BudgetExceeded`] reporting *which* stage, *which* bound,
//! and *how much* was consumed, and all partial state is discarded.
//!
//! Checks are designed to be cheap enough to leave in production paths
//! (<2% overhead on the kernel benchmarks, measured by `bench_eval`):
//!
//! * an unlimited budget's checkpoint is two relaxed atomic loads;
//! * `Instant::now()` is only consulted when a deadline is actually set;
//! * kernels check every [`CHECK_INTERVAL`] rows, not per row.
//!
//! The [`FaultInjector`] is a test hook threaded through the same budget:
//! it can deny thread spawns (forcing the parallel evaluator onto its
//! sequential fallback) and flip the cancellation flag after a chosen
//! number of checkpoints (forcing mid-kernel unwinding), so the cleanup
//! paths are provable rather than hopeful.
//!
//! The budget also carries the evaluator's execution *policy* knobs that
//! must reach every worker thread: [`Budget::with_partitions`] pins the
//! partition-parallel kernels to a fixed partition count (or, at 1, to the
//! sequential kernels). Policy knobs never change results — the invariant
//! the differential suites enforce is that any budget clone of any policy
//! computes bit-identical relations or the same structured error.
//!
//! **Accounting invariants.** `Governor::ticks` totals are deterministic
//! for a given expression, database, and partition layout (each kernel
//! ticks once per loop iteration, and partition workers split exactly the
//! sequential iteration space for the order-preserving kernels).
//! `budget_checks` depends on the checkpoint *cadence*, which changes with
//! the worker count — so cross-policy comparisons should pin the partition
//! count, while same-policy runs are exactly reproducible.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// How many kernel iterations pass between cooperative budget checks.
/// A power of two so the test compiles to a mask.
pub const CHECK_INTERVAL: usize = 4096;

/// The pipeline stage a resource bound was attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Query-text parsing.
    Parse,
    /// Safety classification (Defs. 5.2/5.3/A.1).
    Classify,
    /// Evaluable → allowed (Alg. 8.1).
    Genify,
    /// Allowed → RANF (Alg. 9.1).
    Ranf,
    /// RANF → relational algebra (Sec. 9.3).
    Translate,
    /// Algebraic simplification of the translated expression.
    Optimize,
    /// Algebra evaluation.
    Eval,
    /// Incremental view maintenance (delta propagation and merge).
    Maintain,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Parse => "parse",
            Stage::Classify => "classify",
            Stage::Genify => "genify",
            Stage::Ranf => "ranf",
            Stage::Translate => "translate",
            Stage::Optimize => "optimize",
            Stage::Eval => "eval",
            Stage::Maintain => "maintain",
        };
        write!(f, "{s}")
    }
}

/// The resource bound that tripped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The wall-clock deadline passed (limits/used in milliseconds).
    WallClock,
    /// Too many intermediate tuples were produced.
    Tuples,
    /// A formula or expression grew past the node cap.
    Nodes,
    /// The evaluation was cooperatively cancelled.
    Cancelled,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Resource::WallClock => "wall-clock deadline",
            Resource::Tuples => "intermediate-tuple budget",
            Resource::Nodes => "node budget",
            Resource::Cancelled => "cancellation",
        };
        write!(f, "{s}")
    }
}

/// A structured report of a tripped resource bound: which stage, which
/// bound, and how much was consumed when it tripped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BudgetExceeded {
    /// The stage that was running when the bound tripped.
    pub stage: Stage,
    /// The bound that tripped.
    pub resource: Resource,
    /// The configured limit (ms for [`Resource::WallClock`], counts
    /// otherwise; 0 for cancellation).
    pub limit: u64,
    /// Consumption observed at the trip point, same unit as `limit`.
    pub used: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resource {
            Resource::Cancelled => write!(f, "{} stage was cancelled", self.stage),
            Resource::WallClock => write!(
                f,
                "{} stage exceeded the {}: {} ms elapsed of {} ms allowed",
                self.stage, self.resource, self.used, self.limit
            ),
            _ => write!(
                f,
                "{} stage exceeded the {}: used {} of {} allowed",
                self.stage, self.resource, self.used, self.limit
            ),
        }
    }
}

impl std::error::Error for BudgetExceeded {}

/// Shared mutable budget state; one allocation per budget, shared by
/// every clone (and therefore every worker thread).
#[derive(Debug, Default)]
struct Shared {
    /// Cumulative intermediate tuples charged by the evaluator.
    tuples: AtomicU64,
    /// Cooperative cancellation flag.
    cancelled: AtomicBool,
}

/// A resource budget threaded through the whole pipeline.
///
/// Cloning is cheap and shares the consumption counters and the
/// cancellation flag, so one budget can govern parallel workers. All
/// limits are optional; [`Budget::default`] is unlimited (checkpoints
/// still honor cancellation).
#[derive(Clone, Debug, Default)]
pub struct Budget {
    start: Option<Instant>,
    wall_limit: Option<Duration>,
    max_tuples: Option<u64>,
    max_nodes: Option<u64>,
    partitions: Option<usize>,
    shared: Arc<Shared>,
    fault: Option<FaultInjector>,
}

impl Budget {
    /// A budget with no limits. Prefer [`Budget::unlimited`] in hot paths —
    /// it returns a shared static and allocates nothing.
    pub fn new() -> Budget {
        Budget::default()
    }

    /// A shared, allocation-free unlimited budget for callers that do not
    /// govern resources.
    pub fn unlimited() -> &'static Budget {
        static UNLIMITED: OnceLock<Budget> = OnceLock::new();
        UNLIMITED.get_or_init(Budget::default)
    }

    /// Arm a wall-clock deadline, measured from this call.
    pub fn with_deadline(mut self, limit: Duration) -> Budget {
        self.start = Some(Instant::now());
        self.wall_limit = Some(limit);
        self
    }

    /// Cap the cumulative intermediate tuples the evaluator may produce.
    pub fn with_max_tuples(mut self, max: u64) -> Budget {
        self.max_tuples = Some(max);
        self
    }

    /// Cap formula/expression size during rewriting and translation.
    pub fn with_max_nodes(mut self, max: u64) -> Budget {
        self.max_nodes = Some(max);
        self
    }

    /// Attach a fault injector (test hook).
    pub fn with_fault_injector(mut self, fault: FaultInjector) -> Budget {
        self.fault = Some(fault);
        self
    }

    /// Override the evaluator's partition count: every partitionable
    /// operator kernel uses exactly `n` partitions instead of the
    /// cardinality/core heuristic
    /// ([`crate::relation::partition_count`]). `1` forces the sequential
    /// kernels (useful for differential tests and machine-independent
    /// accounting); larger values force partitioning even on small inputs
    /// or single-core hosts. Like the fault injector, this is an execution
    /// *policy* riding on the budget — it never changes results, only how
    /// they are computed. Spawn denial still wins: a denied budget runs
    /// sequentially whatever the override says.
    pub fn with_partitions(mut self, n: usize) -> Budget {
        self.partitions = Some(n.max(1));
        self
    }

    /// The configured partition-count override, if any.
    pub fn partition_override(&self) -> Option<usize> {
        self.partitions
    }

    /// The configured node cap, if any.
    pub fn max_nodes(&self) -> Option<u64> {
        self.max_nodes
    }

    /// The configured tuple cap, if any.
    pub fn max_tuples(&self) -> Option<u64> {
        self.max_tuples
    }

    /// Tuples charged so far across all clones of this budget.
    pub fn tuples_used(&self) -> u64 {
        self.shared.tuples.load(Ordering::Relaxed)
    }

    /// A handle that cancels every computation governed by this budget
    /// (or a clone of it). Safe to trigger from another thread.
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Has the budget been cancelled?
    pub fn is_cancelled(&self) -> bool {
        self.shared.cancelled.load(Ordering::Relaxed)
    }

    /// May the evaluator spawn worker threads? `false` only when a fault
    /// injector denies it (the engine then takes its sequential path).
    pub fn spawn_allowed(&self) -> bool {
        self.fault
            .as_ref()
            .is_none_or(|f| !f.state.deny_thread_spawn.load(Ordering::Relaxed))
    }

    /// Cooperative checkpoint: ticks the fault injector, then honors
    /// cancellation and the deadline. Call this at every operator boundary
    /// and every [`CHECK_INTERVAL`] rows inside kernels.
    pub fn checkpoint(&self, stage: Stage) -> Result<(), BudgetExceeded> {
        if let Some(fault) = &self.fault {
            if fault.tick() {
                self.shared.cancelled.store(true, Ordering::Relaxed);
            }
        }
        if self.shared.cancelled.load(Ordering::Relaxed) {
            return Err(BudgetExceeded {
                stage,
                resource: Resource::Cancelled,
                limit: 0,
                used: 0,
            });
        }
        if let (Some(start), Some(limit)) = (self.start, self.wall_limit) {
            let elapsed = start.elapsed();
            if elapsed > limit {
                return Err(BudgetExceeded {
                    stage,
                    resource: Resource::WallClock,
                    limit: limit.as_millis() as u64,
                    used: elapsed.as_millis() as u64,
                });
            }
        }
        Ok(())
    }

    /// Charge `n` produced tuples against the tuple cap. Consumption is
    /// cumulative across the whole evaluation and across worker threads.
    pub fn charge_tuples(&self, stage: Stage, n: u64) -> Result<(), BudgetExceeded> {
        let Some(max) = self.max_tuples else {
            return Ok(());
        };
        let used = self.shared.tuples.fetch_add(n, Ordering::Relaxed) + n;
        if used > max {
            Err(BudgetExceeded {
                stage,
                resource: Resource::Tuples,
                limit: max,
                used,
            })
        } else {
            Ok(())
        }
    }

    /// Like [`Budget::charge_tuples`] for `extra` tuples a kernel has
    /// built but not yet charged — trips mid-kernel without double-charging
    /// the counter (the operator boundary performs the real charge).
    pub fn probe_tuples(&self, stage: Stage, extra: u64) -> Result<(), BudgetExceeded> {
        let Some(max) = self.max_tuples else {
            return Ok(());
        };
        let used = self.shared.tuples.load(Ordering::Relaxed) + extra;
        if used > max {
            Err(BudgetExceeded {
                stage,
                resource: Resource::Tuples,
                limit: max,
                used,
            })
        } else {
            Ok(())
        }
    }

    /// Check a formula/expression size against the node cap (not
    /// cumulative: rewriting replaces formulas rather than appending).
    pub fn check_nodes(&self, stage: Stage, nodes: u64) -> Result<(), BudgetExceeded> {
        let Some(max) = self.max_nodes else {
            return Ok(());
        };
        if nodes > max {
            Err(BudgetExceeded {
                stage,
                resource: Resource::Nodes,
                limit: max,
                used: nodes,
            })
        } else {
            Ok(())
        }
    }
}

/// In-kernel cooperative governor: every [`CHECK_INTERVAL`] `tick`s, runs
/// a budget checkpoint and probes the rows built so far against the tuple
/// cap. Kernels thread one of these through their loops so a single huge
/// operator trips mid-build instead of after materializing everything.
pub struct Governor<'a> {
    budget: &'a Budget,
    stage: Stage,
    checks: u64,
    ticks: usize,
}

impl<'a> Governor<'a> {
    /// A governor charging against `budget`, attributing trips to `stage`.
    pub fn new(budget: &'a Budget, stage: Stage) -> Governor<'a> {
        Governor {
            budget,
            stage,
            checks: 0,
            ticks: 0,
        }
    }

    /// One loop iteration passed with `built_rows` output rows so far;
    /// every [`CHECK_INTERVAL`] calls this runs a checkpoint + tuple probe.
    #[inline]
    pub fn tick(&mut self, built_rows: usize) -> Result<(), BudgetExceeded> {
        self.ticks += 1;
        if self.ticks & (CHECK_INTERVAL - 1) == 0 {
            self.checks += 1;
            self.budget.checkpoint(self.stage)?;
            self.budget.probe_tuples(self.stage, built_rows as u64)?;
        }
        Ok(())
    }

    /// How many full checkpoints this governor has run (deterministic for
    /// a given loop shape; folded into evaluation stats).
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// How many loop iterations this governor has observed — the kernel
    /// row count the tracing layer reports per operator. The governor is
    /// the shared operator-boundary hook: budgets consume its checkpoints,
    /// traces consume its tick count, and both stay deterministic for a
    /// given expression and database.
    pub fn ticks(&self) -> usize {
        self.ticks
    }
}

/// Cancels the computations governed by a [`Budget`]; obtained from
/// [`Budget::cancel_handle`] and safe to use from any thread.
#[derive(Clone, Debug)]
pub struct CancelHandle {
    shared: Arc<Shared>,
}

impl CancelHandle {
    /// Flip the cancellation flag: every governed loop unwinds at its next
    /// checkpoint with [`Resource::Cancelled`].
    pub fn cancel(&self) {
        self.shared.cancelled.store(true, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct FaultState {
    deny_thread_spawn: AtomicBool,
    /// Checkpoints remaining until a forced cancellation; armed while
    /// `cancel_armed` is true.
    cancel_after: AtomicU64,
    cancel_armed: AtomicBool,
}

impl Default for FaultState {
    fn default() -> Self {
        FaultState {
            deny_thread_spawn: AtomicBool::new(false),
            cancel_after: AtomicU64::new(u64::MAX),
            cancel_armed: AtomicBool::new(false),
        }
    }
}

/// Test hook for forcing the engine's degraded paths: thread-spawn denial
/// (sequential fallback) and mid-kernel cancellation. Attach with
/// [`Budget::with_fault_injector`]; clones share state.
#[derive(Clone, Debug, Default)]
pub struct FaultInjector {
    state: Arc<FaultState>,
}

impl FaultInjector {
    /// A fresh injector with no faults armed.
    pub fn new() -> FaultInjector {
        FaultInjector::default()
    }

    /// Deny (or re-allow) evaluator thread spawns; the parallel evaluator
    /// must fall back to its sequential path and produce identical output.
    pub fn deny_thread_spawn(&self, deny: bool) {
        self.state.deny_thread_spawn.store(deny, Ordering::Relaxed);
    }

    /// Arm a forced cancellation that fires after `n` further budget
    /// checkpoints (0 = at the very next checkpoint).
    pub fn cancel_after_checkpoints(&self, n: u64) {
        self.state.cancel_after.store(n, Ordering::Relaxed);
        self.state.cancel_armed.store(true, Ordering::Relaxed);
    }

    /// One checkpoint passed; returns `true` when the armed cancellation
    /// should fire now (and disarms itself).
    fn tick(&self) -> bool {
        if !self.state.cancel_armed.load(Ordering::Relaxed) {
            return false;
        }
        let prev = self.state.cancel_after.fetch_sub(1, Ordering::Relaxed);
        if prev == 0 {
            // `n` checkpoints have already passed: fire now and disarm.
            self.state.cancel_armed.store(false, Ordering::Relaxed);
            self.state.cancel_after.store(u64::MAX, Ordering::Relaxed);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = Budget::unlimited();
        assert!(b.checkpoint(Stage::Eval).is_ok());
        assert!(b.charge_tuples(Stage::Eval, u64::MAX / 2).is_ok());
        assert!(b.check_nodes(Stage::Ranf, u64::MAX).is_ok());
        assert!(b.spawn_allowed());
    }

    #[test]
    fn tuple_budget_trips_with_attribution() {
        let b = Budget::new().with_max_tuples(10);
        assert!(b.charge_tuples(Stage::Eval, 10).is_ok());
        let err = b.charge_tuples(Stage::Eval, 1).unwrap_err();
        assert_eq!(err.stage, Stage::Eval);
        assert_eq!(err.resource, Resource::Tuples);
        assert_eq!(err.limit, 10);
        assert_eq!(err.used, 11);
        assert_eq!(b.tuples_used(), 11);
    }

    #[test]
    fn probe_does_not_charge() {
        let b = Budget::new().with_max_tuples(10);
        b.charge_tuples(Stage::Eval, 6).unwrap();
        assert!(b.probe_tuples(Stage::Eval, 4).is_ok());
        assert!(b.probe_tuples(Stage::Eval, 5).is_err());
        assert_eq!(b.tuples_used(), 6, "probe must not consume");
    }

    #[test]
    fn node_budget_is_not_cumulative() {
        let b = Budget::new().with_max_nodes(100);
        assert!(b.check_nodes(Stage::Genify, 100).is_ok());
        assert!(b.check_nodes(Stage::Genify, 100).is_ok());
        let err = b.check_nodes(Stage::Ranf, 101).unwrap_err();
        assert_eq!(err.stage, Stage::Ranf);
        assert_eq!(err.resource, Resource::Nodes);
    }

    #[test]
    fn expired_deadline_trips_wall_clock() {
        let b = Budget::new().with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        let err = b.checkpoint(Stage::Translate).unwrap_err();
        assert_eq!(err.stage, Stage::Translate);
        assert_eq!(err.resource, Resource::WallClock);
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let b = Budget::new();
        let clone = b.clone();
        assert!(clone.checkpoint(Stage::Eval).is_ok());
        b.cancel_handle().cancel();
        let err = clone.checkpoint(Stage::Eval).unwrap_err();
        assert_eq!(err.resource, Resource::Cancelled);
        assert!(b.is_cancelled());
    }

    #[test]
    fn fault_injector_denies_spawn_and_cancels_after_n_checkpoints() {
        let fault = FaultInjector::new();
        let b = Budget::new().with_fault_injector(fault.clone());
        assert!(b.spawn_allowed());
        fault.deny_thread_spawn(true);
        assert!(!b.spawn_allowed());
        fault.deny_thread_spawn(false);
        assert!(b.spawn_allowed());

        fault.cancel_after_checkpoints(2);
        assert!(b.checkpoint(Stage::Eval).is_ok());
        assert!(b.checkpoint(Stage::Eval).is_ok());
        let err = b.checkpoint(Stage::Eval).unwrap_err();
        assert_eq!(err.resource, Resource::Cancelled);
    }

    #[test]
    fn partition_override_is_clamped_and_shared_by_clones() {
        assert_eq!(Budget::new().partition_override(), None);
        let b = Budget::new().with_partitions(4);
        assert_eq!(b.partition_override(), Some(4));
        assert_eq!(b.clone().partition_override(), Some(4));
        // 0 would mean "no partitions at all"; clamp to the sequential 1.
        assert_eq!(
            Budget::new().with_partitions(0).partition_override(),
            Some(1)
        );
    }

    #[test]
    fn budget_exceeded_displays_stage_bound_and_consumption() {
        let e = BudgetExceeded {
            stage: Stage::Eval,
            resource: Resource::Tuples,
            limit: 100,
            used: 105,
        };
        assert_eq!(
            e.to_string(),
            "eval stage exceeded the intermediate-tuple budget: used 105 of 100 allowed"
        );
    }
}
