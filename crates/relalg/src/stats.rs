//! Per-database statistics and the cardinality/cost estimator behind the
//! cost-based optimizer ([`crate::optimize::optimize`]).
//!
//! Three layers:
//!
//! * [`TableStats`] — row count and per-column distinct counts of one
//!   stored relation, computed lazily by
//!   [`Database::table_stats`](crate::database::Database::table_stats) and
//!   cached until the next mutation. The cache rides the same
//!   invalidation as the partition cache: every mutating method swaps in a
//!   fresh store, so stale statistics are unreachable by construction.
//! * [`Estimator`] — a cardinality estimate ([`CardEst`]: rows plus
//!   per-column distinct counts) for every [`RaExpr`] operator, and a cost
//!   model on top of it. Joins use the textbook *containment* assumption
//!   (divide the cross product by the largest distinct count per shared
//!   column), selections use `1/distinct` selectivities, projections are
//!   bounded by the product of the kept columns' distinct counts (the
//!   dedup bound that makes early projection worth cost-gating). The cost
//!   constants are nanoseconds-per-row figures calibrated against the
//!   kernel timings recorded in `BENCH_eval.json` (see [`cost`] docs).
//! * the **feedback store** — actual cardinalities harvested from
//!   completed [`OpSpan`] trees by [`harvest_actuals`], keyed by the
//!   subplan's structural [`plan_hash`]. When the estimator visits a node
//!   whose hash has an observation, the observed row count overrides the
//!   estimate, so repeated queries re-plan with observed truth. Every
//!   *changed* observation bumps the database's **stats epoch**
//!   ([`Database::stats_epoch`](crate::database::Database::stats_epoch)),
//!   which the cached serving path mixes into its plan key — a re-planned
//!   query can never be served a plan compiled under stale statistics,
//!   and an unchanged observation leaves the epoch (and therefore the
//!   plan cache) alone.
//!
//! Estimates are heuristics; correctness never depends on them. The
//! optimizer only uses them to *choose among semantically equal plans*
//! (the differential property suite in `tests/prop_optimizer.rs` pins
//! result identity), so a wildly wrong estimate costs time, not answers.
//!
//! [`cost`]: Estimator::cost

use crate::database::Database;
use crate::expr::{RaExpr, SelPred};
use crate::plan::plan_hash;
use crate::relation::Relation;
use crate::trace::OpSpan;
use rc_formula::fxhash::{FxHashMap, FxHashSet};
use rc_formula::{Symbol, Term, Value, Var};
use std::sync::Arc;

/// Statistics of one stored relation: row count and per-column distinct
/// counts. Computed in one pass over the relation and cached per database
/// (see [`Database::table_stats`](crate::database::Database::table_stats)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableStats {
    /// Number of stored rows.
    pub rows: u64,
    /// Distinct values per column, in column order.
    pub distinct: Vec<u64>,
}

impl TableStats {
    /// Compute statistics for a relation (one pass, one hash set per
    /// column).
    pub fn of(rel: &Relation) -> TableStats {
        let mut sets: Vec<FxHashSet<Value>> =
            (0..rel.arity()).map(|_| FxHashSet::default()).collect();
        for row in rel.iter() {
            for (i, v) in row.iter().enumerate() {
                sets[i].insert(*v);
            }
        }
        TableStats {
            rows: rel.len() as u64,
            distinct: sets.into_iter().map(|s| s.len() as u64).collect(),
        }
    }

    /// The selectivity of an equality predicate on column `col`: `1 /
    /// distinct`, the uniform-distribution assumption. Returns 1.0 for an
    /// out-of-range column or an empty relation.
    pub fn selectivity(&self, col: usize) -> f64 {
        match self.distinct.get(col) {
            Some(&d) if d > 0 => 1.0 / d as f64,
            _ => 1.0,
        }
    }

    /// True when `col` is key-like: every stored row has a distinct value.
    pub fn is_key(&self, col: usize) -> bool {
        self.rows > 0 && self.distinct.get(col) == Some(&self.rows)
    }
}

/// Per-database statistics store: lazily computed [`TableStats`], the
/// harvested-cardinality feedback map, and the stats epoch. Lives behind
/// `Arc<Mutex<…>>` in [`Database`] exactly like the partition cache:
/// clones share the store until either side mutates.
#[derive(Debug, Default)]
pub(crate) struct StatsStore {
    /// The stats epoch: 0 until first asked for, then a process-globally
    /// fresh stamp; re-stamped whenever an observation *changes*.
    pub(crate) epoch: u64,
    /// Lazily computed per-relation statistics.
    pub(crate) tables: FxHashMap<Symbol, Arc<TableStats>>,
    /// Observed cardinalities from traced runs, keyed by subplan
    /// [`plan_hash`].
    pub(crate) observed: FxHashMap<u64, u64>,
}

/// A cardinality estimate for one plan node: estimated rows plus
/// per-column distinct estimates (the join/projection rules need both).
#[derive(Clone, Debug)]
pub struct CardEst {
    /// Estimated output rows.
    pub rows: f64,
    cols: Vec<Var>,
    distinct: Vec<f64>,
}

impl CardEst {
    fn new(cols: Vec<Var>, rows: f64, distinct: Vec<f64>) -> CardEst {
        let mut e = CardEst {
            rows,
            cols,
            distinct,
        };
        e.clamp();
        e
    }

    fn empty(cols: Vec<Var>) -> CardEst {
        let n = cols.len();
        CardEst {
            rows: 0.0,
            cols,
            distinct: vec![0.0; n],
        }
    }

    /// The columns this estimate describes, in output order.
    pub fn cols(&self) -> &[Var] {
        &self.cols
    }

    /// Estimated distinct values in column `v` (the estimated row count
    /// when the column is unknown — i.e. unconstrained).
    pub fn distinct_of(&self, v: Var) -> f64 {
        self.cols
            .iter()
            .position(|c| *c == v)
            .map(|i| self.distinct[i])
            .unwrap_or(self.rows.max(1.0))
    }

    /// Restore the invariants `1 ≤ distinct ≤ rows` (or 0 when empty).
    fn clamp(&mut self) {
        if !self.rows.is_finite() || self.rows < 0.0 {
            self.rows = 0.0;
        }
        for d in &mut self.distinct {
            *d = if self.rows < 1.0 {
                0.0
            } else {
                d.min(self.rows).max(1.0)
            };
        }
    }

    fn with_rows(mut self, rows: f64) -> CardEst {
        self.rows = rows;
        self.clamp();
        self
    }
}

// Cost-model constants: estimated nanoseconds per row, calibrated against
// the per-operator kernel medians in `BENCH_eval.json` (join ≈ 60 ns per
// input+output row at 2k–50k rows, diff/union ≈ 7–10 ns, projection
// rebuild ≈ 12–19 ns, scans amortize to well under 1 ns). Only the ratios
// matter: the planner compares plans, it never predicts wall time.
const SCAN_NS: f64 = 0.3;
const JOIN_NS: f64 = 60.0;
const DIFF_NS: f64 = 10.0;
const UNION_NS: f64 = 10.0;
const SELECT_NS: f64 = 5.0;
const PROJECT_NS: f64 = 20.0;
const DUP_NS: f64 = 20.0;

/// Cardinality/cost estimator over one database's statistics (plus its
/// harvested-cardinality feedback). Cheap to construct; borrows the
/// database.
pub struct Estimator<'a> {
    db: &'a Database,
}

impl<'a> Estimator<'a> {
    /// An estimator over `db`'s statistics and feedback store.
    pub fn new(db: &'a Database) -> Estimator<'a> {
        Estimator { db }
    }

    /// Estimate the cardinality of `e` (rows and per-column distincts).
    /// Nodes with a harvested observation return the observed row count.
    pub fn estimate(&self, e: &RaExpr) -> CardEst {
        self.cost_and_estimate(e).1
    }

    /// Estimated output rows of `e`, rounded.
    pub fn rows(&self, e: &RaExpr) -> u64 {
        self.estimate(e).rows.round() as u64
    }

    /// Estimated total cost of evaluating `e`, in (calibrated) nanoseconds.
    /// The value is only meaningful *relative to other plans over the same
    /// database*: the optimizer applies a rewrite iff the estimated cost
    /// strictly drops.
    pub fn cost(&self, e: &RaExpr) -> f64 {
        self.cost_and_estimate(e).0
    }

    /// One recursive pass computing both the total cost and the root
    /// cardinality estimate.
    pub fn cost_and_estimate(&self, e: &RaExpr) -> (f64, CardEst) {
        let (cost, est) = match e {
            RaExpr::Scan { pred, pattern } => {
                let est = self.scan_estimate(*pred, pattern, e.cols());
                let base = self
                    .db
                    .table_stats(*pred)
                    .map(|t| t.rows as f64)
                    .unwrap_or(0.0);
                (SCAN_NS * base + 1.0, est)
            }
            RaExpr::Single { var, .. } => (1.0, CardEst::new(vec![*var], 1.0, vec![1.0])),
            RaExpr::Unit => (1.0, CardEst::new(Vec::new(), 1.0, Vec::new())),
            RaExpr::Empty { cols } => (1.0, CardEst::empty(cols.clone())),
            RaExpr::Join(l, r) => {
                let (cl, el) = self.cost_and_estimate(l);
                let (cr, er) = self.cost_and_estimate(r);
                let est = self.join_cardinality(&el, &er);
                let cost = cl + cr + Self::join_step_cost(&el, &er, &est);
                (cost, est)
            }
            RaExpr::Union(l, r) => {
                let (cl, el) = self.cost_and_estimate(l);
                let (cr, er) = self.cost_and_estimate(r);
                let cols = el.cols.clone();
                let rows = el.rows + er.rows;
                let distinct = cols
                    .iter()
                    .map(|v| el.distinct_of(*v) + er.distinct_of(*v))
                    .collect();
                let cost = cl + cr + UNION_NS * (el.rows + er.rows);
                (cost, CardEst::new(cols, rows, distinct))
            }
            RaExpr::Diff(l, r) => {
                let (cl, el) = self.cost_and_estimate(l);
                let (cr, er) = self.cost_and_estimate(r);
                // Anti-join: of the key domain (product of per-key-column
                // distinct maxima), `r` covers at most `min(r.rows,
                // domain)`; survivors are the uncovered fraction of `l`,
                // floored at 5% so a "fully covered" guess cannot zero out
                // everything above it.
                let mut domain = 1.0f64;
                for v in er.cols() {
                    domain *= el.distinct_of(*v).max(er.distinct_of(*v)).max(1.0);
                }
                let covered = if domain > 0.0 {
                    (er.rows.min(domain) / domain).min(1.0)
                } else {
                    0.0
                };
                let rows = (el.rows * (1.0 - covered)).max(el.rows * 0.05);
                let cost = cl + cr + DIFF_NS * (el.rows + er.rows);
                (cost, el.with_rows(rows))
            }
            RaExpr::Project { input, cols } => {
                let (ci, ei) = self.cost_and_estimate(input);
                // Set semantics: output rows are bounded by the product of
                // the kept columns' distinct counts (the dedup bound).
                let mut bound = 1.0f64;
                for v in cols {
                    bound = (bound * ei.distinct_of(*v)).min(1e18);
                }
                if cols.is_empty() {
                    bound = 1.0;
                }
                let rows = ei.rows.min(bound);
                let distinct = cols.iter().map(|v| ei.distinct_of(*v)).collect();
                let cost = ci + PROJECT_NS * ei.rows;
                (cost, CardEst::new(cols.clone(), rows, distinct))
            }
            RaExpr::Select { input, pred } => {
                let (ci, ei) = self.cost_and_estimate(input);
                let cost = ci + SELECT_NS * ei.rows;
                (cost, Self::select_estimate(ei, *pred))
            }
            RaExpr::Duplicate { input, src, dst } => {
                let (ci, ei) = self.cost_and_estimate(input);
                let mut cols = ei.cols.clone();
                cols.push(*dst);
                let mut distinct = ei.distinct.clone();
                distinct.push(ei.distinct_of(*src));
                let rows = ei.rows;
                (ci + DUP_NS * ei.rows, CardEst::new(cols, rows, distinct))
            }
        };
        // Feedback override: an observed actual beats any estimate.
        if let Some(actual) = self.db.observed_rows(plan_hash(e)) {
            return (cost, est.with_rows(actual as f64));
        }
        (cost, est)
    }

    /// The containment-assumption join estimate over two child estimates:
    /// cross product divided, per shared column, by the larger distinct
    /// count. Public so the join-reordering DP can combine estimates
    /// without re-walking subtrees.
    pub fn join_cardinality(&self, l: &CardEst, r: &CardEst) -> CardEst {
        let mut cols = l.cols.clone();
        for v in &r.cols {
            if !cols.contains(v) {
                cols.push(*v);
            }
        }
        let mut denom = 1.0f64;
        for v in &r.cols {
            if l.cols.contains(v) {
                denom *= l.distinct_of(*v).max(r.distinct_of(*v)).max(1.0);
            }
        }
        let rows = l.rows * r.rows / denom;
        let distinct = cols
            .iter()
            .map(|v| {
                let in_l = l.cols.contains(v);
                let in_r = r.cols.contains(v);
                match (in_l, in_r) {
                    (true, true) => l.distinct_of(*v).min(r.distinct_of(*v)),
                    (true, false) => l.distinct_of(*v),
                    _ => r.distinct_of(*v),
                }
            })
            .collect();
        CardEst::new(cols, rows, distinct)
    }

    /// The local (non-recursive) cost of one hash-join step given the
    /// operand and output estimates. Public for the same reason as
    /// [`Estimator::join_cardinality`].
    pub fn join_step_cost(l: &CardEst, r: &CardEst, out: &CardEst) -> f64 {
        JOIN_NS * (l.rows + r.rows + out.rows)
    }

    fn scan_estimate(&self, pred: Symbol, pattern: &[Term], out_cols: Vec<Var>) -> CardEst {
        let ts = match self.db.table_stats(pred) {
            Some(ts) => ts,
            None => return CardEst::empty(out_cols),
        };
        let d = |i: usize| ts.distinct.get(i).copied().unwrap_or(1).max(1) as f64;
        let mut rows = ts.rows as f64;
        let mut first: Vec<(Var, usize)> = Vec::new();
        for (i, t) in pattern.iter().enumerate() {
            match t {
                // A constant in the pattern is an implicit equality
                // selection: keep 1/distinct of the rows.
                Term::Const(_) => rows /= d(i),
                Term::Var(v) => match first.iter().find(|(w, _)| w == v) {
                    // A repeated variable is an implicit column-equality
                    // selection under the containment assumption.
                    Some(&(_, j)) => rows /= d(i).max(d(j)),
                    None => first.push((*v, i)),
                },
            }
        }
        let distinct = out_cols
            .iter()
            .map(|v| {
                first
                    .iter()
                    .find(|(w, _)| w == v)
                    .map(|&(_, i)| d(i))
                    .unwrap_or(1.0)
            })
            .collect();
        CardEst::new(out_cols, rows, distinct)
    }

    fn select_estimate(mut input: CardEst, pred: SelPred) -> CardEst {
        match pred {
            SelPred::EqConst(v, _) => {
                let d = input.distinct_of(v).max(1.0);
                let rows = input.rows / d;
                if let Some(i) = input.cols.iter().position(|c| *c == v) {
                    input.distinct[i] = 1.0;
                }
                input.with_rows(rows)
            }
            SelPred::NeqConst(v, _) => {
                let d = input.distinct_of(v).max(1.0);
                let rows = input.rows * (1.0 - 1.0 / d);
                input.with_rows(rows)
            }
            SelPred::EqCols(a, b) => {
                let (da, db) = (input.distinct_of(a), input.distinct_of(b));
                let rows = input.rows / da.max(db).max(1.0);
                let merged = da.min(db);
                for (i, c) in input.cols.iter().enumerate() {
                    if *c == a || *c == b {
                        input.distinct[i] = merged;
                    }
                }
                input.with_rows(rows)
            }
            SelPred::NeqCols(a, b) => {
                let d = input.distinct_of(a).max(input.distinct_of(b)).max(1.0);
                let rows = input.rows * (1.0 - 1.0 / d);
                input.with_rows(rows)
            }
        }
    }
}

/// Harvest actual cardinalities out of a completed operator-span tree into
/// `db`'s feedback store: the span tree mirrors the plan shape (children
/// zip by index; memoized subplans appear as childless `cache_hit` leaves,
/// which still carry the correct output cardinality), so each *completed*
/// span records its `rows_out` under the matching subexpression's
/// [`plan_hash`]. Incomplete spans (a budget trip mid-plan) are skipped but
/// their completed children still contribute. Returns how many
/// observations *changed* — any change bumps the stats epoch, so callers
/// (and the plan cache) can tell whether re-planning is worthwhile.
pub fn harvest_actuals(expr: &RaExpr, span: Option<&OpSpan>, db: &Database) -> usize {
    let span = match span {
        Some(s) => s,
        None => return 0,
    };
    let mut changed = 0;
    if span.completed && db.record_observed(plan_hash(expr), span.rows_out as u64) {
        changed += 1;
    }
    let spans = span.children.as_slice();
    for (i, c) in expr.children().into_iter().enumerate() {
        changed += harvest_actuals(c, spans.get(i), db);
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_formula::Term;

    fn db() -> Database {
        // P: 4 rows, x distinct 4 (key-like), y distinct 2.
        // Q: 2 rows over y.
        Database::from_facts("P(1, 10)\nP(2, 10)\nP(3, 20)\nP(4, 20)\nQ(10)\nQ(99)").unwrap()
    }

    #[test]
    fn table_stats_count_rows_and_distincts() {
        let db = db();
        let ts = db.table_stats(Symbol::intern("P")).unwrap();
        assert_eq!(ts.rows, 4);
        assert_eq!(ts.distinct, vec![4, 2]);
        assert!(ts.is_key(0));
        assert!(!ts.is_key(1));
        assert_eq!(ts.selectivity(0), 0.25);
        assert_eq!(ts.selectivity(1), 0.5);
    }

    #[test]
    fn table_stats_are_cached_until_mutation() {
        let mut db = db();
        let p = Symbol::intern("P");
        let a = db.table_stats(p).unwrap();
        let b = db.table_stats(p).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second request must hit the cache");
        db.insert_fact("P", crate::relation::tuple([9i64, 30]))
            .unwrap();
        let c = db.table_stats(p).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.rows, 5);
        assert_eq!(c.distinct, vec![5, 3]);
    }

    #[test]
    fn scan_estimates_apply_implicit_selections() {
        let db = db();
        let est = Estimator::new(&db);
        let plain = RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]);
        assert_eq!(est.rows(&plain), 4);
        // Constant in column y: 4 / distinct(y) = 2.
        let constant = RaExpr::scan("P", vec![Term::var("x"), Term::val(10)]);
        assert_eq!(est.rows(&constant), 2);
        // Repeated variable: 4 / max(4, 2) = 1.
        let repeated = RaExpr::scan("P", vec![Term::var("x"), Term::var("x")]);
        assert_eq!(est.rows(&repeated), 1);
        // Unknown predicate: empty.
        assert_eq!(est.rows(&RaExpr::scan("Zzz", vec![Term::var("x")])), 0);
    }

    #[test]
    fn join_uses_containment_assumption() {
        let db = db();
        let est = Estimator::new(&db);
        let p = RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]);
        let q = RaExpr::scan("Q", vec![Term::var("y")]);
        // 4 * 2 / max(d_y(P)=2, d_y(Q)=2) = 4.
        assert_eq!(est.rows(&RaExpr::join(p.clone(), q.clone())), 4);
        // Cross join (no shared column): 4 * 2 = 8.
        let z = RaExpr::scan("Q", vec![Term::var("z")]);
        assert_eq!(est.rows(&RaExpr::join(p.clone(), z.clone())), 8);
        // Cost orders the selective equijoin-first tree below the
        // cross-product-first tree: the cross product inflates the
        // intermediate the second join then has to consume.
        let good_first = RaExpr::join(RaExpr::join(p.clone(), q.clone()), z.clone());
        let cross_first = RaExpr::join(RaExpr::join(p, z), q);
        assert!(est.cost(&good_first) < est.cost(&cross_first));
    }

    #[test]
    fn select_project_and_diff_rules() {
        let db = db();
        let est = Estimator::new(&db);
        let p = RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]);
        // σ[y = c]: 4 / d_y = 2.
        let sel = RaExpr::select(p.clone(), SelPred::EqConst(Var::new("y"), Value::int(10)));
        assert_eq!(est.rows(&sel), 2);
        // π[y]: bounded by distinct(y) = 2, not rows = 4.
        let proj = RaExpr::project(p.clone(), vec![Var::new("y")]);
        assert_eq!(est.rows(&proj), 2);
        // Diff keeps a subset of the left side.
        let d = RaExpr::diff(p.clone(), RaExpr::scan("Q", vec![Term::var("y")]));
        assert!(est.rows(&d) <= est.rows(&p));
    }

    #[test]
    fn feedback_overrides_estimates_and_bumps_epoch() {
        let db = db();
        let est = Estimator::new(&db);
        let p = RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]);
        assert_eq!(est.rows(&p), 4);
        let epoch0 = db.stats_epoch();
        // Record an observed cardinality for exactly this subplan.
        assert!(db.record_observed(plan_hash(&p), 17));
        assert_ne!(db.stats_epoch(), epoch0, "changed observation bumps epoch");
        assert_eq!(Estimator::new(&db).rows(&p), 17);
        // Re-recording the same value changes nothing.
        let epoch1 = db.stats_epoch();
        assert!(!db.record_observed(plan_hash(&p), 17));
        assert_eq!(db.stats_epoch(), epoch1);
        // A data mutation keeps the feedback map and the epoch (plans are
        // data-independent; only table statistics are dropped), so cached
        // plans survive mutations.
        let mut db = db;
        db.load_facts("P(9, 30)").unwrap();
        assert_eq!(db.observed_rows(plan_hash(&p)), Some(17));
        assert_eq!(db.stats_epoch(), epoch1);
        // An explicit clear drops everything and moves the epoch.
        db.clear_stats();
        assert_eq!(db.observed_rows(plan_hash(&p)), None);
        assert_ne!(db.stats_epoch(), epoch1);
    }

    #[test]
    fn harvest_reads_completed_spans() {
        use crate::eval::{eval_traced, EvalStats};
        use crate::govern::Budget;
        use crate::trace::Tracer;
        let db = db();
        let e = RaExpr::join(
            RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]),
            RaExpr::scan("Q", vec![Term::var("y")]),
        );
        let mut stats = EvalStats::default();
        let mut tracer = Tracer::on();
        let out = eval_traced(&e, &db, &mut stats, Budget::unlimited(), &mut tracer).unwrap();
        let root = tracer.finish().unwrap();
        let changed = harvest_actuals(&e, Some(&root), &db);
        assert!(changed >= 3, "join + two scans should all record");
        assert_eq!(db.observed_rows(plan_hash(&e)), Some(out.len() as u64));
        // The estimator now reports the truth at the root.
        assert_eq!(Estimator::new(&db).rows(&e), out.len() as u64);
        // A second harvest of the same run changes nothing.
        assert_eq!(harvest_actuals(&e, Some(&root), &db), 0);
    }
}
