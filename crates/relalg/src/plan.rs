//! Plan identity: hash-consing [`RaExpr`] trees into DAGs.
//!
//! The genify/RANF pipeline routinely emits the *same* scan/join/diff
//! subplan several times — Algorithm 8.1 duplicates conjuncts as
//! generators, and the RANF rewrite copies range subformulas into every
//! union branch. [`intern`] folds those duplicates together: it rebuilds an
//! expression bottom-up through a structural table so that equal subtrees
//! become the *same* [`Arc`] allocation. The result prints, compares, and
//! evaluates exactly like the input tree, but
//!
//! * physically shared nodes make [`Arc::ptr_eq`] a sound (and complete,
//!   within one interner) structural-equality test, which the memoizing
//!   evaluator ([`crate::eval::eval_shared`]) exploits to compute each
//!   distinct subplan once per run;
//! * [`InternStats`] quantifies the sharing, and is surfaced through the
//!   pipeline trace so `explain` can report how much of a plan is reused.
//!
//! Interning runs in O(tree size): children are interned before their
//! parent, so the table can key each interior node on its children's
//! *addresses* (pointer identity ⇔ structural identity for interned nodes)
//! instead of re-hashing whole subtrees.
//!
//! [`plan_hash`] complements this with a structural fingerprint used by the
//! cross-run [`crate::cache::PlanCache`]. The hash is deterministic within
//! a process but **not** a stable on-disk identity: [`rc_formula::Symbol`]
//! hashes by interner index, which depends on interning order.
//!
//! Execution policy is deliberately *excluded* from plan identity: a
//! forced partition count ([`crate::Budget::with_partitions`]) changes how
//! kernels split their data, never the relation they produce, so plans
//! evaluated under different partition policies share one hash — a cached
//! result computed sequentially is bit-identical to a partitioned re-run
//! (the invisibility contract pinned by `tests/prop_engine.rs`).

use crate::expr::{RaExpr, SelPred};
use rc_formula::fxhash::{FxHashMap, FxHasher};
use rc_formula::Var;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Sharing report from [`intern`] / [`Interner::intern`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct InternStats {
    /// Operator nodes in the input *tree* (duplicates counted repeatedly).
    pub tree_nodes: usize,
    /// Nodes newly added to the interner's table by this call — for a fresh
    /// interner, the number of structurally distinct subplans.
    pub unique_nodes: usize,
}

impl InternStats {
    /// Node visits that resolved to an already-interned subplan — the
    /// evaluation work a memoizing evaluator saves on this plan (plus, for
    /// a long-lived [`Interner`], sharing against previously seen plans).
    pub fn shared_nodes(&self) -> usize {
        self.tree_nodes - self.unique_nodes
    }
}

/// Shallow identity of a node whose children are already interned: interior
/// nodes key on child *addresses*, leaves on their (small) contents.
#[derive(PartialEq, Eq, Hash)]
enum Key {
    Leaf(RaExpr),
    Join(usize, usize),
    Union(usize, usize),
    Diff(usize, usize),
    Project(usize, Vec<Var>),
    Select(usize, SelPred),
    Duplicate(usize, Var, Var),
}

fn addr(a: &Arc<RaExpr>) -> usize {
    Arc::as_ptr(a) as usize
}

/// A hash-consing table. Reuse one interner across plans to share subtrees
/// *between* queries (e.g. a server loop interning every compiled plan);
/// use [`intern`] for one-shot interning of a single expression.
#[derive(Default)]
pub struct Interner {
    table: FxHashMap<Key, Arc<RaExpr>>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Number of distinct subplans interned so far.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Intern an expression: returns a structurally equal DAG whose
    /// duplicate subtrees are physically shared (with each other and with
    /// everything previously interned through this table).
    pub fn intern(&mut self, e: &RaExpr) -> (Arc<RaExpr>, InternStats) {
        let mut stats = InternStats::default();
        let root = self.go(e, &mut stats);
        (root, stats)
    }

    fn go(&mut self, e: &RaExpr, stats: &mut InternStats) -> Arc<RaExpr> {
        stats.tree_nodes += 1;
        let (key, node) = match e {
            RaExpr::Scan { .. } | RaExpr::Single { .. } | RaExpr::Unit | RaExpr::Empty { .. } => {
                (Key::Leaf(e.clone()), e.clone())
            }
            RaExpr::Join(l, r) => {
                let l = self.go(l, stats);
                let r = self.go(r, stats);
                (Key::Join(addr(&l), addr(&r)), RaExpr::Join(l, r))
            }
            RaExpr::Union(l, r) => {
                let l = self.go(l, stats);
                let r = self.go(r, stats);
                (Key::Union(addr(&l), addr(&r)), RaExpr::Union(l, r))
            }
            RaExpr::Diff(l, r) => {
                let l = self.go(l, stats);
                let r = self.go(r, stats);
                (Key::Diff(addr(&l), addr(&r)), RaExpr::Diff(l, r))
            }
            RaExpr::Project { input, cols } => {
                let input = self.go(input, stats);
                (
                    Key::Project(addr(&input), cols.clone()),
                    RaExpr::Project {
                        input,
                        cols: cols.clone(),
                    },
                )
            }
            RaExpr::Select { input, pred } => {
                let input = self.go(input, stats);
                (
                    Key::Select(addr(&input), *pred),
                    RaExpr::Select { input, pred: *pred },
                )
            }
            RaExpr::Duplicate { input, src, dst } => {
                let input = self.go(input, stats);
                (
                    Key::Duplicate(addr(&input), *src, *dst),
                    RaExpr::Duplicate {
                        input,
                        src: *src,
                        dst: *dst,
                    },
                )
            }
        };
        if let Some(hit) = self.table.get(&key) {
            return hit.clone();
        }
        stats.unique_nodes += 1;
        let node = Arc::new(node);
        self.table.insert(key, node.clone());
        node
    }
}

/// One-shot hash-consing of a single expression (fresh table). The returned
/// expression is `==` to the input but duplicate subtrees are one shared
/// allocation, and `stats.unique_nodes` is exactly the DAG's node count.
pub fn intern(e: &RaExpr) -> (RaExpr, InternStats) {
    let mut interner = Interner::new();
    let (root, stats) = interner.intern(e);
    ((*root).clone(), stats)
}

/// Structural fingerprint of a plan, used as (half of) the
/// [`crate::cache::PlanCache`] result key and as the key under which the
/// statistics feedback store files observed cardinalities per subplan
/// ([`crate::database::Database::record_observed`] /
/// [`crate::stats::harvest_actuals`]). Equal expressions hash equal; the
/// value is deterministic within a process but not across processes
/// (symbol interning order feeds the hash).
pub fn plan_hash(e: &RaExpr) -> u64 {
    let mut h = FxHasher::default();
    e.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_formula::Term;

    fn scan(p: &str) -> RaExpr {
        RaExpr::scan(p, vec![Term::var("x"), Term::var("y")])
    }

    fn big_shared() -> RaExpr {
        // Union(σ(J), π(J)) over J = A ⋈ B: J appears twice in the tree.
        let j = RaExpr::join(scan("A"), scan("B"));
        RaExpr::union(
            RaExpr::select(j.clone(), SelPred::EqCols(Var::new("x"), Var::new("y"))),
            RaExpr::project(j, vec![Var::new("x"), Var::new("y")]),
        )
    }

    #[test]
    fn intern_preserves_structure() {
        let e = big_shared();
        let (i, _) = intern(&e);
        assert_eq!(e, i);
        assert_eq!(e.cols(), i.cols());
    }

    #[test]
    fn duplicate_subtrees_become_pointer_equal() {
        let e = big_shared();
        let (i, stats) = intern(&e);
        let (l, r) = match &i {
            RaExpr::Union(l, r) => (l, r),
            other => panic!("expected union, got {other}"),
        };
        let jl = match &**l {
            RaExpr::Select { input, .. } => input.clone(),
            other => panic!("expected select, got {other}"),
        };
        let jr = match &**r {
            RaExpr::Project { input, .. } => input.clone(),
            other => panic!("expected project, got {other}"),
        };
        assert!(Arc::ptr_eq(&jl, &jr), "join subplan must be shared");
        // Tree: union + select + project + 2×(join + 2 scans) = 9 nodes;
        // DAG: union, select, project, join, scan A, scan B = 6.
        assert_eq!(stats.tree_nodes, 9);
        assert_eq!(stats.unique_nodes, 6);
        assert_eq!(stats.shared_nodes(), 3);
    }

    #[test]
    fn distinct_nodes_stay_distinct() {
        // Same shape, different leaf contents — must NOT be merged.
        let e = RaExpr::union(
            RaExpr::scan("A", vec![Term::var("x")]),
            RaExpr::scan("B", vec![Term::var("x")]),
        );
        let (i, stats) = intern(&e);
        match &i {
            RaExpr::Union(l, r) => assert!(!Arc::ptr_eq(l, r)),
            other => panic!("expected union, got {other}"),
        }
        assert_eq!(stats.unique_nodes, 3);
        assert_eq!(stats.shared_nodes(), 0);
    }

    #[test]
    fn leaf_contents_disambiguate() {
        // Identical operator, differing payloads at every position.
        let a = RaExpr::project(scan("A"), vec![Var::new("x")]);
        let b = RaExpr::project(scan("A"), vec![Var::new("y")]);
        let (i, stats) = intern(&RaExpr::join(a, b));
        match &i {
            RaExpr::Join(l, r) => {
                assert!(!Arc::ptr_eq(l, r));
                // ... but the scans underneath ARE shared.
                let (sl, sr) = match (&**l, &**r) {
                    (RaExpr::Project { input: sl, .. }, RaExpr::Project { input: sr, .. }) => {
                        (sl, sr)
                    }
                    other => panic!("expected projects, got {other:?}"),
                };
                assert!(Arc::ptr_eq(sl, sr));
            }
            other => panic!("expected join, got {other}"),
        }
        assert_eq!(stats.tree_nodes, 5);
        assert_eq!(stats.unique_nodes, 4);
    }

    #[test]
    fn interner_shares_across_plans() {
        let mut interner = Interner::new();
        let (_, first) = interner.intern(&big_shared());
        assert_eq!(first.unique_nodes, 6);
        // Re-interning the same plan adds nothing new.
        let (_, second) = interner.intern(&big_shared());
        assert_eq!(second.unique_nodes, 0);
        assert_eq!(second.shared_nodes(), second.tree_nodes);
        // A plan overlapping only in the scans shares exactly those.
        let (_, third) = interner.intern(&RaExpr::diff(scan("A"), scan("B")));
        assert_eq!(third.unique_nodes, 1); // just the diff node
        assert_eq!(interner.len(), 7);
    }

    #[test]
    fn plan_hash_tracks_structural_equality() {
        let e = big_shared();
        let (i, _) = intern(&e);
        assert_eq!(plan_hash(&e), plan_hash(&i));
        assert_ne!(
            plan_hash(&scan("A")),
            plan_hash(&scan("B")),
            "different relations should (overwhelmingly) hash apart"
        );
    }
}
