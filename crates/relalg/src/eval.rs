//! Evaluation of algebra expressions over a database.
//!
//! Joins and `diff` are hash-based: `diff` is implemented as a hash
//! anti-join, following the paper's remark that the generalized set
//! difference "should be implemented as a primitive in its own right, using
//! techniques similar to those used for efficient joins" (Sec. 9.3).
//!
//! [`EvalStats`] records operator counts and intermediate cardinalities so
//! the benchmark harness can compare the Dom-free pipeline against the
//! active-domain baseline on work done, not just wall time.

use crate::database::Database;
use crate::expr::{ExprError, RaExpr, SelPred};
use crate::relation::{Relation, Tuple};
use rc_formula::fxhash::FxHashMap;
use rc_formula::{Symbol, Term, Value, Var};
use std::fmt;

/// Counters accumulated during evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of operator nodes evaluated.
    pub operators: u64,
    /// Total tuples produced across all operators (including intermediates).
    pub tuples_produced: u64,
    /// Largest intermediate relation observed.
    pub max_intermediate: usize,
}

impl EvalStats {
    fn record(&mut self, rel: &Relation) {
        self.operators += 1;
        self.tuples_produced += rel.len() as u64;
        self.max_intermediate = self.max_intermediate.max(rel.len());
    }
}

/// Evaluation failure.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// The expression scans a relation the database lacks.
    MissingRelation(Symbol),
    /// The scan pattern's arity disagrees with the stored relation.
    ArityMismatch {
        /// Scanned predicate.
        pred: Symbol,
        /// Stored arity.
        stored: usize,
        /// Pattern arity.
        pattern: usize,
    },
    /// The expression is structurally invalid.
    Invalid(ExprError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingRelation(p) => write!(f, "relation {p} not in database"),
            EvalError::ArityMismatch {
                pred,
                stored,
                pattern,
            } => write!(
                f,
                "scan of {pred}: pattern arity {pattern}, stored arity {stored}"
            ),
            EvalError::Invalid(e) => write!(f, "invalid expression: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ExprError> for EvalError {
    fn from(e: ExprError) -> Self {
        EvalError::Invalid(e)
    }
}

/// Evaluate `expr` against `db`. The result's column order is
/// `expr.cols()`.
pub fn eval(expr: &RaExpr, db: &Database) -> Result<Relation, EvalError> {
    let mut stats = EvalStats::default();
    eval_with_stats(expr, db, &mut stats)
}

/// Evaluate while accumulating [`EvalStats`].
pub fn eval_with_stats(
    expr: &RaExpr,
    db: &Database,
    stats: &mut EvalStats,
) -> Result<Relation, EvalError> {
    expr.validate(None)?;
    eval_rec(expr, db, stats)
}

fn positions(haystack: &[Var], needles: &[Var]) -> Vec<usize> {
    needles
        .iter()
        .map(|v| {
            haystack
                .iter()
                .position(|w| w == v)
                .expect("column present (validated)")
        })
        .collect()
}

fn eval_rec(expr: &RaExpr, db: &Database, stats: &mut EvalStats) -> Result<Relation, EvalError> {
    let out = match expr {
        RaExpr::Scan { pred, pattern } => {
            let base = db
                .relation(*pred)
                .ok_or(EvalError::MissingRelation(*pred))?;
            if base.arity() != pattern.len() {
                return Err(EvalError::ArityMismatch {
                    pred: *pred,
                    stored: base.arity(),
                    pattern: pattern.len(),
                });
            }
            let cols = expr.cols();
            let mut out = Relation::new(cols.len());
            // Precompute: for each output column, the first pattern position
            // holding that variable; plus the match checks.
            let first_pos: Vec<usize> = cols
                .iter()
                .map(|v| {
                    pattern
                        .iter()
                        .position(|t| *t == Term::Var(*v))
                        .expect("column came from pattern")
                })
                .collect();
            'rows: for row in base.iter() {
                // Constants must match; repeated variables must agree.
                for (i, t) in pattern.iter().enumerate() {
                    match t {
                        Term::Const(c) => {
                            if row[i] != *c {
                                continue 'rows;
                            }
                        }
                        Term::Var(v) => {
                            let fp = first_pos[cols.iter().position(|w| w == v).unwrap()];
                            if row[i] != row[fp] {
                                continue 'rows;
                            }
                        }
                    }
                }
                let tup: Tuple = first_pos.iter().map(|&i| row[i]).collect();
                out.insert(tup);
            }
            out
        }
        RaExpr::Single { value, .. } => Relation::singleton(vec![*value].into_boxed_slice()),
        RaExpr::Unit => Relation::unit(),
        RaExpr::Empty { cols } => Relation::new(cols.len()),
        RaExpr::Join(l, r) => {
            let lrel = eval_rec(l, db, stats)?;
            let rrel = eval_rec(r, db, stats)?;
            let lcols = l.cols();
            let rcols = r.cols();
            let shared: Vec<Var> = rcols
                .iter()
                .filter(|v| lcols.contains(v))
                .copied()
                .collect();
            let l_shared = positions(&lcols, &shared);
            let r_shared = positions(&rcols, &shared);
            let r_extra: Vec<usize> = rcols
                .iter()
                .enumerate()
                .filter(|(_, v)| !lcols.contains(v))
                .map(|(i, _)| i)
                .collect();
            // Build on the right side.
            let mut index: FxHashMap<Vec<Value>, Vec<&Tuple>> = FxHashMap::default();
            for row in rrel.iter() {
                let key: Vec<Value> = r_shared.iter().map(|&i| row[i]).collect();
                index.entry(key).or_default().push(row);
            }
            let mut out = Relation::new(lcols.len() + r_extra.len());
            for lrow in lrel.iter() {
                let key: Vec<Value> = l_shared.iter().map(|&i| lrow[i]).collect();
                if let Some(matches) = index.get(&key) {
                    for rrow in matches {
                        let mut tup: Vec<Value> = lrow.to_vec();
                        tup.extend(r_extra.iter().map(|&i| rrow[i]));
                        out.insert(tup.into_boxed_slice());
                    }
                }
            }
            out
        }
        RaExpr::Union(l, r) => {
            let lrel = eval_rec(l, db, stats)?;
            let rrel = eval_rec(r, db, stats)?;
            let lcols = l.cols();
            let rcols = r.cols();
            let perm = positions(&rcols, &lcols);
            let mut out = lrel;
            for row in rrel.iter() {
                let tup: Tuple = perm.iter().map(|&i| row[i]).collect();
                out.insert(tup);
            }
            out
        }
        RaExpr::Diff(l, r) => {
            let lrel = eval_rec(l, db, stats)?;
            let rrel = eval_rec(r, db, stats)?;
            let lcols = l.cols();
            let rcols = r.cols();
            let proj = positions(&lcols, &rcols);
            let mut out = Relation::new(lcols.len());
            for row in lrel.iter() {
                let key: Vec<Value> = proj.iter().map(|&i| row[i]).collect();
                if !rrel.contains(&key) {
                    out.insert(row.clone());
                }
            }
            out
        }
        RaExpr::Project { input, cols } => {
            let rel = eval_rec(input, db, stats)?;
            let icols = input.cols();
            let proj = positions(&icols, cols);
            let mut out = Relation::new(cols.len());
            for row in rel.iter() {
                let tup: Tuple = proj.iter().map(|&i| row[i]).collect();
                out.insert(tup);
            }
            out
        }
        RaExpr::Select { input, pred } => {
            let rel = eval_rec(input, db, stats)?;
            let icols = input.cols();
            let keep: Box<dyn Fn(&Tuple) -> bool> = match *pred {
                SelPred::EqCols(a, b) => {
                    let (i, j) = (
                        positions(&icols, &[a])[0],
                        positions(&icols, &[b])[0],
                    );
                    Box::new(move |t: &Tuple| t[i] == t[j])
                }
                SelPred::NeqCols(a, b) => {
                    let (i, j) = (
                        positions(&icols, &[a])[0],
                        positions(&icols, &[b])[0],
                    );
                    Box::new(move |t: &Tuple| t[i] != t[j])
                }
                SelPred::EqConst(a, c) => {
                    let i = positions(&icols, &[a])[0];
                    Box::new(move |t: &Tuple| t[i] == c)
                }
                SelPred::NeqConst(a, c) => {
                    let i = positions(&icols, &[a])[0];
                    Box::new(move |t: &Tuple| t[i] != c)
                }
            };
            let mut out = Relation::new(icols.len());
            for row in rel.iter() {
                if keep(row) {
                    out.insert(row.clone());
                }
            }
            out
        }
        RaExpr::Duplicate { input, src, .. } => {
            let rel = eval_rec(input, db, stats)?;
            let icols = input.cols();
            let i = positions(&icols, &[*src])[0];
            let mut out = Relation::new(icols.len() + 1);
            for row in rel.iter() {
                let mut tup: Vec<Value> = row.to_vec();
                tup.push(row[i]);
                out.insert(tup.into_boxed_slice());
            }
            out
        }
    };
    stats.record(&out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::tuple;

    fn db() -> Database {
        Database::from_facts(
            "P(1, 2)\nP(2, 3)\nP(3, 3)\nQ(2)\nQ(3)\nR(1)\nS(1, 2)\nS(9, 9)",
        )
        .unwrap()
    }

    #[test]
    fn scan_plain() {
        let e = RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]);
        let r = eval(&e, &db()).unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn scan_with_constant_selects() {
        // P(x, 3)
        let e = RaExpr::scan("P", vec![Term::var("x"), Term::val(3)]);
        let r = eval(&e, &db()).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[Value::int(2)]));
        assert!(r.contains(&[Value::int(3)]));
    }

    #[test]
    fn scan_with_repeated_var_selects_diagonal() {
        // P(x, x)
        let e = RaExpr::scan("P", vec![Term::var("x"), Term::var("x")]);
        let r = eval(&e, &db()).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[Value::int(3)]));
    }

    #[test]
    fn natural_join_on_shared_column() {
        // P(x, y) ⋈ Q(y)
        let e = RaExpr::join(
            RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]),
            RaExpr::scan("Q", vec![Term::var("y")]),
        );
        let r = eval(&e, &db()).unwrap();
        assert_eq!(e.cols(), vec![Var::new("x"), Var::new("y")]);
        assert_eq!(r.len(), 3); // (1,2), (2,3), (3,3)
    }

    #[test]
    fn cross_product_when_no_shared_columns() {
        let e = RaExpr::join(
            RaExpr::scan("Q", vec![Term::var("x")]),
            RaExpr::scan("R", vec![Term::var("z")]),
        );
        let r = eval(&e, &db()).unwrap();
        assert_eq!(r.len(), 2); // {2,3} × {1}
    }

    #[test]
    fn union_permutes_columns() {
        // P(x, y) ∪ S(y, x): S rows must be flipped.
        let e = RaExpr::union(
            RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]),
            RaExpr::scan("S", vec![Term::var("y"), Term::var("x")]),
        );
        let r = eval(&e, &db()).unwrap();
        // S(1,2) flipped is (x=2, y=1); S(9,9) is (9,9).
        assert!(r.contains(&[Value::int(2), Value::int(1)]));
        assert!(r.contains(&[Value::int(9), Value::int(9)]));
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn diff_is_antijoin_on_subset_columns() {
        // P(x, y) diff Q(y): keep P-rows whose y is not in Q.
        let e = RaExpr::diff(
            RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]),
            RaExpr::scan("Q", vec![Term::var("y")]),
        );
        let r = eval(&e, &db()).unwrap();
        assert!(r.is_empty()); // every P.y ∈ {2,3} = Q
        let e2 = RaExpr::diff(
            RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]),
            RaExpr::scan("R", vec![Term::var("y")]),
        );
        let r2 = eval(&e2, &db()).unwrap();
        assert_eq!(r2.len(), 3); // no P.y is 1
    }

    #[test]
    fn project_deduplicates() {
        // π_y P(x, y) = {2, 3}
        let e = RaExpr::project(
            RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]),
            vec![Var::new("y")],
        );
        let r = eval(&e, &db()).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn select_variants() {
        let p = RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]);
        let eq = eval(
            &RaExpr::select(p.clone(), SelPred::EqCols(Var::new("x"), Var::new("y"))),
            &db(),
        )
        .unwrap();
        assert_eq!(eq.len(), 1);
        let neq = eval(
            &RaExpr::select(p.clone(), SelPred::NeqCols(Var::new("x"), Var::new("y"))),
            &db(),
        )
        .unwrap();
        assert_eq!(neq.len(), 2);
        let eqc = eval(
            &RaExpr::select(p.clone(), SelPred::EqConst(Var::new("x"), Value::int(2))),
            &db(),
        )
        .unwrap();
        assert_eq!(eqc.len(), 1);
        let neqc = eval(
            &RaExpr::select(p, SelPred::NeqConst(Var::new("x"), Value::int(2))),
            &db(),
        )
        .unwrap();
        assert_eq!(neqc.len(), 2);
    }

    #[test]
    fn duplicate_copies_column() {
        let e = RaExpr::Duplicate {
            input: Box::new(RaExpr::scan("Q", vec![Term::var("x")])),
            src: Var::new("x"),
            dst: Var::new("x2"),
        };
        let r = eval(&e, &db()).unwrap();
        assert!(r.contains(&[Value::int(2), Value::int(2)]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn unit_and_single() {
        assert_eq!(eval(&RaExpr::Unit, &db()).unwrap().as_bool(), Some(true));
        let s = eval(
            &RaExpr::Single {
                var: Var::new("x"),
                value: Value::str("none"),
            },
            &db(),
        )
        .unwrap();
        assert!(s.contains(&[Value::str("none")]));
    }

    #[test]
    fn missing_relation_errors() {
        let e = RaExpr::scan("Zzz", vec![Term::var("x")]);
        assert!(matches!(
            eval(&e, &db()),
            Err(EvalError::MissingRelation(_))
        ));
    }

    #[test]
    fn stats_accumulate() {
        let e = RaExpr::join(
            RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]),
            RaExpr::scan("Q", vec![Term::var("y")]),
        );
        let mut stats = EvalStats::default();
        let r = eval_with_stats(&e, &db(), &mut stats).unwrap();
        assert_eq!(stats.operators, 3);
        assert_eq!(
            stats.tuples_produced,
            (3 + 2 + r.len()) as u64
        );
        assert!(stats.max_intermediate >= r.len());
    }

    #[test]
    fn empty_tuple_relation_roundtrip() {
        let mut d = Database::new();
        d.insert_relation("B", Relation::unit());
        let e = RaExpr::scan("B", vec![]);
        assert_eq!(eval(&e, &d).unwrap().as_bool(), Some(true));
        let _ = tuple([1i64]); // silence unused import when tests shrink
    }
}
