//! Evaluation of algebra expressions over a database.
//!
//! Joins and `diff` are hash-based batch kernels: `diff` is implemented as
//! a hash anti-join, following the paper's remark that the generalized set
//! difference "should be implemented as a primitive in its own right, using
//! techniques similar to those used for efficient joins" (Sec. 9.3).
//!
//! The kernels work directly over [`Relation`]'s flat row buffer:
//!
//! * column permutations are computed once per operator, never per row;
//! * hash build/probe uses a chained-array table (`heads` + `next` index
//!   vectors) keyed by hashing the key columns in place — no per-probe key
//!   allocation and no per-row heap objects;
//! * pure filters (select, semijoin, anti-join, same-arity difference)
//!   preserve the input's canonical row order, so their outputs skip the
//!   canonicalization sort entirely;
//! * everything else goes through [`RelationBuilder`], which sorts only
//!   when a single linear scan shows the produced rows are out of order.
//!
//! Independent children of `Join`/`Union`/`Diff` are evaluated in parallel
//! with `std::thread::scope` when both subtrees scan enough base tuples to
//! amortize a thread spawn; each branch accumulates its own [`EvalStats`],
//! merged deterministically afterwards.
//!
//! The evaluator takes the expression it is given as-is — join order and
//! operator placement are decided upstream by
//! [`optimize`](crate::optimize::optimize), whose cost model
//! ([`crate::stats`]) is calibrated against these kernels' measured
//! per-row timings.
//!
//! # Partition-parallel kernels
//!
//! On top of subtree parallelism, the *kernels themselves* run
//! partition-parallel when an operator's input is large enough
//! ([`partition_count`] decides, or [`Budget::with_partitions`] forces a
//! count): joins co-partition both sides by hashing the shared key columns
//! (so matching rows meet in the same partition — the `hash_cols` helper is shared
//! with [`Relation::partition_by`] exactly for this), order-preserving
//! kernels (select, semijoin, anti-join, cross product) split the input
//! into balanced chunks whose outputs concatenate back in canonical order,
//! and sorted-merge union/difference split *both* sides at matching key
//! boundaries found by binary search. Every worker runs its own
//! [`Governor`] against the shared [`Budget`], so cancellation and tuple
//! caps stop a partitioned kernel mid-flight exactly like a sequential
//! one; workers are joined in partition order, making results, trace
//! spans, and the first error deterministic. When the budget denies
//! thread spawns the kernels fall back to the sequential paths, which
//! produce bit-identical relations.
//!
//! [`EvalStats`] records operator counts and intermediate cardinalities so
//! the benchmark harness can compare the Dom-free pipeline against the
//! active-domain baseline on work done, not just wall time.

use crate::database::Database;
use crate::expr::{ExprError, RaExpr, SelPred};
use crate::govern::{Budget, BudgetExceeded, Governor, Stage};
use crate::relation::{
    cmp_rows, hash_cols, merge_sorted, partition_count, PartitionedRelation, Relation,
    RelationBuilder,
};
use crate::trace::Tracer;
use rc_formula::fxhash::FxHashMap;
use rc_formula::{symbol_order, Symbol, Term, Value, Var};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Counters accumulated during evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of operator nodes evaluated.
    pub operators: u64,
    /// Total tuples produced across all operators (including intermediates).
    pub tuples_produced: u64,
    /// Largest intermediate relation observed.
    pub max_intermediate: usize,
    /// Cooperative budget checkpoints passed (operator boundaries plus
    /// one per [`crate::govern::CHECK_INTERVAL`] kernel rows) — the governance consumption
    /// counter; deterministic for a given expression and database.
    pub budget_checks: u64,
    /// Subplan evaluations satisfied from the per-run memo table
    /// ([`eval_shared`]); always 0 on the non-memoizing entry points.
    pub memo_hits: u64,
}

impl EvalStats {
    fn record(&mut self, rel: &Relation) {
        self.operators += 1;
        self.tuples_produced += rel.len() as u64;
        self.max_intermediate = self.max_intermediate.max(rel.len());
    }

    /// Fold another branch's counters into this one (used when subtrees
    /// are evaluated in parallel).
    pub fn merge(&mut self, other: EvalStats) {
        self.operators += other.operators;
        self.tuples_produced += other.tuples_produced;
        self.max_intermediate = self.max_intermediate.max(other.max_intermediate);
        self.budget_checks += other.budget_checks;
        self.memo_hits += other.memo_hits;
    }
}

/// Evaluation failure.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// The expression scans a relation the database lacks.
    MissingRelation(Symbol),
    /// The scan pattern's arity disagrees with the stored relation.
    ArityMismatch {
        /// Scanned predicate.
        pred: Symbol,
        /// Stored arity.
        stored: usize,
        /// Pattern arity.
        pattern: usize,
    },
    /// The expression is structurally invalid.
    Invalid(ExprError),
    /// A resource budget tripped; the partial result was discarded.
    Budget(BudgetExceeded),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingRelation(p) => write!(f, "relation {p} not in database"),
            EvalError::ArityMismatch {
                pred,
                stored,
                pattern,
            } => write!(
                f,
                "scan of {pred}: pattern arity {pattern}, stored arity {stored}"
            ),
            EvalError::Invalid(e) => write!(f, "invalid expression: {e}"),
            EvalError::Budget(b) => write!(f, "{b}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ExprError> for EvalError {
    fn from(e: ExprError) -> Self {
        EvalError::Invalid(e)
    }
}

impl From<BudgetExceeded> for EvalError {
    fn from(b: BudgetExceeded) -> Self {
        EvalError::Budget(b)
    }
}

/// Evaluate `expr` against `db`. The result's column order is
/// `expr.cols()`.
pub fn eval(expr: &RaExpr, db: &Database) -> Result<Relation, EvalError> {
    let mut stats = EvalStats::default();
    eval_with_stats(expr, db, &mut stats)
}

/// Evaluate while accumulating [`EvalStats`].
pub fn eval_with_stats(
    expr: &RaExpr,
    db: &Database,
    stats: &mut EvalStats,
) -> Result<Relation, EvalError> {
    eval_governed(expr, db, stats, Budget::unlimited())
}

/// Evaluate under a resource [`Budget`]: the result is either exactly the
/// ungoverned answer or an [`EvalError::Budget`] — never a truncated
/// relation. Checks run at every operator boundary and every
/// [`crate::govern::CHECK_INTERVAL`] rows inside the kernels.
pub fn eval_governed(
    expr: &RaExpr,
    db: &Database,
    stats: &mut EvalStats,
    budget: &Budget,
) -> Result<Relation, EvalError> {
    eval_traced(expr, db, stats, budget, &mut Tracer::off())
}

/// Evaluate under a [`Budget`] while recording an operator span tree into
/// `tracer` (see [`crate::trace`]). With a disabled tracer this is exactly
/// [`eval_governed`]; with a collecting one, every operator leaves a span
/// carrying input/output cardinalities, pre-dedup row counts, and kernel
/// loop counts — including partial spans when the evaluation errors, so a
/// budget trip can be attributed to the operator that was running.
pub fn eval_traced(
    expr: &RaExpr,
    db: &Database,
    stats: &mut EvalStats,
    budget: &Budget,
    tracer: &mut Tracer,
) -> Result<Relation, EvalError> {
    expr.validate(None)?;
    stats.budget_checks += 1;
    budget.checkpoint(Stage::Eval)?;
    eval_rec(expr, db, stats, budget, tracer, None)
}

/// Per-run memo table for DAG evaluation: maps an interned subplan (by
/// [`Arc`] address — sound because hash-consing makes pointer identity
/// coincide with structural identity, see [`crate::plan`]) to its
/// materialized relation. [`Relation`] clones are O(1), so a hit costs a
/// map probe plus the governance charge for the materialized cardinality.
#[derive(Default)]
struct Memo {
    table: FxHashMap<usize, Relation>,
    hits: u64,
}

/// Evaluate with common-subexpression sharing: the expression is
/// hash-consed into a DAG ([`crate::plan::intern`]) and each distinct
/// subplan is computed **once**, later occurrences being served from a
/// per-run memo table.
///
/// Semantics are identical to [`eval_traced`] — same relation, and a memo
/// hit still passes a budget checkpoint and charges the materialized
/// cardinality against the tuple budget, so governed runs cannot smuggle
/// rows past the limits through the cache. Differences visible to callers:
///
/// * [`EvalStats::memo_hits`] counts served subplans, and `operators` /
///   `tuples_produced` count only the work actually performed (shared
///   subtrees are not re-counted);
/// * trace spans for served subplans are leaves flagged `cache_hit` (their
///   subtrees were traced at first evaluation);
/// * subtrees are evaluated sequentially — the memo is shared mutable
///   state, and the sharing it enables replaces the parallel speedup on
///   exactly the plans where memoization applies.
pub fn eval_shared(
    expr: &RaExpr,
    db: &Database,
    stats: &mut EvalStats,
    budget: &Budget,
    tracer: &mut Tracer,
) -> Result<Relation, EvalError> {
    expr.validate(None)?;
    let (dag, _) = crate::plan::intern(expr);
    stats.budget_checks += 1;
    budget.checkpoint(Stage::Eval)?;
    let mut memo = Memo::default();
    let out = eval_rec(&dag, db, stats, budget, tracer, Some(&mut memo));
    stats.memo_hits += memo.hits;
    out
}

/// Evaluate an already-interned plan DAG while *recording* every
/// subplan's materialized relation, keyed by the [`Arc`] address of each
/// node inside `root`'s DAG. This is the initialization path for
/// incremental view maintenance ([`crate::ivm`]): the returned table
/// holds one canonical relation per distinct DAG node — the root
/// included — exactly the "old" operand values the Δ-rules merge
/// against.
///
/// Semantics and governance are identical to [`eval_shared`] minus the
/// interning step: `root` must already be hash-consed (see
/// [`crate::plan::intern`]) so pointer identity coincides with
/// structural identity.
pub(crate) fn eval_shared_recording(
    root: &Arc<RaExpr>,
    db: &Database,
    stats: &mut EvalStats,
    budget: &Budget,
    tracer: &mut Tracer,
) -> Result<(Relation, FxHashMap<usize, Relation>), EvalError> {
    root.validate(None)?;
    stats.budget_checks += 1;
    budget.checkpoint(Stage::Eval)?;
    let mut memo = Memo::default();
    let out = eval_rec(root, db, stats, budget, tracer, Some(&mut memo))?;
    stats.memo_hits += memo.hits;
    let mut vals = memo.table;
    vals.insert(Arc::as_ptr(root) as usize, out.clone());
    Ok((out, vals))
}

/// Evaluate a child held behind an [`Arc`], consulting the memo first. On
/// a hit the subplan's span is emitted as a `cache_hit` leaf and the
/// governor is still charged with the materialized cardinality.
fn eval_child(
    child: &Arc<RaExpr>,
    db: &Database,
    stats: &mut EvalStats,
    budget: &Budget,
    tr: &mut Tracer,
    memo: Option<&mut Memo>,
) -> Result<Relation, EvalError> {
    let Some(memo) = memo else {
        return eval_rec(child, db, stats, budget, tr, None);
    };
    let key = Arc::as_ptr(child) as usize;
    if let Some(rel) = memo.table.get(&key) {
        let rel = rel.clone();
        memo.hits += 1;
        tr.open(child);
        tr.note_cache_hit();
        tr.note_input(rel.len());
        stats.budget_checks += 1;
        let charged = budget
            .checkpoint(Stage::Eval)
            .and_then(|()| budget.charge_tuples(Stage::Eval, rel.len() as u64));
        let res = charged.map(|()| rel).map_err(EvalError::from);
        tr.close(res.as_ref().ok());
        return res;
    }
    let rel = eval_rec(child, db, stats, budget, tr, Some(memo))?;
    memo.table.insert(key, rel.clone());
    Ok(rel)
}

pub(crate) fn positions(haystack: &[Var], needles: &[Var]) -> Vec<usize> {
    needles
        .iter()
        .map(|v| {
            haystack
                .iter()
                .position(|w| w == v)
                .expect("column present (validated)")
        })
        .collect()
}

pub(crate) const NIL: u32 = u32::MAX;

/// A compiled row predicate for `Select` (`Sync` so the partitioned filter
/// can probe it from worker threads).
type RowPred = Box<dyn Fn(&[Value]) -> bool + Sync>;

/// A chained-array hash table over the rows of a relation: `heads[bucket]`
/// is the first row index in the bucket, `next[row]` the following one.
/// Two flat `u32` vectors — no per-row allocation, cache-friendly build.
pub(crate) struct RowTable {
    heads: Vec<u32>,
    pub(crate) next: Vec<u32>,
    mask: usize,
}

impl RowTable {
    pub(crate) fn build(rel: &Relation, key_cols: &[usize]) -> RowTable {
        let n = rel.len();
        let cap = (n.max(1) * 2).next_power_of_two();
        let mask = cap - 1;
        let mut heads = vec![NIL; cap];
        let mut next = vec![NIL; n];
        for (i, slot) in next.iter_mut().enumerate() {
            let b = (hash_cols(rel.row(i), key_cols) as usize) & mask;
            *slot = heads[b];
            heads[b] = i as u32;
        }
        RowTable { heads, next, mask }
    }

    /// First candidate row index for a probe hash.
    #[inline]
    pub(crate) fn first(&self, hash: u64) -> u32 {
        self.heads[(hash as usize) & self.mask]
    }
}

#[inline]
pub(crate) fn keys_match(a: &[Value], a_cols: &[usize], b: &[Value], b_cols: &[usize]) -> bool {
    a_cols
        .iter()
        .zip(b_cols.iter())
        .all(|(&i, &j)| a[i] == b[j])
}

/// Join kernel: `lcols ++ r_extra` output. Builds the hash table on the
/// smaller side, probes with the larger, assembles rows straight into a
/// flat builder. `raw` receives the pre-dedup row count on the paths that
/// push through a builder (cross product, hash join) and is left untouched
/// on the order-preserving semijoin path — callers report it to the tracer
/// when nonzero. An out-param rather than a [`Tracer`] borrow so the
/// partition-parallel join can run this kernel on worker threads.
pub(crate) fn join_kernel(
    lrel: &Relation,
    rrel: &Relation,
    l_shared: &[usize],
    r_shared: &[usize],
    r_extra: &[usize],
    gov: &mut Governor<'_>,
    raw: &mut u64,
) -> Result<Relation, BudgetExceeded> {
    let out_arity = lrel.arity() + r_extra.len();
    if lrel.is_empty() || rrel.is_empty() {
        return Ok(Relation::new(out_arity));
    }
    if r_extra.is_empty() {
        // Semijoin: keep each left row with at least one partner. Order-
        // preserving, so the output is canonical by construction.
        let table = RowTable::build(rrel, r_shared);
        let mut kept: Vec<Value> = Vec::new();
        let mut n = 0usize;
        for lrow in lrel.iter() {
            gov.tick(n)?;
            let mut cur = table.first(hash_cols(lrow, l_shared));
            while cur != NIL {
                if keys_match(lrow, l_shared, rrel.row(cur as usize), r_shared) {
                    kept.extend_from_slice(lrow);
                    n += 1;
                    break;
                }
                cur = table.next[cur as usize];
            }
        }
        return Ok(Relation::from_canonical(out_arity, n, kept));
    }
    let mut out = RelationBuilder::with_capacity(out_arity, lrel.len().max(rrel.len()));
    if l_shared.is_empty() {
        // Cross product: both inputs canonical, so l-major enumeration is
        // already sorted — the builder's linear scan will notice.
        for lrow in lrel.iter() {
            for rrow in rrel.iter() {
                gov.tick(out.len())?;
                out.push_row_from(lrow.iter().copied().chain(r_extra.iter().map(|&i| rrow[i])));
            }
        }
        *raw = out.len() as u64;
        return Ok(out.finish());
    }
    // Build on the smaller input, probe with the larger.
    if rrel.len() <= lrel.len() {
        let table = RowTable::build(rrel, r_shared);
        for lrow in lrel.iter() {
            gov.tick(out.len())?;
            let mut cur = table.first(hash_cols(lrow, l_shared));
            while cur != NIL {
                let rrow = rrel.row(cur as usize);
                if keys_match(lrow, l_shared, rrow, r_shared) {
                    gov.tick(out.len())?;
                    out.push_row_from(lrow.iter().copied().chain(r_extra.iter().map(|&i| rrow[i])));
                }
                cur = table.next[cur as usize];
            }
        }
    } else {
        let table = RowTable::build(lrel, l_shared);
        for rrow in rrel.iter() {
            gov.tick(out.len())?;
            let mut cur = table.first(hash_cols(rrow, r_shared));
            while cur != NIL {
                let lrow = lrel.row(cur as usize);
                if keys_match(lrow, l_shared, rrow, r_shared) {
                    gov.tick(out.len())?;
                    out.push_row_from(lrow.iter().copied().chain(r_extra.iter().map(|&i| rrow[i])));
                }
                cur = table.next[cur as usize];
            }
        }
    }
    *raw = out.len() as u64;
    Ok(out.finish())
}

/// Anti-join kernel for the generalized difference (Def. 9.3): keep the
/// left rows whose projection onto the right's columns has no partner.
/// Order-preserving over the left input.
pub(crate) fn antijoin_kernel(
    lrel: &Relation,
    rrel: &Relation,
    proj: &[usize],
    gov: &mut Governor<'_>,
) -> Result<Relation, BudgetExceeded> {
    if rrel.is_empty() {
        return Ok(lrel.clone());
    }
    if lrel.is_empty() {
        return Ok(Relation::new(lrel.arity()));
    }
    let r_all: Vec<usize> = (0..rrel.arity()).collect();
    let table = RowTable::build(rrel, &r_all);
    let mut kept: Vec<Value> = Vec::new();
    let mut n = 0usize;
    for lrow in lrel.iter() {
        gov.tick(n)?;
        let mut cur = table.first(hash_cols(lrow, proj));
        let mut hit = false;
        while cur != NIL {
            if keys_match(lrow, proj, rrel.row(cur as usize), &r_all) {
                hit = true;
                break;
            }
            cur = table.next[cur as usize];
        }
        if !hit {
            kept.extend_from_slice(lrow);
            n += 1;
        }
    }
    Ok(Relation::from_canonical(lrel.arity(), n, kept))
}

/// Hash-join probe against a caller-supplied [`RowTable`] over `rrel`'s
/// `r_shared` columns — the build-on-right branch of [`join_kernel`]
/// with the build hoisted out. The IVM refresh path keeps per-node
/// tables alive across refreshes (`ivm::JoinIndex`), so probing a
/// small delta does not pay an `O(|rrel|)` rebuild every serve. The
/// builder's canonicalizing `finish` makes the output identical to
/// [`join_kernel`]'s regardless of which side the table covers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn join_probe_prebuilt(
    lrel: &Relation,
    rrel: &Relation,
    l_shared: &[usize],
    r_shared: &[usize],
    r_extra: &[usize],
    table: &RowTable,
    gov: &mut Governor<'_>,
    raw: &mut u64,
) -> Result<Relation, BudgetExceeded> {
    let out_arity = lrel.arity() + r_extra.len();
    if lrel.is_empty() || rrel.is_empty() {
        return Ok(Relation::new(out_arity));
    }
    let mut out = RelationBuilder::with_capacity(out_arity, lrel.len());
    for lrow in lrel.iter() {
        gov.tick(out.len())?;
        let mut cur = table.first(hash_cols(lrow, l_shared));
        while cur != NIL {
            let rrow = rrel.row(cur as usize);
            if keys_match(lrow, l_shared, rrow, r_shared) {
                gov.tick(out.len())?;
                out.push_row_from(lrow.iter().copied().chain(r_extra.iter().map(|&i| rrow[i])));
            }
            cur = table.next[cur as usize];
        }
    }
    *raw = out.len() as u64;
    Ok(out.finish())
}

/// Anti-join probe against a caller-supplied [`RowTable`] over **all**
/// of `rrel`'s columns — [`antijoin_kernel`] with the build hoisted out,
/// for the same reuse-across-refreshes purpose as
/// [`join_probe_prebuilt`].
pub(crate) fn antijoin_probe_prebuilt(
    lrel: &Relation,
    rrel: &Relation,
    proj: &[usize],
    table: &RowTable,
    gov: &mut Governor<'_>,
) -> Result<Relation, BudgetExceeded> {
    if rrel.is_empty() {
        return Ok(lrel.clone());
    }
    if lrel.is_empty() {
        return Ok(Relation::new(lrel.arity()));
    }
    let r_all: Vec<usize> = (0..rrel.arity()).collect();
    let mut kept: Vec<Value> = Vec::new();
    let mut n = 0usize;
    for lrow in lrel.iter() {
        gov.tick(n)?;
        let mut cur = table.first(hash_cols(lrow, proj));
        let mut hit = false;
        while cur != NIL {
            if keys_match(lrow, proj, rrel.row(cur as usize), &r_all) {
                hit = true;
                break;
            }
            cur = table.next[cur as usize];
        }
        if !hit {
            kept.extend_from_slice(lrow);
            n += 1;
        }
    }
    Ok(Relation::from_canonical(lrel.arity(), n, kept))
}

/// Number of partitions a kernel over `input_rows` rows should use: the
/// explicit [`Budget::with_partitions`] policy override when set,
/// otherwise [`partition_count`]'s cardinality-and-cores heuristic. Spawn
/// denial (the fault injector's sequential-fallback switch) always wins
/// and forces 1 — partitioned kernels never spawn a denied thread.
fn partition_plan(input_rows: usize, budget: &Budget) -> usize {
    if !budget.spawn_allowed() {
        return 1;
    }
    budget
        .partition_override()
        .unwrap_or_else(|| partition_count(input_rows))
}

/// Row range of chunk `k` of `n` over `rows` rows: balanced, in order,
/// covering `0..rows` exactly.
fn chunk_bounds(rows: usize, k: usize, n: usize) -> (usize, usize) {
    (rows * k / n, rows * (k + 1) / n)
}

/// Run `f(k, gov)` for every partition `0..n`, partitions `1..n` on scoped
/// worker threads and partition 0 on the calling thread. Results are
/// collected **in partition order**, so outputs — and the first error,
/// chosen by lowest partition index — are deterministic regardless of
/// which worker finishes first. Each worker ticks its own [`Governor`]
/// against the shared [`Budget`]; a budget trip in one worker is observed
/// by the others at their next check, and the scope joins every worker
/// before the error propagates, so no thread outlives the call and no
/// state is poisoned. Worker tick/check counters fold into
/// `ticks`/`checks` in partition order, keeping
/// [`EvalStats::budget_checks`] reproducible for a fixed partition count.
fn run_partitioned<T: Send>(
    n: usize,
    budget: &Budget,
    checks: &mut u64,
    ticks: &mut usize,
    f: impl Fn(usize, &mut Governor<'_>) -> Result<T, BudgetExceeded> + Sync,
) -> Result<Vec<T>, BudgetExceeded> {
    type Report<T> = (Result<T, BudgetExceeded>, u64, usize);
    let reports: Vec<Report<T>> = std::thread::scope(|s| {
        let handles: Vec<_> = (1..n)
            .map(|k| {
                let f = &f;
                s.spawn(move || {
                    let mut gov = Governor::new(budget, Stage::Eval);
                    let out = f(k, &mut gov);
                    (out, gov.checks(), gov.ticks())
                })
            })
            .collect();
        let mut gov = Governor::new(budget, Stage::Eval);
        let first = (f(0, &mut gov), gov.checks(), gov.ticks());
        let mut all = Vec::with_capacity(n);
        all.push(first);
        all.extend(
            handles
                .into_iter()
                .map(|h| h.join().expect("partition worker panicked")),
        );
        all
    });
    let mut outs = Vec::with_capacity(n);
    let mut first_err: Option<BudgetExceeded> = None;
    for (res, c, t) in reports {
        *checks += c;
        *ticks += t;
        match res {
            Ok(v) => outs.push(v),
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    match first_err {
        None => Ok(outs),
        Some(e) => Err(e),
    }
}

/// Concatenate per-chunk outputs of an order-preserving kernel into one
/// canonical relation, returning the per-chunk cardinalities alongside.
/// Sound only when the chunks cover a canonical input in row order — the
/// result is then a strictly ascending concatenation, which
/// `from_canonical` debug-asserts.
fn concat_canonical(arity: usize, chunks: Vec<(Vec<Value>, usize)>) -> (Relation, Vec<u64>) {
    let sizes: Vec<u64> = chunks.iter().map(|(_, m)| *m as u64).collect();
    let total: usize = chunks.iter().map(|(d, _)| d.len()).sum();
    let mut data = Vec::with_capacity(total);
    let mut n = 0usize;
    for (chunk, m) in chunks {
        data.extend_from_slice(&chunk);
        n += m;
    }
    (Relation::from_canonical(arity, n, data), sizes)
}

/// Order-preserving filter over `rel`, split into `n` balanced chunks with
/// one worker per chunk. Canonical by construction: filtering a canonical
/// relation chunk-wise preserves its global row order.
fn filter_partitioned(
    rel: &Relation,
    n: usize,
    budget: &Budget,
    checks: &mut u64,
    ticks: &mut usize,
    keep: impl Fn(&[Value]) -> bool + Sync,
) -> Result<(Relation, Vec<u64>), BudgetExceeded> {
    let chunks = run_partitioned(n, budget, checks, ticks, |k, gov| {
        let (lo, hi) = chunk_bounds(rel.len(), k, n);
        let mut kept: Vec<Value> = Vec::new();
        let mut m = 0usize;
        for i in lo..hi {
            gov.tick(m)?;
            let row = rel.row(i);
            if keep(row) {
                kept.extend_from_slice(row);
                m += 1;
            }
        }
        Ok((kept, m))
    })?;
    Ok(concat_canonical(rel.arity(), chunks))
}

/// Partition a join input on its shared-key columns, serving the layout
/// from the [`Database`] partition cache when the input is a plain scan of
/// a stored relation (the common case after optimization) so repeated
/// queries over the same base relation re-use one partitioning.
fn co_partition(
    expr: &RaExpr,
    rel: &Relation,
    key: &[usize],
    n: usize,
    db: &Database,
) -> Arc<PartitionedRelation> {
    if let Some(pred) = expr.plain_scan() {
        if let Some(parts) = db.partitioned(pred, key, n) {
            return parts;
        }
    }
    Arc::new(rel.partition_by(key, n))
}

/// Partition-parallel join: the same output as [`join_kernel`], computed
/// by chunking the probe side (semijoin), chunking the left side (cross
/// product — sound because with no shared columns `r_extra` is all of the
/// right's columns, so each chunk's l-major enumeration is canonical), or
/// co-partitioning both sides on the shared key so matching rows meet in
/// the same partition and the per-partition results merge sorted.
///
/// Returns the result, the per-partition output cardinalities for the
/// trace span, and the total pre-dedup row count when the underlying
/// kernel path reports one. The pre-dedup count equals the sequential
/// kernel's: the number of matching row pairs is independent of both the
/// partitioning and the per-partition build-side choice.
#[allow(clippy::too_many_arguments)]
fn join_partitioned(
    l: &RaExpr,
    r: &RaExpr,
    lrel: &Relation,
    rrel: &Relation,
    l_shared: &[usize],
    r_shared: &[usize],
    r_extra: &[usize],
    parts: usize,
    db: &Database,
    budget: &Budget,
    gov: &mut Governor<'_>,
    checks: &mut u64,
    ticks: &mut usize,
) -> Result<(Relation, Vec<u64>, Option<u64>), BudgetExceeded> {
    let out_arity = lrel.arity() + r_extra.len();
    if r_extra.is_empty() {
        // Semijoin: one shared hash table, probed by chunk workers.
        let table = RowTable::build(rrel, r_shared);
        let (out, sizes) = filter_partitioned(lrel, parts, budget, checks, ticks, |lrow| {
            let mut cur = table.first(hash_cols(lrow, l_shared));
            while cur != NIL {
                if keys_match(lrow, l_shared, rrel.row(cur as usize), r_shared) {
                    return true;
                }
                cur = table.next[cur as usize];
            }
            false
        })?;
        return Ok((out, sizes, None));
    }
    if l_shared.is_empty() {
        // Cross product over left-side chunks.
        let chunks = run_partitioned(parts, budget, checks, ticks, |k, gov| {
            let (lo, hi) = chunk_bounds(lrel.len(), k, parts);
            let mut data: Vec<Value> = Vec::with_capacity((hi - lo) * rrel.len() * out_arity);
            let mut m = 0usize;
            for i in lo..hi {
                let lrow = lrel.row(i);
                for rrow in rrel.iter() {
                    gov.tick(m)?;
                    data.extend(lrow.iter().copied().chain(r_extra.iter().map(|&j| rrow[j])));
                    m += 1;
                }
            }
            Ok((data, m))
        })?;
        let (out, sizes) = concat_canonical(out_arity, chunks);
        let raw = out.len() as u64;
        return Ok((out, sizes, Some(raw)));
    }
    // General hash join: co-partition both sides on the shared key.
    let lparts = co_partition(l, lrel, l_shared, parts, db);
    let rparts = co_partition(r, rrel, r_shared, parts, db);
    let joined = run_partitioned(parts, budget, checks, ticks, |k, gov| {
        let mut raw = 0u64;
        let rel = join_kernel(
            &lparts.parts()[k],
            &rparts.parts()[k],
            l_shared,
            r_shared,
            r_extra,
            gov,
            &mut raw,
        )?;
        Ok((rel, raw))
    })?;
    let mut sizes = Vec::with_capacity(parts);
    let mut rels = Vec::with_capacity(parts);
    let mut raw_total = 0u64;
    for (rel, raw) in joined {
        sizes.push(rel.len() as u64);
        raw_total += raw;
        rels.push(rel);
    }
    let out = merge_sorted(rels, out_arity, gov)?;
    Ok((out, sizes, Some(raw_total)))
}

/// Right-side row boundaries aligned with the left side's chunk
/// boundaries: `rb[k]` is the first right row not below the left row that
/// opens chunk `k`, found by binary search. Splitting both sorted inputs
/// at these boundaries lets each range pair merge independently — every
/// output row of range `k` sorts strictly below every output row of range
/// `k + 1`, so the concatenation is canonical with no cross-range
/// duplicates.
fn aligned_bounds(l: &Relation, r: &Relation, parts: usize) -> Vec<usize> {
    let order = symbol_order();
    let mut rb = Vec::with_capacity(parts + 1);
    rb.push(0usize);
    for k in 1..parts {
        let (lo, _) = chunk_bounds(l.len(), k, parts);
        rb.push(if lo < l.len() {
            r.lower_bound(l.row(lo), &order)
        } else {
            r.len()
        });
    }
    rb.push(r.len());
    rb
}

/// Partition-parallel sorted-merge union for same-column-order inputs
/// (the fast path of `Union`); see [`aligned_bounds`] for why the ranges
/// are independent.
fn union_partitioned(
    l: &Relation,
    r: &Relation,
    parts: usize,
    budget: &Budget,
    checks: &mut u64,
    ticks: &mut usize,
) -> Result<(Relation, Vec<u64>), BudgetExceeded> {
    let order = symbol_order();
    let arity = l.arity();
    let rb = aligned_bounds(l, r, parts);
    let chunks = run_partitioned(parts, budget, checks, ticks, |k, gov| {
        let (llo, lhi) = chunk_bounds(l.len(), k, parts);
        let (rlo, rhi) = (rb[k], rb[k + 1]);
        let mut out: Vec<Value> = Vec::with_capacity((lhi - llo + rhi - rlo) * arity);
        let (mut i, mut j) = (llo, rlo);
        let mut n = 0usize;
        while i < lhi && j < rhi {
            gov.tick(n)?;
            match cmp_rows(l.row(i), r.row(j), &order) {
                Ordering::Less => {
                    out.extend_from_slice(l.row(i));
                    i += 1;
                }
                Ordering::Greater => {
                    out.extend_from_slice(r.row(j));
                    j += 1;
                }
                Ordering::Equal => {
                    out.extend_from_slice(l.row(i));
                    i += 1;
                    j += 1;
                }
            }
            n += 1;
        }
        if i < lhi {
            out.extend_from_slice(&l.flat()[i * arity..lhi * arity]);
            n += lhi - i;
        }
        if j < rhi {
            out.extend_from_slice(&r.flat()[j * arity..rhi * arity]);
            n += rhi - j;
        }
        Ok((out, n))
    })?;
    Ok(concat_canonical(arity, chunks))
}

/// Partition-parallel sorted-merge difference for same-column-order
/// inputs (the fast path of `Diff`). Every right row equal to a left row
/// of chunk `k` falls inside the aligned right range, so each chunk sees
/// all its potential subtrahends.
fn minus_partitioned(
    l: &Relation,
    r: &Relation,
    parts: usize,
    budget: &Budget,
    checks: &mut u64,
    ticks: &mut usize,
) -> Result<(Relation, Vec<u64>), BudgetExceeded> {
    let order = symbol_order();
    let arity = l.arity();
    let rb = aligned_bounds(l, r, parts);
    let chunks = run_partitioned(parts, budget, checks, ticks, |k, gov| {
        let (llo, lhi) = chunk_bounds(l.len(), k, parts);
        let rhi = rb[k + 1];
        let mut out: Vec<Value> = Vec::new();
        let mut n = 0usize;
        let mut j = rb[k];
        for i in llo..lhi {
            gov.tick(i - llo)?;
            let row = l.row(i);
            let mut keep = true;
            while j < rhi {
                match cmp_rows(r.row(j), row, &order) {
                    Ordering::Less => j += 1,
                    Ordering::Equal => {
                        keep = false;
                        break;
                    }
                    Ordering::Greater => break,
                }
            }
            if keep {
                out.extend_from_slice(row);
                n += 1;
            }
        }
        Ok((out, n))
    })?;
    Ok(concat_canonical(arity, chunks))
}

/// Partition-parallel projection: each chunk projects through its own
/// [`RelationBuilder`] (chunk outputs may be unsorted and may carry
/// duplicates), then the per-chunk canonical results merge sorted under
/// the operator's governor.
#[allow(clippy::too_many_arguments)]
fn project_partitioned(
    rel: &Relation,
    proj: &[usize],
    out_arity: usize,
    parts: usize,
    budget: &Budget,
    gov: &mut Governor<'_>,
    checks: &mut u64,
    ticks: &mut usize,
) -> Result<(Relation, Vec<u64>), BudgetExceeded> {
    let rels = run_partitioned(parts, budget, checks, ticks, |k, worker| {
        let (lo, hi) = chunk_bounds(rel.len(), k, parts);
        let mut out = RelationBuilder::with_capacity(out_arity, hi - lo);
        for i in lo..hi {
            worker.tick(out.len())?;
            out.push_row_from(proj.iter().map(|&c| rel.row(i)[c]));
        }
        Ok(out.finish())
    })?;
    let sizes: Vec<u64> = rels.iter().map(|p| p.len() as u64).collect();
    let out = merge_sorted(rels, out_arity, gov)?;
    Ok((out, sizes))
}

/// Total base tuples scanned by a subtree — the cost signal deciding
/// whether a subtree is worth a thread of its own.
fn scan_cost(expr: &RaExpr, db: &Database) -> u64 {
    match expr {
        RaExpr::Scan { pred, .. } => db.relation(*pred).map(|r| r.len() as u64).unwrap_or(0),
        _ => expr.children().iter().map(|c| scan_cost(c, db)).sum(),
    }
}

/// Below this many scanned base tuples per side, a thread spawn costs more
/// than it saves.
const PARALLEL_THRESHOLD: u64 = 8192;

/// Evaluate the two children of a binary operator, in parallel when both
/// sides are heavy enough and the budget's fault injector does not deny
/// thread spawns (the sequential fallback path). Stats are merged and
/// trace branches adopted left-then-right so the totals *and* the span
/// tree are identical to sequential evaluation; on a budget trip in either
/// branch the scope still joins both workers, so cancelled threads drain
/// cleanly (and leave their partial spans) before the error propagates.
///
/// Memoizing runs ([`eval_shared`]) always take the sequential path: the
/// memo is shared mutable state, and cross-branch sharing is the point.
fn eval_pair(
    l: &Arc<RaExpr>,
    r: &Arc<RaExpr>,
    db: &Database,
    stats: &mut EvalStats,
    budget: &Budget,
    tr: &mut Tracer,
    memo: Option<&mut Memo>,
) -> Result<(Relation, Relation), EvalError> {
    if let Some(memo) = memo {
        let lrel = eval_child(l, db, stats, budget, tr, Some(memo))?;
        let rrel = eval_child(r, db, stats, budget, tr, Some(memo))?;
        return Ok((lrel, rrel));
    }
    if scan_cost(l, db) >= PARALLEL_THRESHOLD
        && scan_cost(r, db) >= PARALLEL_THRESHOLD
        && budget.spawn_allowed()
    {
        tr.note_parallel();
        let mut ltr = tr.fork();
        let mut rtr = tr.fork();
        let ((lres, lstats, ltr), (rres, rstats, rtr)) = std::thread::scope(|s| {
            let lhandle = s.spawn(move || {
                let mut st = EvalStats::default();
                let rel = eval_rec(l, db, &mut st, budget, &mut ltr, None);
                (rel, st, ltr)
            });
            let mut rst = EvalStats::default();
            let rrel = eval_rec(r, db, &mut rst, budget, &mut rtr, None);
            let left = lhandle.join().expect("eval worker panicked");
            (left, (rrel, rst, rtr))
        });
        stats.merge(lstats);
        stats.merge(rstats);
        tr.adopt(ltr);
        tr.adopt(rtr);
        Ok((lres?, rres?))
    } else {
        let lrel = eval_rec(l, db, stats, budget, tr, None)?;
        let rrel = eval_rec(r, db, stats, budget, tr, None)?;
        Ok((lrel, rrel))
    }
}

/// Span-wrapping shell around [`eval_node`]: opens an operator span,
/// evaluates, closes it as completed or incomplete. This is the single
/// place tracing observes the operator boundary — the same boundary the
/// governor checkpoints at.
fn eval_rec(
    expr: &RaExpr,
    db: &Database,
    stats: &mut EvalStats,
    budget: &Budget,
    tr: &mut Tracer,
    memo: Option<&mut Memo>,
) -> Result<Relation, EvalError> {
    tr.open(expr);
    let res = eval_node(expr, db, stats, budget, tr, memo);
    tr.close(res.as_ref().ok());
    res
}

fn eval_node(
    expr: &RaExpr,
    db: &Database,
    stats: &mut EvalStats,
    budget: &Budget,
    tr: &mut Tracer,
    mut memo: Option<&mut Memo>,
) -> Result<Relation, EvalError> {
    let mut gov = Governor::new(budget, Stage::Eval);
    // Tick/check counters contributed by partitioned-kernel workers; folded
    // into the operator's totals alongside the sequential governor's.
    let mut part_checks: u64 = 0;
    let mut part_ticks: usize = 0;
    let out = match expr {
        RaExpr::Scan { pred, pattern } => {
            let base = db
                .relation(*pred)
                .ok_or(EvalError::MissingRelation(*pred))?;
            if base.arity() != pattern.len() {
                return Err(EvalError::ArityMismatch {
                    pred: *pred,
                    stored: base.arity(),
                    pattern: pattern.len(),
                });
            }
            tr.note_input(base.len());
            let cols = expr.cols();
            // Plain scan — all-distinct variable pattern: the stored
            // relation IS the answer, and cloning it is O(1).
            if cols.len() == pattern.len() {
                base.clone()
            } else {
                // Constants select, repeated variables select a diagonal,
                // and the output keeps the first occurrence of each
                // variable.
                let first_pos: Vec<usize> = cols
                    .iter()
                    .map(|v| {
                        pattern
                            .iter()
                            .position(|t| *t == Term::Var(*v))
                            .expect("column came from pattern")
                    })
                    .collect();
                // For each pattern position: the check it must pass.
                enum Check {
                    Const(Value),
                    SameAs(usize),
                    Free,
                }
                let checks: Vec<Check> = pattern
                    .iter()
                    .enumerate()
                    .map(|(i, t)| match t {
                        Term::Const(c) => Check::Const(*c),
                        Term::Var(v) => {
                            let fp =
                                first_pos[cols.iter().position(|w| w == v).expect("var in cols")];
                            if fp == i {
                                Check::Free
                            } else {
                                Check::SameAs(fp)
                            }
                        }
                    })
                    .collect();
                let mut out = RelationBuilder::with_capacity(cols.len(), base.len());
                'rows: for row in base.iter() {
                    gov.tick(out.len())?;
                    for (i, chk) in checks.iter().enumerate() {
                        match chk {
                            Check::Const(c) => {
                                if row[i] != *c {
                                    continue 'rows;
                                }
                            }
                            Check::SameAs(fp) => {
                                if row[i] != row[*fp] {
                                    continue 'rows;
                                }
                            }
                            Check::Free => {}
                        }
                    }
                    out.push_row_from(first_pos.iter().map(|&i| row[i]));
                }
                tr.note_raw(out.len() as u64);
                out.finish()
            }
        }
        RaExpr::Single { value, .. } => Relation::singleton(vec![*value].into_boxed_slice()),
        RaExpr::Unit => Relation::unit(),
        RaExpr::Empty { cols } => Relation::new(cols.len()),
        RaExpr::Join(l, r) => {
            let (lrel, rrel) = eval_pair(l, r, db, stats, budget, tr, memo.as_deref_mut())?;
            tr.note_input(lrel.len());
            tr.note_input(rrel.len());
            let lcols = l.cols();
            let rcols = r.cols();
            let shared: Vec<Var> = rcols
                .iter()
                .filter(|v| lcols.contains(v))
                .copied()
                .collect();
            let l_shared = positions(&lcols, &shared);
            let r_shared = positions(&rcols, &shared);
            let r_extra: Vec<usize> = rcols
                .iter()
                .enumerate()
                .filter(|(_, v)| !lcols.contains(v))
                .map(|(i, _)| i)
                .collect();
            let parts = partition_plan(lrel.len().max(rrel.len()), budget);
            if parts > 1 && !lrel.is_empty() && !rrel.is_empty() {
                let (out, sizes, raw) = join_partitioned(
                    l,
                    r,
                    &lrel,
                    &rrel,
                    &l_shared,
                    &r_shared,
                    &r_extra,
                    parts,
                    db,
                    budget,
                    &mut gov,
                    &mut part_checks,
                    &mut part_ticks,
                )?;
                tr.note_parallel();
                tr.note_partitions(&sizes);
                if let Some(raw) = raw {
                    tr.note_raw(raw);
                }
                out
            } else {
                let mut raw = 0u64;
                let out = join_kernel(
                    &lrel, &rrel, &l_shared, &r_shared, &r_extra, &mut gov, &mut raw,
                )?;
                if raw > 0 {
                    tr.note_raw(raw);
                }
                out
            }
        }
        RaExpr::Union(l, r) => {
            let (lrel, rrel) = eval_pair(l, r, db, stats, budget, tr, memo.as_deref_mut())?;
            tr.note_input(lrel.len());
            tr.note_input(rrel.len());
            tr.note_raw((lrel.len() + rrel.len()) as u64);
            let lcols = l.cols();
            let rcols = r.cols();
            let perm = positions(&rcols, &lcols);
            if perm.iter().enumerate().all(|(i, &p)| i == p) {
                let parts = partition_plan(lrel.len().max(rrel.len()), budget);
                if parts > 1 && lrel.arity() > 0 && !lrel.is_empty() && !rrel.is_empty() {
                    let (out, sizes) = union_partitioned(
                        &lrel,
                        &rrel,
                        parts,
                        budget,
                        &mut part_checks,
                        &mut part_ticks,
                    )?;
                    tr.note_parallel();
                    tr.note_partitions(&sizes);
                    out
                } else {
                    // Same column order: one linear merge of two sorted inputs.
                    lrel.union_governed(&rrel, &mut gov)?
                }
            } else {
                let mut permuted = RelationBuilder::with_capacity(lcols.len(), rrel.len());
                for row in rrel.iter() {
                    gov.tick(permuted.len())?;
                    permuted.push_row_from(perm.iter().map(|&i| row[i]));
                }
                lrel.union_governed(&permuted.finish(), &mut gov)?
            }
        }
        RaExpr::Diff(l, r) => {
            let (lrel, rrel) = eval_pair(l, r, db, stats, budget, tr, memo.as_deref_mut())?;
            tr.note_input(lrel.len());
            tr.note_input(rrel.len());
            let lcols = l.cols();
            let rcols = r.cols();
            let proj = positions(&lcols, &rcols);
            let parts = partition_plan(lrel.len().max(rrel.len()), budget);
            let partitioned = parts > 1 && !lrel.is_empty() && !rrel.is_empty();
            if proj.len() == lcols.len() && proj.iter().enumerate().all(|(i, &p)| i == p) {
                if partitioned && lrel.arity() > 0 {
                    let (out, sizes) = minus_partitioned(
                        &lrel,
                        &rrel,
                        parts,
                        budget,
                        &mut part_checks,
                        &mut part_ticks,
                    )?;
                    tr.note_parallel();
                    tr.note_partitions(&sizes);
                    out
                } else {
                    // Same columns, same order: plain sorted-merge difference.
                    lrel.minus_governed(&rrel, &mut gov)?
                }
            } else if partitioned {
                // Anti-join over left-side chunks probing one shared table.
                let r_all: Vec<usize> = (0..rrel.arity()).collect();
                let table = RowTable::build(&rrel, &r_all);
                let (out, sizes) = filter_partitioned(
                    &lrel,
                    parts,
                    budget,
                    &mut part_checks,
                    &mut part_ticks,
                    |lrow| {
                        let mut cur = table.first(hash_cols(lrow, &proj));
                        while cur != NIL {
                            if keys_match(lrow, &proj, rrel.row(cur as usize), &r_all) {
                                return false;
                            }
                            cur = table.next[cur as usize];
                        }
                        true
                    },
                )?;
                tr.note_parallel();
                tr.note_partitions(&sizes);
                out
            } else {
                antijoin_kernel(&lrel, &rrel, &proj, &mut gov)?
            }
        }
        RaExpr::Project { input, cols } => {
            let rel = eval_child(input, db, stats, budget, tr, memo)?;
            tr.note_input(rel.len());
            tr.note_raw(rel.len() as u64);
            let icols = input.cols();
            let proj = positions(&icols, cols);
            let parts = partition_plan(rel.len(), budget);
            if parts > 1 && !rel.is_empty() && !cols.is_empty() {
                let (out, sizes) = project_partitioned(
                    &rel,
                    &proj,
                    cols.len(),
                    parts,
                    budget,
                    &mut gov,
                    &mut part_checks,
                    &mut part_ticks,
                )?;
                tr.note_parallel();
                tr.note_partitions(&sizes);
                out
            } else {
                let mut out = RelationBuilder::with_capacity(cols.len(), rel.len());
                for row in rel.iter() {
                    gov.tick(out.len())?;
                    out.push_row_from(proj.iter().map(|&i| row[i]));
                }
                out.finish()
            }
        }
        RaExpr::Select { input, pred } => {
            let rel = eval_child(input, db, stats, budget, tr, memo.as_deref_mut())?;
            tr.note_input(rel.len());
            let icols = input.cols();
            let keep: RowPred = match *pred {
                SelPred::EqCols(a, b) => {
                    let (i, j) = (positions(&icols, &[a])[0], positions(&icols, &[b])[0]);
                    Box::new(move |t: &[Value]| t[i] == t[j])
                }
                SelPred::NeqCols(a, b) => {
                    let (i, j) = (positions(&icols, &[a])[0], positions(&icols, &[b])[0]);
                    Box::new(move |t: &[Value]| t[i] != t[j])
                }
                SelPred::EqConst(a, c) => {
                    let i = positions(&icols, &[a])[0];
                    Box::new(move |t: &[Value]| t[i] == c)
                }
                SelPred::NeqConst(a, c) => {
                    let i = positions(&icols, &[a])[0];
                    Box::new(move |t: &[Value]| t[i] != c)
                }
            };
            // Pure filter: canonical order is preserved, no re-sort needed.
            let parts = partition_plan(rel.len(), budget);
            if parts > 1 && !rel.is_empty() {
                let (out, sizes) = filter_partitioned(
                    &rel,
                    parts,
                    budget,
                    &mut part_checks,
                    &mut part_ticks,
                    |row| keep(row),
                )?;
                tr.note_parallel();
                tr.note_partitions(&sizes);
                out
            } else {
                let mut kept: Vec<Value> = Vec::new();
                let mut n = 0usize;
                for row in rel.iter() {
                    gov.tick(n)?;
                    if keep(row) {
                        kept.extend_from_slice(row);
                        n += 1;
                    }
                }
                Relation::from_canonical(icols.len(), n, kept)
            }
        }
        RaExpr::Duplicate { input, src, .. } => {
            let rel = eval_child(input, db, stats, budget, tr, memo)?;
            tr.note_input(rel.len());
            let icols = input.cols();
            let i = positions(&icols, &[*src])[0];
            // Appending a copy of an existing column cannot reorder rows:
            // distinct rows already differ within the original prefix.
            let mut data: Vec<Value> = Vec::with_capacity(rel.len() * (icols.len() + 1));
            for (k, row) in rel.iter().enumerate() {
                gov.tick(k)?;
                data.extend_from_slice(row);
                data.push(row[i]);
            }
            Relation::from_canonical(icols.len() + 1, rel.len(), data)
        }
    };
    stats.record(&out);
    stats.budget_checks += gov.checks() + part_checks + 1;
    tr.note_kernel_rows((gov.ticks() + part_ticks) as u64);
    budget.checkpoint(Stage::Eval)?;
    budget.charge_tuples(Stage::Eval, out.len() as u64)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::govern::FaultInjector;
    use crate::relation::tuple;
    use std::sync::Arc;

    fn db() -> Database {
        Database::from_facts("P(1, 2)\nP(2, 3)\nP(3, 3)\nQ(2)\nQ(3)\nR(1)\nS(1, 2)\nS(9, 9)")
            .unwrap()
    }

    #[test]
    fn scan_plain() {
        let e = RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]);
        let r = eval(&e, &db()).unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn scan_with_constant_selects() {
        // P(x, 3)
        let e = RaExpr::scan("P", vec![Term::var("x"), Term::val(3)]);
        let r = eval(&e, &db()).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[Value::int(2)]));
        assert!(r.contains(&[Value::int(3)]));
    }

    #[test]
    fn scan_with_repeated_var_selects_diagonal() {
        // P(x, x)
        let e = RaExpr::scan("P", vec![Term::var("x"), Term::var("x")]);
        let r = eval(&e, &db()).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[Value::int(3)]));
    }

    #[test]
    fn natural_join_on_shared_column() {
        // P(x, y) ⋈ Q(y)
        let e = RaExpr::join(
            RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]),
            RaExpr::scan("Q", vec![Term::var("y")]),
        );
        let r = eval(&e, &db()).unwrap();
        assert_eq!(e.cols(), vec![Var::new("x"), Var::new("y")]);
        assert_eq!(r.len(), 3); // (1,2), (2,3), (3,3)
    }

    #[test]
    fn cross_product_when_no_shared_columns() {
        let e = RaExpr::join(
            RaExpr::scan("Q", vec![Term::var("x")]),
            RaExpr::scan("R", vec![Term::var("z")]),
        );
        let r = eval(&e, &db()).unwrap();
        assert_eq!(r.len(), 2); // {2,3} × {1}
    }

    #[test]
    fn join_with_extra_columns_on_both_sides() {
        // P(x, y) ⋈ S(y, z): shared y, extra z from the right.
        let mut d = db();
        d.insert_fact("T", tuple([2i64, 7])).unwrap();
        d.insert_fact("T", tuple([3i64, 8])).unwrap();
        let e = RaExpr::join(
            RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]),
            RaExpr::scan("T", vec![Term::var("y"), Term::var("z")]),
        );
        let r = eval(&e, &d).unwrap();
        assert_eq!(e.cols(), vec![Var::new("x"), Var::new("y"), Var::new("z")]);
        assert_eq!(r.len(), 3);
        assert!(r.contains(&[Value::int(1), Value::int(2), Value::int(7)]));
        assert!(r.contains(&[Value::int(2), Value::int(3), Value::int(8)]));
        assert!(r.contains(&[Value::int(3), Value::int(3), Value::int(8)]));
    }

    #[test]
    fn union_permutes_columns() {
        // P(x, y) ∪ S(y, x): S rows must be flipped.
        let e = RaExpr::union(
            RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]),
            RaExpr::scan("S", vec![Term::var("y"), Term::var("x")]),
        );
        let r = eval(&e, &db()).unwrap();
        // S(1,2) flipped is (x=2, y=1); S(9,9) is (9,9).
        assert!(r.contains(&[Value::int(2), Value::int(1)]));
        assert!(r.contains(&[Value::int(9), Value::int(9)]));
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn diff_is_antijoin_on_subset_columns() {
        // P(x, y) diff Q(y): keep P-rows whose y is not in Q.
        let e = RaExpr::diff(
            RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]),
            RaExpr::scan("Q", vec![Term::var("y")]),
        );
        let r = eval(&e, &db()).unwrap();
        assert!(r.is_empty()); // every P.y ∈ {2,3} = Q
        let e2 = RaExpr::diff(
            RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]),
            RaExpr::scan("R", vec![Term::var("y")]),
        );
        let r2 = eval(&e2, &db()).unwrap();
        assert_eq!(r2.len(), 3); // no P.y is 1
    }

    #[test]
    fn project_deduplicates() {
        // π_y P(x, y) = {2, 3}
        let e = RaExpr::project(
            RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]),
            vec![Var::new("y")],
        );
        let r = eval(&e, &db()).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn select_variants() {
        let p = RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]);
        let eq = eval(
            &RaExpr::select(p.clone(), SelPred::EqCols(Var::new("x"), Var::new("y"))),
            &db(),
        )
        .unwrap();
        assert_eq!(eq.len(), 1);
        let neq = eval(
            &RaExpr::select(p.clone(), SelPred::NeqCols(Var::new("x"), Var::new("y"))),
            &db(),
        )
        .unwrap();
        assert_eq!(neq.len(), 2);
        let eqc = eval(
            &RaExpr::select(p.clone(), SelPred::EqConst(Var::new("x"), Value::int(2))),
            &db(),
        )
        .unwrap();
        assert_eq!(eqc.len(), 1);
        let neqc = eval(
            &RaExpr::select(p, SelPred::NeqConst(Var::new("x"), Value::int(2))),
            &db(),
        )
        .unwrap();
        assert_eq!(neqc.len(), 2);
    }

    #[test]
    fn duplicate_copies_column() {
        let e = RaExpr::Duplicate {
            input: Arc::new(RaExpr::scan("Q", vec![Term::var("x")])),
            src: Var::new("x"),
            dst: Var::new("x2"),
        };
        let r = eval(&e, &db()).unwrap();
        assert!(r.contains(&[Value::int(2), Value::int(2)]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn unit_and_single() {
        assert_eq!(eval(&RaExpr::Unit, &db()).unwrap().as_bool(), Some(true));
        let s = eval(
            &RaExpr::Single {
                var: Var::new("x"),
                value: Value::str("none"),
            },
            &db(),
        )
        .unwrap();
        assert!(s.contains(&[Value::str("none")]));
    }

    #[test]
    fn missing_relation_errors() {
        let e = RaExpr::scan("Zzz", vec![Term::var("x")]);
        assert!(matches!(
            eval(&e, &db()),
            Err(EvalError::MissingRelation(_))
        ));
    }

    #[test]
    fn stats_accumulate() {
        let e = RaExpr::join(
            RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]),
            RaExpr::scan("Q", vec![Term::var("y")]),
        );
        let mut stats = EvalStats::default();
        let r = eval_with_stats(&e, &db(), &mut stats).unwrap();
        assert_eq!(stats.operators, 3);
        assert_eq!(stats.tuples_produced, (3 + 2 + r.len()) as u64);
        assert!(stats.max_intermediate >= r.len());
    }

    #[test]
    fn stats_merge_is_componentwise() {
        let mut a = EvalStats {
            operators: 2,
            tuples_produced: 10,
            max_intermediate: 7,
            budget_checks: 1,
            memo_hits: 1,
        };
        a.merge(EvalStats {
            operators: 3,
            tuples_produced: 4,
            max_intermediate: 9,
            budget_checks: 2,
            memo_hits: 2,
        });
        assert_eq!(
            a,
            EvalStats {
                operators: 5,
                tuples_produced: 14,
                max_intermediate: 9,
                budget_checks: 3,
                memo_hits: 3,
            }
        );
    }

    #[test]
    fn empty_tuple_relation_roundtrip() {
        let mut d = Database::new();
        d.insert_relation("B", Relation::unit());
        let e = RaExpr::scan("B", vec![]);
        assert_eq!(eval(&e, &d).unwrap().as_bool(), Some(true));
        let _ = tuple([1i64]); // silence unused import when tests shrink
    }

    #[test]
    fn parallel_and_sequential_agree_above_threshold() {
        // Two scans big enough to trip PARALLEL_THRESHOLD on both sides.
        let mut d = Database::new();
        let mut a = RelationBuilder::new(2);
        let mut b = RelationBuilder::new(2);
        let rows = (PARALLEL_THRESHOLD + 500) as i64;
        for i in 0..rows {
            a.push_row(&[Value::int(i), Value::int(i % 97)]);
            b.push_row(&[Value::int(i % 97), Value::int(i % 13)]);
        }
        d.insert_relation("A", a.finish());
        d.insert_relation("B", b.finish());
        let e = RaExpr::join(
            RaExpr::scan("A", vec![Term::var("x"), Term::var("y")]),
            RaExpr::scan("B", vec![Term::var("y"), Term::var("z")]),
        );
        let mut stats = EvalStats::default();
        let r = eval_with_stats(&e, &d, &mut stats).unwrap();
        assert_eq!(stats.operators, 3);
        // B dedups to the (i % 97, i % 13) pairs — 13 partners per key by
        // CRT — so every A row contributes exactly 13 output rows.
        assert_eq!(r.len(), rows as usize * 13);
        // Deterministic: a second (parallel) evaluation renders identically.
        let r2 = eval(&e, &d).unwrap();
        assert_eq!(r, r2);
        assert_eq!(r.to_string(), r2.to_string());
    }

    /// A database big enough for interesting partition splits, with keys
    /// shared between `A` and `B` and half of `A` mirrored into `A2`.
    fn partition_db() -> Database {
        let mut d = Database::new();
        let mut a = RelationBuilder::new(2);
        let mut a2 = RelationBuilder::new(2);
        let mut b = RelationBuilder::new(2);
        let mut c = RelationBuilder::new(1);
        for i in 0..500i64 {
            a.push_row(&[Value::int(i), Value::int(i % 23)]);
            b.push_row(&[Value::int(i % 23), Value::int(i % 7)]);
            if i % 2 == 0 {
                a2.push_row(&[Value::int(i), Value::int(i % 23)]);
            }
            if i < 5 {
                c.push_row(&[Value::int(i)]);
            }
        }
        d.insert_relation("A", a.finish());
        d.insert_relation("A2", a2.finish());
        d.insert_relation("B", b.finish());
        d.insert_relation("C", c.finish());
        d
    }

    /// One expression per partitioned kernel family: hash join, semijoin,
    /// cross product, sorted-merge union and difference, anti-join,
    /// projection, selection.
    fn kernel_family_plans() -> Vec<RaExpr> {
        let a = RaExpr::scan("A", vec![Term::var("x"), Term::var("y")]);
        let a2 = RaExpr::scan("A2", vec![Term::var("x"), Term::var("y")]);
        let b = RaExpr::scan("B", vec![Term::var("y"), Term::var("z")]);
        let c = RaExpr::scan("C", vec![Term::var("u")]);
        vec![
            RaExpr::join(a.clone(), b.clone()),
            RaExpr::join(a.clone(), RaExpr::project(b.clone(), vec![Var::new("y")])),
            RaExpr::join(c, a.clone()),
            RaExpr::union(a.clone(), a2.clone()),
            RaExpr::diff(a.clone(), a2),
            RaExpr::diff(a.clone(), RaExpr::project(b, vec![Var::new("y")])),
            RaExpr::project(a.clone(), vec![Var::new("y")]),
            RaExpr::select(a, SelPred::NeqCols(Var::new("x"), Var::new("y"))),
        ]
    }

    #[test]
    fn forced_partitions_are_invisible_in_results() {
        let d = partition_db();
        for e in kernel_family_plans() {
            let seq = Budget::new().with_partitions(1);
            let want = eval_governed(&e, &d, &mut EvalStats::default(), &seq).unwrap();
            for n in [2usize, 3, 7, 1000] {
                let budget = Budget::new().with_partitions(n);
                let got = eval_governed(&e, &d, &mut EvalStats::default(), &budget).unwrap();
                assert_eq!(want, got, "partitions={n} plan={e}");
                assert_eq!(want.to_string(), got.to_string(), "partitions={n}");
            }
        }
    }

    #[test]
    fn forced_partitions_reproduce_stats_and_spans() {
        let d = partition_db();
        for e in kernel_family_plans() {
            let budget = Budget::new().with_partitions(4);
            let mut s1 = EvalStats::default();
            let mut s2 = EvalStats::default();
            let mut t1 = Tracer::on();
            let mut t2 = Tracer::on();
            let r1 = eval_traced(&e, &d, &mut s1, &budget, &mut t1).unwrap();
            let r2 = eval_traced(&e, &d, &mut s2, &budget, &mut t2).unwrap();
            assert_eq!(r1, r2);
            assert_eq!(s1, s2, "stats must reproduce under a fixed count");
            let (p1, p2) = (t1.finish().unwrap(), t2.finish().unwrap());
            assert_eq!(
                p1.partitioned_projection(),
                p2.partitioned_projection(),
                "per-partition spans must reproduce under a fixed count"
            );
            assert!(p1.any_partitioned(), "plan {e} never partitioned");
        }
    }

    #[test]
    fn spawn_denial_beats_partition_override() {
        let d = partition_db();
        let e = RaExpr::join(
            RaExpr::scan("A", vec![Term::var("x"), Term::var("y")]),
            RaExpr::scan("B", vec![Term::var("y"), Term::var("z")]),
        );
        let fault = FaultInjector::new();
        fault.deny_thread_spawn(true);
        let denied = Budget::new().with_partitions(8).with_fault_injector(fault);
        let mut tr = Tracer::on();
        let got = eval_traced(&e, &d, &mut EvalStats::default(), &denied, &mut tr).unwrap();
        let root = tr.finish().unwrap();
        assert!(!root.any_partitioned(), "denied spawn must stay sequential");
        let plain = eval(&e, &d).unwrap();
        assert_eq!(got, plain);
    }

    #[test]
    fn partitioned_join_reuses_database_partition_cache() {
        let d = partition_db();
        let e = RaExpr::join(
            RaExpr::scan("A", vec![Term::var("x"), Term::var("y")]),
            RaExpr::scan("B", vec![Term::var("y"), Term::var("z")]),
        );
        assert_eq!(d.partition_cache_entries(), 0);
        let budget = Budget::new().with_partitions(4);
        eval_governed(&e, &d, &mut EvalStats::default(), &budget).unwrap();
        // Both scan sides are plain scans: two cached layouts.
        assert_eq!(d.partition_cache_entries(), 2);
        eval_governed(&e, &d, &mut EvalStats::default(), &budget).unwrap();
        assert_eq!(d.partition_cache_entries(), 2, "second run must re-use");
    }

    #[test]
    fn partitioned_budget_trip_is_clean_and_engine_reusable() {
        let d = partition_db();
        let e = RaExpr::join(
            RaExpr::scan("A", vec![Term::var("x"), Term::var("y")]),
            RaExpr::scan("B", vec![Term::var("y"), Term::var("z")]),
        );
        let tight = Budget::new().with_partitions(4).with_max_tuples(100);
        let err = eval_governed(&e, &d, &mut EvalStats::default(), &tight)
            .expect_err("tuple cap must trip inside the partitioned join");
        assert!(matches!(err, EvalError::Budget(_)));
        // The same database (and its partition cache) serves a fresh run.
        let ok = eval(&e, &d).unwrap();
        assert!(!ok.is_empty());
    }

    /// A plan whose join subtree appears in both union branches (under
    /// different selections, so union dedup cannot collapse them).
    fn shared_subtree_plan() -> RaExpr {
        let j = RaExpr::join(
            RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]),
            RaExpr::scan("Q", vec![Term::var("y")]),
        );
        RaExpr::union(
            RaExpr::select(j.clone(), SelPred::EqCols(Var::new("x"), Var::new("y"))),
            RaExpr::select(j, SelPred::NeqCols(Var::new("x"), Var::new("y"))),
        )
    }

    #[test]
    fn eval_shared_matches_eval_and_counts_hits() {
        let d = db();
        let e = shared_subtree_plan();
        let want = eval(&e, &d).unwrap();
        let mut stats = EvalStats::default();
        let mut tr = Tracer::on();
        let got = eval_shared(&e, &d, &mut stats, Budget::unlimited(), &mut tr).unwrap();
        assert_eq!(want, got);
        // The join subtree (join + 2 scans) is computed once and served
        // once: one memo hit, and only the 6 distinct DAG nodes count as
        // evaluated operators (the tree has 9).
        assert_eq!(stats.memo_hits, 1);
        assert_eq!(stats.operators, 6);
        assert_eq!(e.node_count(), 9);
        let root = tr.finish().expect("span tree");
        fn count_hits(s: &OpSpan) -> usize {
            s.cache_hit as usize + s.children.iter().map(count_hits).sum::<usize>()
        }
        use crate::trace::OpSpan;
        assert_eq!(count_hits(&root), 1);
        // The hit span is a leaf reporting the memoized cardinality.
        fn find_hit(s: &OpSpan) -> Option<&OpSpan> {
            if s.cache_hit {
                return Some(s);
            }
            s.children.iter().find_map(find_hit)
        }
        let hit = find_hit(&root).expect("cache-hit span");
        assert!(hit.children.is_empty());
        assert!(hit.completed);
        assert_eq!(hit.op, "join");
    }

    #[test]
    fn eval_shared_without_sharing_is_plain_eval() {
        let d = db();
        let e = RaExpr::diff(
            RaExpr::scan("P", vec![Term::var("x"), Term::var("y")]),
            RaExpr::scan("S", vec![Term::var("x"), Term::var("y")]),
        );
        let mut stats = EvalStats::default();
        let got = eval_shared(&e, &d, &mut stats, Budget::unlimited(), &mut Tracer::off()).unwrap();
        assert_eq!(got, eval(&e, &d).unwrap());
        assert_eq!(stats.memo_hits, 0);
    }

    #[test]
    fn memo_hits_still_charge_the_tuple_budget() {
        let d = db();
        let e = shared_subtree_plan();
        // Ungoverned: find out how many tuples the memoized run charges.
        let mut stats = EvalStats::default();
        eval_shared(&e, &d, &mut stats, Budget::unlimited(), &mut Tracer::off()).unwrap();
        let full = Budget::new().with_max_tuples(1_000_000);
        eval_shared(&e, &d, &mut EvalStats::default(), &full, &mut Tracer::off()).unwrap();
        let charged = full.tuples_used();
        assert!(charged > 0);
        // A budget one short of that must trip — even though the final
        // tuples flow through a memo hit, the hit still charges its
        // materialized cardinality.
        let tight = Budget::new().with_max_tuples(charged - 1);
        let err = eval_shared(
            &e,
            &d,
            &mut EvalStats::default(),
            &tight,
            &mut Tracer::off(),
        )
        .expect_err("tuple cap must trip");
        assert!(matches!(err, EvalError::Budget(_)), "got {err:?}");
        // Sanity: the memoized run charges no more than the parallel-free
        // plain run (shared subtrees are charged once per *service*, and
        // the service charge equals the subplan's output size).
        let plain = Budget::new().with_max_tuples(1_000_000);
        let mut pstats = EvalStats::default();
        eval_governed(&e, &d, &mut pstats, &plain).unwrap();
        assert!(charged <= plain.tuples_used() + stats.memo_hits * stats.max_intermediate as u64);
    }
}
