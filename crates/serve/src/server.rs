//! The query server: accept → admit → snapshot → serve.
//!
//! ## Dataflow
//!
//! One accept-loop thread owns the listener. Each accepted connection is
//! handed to its own thread (thread-per-connection; requests on one
//! connection are served in order). When thread spawn is denied — by the
//! configured [`FaultInjector`] or by the OS — the server *degrades
//! instead of failing*: the connection is served inline on the accept
//! thread, sequentially, with identical responses (the fault suite pins
//! this fallback).
//!
//! Per request the connection thread:
//!
//! 1. **admits** through the shared [`Admission`] controller (bounded
//!    queue, high-priority first; overload is an immediate structured
//!    `err overloaded`, never a stalled accept loop);
//! 2. **snapshots** the database: a brief read-lock to clone the current
//!    `Arc<Database>` — O(1), never blocked by other queries, and the
//!    query runs against exactly this version for its whole life
//!    (MVCC-lite: concurrent mutation swaps the shared pointer and bumps
//!    the version; it never touches a snapshot in use);
//! 3. **serves** through the process-wide [`SharedPlanCache`] via
//!    [`compile_and_eval_shared`] — the *same* code path in-process
//!    callers use, which is why served responses are byte-identical to
//!    local serving (`tests/serve_differential.rs`).
//!
//! Mutations serialize on a dedicated mutate lock and do the expensive
//! part — cloning the database (cheap: relations are `Arc`'d flat
//! buffers) and loading facts — *outside* the write lock; the write lock
//! is held only for the pointer swap. Readers therefore never wait on a
//! mutation in progress.

use crate::admit::{Admission, AdmissionConfig, AdmitError};
use crate::protocol::{
    read_frame, write_frame, DeltaCount, FrameError, QueryOk, Request, Response, Verb, WireError,
    WireLimits, WireStats, MAX_REQUEST_FRAME,
};
use rc_relalg::{Budget, Database, FaultInjector, SharedPlanCache};
use rc_safety::anyrc::compile_and_eval_any_shared;
use rc_safety::pipeline::{
    compile_and_eval_shared, compile_and_eval_traced, CompileOptions, Compiled,
};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Server construction options.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (read it back from
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Admission limits.
    pub admission: AdmissionConfig,
    /// Per-connection read timeout (`None` = block indefinitely).
    pub read_timeout: Option<Duration>,
    /// Fault injector attached to every request budget *and* consulted
    /// for thread-spawn denial (test hook).
    pub fault: Option<FaultInjector>,
    /// Request frame cap (responses are the client's concern).
    pub max_request_frame: u32,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            admission: AdmissionConfig::default(),
            read_timeout: None,
            fault: None,
            max_request_frame: MAX_REQUEST_FRAME,
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    /// The current database, swapped atomically by mutations. Queries
    /// clone the `Arc` under a brief read lock and keep their snapshot
    /// for the whole evaluation.
    db: RwLock<Arc<Database>>,
    /// Serializes mutators so clone+load happens outside the write lock.
    mutate_lock: Mutex<()>,
    /// The process-wide plan/result cache, shared by every client.
    cache: SharedPlanCache<Compiled>,
    admission: Admission,
    fault: Option<FaultInjector>,
    max_request_frame: u32,
    shutdown: AtomicBool,
    // Monotonic counters, exposed via the `stats` verb.
    served: AtomicU64,
    protocol_errors: AtomicU64,
    inline_served: AtomicU64,
    mutations: AtomicU64,
}

/// A running query server. Dropping it shuts it down.
pub struct Server {
    state: Arc<Shared>,
    local_addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
    /// Clones of live connection streams, kept so shutdown can unblock
    /// reads; connection threads to join.
    conns: Arc<Mutex<Vec<TcpStream>>>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind and start serving `db`.
    ///
    /// Starting with `db.clone()` of a database you keep preserves the
    /// version stamp and shares the statistics store (clones share both
    /// until a mutation), so served responses line up with local serving
    /// against the original — the differential suite's setup.
    pub fn start(db: Database, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let state = Arc::new(Shared {
            db: RwLock::new(Arc::new(db)),
            mutate_lock: Mutex::new(()),
            cache: SharedPlanCache::new(),
            admission: Admission::new(cfg.admission),
            fault: cfg.fault.clone(),
            max_request_frame: cfg.max_request_frame,
            shutdown: AtomicBool::new(false),
            served: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            inline_served: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
        });
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::default();
        let handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let accept_state = Arc::clone(&state);
        let accept_conns = Arc::clone(&conns);
        let accept_handles = Arc::clone(&handles);
        let read_timeout = cfg.read_timeout;
        let accept_handle = thread::Builder::new()
            .name("rc-serve-accept".to_string())
            .spawn(move || {
                accept_loop(
                    &listener,
                    &accept_state,
                    &accept_conns,
                    &accept_handles,
                    read_timeout,
                );
            })?;
        Ok(Server {
            state,
            local_addr,
            accept_handle: Some(accept_handle),
            conns,
            handles,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests served so far (any verb, including error responses).
    pub fn served(&self) -> u64 {
        self.state.served.load(Ordering::Relaxed)
    }

    /// Malformed frames/payloads answered with `err proto` so far.
    pub fn protocol_errors(&self) -> u64 {
        self.state.protocol_errors.load(Ordering::Relaxed)
    }

    /// Connections served inline on the accept thread because spawning a
    /// connection thread was denied or failed.
    pub fn inline_served(&self) -> u64 {
        self.state.inline_served.load(Ordering::Relaxed)
    }

    /// Stop accepting, wake all waiters and readers, and join every
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.state.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.state.admission.close();
        // Unblock the accept loop: it checks the flag after each accept.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Unblock connection reads.
        for conn in self
            .conns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        let joins: Vec<_> = self
            .handles
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
            .collect();
        for h in joins {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<TcpStream>>>,
    handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    read_timeout: Option<Duration>,
) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _ = stream.set_read_timeout(read_timeout);
        let _ = stream.set_nodelay(true);
        if let Ok(clone) = stream.try_clone() {
            conns.lock().unwrap_or_else(|p| p.into_inner()).push(clone);
        }
        // Spawn denial (fault injector or OS) degrades to inline,
        // sequential serving on the accept thread: later clients wait
        // behind this one instead of being dropped.
        let spawn_denied = state
            .fault
            .as_ref()
            .is_some_and(|f| !Budget::new().with_fault_injector(f.clone()).spawn_allowed());
        if spawn_denied {
            state.inline_served.fetch_add(1, Ordering::Relaxed);
            serve_connection(state, stream);
            continue;
        }
        // Keep a copy so a failed spawn (the closure consumes `stream`)
        // can still serve this exact socket inline.
        let inline_copy = stream.try_clone();
        let conn_state = Arc::clone(state);
        let spawned = thread::Builder::new()
            .name("rc-serve-conn".to_string())
            .spawn(move || serve_connection(&conn_state, stream));
        match spawned {
            Ok(h) => handles.lock().unwrap_or_else(|p| p.into_inner()).push(h),
            Err(_) => {
                state.inline_served.fetch_add(1, Ordering::Relaxed);
                if let Ok(copy) = inline_copy {
                    serve_connection(state, copy);
                }
            }
        }
    }
}

/// Serve one connection until clean close, fatal protocol error, or
/// shutdown.
fn serve_connection(state: &Arc<Shared>, mut stream: TcpStream) {
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let payload = match read_frame(&mut stream, state.max_request_frame) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean close
            Err(e) => {
                // Structured error, then close: after a framing fault the
                // stream position is untrustworthy.
                state.protocol_errors.fetch_add(1, Ordering::Relaxed);
                if !matches!(e, FrameError::Io(_)) {
                    let resp = Response::Error(WireError::server("proto", e.to_string()));
                    let _ = write_frame(&mut stream, &resp.encode());
                }
                return;
            }
        };
        let response = match Request::parse(&payload) {
            Ok(req) => dispatch(state, &req),
            Err(e) => {
                // The frame itself was sound, so the stream is still in
                // sync; answer and keep serving.
                state.protocol_errors.fetch_add(1, Ordering::Relaxed);
                Response::Error(WireError::proto(&e))
            }
        };
        state.served.fetch_add(1, Ordering::Relaxed);
        if write_frame(&mut stream, &response.encode()).is_err() {
            return; // client went away mid-response
        }
    }
}

fn dispatch(state: &Arc<Shared>, req: &Request) -> Response {
    if state.shutdown.load(Ordering::SeqCst) {
        return Response::Error(WireError::server("shutdown", "server is shutting down"));
    }
    match req.verb {
        Verb::Ping => Response::Pong,
        Verb::Stats => stats_response(state),
        Verb::Mutate => mutate(state, &req.body),
        Verb::Query | Verb::Analyze | Verb::Any => {
            // Admission first: the permit covers compile + eval, and its
            // Drop releases the slot on *every* exit path below.
            let _permit = match state.admission.admit(req.priority) {
                Ok(p) => p,
                Err(AdmitError::Overloaded) => {
                    return Response::Error(WireError::server(
                        "overloaded",
                        "admission queue is full; retry later",
                    ));
                }
                Err(AdmitError::Closed) => {
                    return Response::Error(WireError::server(
                        "shutdown",
                        "server is shutting down",
                    ));
                }
            };
            let snapshot: Arc<Database> = {
                let guard = state.db.read().unwrap_or_else(|p| p.into_inner());
                Arc::clone(&guard)
            };
            let opts = request_options(req, state.fault.as_ref());
            serve_query(state, req, &snapshot, opts)
        }
    }
}

/// Build [`CompileOptions`] from wire headers. A fresh [`Budget`] per
/// request: deadlines arm at construction and tuple counters are
/// cumulative, so budgets must never be shared across requests.
fn request_options(req: &Request, fault: Option<&FaultInjector>) -> CompileOptions {
    let WireLimits {
        tuples,
        nodes,
        ms,
        partitions,
    } = req.limits;
    let mut budget = Budget::new();
    if let Some(t) = tuples {
        budget = budget.with_max_tuples(t);
    }
    if let Some(n) = nodes {
        budget = budget.with_max_nodes(n);
    }
    if let Some(p) = partitions {
        budget = budget.with_partitions(p);
    }
    if let Some(f) = fault {
        budget = budget.with_fault_injector(f.clone());
    }
    if let Some(ms) = ms {
        // Arm the deadline last so construction cost is not on the clock.
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    CompileOptions {
        equality_reduction: req.eqreduce,
        optimize: req.optimize,
        budget,
        planner: req.planner,
        ..CompileOptions::default()
    }
}

fn serve_query(
    state: &Arc<Shared>,
    req: &Request,
    snapshot: &Database,
    opts: CompileOptions,
) -> Response {
    match req.verb {
        Verb::Query => match compile_and_eval_shared(&req.body, snapshot, opts, &state.cache) {
            Ok(out) => Response::Query(QueryOk {
                version: snapshot.version(),
                plan_cached: out.plan_cached,
                result_cached: out.result_cached,
                result_refreshed: out.result_refreshed,
                stats: WireStats::from(&out.stats),
                columns: out.compiled.columns.iter().map(|v| v.to_string()).collect(),
                relation: out.relation,
                trace_json: None,
                any_infinite: None,
                any_infinite_vars: None,
            }),
            Err(e) => Response::Error(WireError::from_pipeline(&e)),
        },
        Verb::Any => {
            // Safe-pair serving ([`rc_safety::anyrc`]): both legs go
            // through the same shared cache, keyed under the request body
            // with salted option keys.
            match compile_and_eval_any_shared(&req.body, snapshot, opts, &state.cache) {
                Ok(out) => Response::Query(QueryOk {
                    version: snapshot.version(),
                    plan_cached: out.plan_cached,
                    result_cached: out.result_cached,
                    result_refreshed: out.result_refreshed,
                    stats: WireStats::from(&out.answer.stats),
                    columns: out.answer.columns.iter().map(|v| v.to_string()).collect(),
                    relation: out.answer.finite,
                    trace_json: None,
                    any_infinite: Some(out.answer.maybe_infinite),
                    any_infinite_vars: Some(out.answer.per_variable),
                }),
                Err(e) => Response::Error(WireError::from_pipeline(&e)),
            }
        }
        Verb::Analyze => {
            // Traced serving: same entry point as local `explain analyze`,
            // including the statistics feedback harvest (the snapshot
            // shares the live database's stats store until a mutation, so
            // observed cardinalities benefit later compilations exactly
            // like in-process analyze runs do).
            let (result, trace) = compile_and_eval_traced(&req.body, snapshot, opts);
            match result {
                Ok(out) => Response::Query(QueryOk {
                    version: snapshot.version(),
                    plan_cached: false,
                    result_cached: false,
                    result_refreshed: false,
                    stats: WireStats::from(&out.stats),
                    columns: out.compiled.columns.iter().map(|v| v.to_string()).collect(),
                    relation: out.relation,
                    trace_json: Some(trace.to_json_deterministic()),
                    any_infinite: None,
                    any_infinite_vars: None,
                }),
                Err(e) => Response::Error(WireError::from_pipeline(&e)),
            }
        }
        _ => unreachable!("serve_query only handles query/analyze/any"),
    }
}

fn mutate(state: &Arc<Shared>, facts: &str) -> Response {
    // Serialize mutators; the expensive clone+apply runs outside the write
    // lock so readers snapshotting concurrently never wait on it.
    let _mutating = state.mutate_lock.lock().unwrap_or_else(|p| p.into_inner());
    let base: Arc<Database> = {
        let guard = state.db.read().unwrap_or_else(|p| p.into_inner());
        Arc::clone(&guard)
    };
    let mut next = (*base).clone();
    // Delta application (rather than a bulk load) records the net change
    // in the clone-shared delta journal, which is what lets the cached
    // serving path *refresh* warm results across this mutation instead of
    // recomputing them. A net no-op leaves the version (and so every
    // cached result) untouched.
    let delta = match next.apply_delta(facts) {
        Ok(d) => d,
        Err(e) => return Response::Error(WireError::server("load", e.to_string())),
    };
    let version = next.version();
    {
        let mut guard = state.db.write().unwrap_or_else(|p| p.into_inner());
        *guard = Arc::new(next);
    }
    state.mutations.fetch_add(1, Ordering::Relaxed);
    Response::Mutate {
        version,
        delta: delta
            .summary()
            .into_iter()
            .map(|(table, inserted, deleted)| DeltaCount {
                table,
                inserted,
                deleted,
            })
            .collect(),
    }
}

fn stats_response(state: &Arc<Shared>) -> Response {
    let version = {
        let guard = state.db.read().unwrap_or_else(|p| p.into_inner());
        guard.version()
    };
    let cache = state.cache.stats();
    let adm = state.admission.stats();
    let pairs = vec![
        ("version".to_string(), version.to_string()),
        (
            "served".to_string(),
            state.served.load(Ordering::Relaxed).to_string(),
        ),
        (
            "mutations".to_string(),
            state.mutations.load(Ordering::Relaxed).to_string(),
        ),
        (
            "protocol_errors".to_string(),
            state.protocol_errors.load(Ordering::Relaxed).to_string(),
        ),
        (
            "inline_served".to_string(),
            state.inline_served.load(Ordering::Relaxed).to_string(),
        ),
        ("plan_hits".to_string(), cache.plan_hits.to_string()),
        ("plan_misses".to_string(), cache.plan_misses.to_string()),
        ("result_hits".to_string(), cache.result_hits.to_string()),
        ("result_misses".to_string(), cache.result_misses.to_string()),
        ("stale_results".to_string(), cache.stale_results.to_string()),
        (
            "refreshed_results".to_string(),
            cache.refreshed_results.to_string(),
        ),
        (
            "evicted_results".to_string(),
            cache.evicted_results.to_string(),
        ),
        ("plans".to_string(), state.cache.plan_count().to_string()),
        ("views".to_string(), state.cache.view_count().to_string()),
        (
            "results".to_string(),
            state.cache.result_count().to_string(),
        ),
        ("active".to_string(), adm.active.to_string()),
        ("queued".to_string(), adm.queued.to_string()),
        ("admitted".to_string(), adm.admitted.to_string()),
        ("rejected".to_string(), adm.rejected.to_string()),
        ("peak_active".to_string(), adm.peak_active.to_string()),
        ("peak_queued".to_string(), adm.peak_queued.to_string()),
    ];
    Response::Stats(pairs)
}
