//! `rc_serve` — run a query server over a fact file.
//!
//! ```text
//! rc_serve [--addr HOST:PORT] [--facts FILE] [--max-active N] [--max-queue N]
//! ```
//!
//! Prints the bound address (`listening on …`) to stdout, then serves
//! until stdin closes (EOF) or the process is killed. Port 0 (the
//! default) picks a free port — scripts read it from the first line.

use rc_relalg::Database;
use rc_serve::{AdmissionConfig, Server, ServerConfig};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:0".to_string();
    let mut facts_path: Option<String> = None;
    let mut admission = AdmissionConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = take("--addr"),
            "--facts" => facts_path = Some(take("--facts")),
            "--max-active" => match take("--max-active").parse() {
                Ok(n) => admission.max_active = n,
                Err(_) => return usage("--max-active needs a number"),
            },
            "--max-queue" => match take("--max-queue").parse() {
                Ok(n) => admission.max_queue = n,
                Err(_) => return usage("--max-queue needs a number"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: rc_serve [--addr HOST:PORT] [--facts FILE] \
                     [--max-active N] [--max-queue N]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument: {other}")),
        }
    }

    let db = match &facts_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match Database::from_facts(&text) {
                Ok(db) => db,
                Err(e) => {
                    eprintln!("rc_serve: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("rc_serve: {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Database::new(),
    };

    let cfg = ServerConfig {
        addr,
        admission,
        ..ServerConfig::default()
    };
    let mut server = match Server::start(db, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rc_serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.local_addr());

    // Serve until stdin closes — lets a parent script hold the server
    // open with a pipe and stop it by closing its end.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    server.shutdown();
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("rc_serve: {msg}");
    ExitCode::from(2)
}
