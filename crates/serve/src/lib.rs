//! # rc-serve
//!
//! A concurrent query-serving layer over the `rcsafe` pipeline: many
//! clients, one database, one process-wide plan cache.
//!
//! The paper's pipeline (classify → genify → ranf → translate → eval) is
//! a pure function of `(query text, database version, statistics epoch)`.
//! This crate exploits that purity to serve it concurrently without
//! changing its semantics:
//!
//! * **MVCC-lite snapshots** — the server holds the current
//!   [`rc_relalg::Database`] behind an `RwLock<Arc<_>>`. A query briefly
//!   read-locks to clone the `Arc` (O(1)) and then runs entirely against
//!   that snapshot; a mutation clones the database (cheap — relations are
//!   `Arc`'d flat buffers), loads facts, and swaps the pointer. Readers
//!   never block mutators and vice versa; every response names the
//!   version it ran against.
//! * **Shared plan cache** — all connections serve through one
//!   [`rc_relalg::SharedPlanCache`] via
//!   [`rc_safety::pipeline::compile_and_eval_shared`]: a formula compiled
//!   for any client is warm for every client, and result entries are
//!   invalidated by version exactly as in-process serving does.
//! * **Admission control** — a bounded two-class priority queue
//!   ([`admit`]) caps concurrent query execution; overload is answered
//!   immediately with a structured error, and the RAII permit guarantees
//!   disconnects release their slot.
//! * **A deterministic wire protocol** — [`protocol`]: length-prefixed
//!   frames, canonical encodings, structured errors (including
//!   [`rc_relalg::govern::BudgetExceeded`] attribution). Served responses
//!   are byte-identical to in-process serving; the repo's differential
//!   suite pins this over the whole paper corpus.
//!
//! ## Quick start
//!
//! ```
//! use rc_relalg::Database;
//! use rc_serve::{Client, Response, Server, ServerConfig};
//!
//! let db = Database::from_facts("P(1)\nP(2)\nQ(1)").unwrap();
//! let server = Server::start(db, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! match client.query("P(x) & !Q(x)").unwrap() {
//!     Response::Query(ok) => assert_eq!(ok.relation.len(), 1),
//!     other => panic!("unexpected response: {other:?}"),
//! }
//! ```

#![deny(missing_docs)]

pub mod admit;
pub mod client;
pub mod protocol;
pub mod server;

pub use admit::{Admission, AdmissionConfig, AdmissionStats, AdmitError, Permit};
pub use client::{Client, ClientError};
pub use protocol::{
    read_frame, write_frame, DeltaCount, FrameError, Priority, ProtoError, QueryOk, Request,
    Response, Verb, WireError, WireLimits, WireStats, MAX_REQUEST_FRAME, MAX_RESPONSE_FRAME,
    PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig};
