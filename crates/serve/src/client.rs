//! A blocking client for the `rc1` wire protocol.
//!
//! One [`Client`] owns one connection; requests on it are answered in
//! order. The raw-frame senders exist for the robustness suite — they let
//! a test put arbitrary bytes on the wire and observe that the server
//! answers with a structured error instead of hanging or dying.

use crate::protocol::{
    read_frame, write_frame, FrameError, ProtoError, Request, Response, Verb, WireError,
    MAX_RESPONSE_FRAME,
};
use std::fmt;
use std::io::{self, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A client-side failure (transport or protocol — *server-reported*
/// errors arrive as [`Response::Error`], not here).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// Connecting or writing failed.
    Io(String),
    /// Reading the response frame failed.
    Frame(FrameError),
    /// The response payload did not parse.
    Proto(ProtoError),
    /// The server closed the connection instead of answering.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e.to_string())
    }
}

/// One connection to an `rc_serve` server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Set a response-read timeout (`None` blocks indefinitely).
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(t)?;
        Ok(())
    }

    /// Send one request and read its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send_raw_frame(&req.encode())?;
        self.read_response()
    }

    /// Read one response frame without sending anything first.
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        match read_frame(&mut self.stream, MAX_RESPONSE_FRAME) {
            Ok(Some(payload)) => Response::parse(&payload).map_err(ClientError::Proto),
            Ok(None) => Err(ClientError::Closed),
            Err(e) => Err(ClientError::Frame(e)),
        }
    }

    /// Frame and send arbitrary payload bytes (robustness tests: garbage
    /// that frames correctly but does not parse).
    pub fn send_raw_frame(&mut self, payload: &[u8]) -> Result<(), ClientError> {
        write_frame(&mut self.stream, payload)?;
        Ok(())
    }

    /// Send arbitrary bytes with *no* framing (robustness tests:
    /// truncated frames, hostile length prefixes).
    pub fn send_raw_bytes(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Half-close the write side, simulating a client that disappears
    /// mid-conversation.
    pub fn shutdown_write(&mut self) -> Result<(), ClientError> {
        self.stream.shutdown(std::net::Shutdown::Write)?;
        Ok(())
    }

    /// `query` with default options; server errors come back as `Err`
    /// with the structured [`WireError`].
    pub fn query(&mut self, text: &str) -> Result<Response, ClientError> {
        self.request(&Request::query(text))
    }

    /// A fully parameterized query.
    pub fn query_with(&mut self, req: Request) -> Result<Response, ClientError> {
        self.request(&req)
    }

    /// Traced evaluation; the response carries deterministic trace JSON.
    pub fn analyze(&mut self, text: &str) -> Result<Response, ClientError> {
        self.request(&Request::analyze(text))
    }

    /// Safe-pair evaluation of an arbitrary formula; the response
    /// carries the active-domain answer plus the `any_infinite` /
    /// `any_infinite_vars` headers.
    pub fn any(&mut self, text: &str) -> Result<Response, ClientError> {
        self.request(&Request::any(text))
    }

    /// Load fact text server-side; returns the new database version on
    /// success.
    pub fn mutate(&mut self, facts: &str) -> Result<Response, ClientError> {
        self.request(&Request::mutate(facts))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::bare(Verb::Ping))
    }

    /// Server statistics as key/value pairs.
    pub fn stats(&mut self) -> Result<Vec<(String, String)>, ClientError> {
        match self.request(&Request::bare(Verb::Stats))? {
            Response::Stats(pairs) => Ok(pairs),
            Response::Error(e) => Err(unexpected(&e)),
            other => Err(ClientError::Proto(ProtoError::BadVerb(format!(
                "expected stats, got {other:?}"
            )))),
        }
    }
}

fn unexpected(e: &WireError) -> ClientError {
    ClientError::Proto(ProtoError::BadVerb(format!(
        "server error {}: {}",
        e.kind, e.message
    )))
}
