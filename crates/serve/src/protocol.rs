//! The wire protocol: length-prefixed frames carrying line-structured
//! requests and responses.
//!
//! ## Framing
//!
//! Every message is one *frame*: a 4-byte big-endian payload length
//! followed by that many payload bytes. Frames make message boundaries
//! explicit on a byte stream, so a reader never scans for terminators and
//! a declared-oversized message is rejected *before* its payload is read
//! ([`FrameError::Oversized`] — the defense against a hostile length
//! prefix). Requests are capped at [`MAX_REQUEST_FRAME`]; responses, which
//! carry whole relations, at the larger [`MAX_RESPONSE_FRAME`].
//!
//! ## Payloads
//!
//! Payloads are UTF-8 text with one shape: a first line `rc1 <kind>`, a
//! run of `key value` header lines, a `.` separator line, and a free-form
//! body. The body carries the query text (requests), fact text
//! (mutations), or the answer relation as TSV rows (responses — encoded by
//! [`rc_relalg::io::write_tsv`], decoded by
//! [`rc_relalg::io::parse_tsv_cell`], so the wire shares the engine's own
//! cell conventions).
//!
//! ## Determinism contract
//!
//! Encoding is canonical: a given [`Response`] value always encodes to the
//! same bytes, field order fixed. Combined with the engine's deterministic
//! evaluation and the deterministic trace projection
//! ([`rc_relalg::trace::PipelineTrace::to_json_deterministic`]), a served
//! response is byte-identical to one computed in-process — the property
//! `tests/serve_differential.rs` pins over the whole paper corpus.

use rc_relalg::govern::{BudgetExceeded, Resource, Stage};
use rc_relalg::io::{parse_tsv_cell, write_tsv};
use rc_relalg::{EvalStats, Relation, RelationBuilder};
use rc_safety::pipeline::{PipelineError, PlannerMode};
use std::fmt;
use std::io::{self, Read, Write};

/// Protocol magic: first token of every payload's first line.
pub const PROTOCOL_VERSION: &str = "rc1";

/// Largest request frame a server accepts (1 MiB — query and fact text).
pub const MAX_REQUEST_FRAME: u32 = 1 << 20;

/// Largest response frame a client accepts (64 MiB — whole relations).
pub const MAX_RESPONSE_FRAME: u32 = 1 << 26;

// ------------------------------------------------------------- framing --

/// A framing failure while reading from the stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed the stream mid-frame (after the length prefix or
    /// mid-payload) — a truncated frame.
    Truncated {
        /// Bytes the length prefix promised.
        expected: usize,
        /// Bytes actually received before EOF.
        got: usize,
    },
    /// The length prefix exceeds the reader's cap; the payload was *not*
    /// read (a hostile prefix cannot make the server allocate or stall).
    Oversized {
        /// The declared payload length.
        len: u32,
        /// The reader's cap.
        max: u32,
    },
    /// The read timed out (only with a read timeout configured).
    TimedOut,
    /// Any other I/O failure, stringified.
    Io(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { expected, got } => {
                write!(f, "truncated frame: got {got} of {expected} payload bytes")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "oversized frame: declared {len} bytes, cap is {max}")
            }
            FrameError::TimedOut => write!(f, "read timed out"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

fn io_frame_error(e: io::Error) -> FrameError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => FrameError::TimedOut,
        _ => FrameError::Io(e.to_string()),
    }
}

/// Write one frame: 4-byte big-endian length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame with payloads capped at `max` bytes.
///
/// Returns `Ok(None)` on a clean close (EOF before any length byte) —
/// the peer is done, not broken. EOF anywhere later is a
/// [`FrameError::Truncated`]; a declared length beyond `max` is rejected
/// as [`FrameError::Oversized`] without reading the payload.
pub fn read_frame(r: &mut impl Read, max: u32) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(FrameError::Truncated {
                        expected: 4,
                        got: filled,
                    })
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_frame_error(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > max {
        return Err(FrameError::Oversized { len, max });
    }
    let mut payload = vec![0u8; len as usize];
    let mut got = 0;
    while got < payload.len() {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    expected: len as usize,
                    got,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_frame_error(e)),
        }
    }
    Ok(Some(payload))
}

// ------------------------------------------------------------ requests --

/// What a request asks the server to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verb {
    /// Compile and evaluate through the shared plan/result cache.
    Query,
    /// Compile and evaluate with tracing on; the response carries the
    /// deterministic trace JSON (the wire form of `explain analyze`).
    Analyze,
    /// Evaluate an *arbitrary* formula via safe-pair translation
    /// ([`rc_safety::anyrc`]): the response carries the finite
    /// (active-domain) answer plus the `any_infinite` /
    /// `any_infinite_vars` headers.
    Any,
    /// Load the body as fact text into the shared database (a new
    /// version; running queries keep their snapshots).
    Mutate,
    /// Liveness probe.
    Ping,
    /// Server/cache/admission statistics.
    Stats,
}

impl Verb {
    fn token(self) -> &'static str {
        match self {
            Verb::Query => "query",
            Verb::Analyze => "analyze",
            Verb::Any => "any",
            Verb::Mutate => "mutate",
            Verb::Ping => "ping",
            Verb::Stats => "stats",
        }
    }

    fn parse(tok: &str) -> Option<Verb> {
        Some(match tok {
            "query" => Verb::Query,
            "analyze" => Verb::Analyze,
            "any" => Verb::Any,
            "mutate" => Verb::Mutate,
            "ping" => Verb::Ping,
            "stats" => Verb::Stats,
            _ => return None,
        })
    }
}

/// Admission priority. High-priority requests are admitted before any
/// waiting normal-priority request (FIFO within each class).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Priority {
    /// The default class.
    #[default]
    Normal,
    /// Admitted ahead of every waiting normal request.
    High,
}

/// Per-request resource limits, carried as header lines and armed into a
/// fresh [`rc_relalg::Budget`] server-side (budgets must never be reused:
/// deadlines start at arm time and tuple consumption is cumulative).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireLimits {
    /// Cap on cumulative intermediate tuples.
    pub tuples: Option<u64>,
    /// Cap on formula/plan nodes during rewriting.
    pub nodes: Option<u64>,
    /// Wall-clock deadline in milliseconds.
    pub ms: Option<u64>,
    /// Forced partition count (1 = sequential kernels).
    pub partitions: Option<usize>,
}

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// What to do.
    pub verb: Verb,
    /// Admission class.
    pub priority: Priority,
    /// Resource limits for this request.
    pub limits: WireLimits,
    /// Run the optimizer (plain queries default on).
    pub optimize: bool,
    /// Attempt equality reduction for wide-sense-evaluable formulas.
    pub eqreduce: bool,
    /// Which planner runs when the optimizer is on (`cost` default,
    /// `saturate` for the equality-saturation layer). Carried as a
    /// `planner` header; the default is omitted from the canonical
    /// encoding.
    pub planner: PlannerMode,
    /// Query text, fact text, or empty (ping/stats).
    pub body: String,
}

impl Request {
    /// A plain query request with default options.
    pub fn query(text: impl Into<String>) -> Request {
        Request {
            verb: Verb::Query,
            priority: Priority::Normal,
            limits: WireLimits::default(),
            optimize: true,
            eqreduce: true,
            planner: PlannerMode::Cost,
            body: text.into(),
        }
    }

    /// An `analyze` request (traced evaluation) with default options.
    pub fn analyze(text: impl Into<String>) -> Request {
        Request {
            verb: Verb::Analyze,
            ..Request::query(text)
        }
    }

    /// An `any` request (safe-pair evaluation of an arbitrary formula)
    /// with default options.
    pub fn any(text: impl Into<String>) -> Request {
        Request {
            verb: Verb::Any,
            ..Request::query(text)
        }
    }

    /// A mutation request carrying fact text.
    pub fn mutate(facts: impl Into<String>) -> Request {
        Request {
            verb: Verb::Mutate,
            ..Request::query(facts)
        }
    }

    /// A bodyless request (ping/stats).
    pub fn bare(verb: Verb) -> Request {
        Request {
            verb,
            ..Request::query("")
        }
    }

    /// Canonical encoding (the byte-identity contract's request half:
    /// equal requests encode equal).
    pub fn encode(&self) -> Vec<u8> {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{PROTOCOL_VERSION} {}", self.verb.token());
        if self.priority == Priority::High {
            out.push_str("pri high\n");
        }
        if let Some(t) = self.limits.tuples {
            let _ = writeln!(out, "tuples {t}");
        }
        if let Some(n) = self.limits.nodes {
            let _ = writeln!(out, "nodes {n}");
        }
        if let Some(ms) = self.limits.ms {
            let _ = writeln!(out, "ms {ms}");
        }
        if let Some(p) = self.limits.partitions {
            let _ = writeln!(out, "partitions {p}");
        }
        if !self.optimize {
            out.push_str("optimize off\n");
        }
        if !self.eqreduce {
            out.push_str("eqreduce off\n");
        }
        if self.planner != PlannerMode::Cost {
            let _ = writeln!(out, "planner {}", self.planner.token());
        }
        out.push_str(".\n");
        out.push_str(&self.body);
        out.into_bytes()
    }

    /// Parse a request payload; every malformation is a structured
    /// [`ProtoError`] the server answers with (never a panic).
    pub fn parse(payload: &[u8]) -> Result<Request, ProtoError> {
        let (verb_tok, headers, body) = split_payload(payload)?;
        let verb = Verb::parse(verb_tok).ok_or_else(|| ProtoError::BadVerb(verb_tok.into()))?;
        let mut req = Request {
            verb,
            ..Request::query(body)
        };
        for (key, value) in headers {
            match key {
                "pri" => {
                    req.priority = match value {
                        "high" => Priority::High,
                        "normal" => Priority::Normal,
                        other => return Err(ProtoError::BadHeader(format!("pri {other}"))),
                    }
                }
                "tuples" => req.limits.tuples = Some(parse_num(key, value)?),
                "nodes" => req.limits.nodes = Some(parse_num(key, value)?),
                "ms" => req.limits.ms = Some(parse_num(key, value)?),
                "partitions" => {
                    req.limits.partitions = Some(parse_num(key, value)?.max(1) as usize)
                }
                "optimize" => req.optimize = parse_on_off(key, value)?,
                "eqreduce" => req.eqreduce = parse_on_off(key, value)?,
                "planner" => {
                    req.planner = PlannerMode::parse(value)
                        .ok_or_else(|| ProtoError::BadHeader(format!("planner {value}")))?
                }
                other => return Err(ProtoError::BadHeader(other.into())),
            }
        }
        Ok(req)
    }
}

fn parse_num(key: &str, value: &str) -> Result<u64, ProtoError> {
    value
        .parse::<u64>()
        .map_err(|_| ProtoError::BadHeader(format!("{key} {value}")))
}

fn parse_on_off(key: &str, value: &str) -> Result<bool, ProtoError> {
    match value {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(ProtoError::BadHeader(format!("{key} {other}"))),
    }
}

/// A parsed payload: the first-line verb token, the header pairs, and
/// the body text.
type SplitPayload<'a> = (&'a str, Vec<(&'a str, &'a str)>, String);

/// Split a payload into (first-line verb token, header pairs, body).
/// Shared by request and response parsing.
fn split_payload(payload: &[u8]) -> Result<SplitPayload<'_>, ProtoError> {
    let text = std::str::from_utf8(payload).map_err(|_| ProtoError::NotUtf8)?;
    let mut lines = text.split('\n');
    let first = lines.next().unwrap_or("");
    let mut first_words = first.splitn(2, ' ');
    let magic = first_words.next().unwrap_or("");
    if magic != PROTOCOL_VERSION {
        return Err(ProtoError::BadMagic(truncate_for_report(first)));
    }
    let verb = first_words.next().unwrap_or("").trim();
    let mut headers = Vec::new();
    let mut body_at = None;
    let mut consumed = first.len() + 1;
    for line in lines {
        if line == "." {
            body_at = Some(consumed + 2);
            break;
        }
        consumed += line.len() + 1;
        let mut words = line.splitn(2, ' ');
        let key = words.next().unwrap_or("");
        let value = words.next().unwrap_or("").trim_end_matches('\r');
        headers.push((key, value));
    }
    let body_at = body_at.ok_or(ProtoError::MissingBody)?;
    let body = text.get(body_at..).unwrap_or("").to_string();
    Ok((verb, headers, body))
}

fn truncate_for_report(s: &str) -> String {
    const LIMIT: usize = 64;
    if s.len() <= LIMIT {
        s.to_string()
    } else {
        let mut end = LIMIT;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

/// A malformed payload (the protocol layer's own error taxonomy; the
/// server answers these with an `err proto` response).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload is not UTF-8.
    NotUtf8,
    /// The first line does not start with the protocol magic.
    BadMagic(String),
    /// Unknown verb / response kind token.
    BadVerb(String),
    /// A header line failed to parse.
    BadHeader(String),
    /// The `.` body separator never appeared.
    MissingBody,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::NotUtf8 => write!(f, "payload is not UTF-8"),
            ProtoError::BadMagic(l) => write!(f, "bad magic line: {l:?}"),
            ProtoError::BadVerb(v) => write!(f, "unknown verb: {v:?}"),
            ProtoError::BadHeader(h) => write!(f, "bad header: {h:?}"),
            ProtoError::MissingBody => write!(f, "missing `.` body separator"),
        }
    }
}

impl std::error::Error for ProtoError {}

// ----------------------------------------------------------- responses --

/// Evaluation counters on the wire — a faithful mirror of [`EvalStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Operator nodes evaluated.
    pub operators: u64,
    /// Total tuples produced (including intermediates).
    pub tuples_produced: u64,
    /// Largest intermediate relation observed.
    pub max_intermediate: u64,
    /// Cooperative budget checkpoints passed.
    pub budget_checks: u64,
    /// Memo-table services ([`rc_relalg::eval_shared`]).
    pub memo_hits: u64,
}

impl From<&EvalStats> for WireStats {
    fn from(s: &EvalStats) -> WireStats {
        WireStats {
            operators: s.operators,
            tuples_produced: s.tuples_produced,
            max_intermediate: s.max_intermediate as u64,
            budget_checks: s.budget_checks,
            memo_hits: s.memo_hits,
        }
    }
}

/// A successful query/analyze response.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryOk {
    /// The database version the query ran against (its MVCC-lite
    /// snapshot identity).
    pub version: u64,
    /// Was compilation skipped via the shared plan cache?
    pub plan_cached: bool,
    /// Was evaluation skipped via the shared result cache?
    pub result_cached: bool,
    /// Was the cached result *advanced* through the delta journal
    /// (incremental view maintenance, DESIGN.md §14) rather than served
    /// verbatim? Always implies `result_cached`; false on a verbatim hit
    /// or a full (re-)evaluation.
    pub result_refreshed: bool,
    /// Evaluation counters.
    pub stats: WireStats,
    /// Answer column names, in order (empty for boolean queries).
    pub columns: Vec<String>,
    /// The answer relation (canonical row order, so encoding is
    /// deterministic).
    pub relation: Relation,
    /// Deterministic trace JSON (`analyze` only).
    pub trace_json: Option<String>,
    /// Safe-pair infiniteness flag (`any` only): does the answer under
    /// an infinite domain contain tuples outside the active domain?
    /// `None` on ordinary query/analyze responses, so their encodings
    /// are unchanged.
    pub any_infinite: Option<bool>,
    /// Safe-pair per-column infiniteness mask (`any` only), parallel to
    /// `columns`.
    pub any_infinite_vars: Option<Vec<bool>>,
}

/// A structured error response; `kind` names the failure class and the
/// budget fields survive serialization so a client can reconstruct the
/// exact [`BudgetExceeded`] attribution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Failure class: `parse`, `notsafe`, `budget`, `ranf`, `translate`,
    /// `eval`, `load`, `proto`, `overloaded`, or `shutdown`.
    pub kind: String,
    /// The pipeline stage attributed (pipeline failures only).
    pub stage: Option<String>,
    /// The tripped resource token (budget failures only):
    /// `wallclock`/`tuples`/`nodes`/`cancelled`.
    pub resource: Option<String>,
    /// The configured limit (budget failures only).
    pub limit: Option<u64>,
    /// Consumption at the trip (budget failures only).
    pub used: Option<u64>,
    /// Human-readable message.
    pub message: String,
}

fn resource_token(r: Resource) -> &'static str {
    match r {
        Resource::WallClock => "wallclock",
        Resource::Tuples => "tuples",
        Resource::Nodes => "nodes",
        Resource::Cancelled => "cancelled",
    }
}

fn parse_resource(tok: &str) -> Option<Resource> {
    Some(match tok {
        "wallclock" => Resource::WallClock,
        "tuples" => Resource::Tuples,
        "nodes" => Resource::Nodes,
        "cancelled" => Resource::Cancelled,
        _ => return None,
    })
}

fn parse_stage(tok: &str) -> Option<Stage> {
    Some(match tok {
        "parse" => Stage::Parse,
        "classify" => Stage::Classify,
        "genify" => Stage::Genify,
        "ranf" => Stage::Ranf,
        "translate" => Stage::Translate,
        "optimize" => Stage::Optimize,
        "eval" => Stage::Eval,
        "maintain" => Stage::Maintain,
        _ => return None,
    })
}

impl WireError {
    /// The wire form of a pipeline failure: kind from the variant, stage
    /// attribution always, budget details when a resource tripped.
    pub fn from_pipeline(e: &PipelineError) -> WireError {
        let kind = match e {
            PipelineError::Parse(_) => "parse",
            PipelineError::NotSafe(_) => "notsafe",
            PipelineError::Budget(_) => "budget",
            PipelineError::Ranf(_) => "ranf",
            PipelineError::Translate(_) => "translate",
            PipelineError::Eval(_) => "eval",
        };
        let budget = e.budget();
        WireError {
            kind: kind.to_string(),
            stage: Some(e.stage().to_string()),
            resource: budget.map(|b| resource_token(b.resource).to_string()),
            limit: budget.map(|b| b.limit),
            used: budget.map(|b| b.used),
            message: e.to_string(),
        }
    }

    /// A protocol-layer error response.
    pub fn proto(e: &ProtoError) -> WireError {
        WireError {
            kind: "proto".to_string(),
            stage: None,
            resource: None,
            limit: None,
            used: None,
            message: e.to_string(),
        }
    }

    /// A server-condition error (e.g. `overloaded`, `shutdown`, `load`).
    pub fn server(kind: &str, message: impl Into<String>) -> WireError {
        WireError {
            kind: kind.to_string(),
            stage: None,
            resource: None,
            limit: None,
            used: None,
            message: message.into(),
        }
    }

    /// Reconstruct the structured [`BudgetExceeded`] this error carried,
    /// if it was a budget trip — the round-trip the differential suite
    /// asserts ("stage attribution survives serialization").
    pub fn to_budget(&self) -> Option<BudgetExceeded> {
        if self.kind != "budget" {
            return None;
        }
        Some(BudgetExceeded {
            stage: parse_stage(self.stage.as_deref()?)?,
            resource: parse_resource(self.resource.as_deref()?)?,
            limit: self.limit?,
            used: self.used?,
        })
    }
}

/// Net insert/delete counts for one table, as carried in a mutate
/// response body (`<table> +<inserted> -<deleted>` per line, sorted by
/// table name).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaCount {
    /// The table (predicate) name.
    pub table: String,
    /// Rows actually inserted (absent before, present after).
    pub inserted: u64,
    /// Rows actually deleted (present before, absent after).
    pub deleted: u64,
}

/// One parsed response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A served query/analyze answer.
    Query(QueryOk),
    /// A mutation applied; carries the new database version and the net
    /// per-table delta actually applied (empty for a no-op mutation,
    /// which also leaves the version unchanged).
    Mutate {
        /// The database version after the mutation.
        version: u64,
        /// Net per-table insert/delete counts, sorted by table name. A
        /// duplicate insert or an absent-fact delete nets out to nothing
        /// and so never appears here.
        delta: Vec<DeltaCount>,
    },
    /// Ping reply.
    Pong,
    /// Server statistics as ordered key/value pairs.
    Stats(Vec<(String, String)>),
    /// A structured failure.
    Error(WireError),
}

impl Response {
    /// Canonical encoding: equal responses encode to equal bytes (fixed
    /// field order, canonical relation row order, deterministic trace
    /// projection).
    pub fn encode(&self) -> Vec<u8> {
        use std::fmt::Write as _;
        let mut out = String::new();
        match self {
            Response::Query(ok) => {
                let _ = writeln!(out, "{PROTOCOL_VERSION} ok query");
                let _ = writeln!(out, "version {}", ok.version);
                let _ = writeln!(out, "plan_cached {}", u8::from(ok.plan_cached));
                let _ = writeln!(out, "result_cached {}", u8::from(ok.result_cached));
                let _ = writeln!(out, "result_refreshed {}", u8::from(ok.result_refreshed));
                let _ = writeln!(out, "operators {}", ok.stats.operators);
                let _ = writeln!(out, "tuples_produced {}", ok.stats.tuples_produced);
                let _ = writeln!(out, "max_intermediate {}", ok.stats.max_intermediate);
                let _ = writeln!(out, "budget_checks {}", ok.stats.budget_checks);
                let _ = writeln!(out, "memo_hits {}", ok.stats.memo_hits);
                if let Some(inf) = ok.any_infinite {
                    let _ = writeln!(out, "any_infinite {}", u8::from(inf));
                }
                if let Some(mask) = &ok.any_infinite_vars {
                    let bits = if mask.is_empty() {
                        "-".to_string()
                    } else {
                        mask.iter()
                            .map(|&b| if b { "1" } else { "0" })
                            .collect::<Vec<_>>()
                            .join(",")
                    };
                    let _ = writeln!(out, "any_infinite_vars {bits}");
                }
                let cols = if ok.columns.is_empty() {
                    "-".to_string()
                } else {
                    ok.columns.join(",")
                };
                let _ = writeln!(out, "columns {cols}");
                let _ = writeln!(out, "arity {}", ok.relation.arity());
                let _ = writeln!(out, "rows {}", ok.relation.len());
                out.push_str(".\n");
                if ok.relation.arity() > 0 {
                    let mut buf = Vec::new();
                    write_tsv(&ok.relation, &mut buf).expect("write to Vec cannot fail");
                    out.push_str(std::str::from_utf8(&buf).expect("TSV is UTF-8"));
                }
                if let Some(trace) = &ok.trace_json {
                    out.push_str(trace);
                    out.push('\n');
                }
            }
            Response::Mutate { version, delta } => {
                let _ = writeln!(out, "{PROTOCOL_VERSION} ok mutate");
                let _ = writeln!(out, "version {version}");
                out.push_str(".\n");
                // Body: one `<table> +<inserted> -<deleted>` line per
                // table with a nonzero net change, in the (sorted) order
                // the server reported.
                for d in delta {
                    let _ = writeln!(out, "{} +{} -{}", d.table, d.inserted, d.deleted);
                }
            }
            Response::Pong => {
                let _ = writeln!(out, "{PROTOCOL_VERSION} ok pong");
                out.push_str(".\n");
            }
            Response::Stats(pairs) => {
                let _ = writeln!(out, "{PROTOCOL_VERSION} ok stats");
                out.push_str(".\n");
                for (k, v) in pairs {
                    let _ = writeln!(out, "{k} {v}");
                }
            }
            Response::Error(e) => {
                let _ = writeln!(out, "{PROTOCOL_VERSION} err {}", e.kind);
                if let Some(stage) = &e.stage {
                    let _ = writeln!(out, "stage {stage}");
                }
                if let Some(resource) = &e.resource {
                    let _ = writeln!(out, "resource {resource}");
                }
                if let Some(limit) = e.limit {
                    let _ = writeln!(out, "limit {limit}");
                }
                if let Some(used) = e.used {
                    let _ = writeln!(out, "used {used}");
                }
                out.push_str(".\n");
                out.push_str(&e.message);
            }
        }
        out.into_bytes()
    }

    /// Parse a response payload.
    pub fn parse(payload: &[u8]) -> Result<Response, ProtoError> {
        let (kind_tok, headers, body) = split_payload(payload)?;
        let mut words = kind_tok.splitn(2, ' ');
        let status = words.next().unwrap_or("");
        let kind = words.next().unwrap_or("").trim();
        match status {
            "ok" => match kind {
                "query" => parse_query_ok(&headers, &body)
                    .ok_or_else(|| ProtoError::BadHeader("incomplete query response".to_string())),
                "mutate" => {
                    let version = header_num(&headers, "version")
                        .ok_or_else(|| ProtoError::BadHeader("version".to_string()))?;
                    let delta = body
                        .lines()
                        .filter(|l| !l.is_empty())
                        .map(parse_delta_count)
                        .collect::<Option<Vec<DeltaCount>>>()
                        .ok_or_else(|| ProtoError::BadHeader("delta summary".to_string()))?;
                    Ok(Response::Mutate { version, delta })
                }
                "pong" => Ok(Response::Pong),
                "stats" => Ok(Response::Stats(
                    body.lines()
                        .filter(|l| !l.is_empty())
                        .map(|l| {
                            let mut w = l.splitn(2, ' ');
                            (
                                w.next().unwrap_or("").to_string(),
                                w.next().unwrap_or("").to_string(),
                            )
                        })
                        .collect(),
                )),
                other => Err(ProtoError::BadVerb(other.into())),
            },
            "err" => {
                let e = WireError {
                    kind: kind.to_string(),
                    stage: header_str(&headers, "stage"),
                    resource: header_str(&headers, "resource"),
                    limit: header_num(&headers, "limit"),
                    used: header_num(&headers, "used"),
                    message: body,
                };
                Ok(Response::Error(e))
            }
            other => Err(ProtoError::BadVerb(other.into())),
        }
    }
}

fn header_str(headers: &[(&str, &str)], key: &str) -> Option<String> {
    headers
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v.to_string())
}

fn header_num(headers: &[(&str, &str)], key: &str) -> Option<u64> {
    header_str(headers, key)?.parse().ok()
}

/// Parse one `<table> +<inserted> -<deleted>` mutate-body line.
fn parse_delta_count(line: &str) -> Option<DeltaCount> {
    let mut parts = line.rsplitn(3, ' ');
    let deleted = parts.next()?.strip_prefix('-')?.parse().ok()?;
    let inserted = parts.next()?.strip_prefix('+')?.parse().ok()?;
    let table = parts.next()?.to_string();
    Some(DeltaCount {
        table,
        inserted,
        deleted,
    })
}

fn parse_query_ok(headers: &[(&str, &str)], body: &str) -> Option<Response> {
    let version = header_num(headers, "version")?;
    let plan_cached = header_num(headers, "plan_cached")? != 0;
    let result_cached = header_num(headers, "result_cached")? != 0;
    let result_refreshed = header_num(headers, "result_refreshed")? != 0;
    let stats = WireStats {
        operators: header_num(headers, "operators")?,
        tuples_produced: header_num(headers, "tuples_produced")?,
        max_intermediate: header_num(headers, "max_intermediate")?,
        budget_checks: header_num(headers, "budget_checks")?,
        memo_hits: header_num(headers, "memo_hits")?,
    };
    let cols_raw = header_str(headers, "columns")?;
    let columns: Vec<String> = if cols_raw == "-" {
        Vec::new()
    } else {
        cols_raw.split(',').map(|s| s.to_string()).collect()
    };
    let arity = header_num(headers, "arity")? as usize;
    let rows = header_num(headers, "rows")? as usize;
    let mut lines = body.lines();
    let relation = if arity == 0 {
        if rows > 0 {
            Relation::unit()
        } else {
            Relation::empty_nullary()
        }
    } else {
        let mut b = RelationBuilder::with_capacity(arity, rows);
        for _ in 0..rows {
            let line = lines.next()?;
            let vals: Vec<_> = line.split('\t').map(parse_tsv_cell).collect();
            if vals.len() != arity {
                return None;
            }
            b.push_row(&vals);
        }
        b.finish()
    };
    let trace: String = lines.collect::<Vec<_>>().join("\n");
    let trace_json = if trace.is_empty() { None } else { Some(trace) };
    let any_infinite = header_str(headers, "any_infinite").map(|v| v != "0");
    let any_infinite_vars = header_str(headers, "any_infinite_vars").map(|raw| {
        if raw == "-" {
            Vec::new()
        } else {
            raw.split(',').map(|b| b == "1").collect()
        }
    });
    Some(Response::Query(QueryOk {
        version,
        plan_cached,
        result_cached,
        result_refreshed,
        stats,
        columns,
        relation,
        trace_json,
        any_infinite,
        any_infinite_vars,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_relalg::tuple;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_rejected_without_reading_payload() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        // No payload at all: the cap check must fire before any read.
        let err = read_frame(&mut buf.as_slice(), 1024).unwrap_err();
        assert_eq!(
            err,
            FrameError::Oversized {
                len: u32::MAX,
                max: 1024
            }
        );
    }

    #[test]
    fn truncated_frames_are_structured_errors() {
        // EOF mid-length.
        let err = read_frame(&mut &[0u8, 0][..], 1024).unwrap_err();
        assert_eq!(
            err,
            FrameError::Truncated {
                expected: 4,
                got: 2
            }
        );
        // EOF mid-payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        let err = read_frame(&mut buf.as_slice(), 1024).unwrap_err();
        assert_eq!(
            err,
            FrameError::Truncated {
                expected: 8,
                got: 3
            }
        );
    }

    #[test]
    fn request_roundtrip_all_fields() {
        let req = Request {
            verb: Verb::Analyze,
            priority: Priority::High,
            limits: WireLimits {
                tuples: Some(10),
                nodes: Some(20),
                ms: Some(30),
                partitions: Some(4),
            },
            optimize: false,
            eqreduce: false,
            planner: PlannerMode::Saturate,
            body: "P(x) & Q(x, y)\nsecond line".to_string(),
        };
        assert_eq!(Request::parse(&req.encode()).unwrap(), req);
        let plain = Request::query("P(x)");
        assert_eq!(Request::parse(&plain.encode()).unwrap(), plain);
    }

    #[test]
    fn planner_header_roundtrips_and_rejects_unknown_modes() {
        // The default mode is omitted from the canonical encoding.
        let plain = Request::query("P(x)");
        assert!(!String::from_utf8(plain.encode())
            .unwrap()
            .contains("planner"));
        let sat = Request {
            planner: PlannerMode::Saturate,
            ..Request::query("P(x)")
        };
        let bytes = sat.encode();
        assert!(String::from_utf8(bytes.clone())
            .unwrap()
            .contains("planner saturate\n"));
        assert_eq!(Request::parse(&bytes).unwrap(), sat);
        assert!(matches!(
            Request::parse(b"rc1 query\nplanner quantum\n.\nP(x)"),
            Err(ProtoError::BadHeader(_))
        ));
    }

    #[test]
    fn request_rejects_malformed_payloads() {
        assert_eq!(Request::parse(&[0xff, 0xfe]), Err(ProtoError::NotUtf8));
        assert!(matches!(
            Request::parse(b"http GET /\n.\n"),
            Err(ProtoError::BadMagic(_))
        ));
        assert!(matches!(
            Request::parse(b"rc1 frobnicate\n.\n"),
            Err(ProtoError::BadVerb(_))
        ));
        assert!(matches!(
            Request::parse(b"rc1 query\ntuples lots\n.\n"),
            Err(ProtoError::BadHeader(_))
        ));
        assert_eq!(
            Request::parse(b"rc1 query\nno separator"),
            Err(ProtoError::MissingBody)
        );
    }

    #[test]
    fn query_response_roundtrip() {
        let resp = Response::Query(QueryOk {
            version: 42,
            plan_cached: true,
            result_cached: false,
            result_refreshed: false,
            stats: WireStats {
                operators: 3,
                tuples_produced: 7,
                max_intermediate: 5,
                budget_checks: 4,
                memo_hits: 1,
            },
            columns: vec!["x".to_string(), "y".to_string()],
            relation: Relation::from_rows(2, [tuple([1i64, 2]), tuple([3i64, 4])]),
            trace_json: Some("{\"stages\":[],\"eval\":null}".to_string()),
            any_infinite: None,
            any_infinite_vars: None,
        });
        assert_eq!(Response::parse(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn any_response_roundtrips_infiniteness_headers() {
        for (inf, mask) in [
            (true, vec![true, false]),
            (false, vec![false, false]),
            (false, Vec::new()),
        ] {
            let resp = Response::Query(QueryOk {
                version: 3,
                plan_cached: false,
                result_cached: false,
                result_refreshed: false,
                stats: WireStats::default(),
                columns: mask
                    .iter()
                    .enumerate()
                    .map(|(i, _)| format!("v{i}"))
                    .collect(),
                relation: if mask.is_empty() {
                    Relation::unit()
                } else {
                    Relation::from_rows(mask.len(), [tuple([1i64, 2])])
                },
                trace_json: None,
                any_infinite: Some(inf),
                any_infinite_vars: Some(mask),
            });
            assert_eq!(Response::parse(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn plain_query_encoding_has_no_any_headers() {
        let resp = Response::Query(QueryOk {
            version: 1,
            plan_cached: false,
            result_cached: false,
            result_refreshed: false,
            stats: WireStats::default(),
            columns: Vec::new(),
            relation: Relation::unit(),
            trace_json: None,
            any_infinite: None,
            any_infinite_vars: None,
        });
        let text = String::from_utf8(resp.encode()).unwrap();
        assert!(!text.contains("any_infinite"));
    }

    #[test]
    fn boolean_response_roundtrip() {
        for rel in [Relation::unit(), Relation::empty_nullary()] {
            let resp = Response::Query(QueryOk {
                version: 1,
                plan_cached: false,
                result_cached: false,
                result_refreshed: false,
                stats: WireStats::default(),
                columns: Vec::new(),
                relation: rel,
                trace_json: None,
                any_infinite: None,
                any_infinite_vars: None,
            });
            assert_eq!(Response::parse(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn budget_error_attribution_roundtrips() {
        let b = BudgetExceeded {
            stage: Stage::Eval,
            resource: Resource::Tuples,
            limit: 100,
            used: 105,
        };
        let wire = WireError::from_pipeline(&PipelineError::Budget(b));
        let enc = Response::Error(wire).encode();
        match Response::parse(&enc).unwrap() {
            Response::Error(e) => {
                assert_eq!(e.to_budget(), Some(b));
                assert_eq!(e.kind, "budget");
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn stats_and_control_responses_roundtrip() {
        let stats = Response::Stats(vec![
            ("version".to_string(), "9".to_string()),
            ("plan_hits".to_string(), "3".to_string()),
        ]);
        assert_eq!(Response::parse(&stats.encode()).unwrap(), stats);
        assert_eq!(
            Response::parse(&Response::Pong.encode()).unwrap(),
            Response::Pong
        );
        let m = Response::Mutate {
            version: 7,
            delta: vec![],
        };
        assert_eq!(Response::parse(&m.encode()).unwrap(), m);
        let m = Response::Mutate {
            version: 9,
            delta: vec![
                DeltaCount {
                    table: "P".to_string(),
                    inserted: 3,
                    deleted: 1,
                },
                DeltaCount {
                    table: "Some Table".to_string(),
                    inserted: 0,
                    deleted: 2,
                },
            ],
        };
        assert_eq!(Response::parse(&m.encode()).unwrap(), m);
    }
}
