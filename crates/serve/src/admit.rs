//! Admission control: a bounded, two-class priority queue in front of
//! query execution.
//!
//! The server admits at most `max_active` queries at once; the rest wait
//! on a condvar in FIFO order within their priority class, high-priority
//! tickets strictly before normal ones. A full queue rejects immediately
//! ([`AdmitError::Overloaded`]) rather than stalling the accept loop —
//! back-pressure is explicit and bounded.
//!
//! Admission hands back an RAII [`Permit`]; dropping it (normal
//! completion, error return, or client disconnect mid-query) releases the
//! slot and wakes a waiter. That drop-based release is what the fault
//! suite leans on: no path out of a served request can leak a slot.

use crate::protocol::Priority;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Admission limits.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Queries allowed to run concurrently.
    pub max_active: usize,
    /// Tickets allowed to wait beyond the active set before new arrivals
    /// are rejected as overloaded.
    pub max_queue: usize,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_active: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(2),
            max_queue: 1024,
        }
    }
}

/// Why admission failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The wait queue is full; the caller should answer `overloaded`.
    Overloaded,
    /// The controller was closed (server shutdown) while waiting.
    Closed,
}

#[derive(Debug, Default)]
struct State {
    active: usize,
    /// Waiting ticket ids, FIFO per class.
    queue_high: VecDeque<u64>,
    queue_normal: VecDeque<u64>,
    next_ticket: u64,
    closed: bool,
    // Counters (monotonic, exposed via `stats`).
    admitted: u64,
    rejected: u64,
    peak_active: usize,
    peak_queued: usize,
}

impl State {
    fn queued(&self) -> usize {
        self.queue_high.len() + self.queue_normal.len()
    }

    /// Is `ticket` first in line for a free slot?
    fn my_turn(&self, ticket: u64, pri: Priority) -> bool {
        match pri {
            Priority::High => self.queue_high.front() == Some(&ticket),
            Priority::Normal => {
                self.queue_high.is_empty() && self.queue_normal.front() == Some(&ticket)
            }
        }
    }
}

/// The admission controller. One per server; shared by all connection
/// threads.
#[derive(Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    state: Mutex<State>,
    cv: Condvar,
}

/// A running-query slot. Dropping it releases the slot and wakes the
/// next waiter — hold it for exactly the duration of query execution.
#[derive(Debug)]
pub struct Permit<'a> {
    owner: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.owner.lock_state();
        st.active -= 1;
        drop(st);
        self.owner.cv.notify_all();
    }
}

/// A point-in-time snapshot of admission counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Currently running queries.
    pub active: usize,
    /// Currently waiting tickets.
    pub queued: usize,
    /// Total admissions granted.
    pub admitted: u64,
    /// Total overload rejections.
    pub rejected: u64,
    /// High-water mark of concurrently running queries.
    pub peak_active: usize,
    /// High-water mark of the wait queue.
    pub peak_queued: usize,
}

impl Admission {
    /// A controller with the given limits (`max_active` is clamped to at
    /// least 1).
    pub fn new(cfg: AdmissionConfig) -> Admission {
        Admission {
            cfg: AdmissionConfig {
                max_active: cfg.max_active.max(1),
                ..cfg
            },
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        // A panic while holding the lock leaves only counters in a stale
        // state; recover rather than propagating poison to every client.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Block until a slot frees up (honoring priority order), the queue
    /// overflows, or the controller closes.
    pub fn admit(&self, pri: Priority) -> Result<Permit<'_>, AdmitError> {
        let mut st = self.lock_state();
        if st.closed {
            return Err(AdmitError::Closed);
        }
        // Fast path: free slot and nobody with priority over us waiting.
        let can_jump = st.active < self.cfg.max_active
            && match pri {
                Priority::High => st.queue_high.is_empty(),
                Priority::Normal => st.queued() == 0,
            };
        if can_jump {
            st.active += 1;
            st.admitted += 1;
            st.peak_active = st.peak_active.max(st.active);
            return Ok(Permit { owner: self });
        }
        if st.queued() >= self.cfg.max_queue {
            st.rejected += 1;
            return Err(AdmitError::Overloaded);
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        match pri {
            Priority::High => st.queue_high.push_back(ticket),
            Priority::Normal => st.queue_normal.push_back(ticket),
        }
        st.peak_queued = st.peak_queued.max(st.queued());
        loop {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
            if st.closed {
                remove_ticket(&mut st, ticket, pri);
                return Err(AdmitError::Closed);
            }
            if st.active < self.cfg.max_active && st.my_turn(ticket, pri) {
                remove_ticket(&mut st, ticket, pri);
                st.active += 1;
                st.admitted += 1;
                st.peak_active = st.peak_active.max(st.active);
                return Ok(Permit { owner: self });
            }
        }
    }

    /// Close the controller: all current and future waiters get
    /// [`AdmitError::Closed`]. Used on server shutdown.
    pub fn close(&self) {
        let mut st = self.lock_state();
        st.closed = true;
        drop(st);
        self.cv.notify_all();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AdmissionStats {
        let st = self.lock_state();
        AdmissionStats {
            active: st.active,
            queued: st.queued(),
            admitted: st.admitted,
            rejected: st.rejected,
            peak_active: st.peak_active,
            peak_queued: st.peak_queued,
        }
    }
}

fn remove_ticket(st: &mut State, ticket: u64, pri: Priority) {
    let q = match pri {
        Priority::High => &mut st.queue_high,
        Priority::Normal => &mut st.queue_normal,
    };
    if let Some(pos) = q.iter().position(|&t| t == ticket) {
        q.remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn caps_concurrency_and_releases_on_drop() {
        let adm = Admission::new(AdmissionConfig {
            max_active: 1,
            max_queue: 8,
        });
        let p1 = adm.admit(Priority::Normal).unwrap();
        assert_eq!(adm.stats().active, 1);
        drop(p1);
        assert_eq!(adm.stats().active, 0);
        let _p2 = adm.admit(Priority::Normal).unwrap();
        assert_eq!(adm.stats().admitted, 2);
    }

    #[test]
    fn full_queue_rejects_immediately() {
        let adm = Admission::new(AdmissionConfig {
            max_active: 1,
            max_queue: 0,
        });
        let _p = adm.admit(Priority::Normal).unwrap();
        assert!(matches!(
            adm.admit(Priority::Normal),
            Err(AdmitError::Overloaded)
        ));
        assert_eq!(adm.stats().rejected, 1);
    }

    #[test]
    fn close_wakes_waiters() {
        let adm = Arc::new(Admission::new(AdmissionConfig {
            max_active: 1,
            max_queue: 8,
        }));
        let p = adm.admit(Priority::Normal).unwrap();
        let adm2 = Arc::clone(&adm);
        let waiter = std::thread::spawn(move || adm2.admit(Priority::Normal).map(|_| ()));
        std::thread::sleep(Duration::from_millis(30));
        adm.close();
        assert_eq!(waiter.join().unwrap(), Err(AdmitError::Closed));
        drop(p);
        assert!(matches!(
            adm.admit(Priority::Normal),
            Err(AdmitError::Closed)
        ));
    }

    #[test]
    fn high_priority_admitted_before_waiting_normals() {
        let adm = Arc::new(Admission::new(AdmissionConfig {
            max_active: 1,
            max_queue: 8,
        }));
        let gate = adm.admit(Priority::Normal).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let normal_waiting = Arc::new(AtomicUsize::new(0));

        let mut handles = Vec::new();
        for i in 0..3 {
            let adm = Arc::clone(&adm);
            let order = Arc::clone(&order);
            let waiting = Arc::clone(&normal_waiting);
            handles.push(std::thread::spawn(move || {
                waiting.fetch_add(1, Ordering::SeqCst);
                let permit = adm.admit(Priority::Normal).unwrap();
                order.lock().unwrap().push(format!("normal{i}"));
                // Hold briefly so release order is observable.
                std::thread::sleep(Duration::from_millis(5));
                drop(permit);
            }));
        }
        // Wait until all normals are queued, then add a high ticket.
        while normal_waiting.load(Ordering::SeqCst) < 3 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(30));
        {
            let adm = Arc::clone(&adm);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                let permit = adm.admit(Priority::High).unwrap();
                order.lock().unwrap().push("high".to_string());
                drop(permit);
            }));
        }
        std::thread::sleep(Duration::from_millis(30));
        drop(gate);
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock().unwrap();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], "high", "high ticket must jump the normal queue");
    }
}
