//! The end-to-end query pipeline: classify → (equality-reduce) → `genify`
//! → `ranf` → translate → simplify → evaluate.
//!
//! This is the public face of the reproduction: given any relational
//! calculus formula, [`compile`] either produces a Dom-free relational
//! algebra expression computing its answer, or rejects it with the reason
//! it is unsafe. Unlike the approaches the paper criticizes (Sec. 3), the
//! pipeline never silently reinterprets a formula: every transformation
//! preserves logical equivalence, and unsafety is reported, not papered
//! over.

use crate::classes::{check_evaluable, is_allowed, SafetyViolation};
use crate::eqreduce::equality_reduce;
use crate::generator::ConjunctChoice;
use crate::genify::{genify_reported, GenifyError};
use crate::ranf::{ranf_reported, RanfError};
use crate::translate::{translate_reported, TranslateError};
use rc_formula::ast::Formula;
use rc_formula::parser::ParseError;
use rc_formula::term::Var;
use rc_formula::vars::{free_vars, is_rectified, rectified};
use rc_relalg::govern::{Budget, BudgetExceeded, Stage};
use rc_relalg::{
    eval_shared, eval_traced, materialize, refresh, worth_refreshing, Database, Estimator,
    EvalError, EvalStats, MaintainedView, PipelineTrace, PlanCache, RaExpr, RefreshError, Relation,
    SharedPlanCache, StageTracer, Tracer,
};
use std::cell::RefCell;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The safety classes of the paper, most restrictive first.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SafetyClass {
    /// Allowed (Def. 5.3) — directly translatable.
    Allowed,
    /// Evaluable (Def. 5.2) but not allowed — needs `genify`.
    Evaluable,
    /// Wide-sense evaluable (Def. A.1) — needs equality reduction first.
    WideSenseEvaluable,
    /// Not recognized as safe (may or may not be domain independent —
    /// the general question is undecidable, Sec. 2.2).
    NotRecognized,
}

impl fmt::Display for SafetyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafetyClass::Allowed => write!(f, "allowed"),
            SafetyClass::Evaluable => write!(f, "evaluable"),
            SafetyClass::WideSenseEvaluable => write!(f, "wide-sense evaluable"),
            SafetyClass::NotRecognized => write!(f, "not recognized as safe"),
        }
    }
}

/// Classify a formula into the paper's hierarchy.
///
/// The class checks (Defs. 5.2/5.3 via `gen`/`con`) assume a *rectified*
/// formula — distinct bound variables, none shadowing a free one — so the
/// input is rectified here first (classes are invariant under renaming of
/// bound variables, and the rest of the pipeline compiles the rectified
/// form anyway). On raw shadowed input the checks are conservative, never
/// unsound: `gen` refuses to cross a binder that rebinds the queried
/// variable, so an unrectified formula could only be *downgraded* (e.g.
/// `Q(x) ∨ ¬∃x true` reporting `NotRecognized` for what is plainly
/// `Q(x)`), never accepted into a class it does not belong to.
pub fn classify(f: &Formula) -> SafetyClass {
    let renamed;
    let f = if is_rectified(f) {
        f
    } else {
        renamed = rectified(f);
        &renamed
    };
    if is_allowed(f) {
        SafetyClass::Allowed
    } else if check_evaluable(f).is_ok() {
        SafetyClass::Evaluable
    } else if crate::eqreduce::is_wide_sense_evaluable(f) {
        SafetyClass::WideSenseEvaluable
    } else {
        SafetyClass::NotRecognized
    }
}

/// Which planner runs in the Optimize stage when `optimize` is on and a
/// database is available.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PlannerMode {
    /// The cost-based pass ([`rc_relalg::optimize()`]): simplification,
    /// DP/greedy join reordering, cost-gated projection placement.
    #[default]
    Cost,
    /// Equality saturation ([`rc_relalg::saturate_governed`]) on top of
    /// the cost-based pass: the plan is loaded into an e-graph, enriched
    /// by the documented rewrite-rule registry (`docs/REWRITES.md`), and
    /// the cheapest equivalent is extracted — never costlier than what
    /// [`PlannerMode::Cost`] would have chosen.
    Saturate,
}

impl PlannerMode {
    /// The wire/REPL token naming this mode (`cost` / `saturate`).
    pub fn token(self) -> &'static str {
        match self {
            PlannerMode::Cost => "cost",
            PlannerMode::Saturate => "saturate",
        }
    }

    /// Parse a wire/REPL token back into a mode.
    pub fn parse(s: &str) -> Option<PlannerMode> {
        match s {
            "cost" => Some(PlannerMode::Cost),
            "saturate" => Some(PlannerMode::Saturate),
            _ => None,
        }
    }
}

impl fmt::Display for PlannerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Options for [`compile`].
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Attempt equality reduction (Alg. A.1) when the formula is not
    /// strict-sense evaluable.
    pub equality_reduction: bool,
    /// Run the algebraic simplifier on the final expression.
    pub optimize: bool,
    /// Resource budget governing every stage (subsumes the old
    /// `RanfBudget`: set [`Budget::with_max_nodes`] to bound formula
    /// blowup). The default is unlimited apart from `ranf`'s built-in
    /// distribution backstop.
    pub budget: Budget,
    /// Resolution of the Fig. 5 conjunction nondeterminism in `genify`.
    pub generator_choice: ConjunctChoice,
    /// Which planner runs when `optimize` is on and a database is present.
    pub planner: PlannerMode,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            equality_reduction: true,
            optimize: true,
            budget: Budget::new(),
            generator_choice: ConjunctChoice::Smallest,
            planner: PlannerMode::Cost,
        }
    }
}

impl CompileOptions {
    /// Fingerprint of the *semantic* options — the ones that change what
    /// plan a query text compiles to. Used as part of the
    /// [`PlanCache`] plan key so that toggling, say, the optimizer cannot
    /// serve a plan compiled under different options. The budget is
    /// deliberately excluded: it bounds resources, never the plan.
    pub fn cache_key(&self) -> u64 {
        let mut h = rc_formula::fxhash::FxHasher::default();
        self.equality_reduction.hash(&mut h);
        self.optimize.hash(&mut h);
        match self.generator_choice {
            ConjunctChoice::Smallest => 0u8.hash(&mut h),
            ConjunctChoice::First => 1u8.hash(&mut h),
        }
        match self.planner {
            PlannerMode::Cost => 0u8.hash(&mut h),
            PlannerMode::Saturate => 1u8.hash(&mut h),
        }
        h.finish()
    }
}

/// A compiled query: every intermediate stage is kept for inspection.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The (rectified) input formula.
    pub original: Formula,
    /// Its safety class.
    pub class: SafetyClass,
    /// The equality-reduced form, when that stage ran.
    pub reduced: Option<Formula>,
    /// The allowed form produced by `genify` (Alg. 8.1).
    pub allowed_form: Formula,
    /// The RANF form (Alg. 9.1).
    pub ranf_form: Formula,
    /// The final relational algebra expression.
    pub expr: RaExpr,
    /// Answer columns: the free variables of the input, in first-occurrence
    /// order.
    pub columns: Vec<Var>,
}

/// Compilation failure.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// The formula is not in any recognized safe class.
    NotSafe(SafetyViolation),
    /// A resource bound tripped; carries the stage, bound, and consumption.
    Budget(BudgetExceeded),
    /// `ranf` failed internally.
    Ranf(RanfError),
    /// Translation failed (should not happen on `ranf` output).
    Translate(TranslateError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NotSafe(v) => write!(f, "query is not safe: {v}"),
            CompileError::Budget(b) => write!(f, "budget exceeded: {b}"),
            CompileError::Ranf(e) => write!(f, "normalization failed: {e}"),
            CompileError::Translate(e) => write!(f, "translation failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<GenifyError> for CompileError {
    fn from(e: GenifyError) -> Self {
        match e {
            GenifyError::NotEvaluable(v) => CompileError::NotSafe(v),
            GenifyError::Budget(b) => CompileError::Budget(b),
        }
    }
}

impl From<RanfError> for CompileError {
    fn from(e: RanfError) -> Self {
        match e {
            RanfError::Budget(b) => CompileError::Budget(b),
            other => CompileError::Ranf(other),
        }
    }
}

impl From<TranslateError> for CompileError {
    fn from(e: TranslateError) -> Self {
        match e {
            TranslateError::Budget(b) => CompileError::Budget(b),
            other => CompileError::Translate(other),
        }
    }
}

/// Compile a formula with default options.
pub fn compile(f: &Formula) -> Result<Compiled, CompileError> {
    compile_with(f, CompileOptions::default())
}

/// Compile a formula into a Dom-free relational algebra expression.
///
/// Without a target database the final stage runs the statistics-free
/// [`rc_relalg::simplify`]; use [`compile_for`] to get cost-based join
/// reordering against a concrete database's statistics.
pub fn compile_with(f: &Formula, opts: CompileOptions) -> Result<Compiled, CompileError> {
    compile_traced_for(f, opts, None, &mut StageTracer::off())
}

/// [`compile_with`] against a target database: when `opts.optimize` is on,
/// the final stage runs the full cost-based planner
/// ([`rc_relalg::optimize()`]) — cardinality estimation from `db`'s
/// statistics (and any trace-fed observed cardinalities), join reordering,
/// and cost-gated projection placement. The compiled plan is still
/// portable: it evaluates correctly against any database, it is merely
/// *tuned* for this one.
pub fn compile_for(
    f: &Formula,
    opts: CompileOptions,
    db: &Database,
) -> Result<Compiled, CompileError> {
    compile_traced_for(f, opts, Some(db), &mut StageTracer::off())
}

/// [`compile_with`] recording one [`rc_relalg::StageSpan`] per pipeline
/// stage into `st` (node counts, wall time, and a deterministic stage
/// detail such as `class=` or `repairs=`). On an error the open span is
/// left for [`StageTracer::into_trace`] to seal as failed, so a partial
/// trace names the stage that tripped.
pub fn compile_traced(
    f: &Formula,
    opts: CompileOptions,
    st: &mut StageTracer,
) -> Result<Compiled, CompileError> {
    compile_traced_for(f, opts, None, st)
}

/// The full pipeline: [`compile_traced`] plus an optional target database
/// enabling the cost-based planner (see [`compile_for`]).
pub fn compile_traced_for(
    f: &Formula,
    opts: CompileOptions,
    db: Option<&Database>,
    st: &mut StageTracer,
) -> Result<Compiled, CompileError> {
    let original = rectified(f);
    let columns = free_vars(&original);

    // Stage 1: find an evaluable form.
    st.begin(Stage::Classify, original.node_count() as u64);
    let (class, evaluable_form, reduced) = match check_evaluable(&original) {
        Ok(()) => {
            let class = if is_allowed(&original) {
                SafetyClass::Allowed
            } else {
                SafetyClass::Evaluable
            };
            (class, original.clone(), None)
        }
        Err(violation) => {
            if opts.equality_reduction {
                let r = equality_reduce(&original);
                if check_evaluable(&r).is_ok() {
                    (SafetyClass::WideSenseEvaluable, r.clone(), Some(r))
                } else {
                    return Err(CompileError::NotSafe(violation));
                }
            } else {
                return Err(CompileError::NotSafe(violation));
            }
        }
    };
    st.end(evaluable_form.node_count() as u64, format!("class={class}"));

    // Stage 2: evaluable → allowed (Alg. 8.1).
    st.begin(Stage::Genify, evaluable_form.node_count() as u64);
    let (allowed_form, genify_report) =
        genify_reported(&evaluable_form, opts.generator_choice, &opts.budget)?;
    st.end(
        allowed_form.node_count() as u64,
        format!("repairs={}", genify_report.repairs),
    );

    // Stage 3: allowed → RANF (Alg. 9.1).
    st.begin(Stage::Ranf, allowed_form.node_count() as u64);
    let (ranf_form, ranf_report) = ranf_reported(&allowed_form, &opts.budget)?;
    st.end(
        ranf_form.node_count() as u64,
        format!("step1_nodes={}", ranf_report.nodes_step1),
    );

    // Stage 4: RANF → algebra (Sec. 9.3).
    st.begin(Stage::Translate, ranf_form.node_count() as u64);
    let (raw, ops_emitted) = translate_reported(&ranf_form, &opts.budget)?;
    st.end(
        raw.node_count() as u64,
        format!("ops_emitted={ops_emitted}"),
    );

    // Stage 5: impose the answer column order, optimize (cost-based when a
    // target database's statistics are in reach, plain simplification
    // otherwise), then hash-cons into a DAG so genify/RANF-duplicated
    // subplans are physically shared (the memoizing evaluator computes
    // each shared node once; the stage detail reports the chosen planner
    // and how many tree nodes the interner folded away).
    st.begin(Stage::Optimize, raw.node_count() as u64);
    let expr = impose_columns(raw, &columns, &ranf_form)?;
    let (expr, planner, detail) = match (opts.optimize, db) {
        (true, Some(db)) if opts.planner == PlannerMode::Saturate => {
            let (expr, report) = rc_relalg::saturate_governed(&expr, db, &opts.budget)
                .map_err(CompileError::Budget)?;
            (expr, "saturate", format!(" egraph={report}"))
        }
        (true, Some(db)) => (rc_relalg::optimize(&expr, db), "cost", String::new()),
        (true, None) => (rc_relalg::simplify(&expr), "simplify", String::new()),
        (false, _) => (expr, "off", String::new()),
    };
    let (expr, intern_stats) = rc_relalg::intern(&expr);
    st.end(
        expr.node_count() as u64,
        format!(
            "planner={planner} shared={}{detail}",
            intern_stats.shared_nodes()
        ),
    );

    Ok(Compiled {
        original,
        class,
        reduced,
        allowed_form,
        ranf_form,
        expr,
        columns,
    })
}

fn impose_columns(
    raw: RaExpr,
    columns: &[Var],
    ranf_form: &Formula,
) -> Result<RaExpr, CompileError> {
    let have = raw.cols();
    if have == columns {
        return Ok(raw);
    }
    if columns.iter().all(|v| have.contains(v)) {
        return Ok(RaExpr::project(raw, columns.to_vec()));
    }
    // A free variable's column can only vanish when simplification proved
    // the formula unsatisfiable; anything else means a transformation
    // changed the free variables, which would silently reinterpret the
    // query — refuse instead.
    if ranf_form.is_false() {
        Ok(RaExpr::Empty {
            cols: columns.to_vec(),
        })
    } else {
        Err(CompileError::Ranf(RanfError::Stuck(format!(
            "free-variable columns {columns:?} not all present in {have:?}"
        ))))
    }
}

impl Compiled {
    /// A human-readable report of every compilation stage — what the REPL's
    /// `explain` command prints.
    pub fn explain(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "query:    {}", self.original);
        let _ = writeln!(out, "class:    {}", self.class);
        if let Some(r) = &self.reduced {
            let _ = writeln!(out, "reduced:  {r}   (Alg. A.1 equality reduction)");
        }
        if self.allowed_form != self.original {
            let _ = writeln!(out, "allowed:  {}   (Alg. 8.1 genify)", self.allowed_form);
        } else {
            let _ = writeln!(out, "allowed:  (input already allowed)");
        }
        if self.ranf_form != self.allowed_form {
            let _ = writeln!(out, "ranf:     {}   (Alg. 9.1)", self.ranf_form);
        } else {
            let _ = writeln!(out, "ranf:     (allowed form already in RANF)");
        }
        let _ = writeln!(out, "algebra:  {}", self.expr);
        let cols: Vec<String> = self.columns.iter().map(|v| v.to_string()).collect();
        let _ = writeln!(out, "columns:  ({})", cols.join(", "));
        out
    }

    /// Evaluate the compiled query.
    pub fn run(&self, db: &Database) -> Result<Relation, EvalError> {
        let mut stats = EvalStats::default();
        self.run_with_stats(db, &mut stats)
    }

    /// Evaluate while accumulating operator statistics.
    pub fn run_with_stats(
        &self,
        db: &Database,
        stats: &mut EvalStats,
    ) -> Result<Relation, EvalError> {
        self.run_governed(db, stats, Budget::unlimited())
    }

    /// Evaluate under a resource [`Budget`]: either exactly the ungoverned
    /// answer or an [`EvalError::Budget`] — never a truncated relation.
    pub fn run_governed(
        &self,
        db: &Database,
        stats: &mut EvalStats,
        budget: &Budget,
    ) -> Result<Relation, EvalError> {
        self.run_traced(db, stats, budget, &mut Tracer::off())
    }

    /// [`Compiled::run_governed`] recording an operator span tree into
    /// `tracer` (input/output cardinalities, kernel row counts, dedup
    /// ratios, parallel-vs-sequential path) — including a partial tree
    /// when the evaluation errors.
    pub fn run_traced(
        &self,
        db: &Database,
        stats: &mut EvalStats,
        budget: &Budget,
        tracer: &mut Tracer,
    ) -> Result<Relation, EvalError> {
        eval_traced(
            &self.expr,
            &prepare(db, &self.original),
            stats,
            budget,
            tracer,
        )
    }

    /// [`Compiled::run_traced`] with common-subexpression sharing: the
    /// plan's duplicated subtrees (compile interns the expression into a
    /// DAG) are each evaluated once per run and served from a memo table
    /// afterwards — [`EvalStats::memo_hits`] counts the services and the
    /// reused subplans appear as `cache_hit` leaf spans. Same answer and
    /// budget semantics as [`Compiled::run_traced`]; used by the cached
    /// serving path ([`compile_and_eval_cached`]).
    pub fn run_shared(
        &self,
        db: &Database,
        stats: &mut EvalStats,
        budget: &Budget,
        tracer: &mut Tracer,
    ) -> Result<Relation, EvalError> {
        eval_shared(
            &self.expr,
            &prepare(db, &self.original),
            stats,
            budget,
            tracer,
        )
    }

    /// [`Compiled::run_shared`], additionally materializing every subplan
    /// into a [`MaintainedView`] registered for delta-refresh: identical
    /// answer, statistics, and budget semantics (the recording evaluator
    /// *is* the memoizing evaluator), plus the standing-query state that
    /// lets later mutations advance this result in O(|Δ|) instead of
    /// recomputing it. `base_version` is the version of `db` the caller
    /// serves — captured by the caller because the evaluation itself runs
    /// against a prepared clone with its own stamp.
    pub fn run_maintained(
        &self,
        db: &Database,
        base_version: u64,
        stats: &mut EvalStats,
        budget: &Budget,
        tracer: &mut Tracer,
    ) -> Result<(Relation, MaintainedView), EvalError> {
        materialize(
            &self.expr,
            &prepare(db, &self.original),
            base_version,
            stats,
            budget,
            tracer,
        )
    }
}

/// Make missing query predicates evaluate as empty relations rather than
/// errors (matching the logical semantics of an absent relation).
fn prepare(db: &Database, f: &Formula) -> Database {
    let mut out = db.clone();
    for (p, arity) in f.predicates() {
        out.declare(p, arity);
    }
    out
}

/// Top-level query failure.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryError {
    /// The query text did not parse.
    Parse(ParseError),
    /// The formula could not be compiled.
    Compile(CompileError),
    /// Evaluation failed.
    Eval(EvalError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::Compile(e) => write!(f, "{e}"),
            QueryError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Parse, compile and evaluate a query in one call.
pub fn query(text: &str, db: &Database) -> Result<Relation, QueryError> {
    let f = rc_formula::parse(text).map_err(QueryError::Parse)?;
    let compiled = compile(&f).map_err(QueryError::Compile)?;
    compiled.run(db).map_err(QueryError::Eval)
}

/// Unified failure taxonomy for the whole pipeline
/// (parse → classify → genify → ranf → translate → eval), with resource
/// trips carried as structured [`BudgetExceeded`] reports.
#[derive(Clone, Debug, PartialEq)]
pub enum PipelineError {
    /// The query text did not parse.
    Parse(ParseError),
    /// The formula is not in any recognized safe class.
    NotSafe(SafetyViolation),
    /// A resource bound tripped; carries the stage, bound, and consumption.
    Budget(BudgetExceeded),
    /// `ranf` failed internally.
    Ranf(RanfError),
    /// Translation failed (should not happen on `ranf` output).
    Translate(TranslateError),
    /// Evaluation failed for a non-budget reason.
    Eval(EvalError),
}

impl PipelineError {
    /// The pipeline stage this error is attributed to.
    pub fn stage(&self) -> Stage {
        match self {
            PipelineError::Parse(_) => Stage::Parse,
            PipelineError::NotSafe(_) => Stage::Classify,
            PipelineError::Budget(b) => b.stage,
            PipelineError::Ranf(_) => Stage::Ranf,
            PipelineError::Translate(_) => Stage::Translate,
            PipelineError::Eval(_) => Stage::Eval,
        }
    }

    /// The structured budget report, when a resource bound tripped.
    pub fn budget(&self) -> Option<&BudgetExceeded> {
        match self {
            PipelineError::Budget(b) => Some(b),
            _ => None,
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "parse error: {e}"),
            PipelineError::NotSafe(v) => write!(f, "query is not safe: {v}"),
            PipelineError::Budget(b) => write!(f, "budget exceeded: {b}"),
            PipelineError::Ranf(e) => write!(f, "normalization failed: {e}"),
            PipelineError::Translate(e) => write!(f, "translation failed: {e}"),
            PipelineError::Eval(e) => write!(f, "evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<CompileError> for PipelineError {
    fn from(e: CompileError) -> Self {
        match e {
            CompileError::NotSafe(v) => PipelineError::NotSafe(v),
            CompileError::Budget(b) => PipelineError::Budget(b),
            CompileError::Ranf(e) => PipelineError::Ranf(e),
            CompileError::Translate(e) => PipelineError::Translate(e),
        }
    }
}

impl From<EvalError> for PipelineError {
    fn from(e: EvalError) -> Self {
        match e {
            EvalError::Budget(b) => PipelineError::Budget(b),
            other => PipelineError::Eval(other),
        }
    }
}

impl From<QueryError> for PipelineError {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::Parse(e) => PipelineError::Parse(e),
            QueryError::Compile(e) => e.into(),
            QueryError::Eval(e) => e.into(),
        }
    }
}

/// Everything [`compile_and_eval`] produces: the compiled stages, the
/// answer relation, and the evaluation counters (including governance
/// consumption).
#[derive(Clone, Debug)]
pub struct QueryOutput {
    /// The compiled query with every intermediate stage.
    pub compiled: Compiled,
    /// The answer relation.
    pub relation: Relation,
    /// Evaluation statistics, including [`EvalStats::budget_checks`].
    pub stats: EvalStats,
}

/// Parse, compile, and evaluate under one shared [`Budget`]
/// (`opts.budget` governs every stage). On a trip the result is a
/// [`PipelineError::Budget`] naming the stage, the bound, and the
/// consumption — never a truncated relation.
///
/// ```
/// use rc_safety::pipeline::{compile_and_eval, CompileOptions};
/// use rc_relalg::Database;
///
/// let db = Database::from_facts("P(1, 1)\nP(1, 2)\nP(3, 3)\nQ(1)").unwrap();
/// let out = compile_and_eval("P(x, y) & ~Q(y)", &db, CompileOptions::default()).unwrap();
/// assert_eq!(out.relation.len(), 2); // (1,2) and (3,3)
/// assert!(out.stats.operators > 0);
/// ```
pub fn compile_and_eval(
    text: &str,
    db: &Database,
    opts: CompileOptions,
) -> Result<QueryOutput, PipelineError> {
    let f = rc_formula::parse(text).map_err(PipelineError::Parse)?;
    let budget = opts.budget.clone();
    let compiled = compile_for(&f, opts, db).map_err(PipelineError::from)?;
    let mut stats = EvalStats::default();
    let relation = compiled.run_governed(db, &mut stats, &budget)?;
    Ok(QueryOutput {
        compiled,
        relation,
        stats,
    })
}

/// What [`compile_and_eval_cached`] produces: the shared compiled plan,
/// the answer, evaluation counters, and which cache layers were hit.
#[derive(Clone, Debug)]
pub struct CachedQueryOutput {
    /// The compiled query (shared with the cache — cloning is one
    /// reference bump).
    pub compiled: Arc<Compiled>,
    /// The answer relation.
    pub relation: Relation,
    /// Evaluation statistics. On a result-cache hit only the governance
    /// charge for the materialized cardinality is recorded (nothing was
    /// evaluated).
    pub stats: EvalStats,
    /// Was parse → … → optimize skipped via the plan cache?
    pub plan_cached: bool,
    /// Was evaluation skipped via the result cache? Also true when a
    /// stale entry was delta-refreshed instead of recomputed (see
    /// `result_refreshed`).
    pub result_cached: bool,
    /// Was a stale cached result *refreshed* by delta propagation
    /// ([`rc_relalg::ivm`]) rather than served verbatim or recomputed?
    /// Implies `result_cached`.
    pub result_refreshed: bool,
}

/// [`compile_and_eval`] through a cross-run [`PlanCache`]: re-serving the
/// same query text (under the same semantic options) skips
/// parse → classify → genify → ranf → translate → optimize, and — while
/// the database version is unchanged — evaluation too.
///
/// Key and invalidation contract (see [`rc_relalg::cache`]):
///
/// * plans are keyed by `(text, opts.cache_key(), stats epoch)` — the
///   epoch ([`Database::stats_epoch`]) only moves when trace feedback
///   changes the statistics store, so plans need no in-place invalidation
///   and a re-plan against fresh statistics lands under a fresh key;
/// * results are keyed by the interned plan's structural hash and the
///   [`Database::version`] observed *before* evaluation; any mutation
///   bumps the version, so stale results can never be served.
///
/// Budget semantics are preserved: a fully cached request still passes a
/// checkpoint (so deadlines and cancellation fire) and charges the
/// materialized cardinality against the tuple budget — a cache hit can
/// trip a tight budget exactly like the evaluation it stands in for.
/// Evaluation misses run through [`Compiled::run_shared`], so duplicated
/// subplans inside one query are computed once even on a cold serve.
///
/// ```
/// use rc_safety::pipeline::{compile_and_eval_cached, CompileOptions};
/// use rc_relalg::{Database, PlanCache};
///
/// let db = Database::from_facts("P(1, 1)\nP(1, 2)\nQ(1)").unwrap();
/// let mut cache = PlanCache::new();
/// let cold = compile_and_eval_cached("P(x, y) & Q(x)", &db, CompileOptions::default(), &mut cache)
///     .unwrap();
/// assert!(!cold.plan_cached && !cold.result_cached);
/// let warm = compile_and_eval_cached("P(x, y) & Q(x)", &db, CompileOptions::default(), &mut cache)
///     .unwrap();
/// assert!(warm.plan_cached && warm.result_cached);
/// assert_eq!(cold.relation, warm.relation);
/// ```
pub fn compile_and_eval_cached(
    text: &str,
    db: &Database,
    opts: CompileOptions,
    cache: &mut PlanCache<Compiled>,
) -> Result<CachedQueryOutput, PipelineError> {
    compile_and_eval_in(text, db, opts, &Exclusive(RefCell::new(cache)))
}

/// [`compile_and_eval_cached`] against a *concurrently shared* cache: the
/// exact same serving path (one implementation — see [`PlanStore`]), but
/// callable from any number of threads through `&self`. This is the
/// entry point a multi-client query server uses: each worker snapshots the
/// database (O(1) `Arc`'d relation clones) and serves through one
/// process-wide [`SharedPlanCache`], so a formula compiled for any client
/// is warm for every client.
pub fn compile_and_eval_shared(
    text: &str,
    db: &Database,
    opts: CompileOptions,
    cache: &SharedPlanCache<Compiled>,
) -> Result<CachedQueryOutput, PipelineError> {
    compile_and_eval_in(text, db, opts, cache)
}

/// The cache surface the cached serving path needs, abstracted so the
/// single-threaded [`PlanCache`] (exclusive `&mut`, zero synchronization)
/// and the lock-sharded [`SharedPlanCache`] serve through *one* code path
/// — the differential suite's byte-identical guarantee between in-process
/// and server-side serving holds by construction, not by parallel
/// maintenance of two implementations.
pub trait PlanStore {
    /// See [`PlanCache::lookup_plan`].
    fn lookup_plan(
        &self,
        text: &str,
        opts_key: u64,
        stats_epoch: u64,
    ) -> Option<(Arc<Compiled>, u64)>;
    /// See [`PlanCache::insert_plan`].
    fn insert_plan(
        &self,
        text: &str,
        opts_key: u64,
        stats_epoch: u64,
        compiled: Compiled,
        plan_hash: u64,
    ) -> Arc<Compiled>;
    /// See [`PlanCache::lookup_result`].
    fn lookup_result(&self, plan_hash: u64, db_version: u64) -> Option<Relation>;
    /// See [`PlanCache::insert_result`].
    fn insert_result(&self, plan_hash: u64, db_version: u64, rel: Relation);
    /// See [`PlanCache::register_view`].
    fn register_view(&self, plan_hash: u64, view: MaintainedView);
    /// See [`PlanCache::view_snapshot`].
    fn view_snapshot(&self, plan_hash: u64) -> Option<MaintainedView>;
    /// See [`PlanCache::install_refreshed`].
    fn install_refreshed(&self, plan_hash: u64, view: MaintainedView, rel: Relation);
}

/// Adapter giving an exclusively borrowed [`PlanCache`] the [`PlanStore`]
/// shape (interior mutability is safe: the borrow is exclusive).
pub(crate) struct Exclusive<'a>(pub(crate) RefCell<&'a mut PlanCache<Compiled>>);

impl PlanStore for Exclusive<'_> {
    fn lookup_plan(
        &self,
        text: &str,
        opts_key: u64,
        stats_epoch: u64,
    ) -> Option<(Arc<Compiled>, u64)> {
        self.0.borrow_mut().lookup_plan(text, opts_key, stats_epoch)
    }

    fn insert_plan(
        &self,
        text: &str,
        opts_key: u64,
        stats_epoch: u64,
        compiled: Compiled,
        plan_hash: u64,
    ) -> Arc<Compiled> {
        self.0
            .borrow_mut()
            .insert_plan(text, opts_key, stats_epoch, compiled, plan_hash)
    }

    fn lookup_result(&self, plan_hash: u64, db_version: u64) -> Option<Relation> {
        self.0.borrow_mut().lookup_result(plan_hash, db_version)
    }

    fn insert_result(&self, plan_hash: u64, db_version: u64, rel: Relation) {
        self.0
            .borrow_mut()
            .insert_result(plan_hash, db_version, rel)
    }

    fn register_view(&self, plan_hash: u64, view: MaintainedView) {
        self.0.borrow_mut().register_view(plan_hash, view)
    }

    fn view_snapshot(&self, plan_hash: u64) -> Option<MaintainedView> {
        self.0.borrow().view_snapshot(plan_hash)
    }

    fn install_refreshed(&self, plan_hash: u64, view: MaintainedView, rel: Relation) {
        self.0.borrow_mut().install_refreshed(plan_hash, view, rel)
    }
}

impl PlanStore for SharedPlanCache<Compiled> {
    fn lookup_plan(
        &self,
        text: &str,
        opts_key: u64,
        stats_epoch: u64,
    ) -> Option<(Arc<Compiled>, u64)> {
        SharedPlanCache::lookup_plan(self, text, opts_key, stats_epoch)
    }

    fn insert_plan(
        &self,
        text: &str,
        opts_key: u64,
        stats_epoch: u64,
        compiled: Compiled,
        plan_hash: u64,
    ) -> Arc<Compiled> {
        SharedPlanCache::insert_plan(self, text, opts_key, stats_epoch, compiled, plan_hash)
    }

    fn lookup_result(&self, plan_hash: u64, db_version: u64) -> Option<Relation> {
        SharedPlanCache::lookup_result(self, plan_hash, db_version)
    }

    fn insert_result(&self, plan_hash: u64, db_version: u64, rel: Relation) {
        SharedPlanCache::insert_result(self, plan_hash, db_version, rel)
    }

    fn register_view(&self, plan_hash: u64, view: MaintainedView) {
        SharedPlanCache::register_view(self, plan_hash, view)
    }

    fn view_snapshot(&self, plan_hash: u64) -> Option<MaintainedView> {
        SharedPlanCache::view_snapshot(self, plan_hash)
    }

    fn install_refreshed(&self, plan_hash: u64, view: MaintainedView, rel: Relation) {
        SharedPlanCache::install_refreshed(self, plan_hash, view, rel)
    }
}

pub(crate) fn compile_and_eval_in(
    text: &str,
    db: &Database,
    opts: CompileOptions,
    cache: &impl PlanStore,
) -> Result<CachedQueryOutput, PipelineError> {
    // Capture the version before `prepare` clones-and-declares inside the
    // eval path; the clone's declares must not disturb our key.
    let db_version = db.version();
    let opts_key = opts.cache_key();
    // Plans compiled without the cost-based planner never read statistics,
    // so they share the epoch-0 key space regardless of feedback.
    let stats_epoch = if opts.optimize { db.stats_epoch() } else { 0 };
    let budget = opts.budget.clone();
    let (compiled, plan_hash, plan_cached) = match cache.lookup_plan(text, opts_key, stats_epoch) {
        Some((compiled, hash)) => (compiled, hash, true),
        None => {
            let f = rc_formula::parse(text).map_err(PipelineError::Parse)?;
            let compiled = compile_for(&f, opts, db).map_err(PipelineError::from)?;
            let hash = rc_relalg::plan_hash(&compiled.expr);
            (
                cache.insert_plan(text, opts_key, stats_epoch, compiled, hash),
                hash,
                false,
            )
        }
    };
    let mut stats = EvalStats::default();
    if let Some(relation) = cache.lookup_result(plan_hash, db_version) {
        // Serving from cache still consumes governance: one checkpoint
        // (deadline/cancellation) plus the answer's cardinality against
        // the tuple budget.
        stats.budget_checks += 1;
        budget
            .checkpoint(Stage::Eval)
            .and_then(|()| budget.charge_tuples(Stage::Eval, relation.len() as u64))
            .map_err(PipelineError::Budget)?;
        return Ok(CachedQueryOutput {
            compiled,
            relation,
            stats,
            plan_cached,
            result_cached: true,
            result_refreshed: false,
        });
    }
    // The result entry missed (cold, or stale by some mutation). Before
    // re-evaluating, try to *advance* the registered maintained view by
    // the delta chain bridging its version to ours: O(|Δ|·fanout) merge
    // work instead of a full evaluation. The attempt is skipped when the
    // chain is unknown (non-delta mutation, evicted journal link) or when
    // the cost gate says the delta is too large relative to the estimated
    // full cost; it is *abandoned* — with the cached entry left exactly
    // as it was — on a budget trip or an unsupported shape.
    if let Some(view) = cache.view_snapshot(plan_hash) {
        if view.base_version() != db_version {
            if let Some(chain) = db.delta_chain(view.base_version(), db_version) {
                // Lazy: a trickle-sized delta refreshes without ever
                // asking the estimator (whose table statistics were just
                // invalidated by the mutation and would rebuild in O(n)).
                let full_cost = || Estimator::new(db).cost(&compiled.expr);
                if worth_refreshing(&view, &chain, full_cost) {
                    match refresh(
                        &view,
                        &chain,
                        db_version,
                        &mut stats,
                        &budget,
                        &mut Tracer::off(),
                    ) {
                        Ok((refreshed_view, relation)) => {
                            // A refreshed serve still charges the answer's
                            // cardinality, exactly like a verbatim hit — a
                            // small delta must not smuggle a large cached
                            // relation past the tuple budget. Charged
                            // *before* install so a trip leaves the cache
                            // untouched.
                            stats.budget_checks += 1;
                            budget
                                .checkpoint(Stage::Eval)
                                .and_then(|()| {
                                    budget.charge_tuples(Stage::Eval, relation.len() as u64)
                                })
                                .map_err(PipelineError::Budget)?;
                            cache.install_refreshed(plan_hash, refreshed_view, relation.clone());
                            return Ok(CachedQueryOutput {
                                compiled,
                                relation,
                                stats,
                                plan_cached,
                                result_cached: true,
                                result_refreshed: true,
                            });
                        }
                        Err(RefreshError::Budget(b)) => return Err(PipelineError::Budget(b)),
                        Err(RefreshError::Unsupported(_)) => {
                            // Fall back to full evaluation with clean
                            // counters (partial refresh accounting would
                            // pollute the cold-path statistics).
                            stats = EvalStats::default();
                        }
                    }
                }
            }
        }
    }
    let (relation, view) =
        compiled.run_maintained(db, db_version, &mut stats, &budget, &mut Tracer::off())?;
    cache.insert_result(plan_hash, db_version, relation.clone());
    cache.register_view(plan_hash, view);
    Ok(CachedQueryOutput {
        compiled,
        relation,
        stats,
        plan_cached,
        result_cached: false,
        result_refreshed: false,
    })
}

/// [`compile_and_eval`] with full observability: returns the
/// [`PipelineTrace`] alongside the result. The trace is populated on
/// **both** success and failure — a `BudgetExceeded` comes back with the
/// partial trace whose failed stage span and deepest incomplete operator
/// span name exactly where the trip happened.
///
/// This is also where the statistics feedback loop closes: on success the
/// completed operator spans' actual cardinalities are harvested into
/// `db`'s statistics store ([`rc_relalg::harvest_actuals`]), so the next
/// compilation of a query touching the same subplans re-plans against
/// observed truth instead of estimates. Harvesting that *changes* a stored
/// observation moves [`Database::stats_epoch`], which retires cached plans
/// built against the stale statistics (see [`compile_and_eval_cached`]).
pub fn compile_and_eval_traced(
    text: &str,
    db: &Database,
    opts: CompileOptions,
) -> (Result<QueryOutput, PipelineError>, PipelineTrace) {
    let mut st = StageTracer::on();
    st.begin(Stage::Parse, text.len() as u64);
    let f = match rc_formula::parse(text) {
        Ok(f) => f,
        Err(e) => return (Err(PipelineError::Parse(e)), st.into_trace(None)),
    };
    st.end(f.node_count() as u64, String::new());
    let budget = opts.budget.clone();
    let compiled = match compile_traced_for(&f, opts, Some(db), &mut st) {
        Ok(c) => c,
        Err(e) => return (Err(e.into()), st.into_trace(None)),
    };
    st.begin(Stage::Eval, compiled.expr.node_count() as u64);
    let mut stats = EvalStats::default();
    let mut tracer = Tracer::on();
    match compiled.run_traced(db, &mut stats, &budget, &mut tracer) {
        Ok(relation) => {
            st.end(
                relation.len() as u64,
                format!("tuples_produced={}", stats.tuples_produced),
            );
            let trace = st.into_trace(tracer.finish());
            rc_relalg::harvest_actuals(&compiled.expr, trace.root.as_ref(), db);
            let out = QueryOutput {
                compiled,
                relation,
                stats,
            };
            (Ok(out), trace)
        }
        Err(e) => (Err(e.into()), st.into_trace(tracer.finish())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_formula::{parse, Value};
    use rc_relalg::Database;

    fn db() -> Database {
        Database::from_facts(
            "Part('bolt')\nPart('nut')\nPart('screw')\n\
             Supplies('acme', 'bolt')\nSupplies('acme', 'nut')\nSupplies('acme', 'screw')\n\
             Supplies('busy', 'bolt')",
        )
        .unwrap()
    }

    #[test]
    fn supplier_supplying_all_parts() {
        // Example 5.2's G: ∃y ∀x (¬Part(x) ∨ Supplies(y, x)) — boolean.
        let ans = query("exists y. forall x. (!Part(x) | Supplies(y, x))", &db()).unwrap();
        assert_eq!(ans.as_bool(), Some(true));
        // Which suppliers? Make y free but generated.
        let ans2 = query(
            "exists p. Supplies(y, p) & forall x. (!Part(x) | Supplies(y, x))",
            &db(),
        )
        .unwrap();
        assert_eq!(ans2.len(), 1);
        assert!(ans2.contains(&[Value::str("acme")]));
    }

    #[test]
    fn classify_rectifies_shadowed_input() {
        use crate::classes::check_evaluable;
        use rc_formula::vars::is_rectified;
        // `Q(x) ∨ ¬∃x true`: x is free in the first disjunct and rebound
        // in the second. The raw gen check refuses to cross the shadowing
        // binder, so checking the unrectified formula directly reports a
        // violation — even though the formula is plainly equivalent to
        // `Q(x) ∨ ¬true ≡ Q(x)` and evaluable. `classify` must rectify
        // first (this used to report NotRecognized).
        let raw = parse("Q(x) | !(exists x. true)").unwrap();
        assert!(!is_rectified(&raw));
        assert!(check_evaluable(&raw).is_err(), "raw check is conservative");
        assert_eq!(classify(&raw), SafetyClass::Evaluable);
        // Classification is invariant under rectification across shadowed
        // shapes (the conservative direction: raw never upgrades).
        for s in [
            "Q(x) | !(exists x. true)",
            "P(x) & exists x. Q(x)",
            "exists x. (P(x) & exists x. Q(x))",
            "Q(x) & forall x. !(P(x) & !Q(x))",
        ] {
            let f = parse(s).unwrap();
            assert_eq!(classify(&f), classify(&rectified(&f)), "on {s}");
        }
    }

    #[test]
    fn unsafe_queries_are_rejected_with_reasons() {
        let err = query("!Part(x)", &db()).unwrap_err();
        assert!(matches!(err, QueryError::Compile(CompileError::NotSafe(_))));
        assert!(query("Part(x) | Supplies(y, x)", &db()).is_err());
    }

    #[test]
    fn classification_hierarchy() {
        assert_eq!(
            classify(&parse("P(x, y) & (Q(x) | R(y))").unwrap()),
            SafetyClass::Allowed
        );
        assert_eq!(
            classify(&parse("exists x. ((P(x, y) | Q(y)) & !R(y))").unwrap()),
            SafetyClass::Evaluable
        );
        assert_eq!(
            classify(
                &parse("exists z. (P(x, z) & (x = y | Q(x, y, z)) & !(z = y | R(y, z)))").unwrap()
            ),
            SafetyClass::WideSenseEvaluable
        );
        assert_eq!(
            classify(&parse("!P(x)").unwrap()),
            SafetyClass::NotRecognized
        );
    }

    #[test]
    fn compiled_stages_are_exposed() {
        let f = parse("exists y. (P(x) | Q(x, y))").unwrap();
        let c = compile(&f).unwrap();
        assert_eq!(c.class, SafetyClass::Evaluable);
        assert!(crate::classes::is_allowed(&c.allowed_form));
        assert!(crate::ranf::is_ranf(&c.ranf_form));
        assert_eq!(c.columns, vec![Var::new("x")]);
        assert!(c.reduced.is_none());
    }

    #[test]
    fn default_value_query_end_to_end() {
        // Sec. 5.3: suppliers per part, defaulting to 'none' for parts
        // nobody supplies.
        let mut d =
            Database::from_facts("Part('bolt')\nPart('widget')\nSupplies('acme', 'bolt')").unwrap();
        d.declare("Nothing", 0);
        let ans = query(
            "Part(x) & (Supplies(y, x) | (forall z. !Supplies(z, x)) & y = 'none')",
            &d,
        )
        .unwrap();
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&[Value::str("bolt"), Value::str("acme")]));
        assert!(ans.contains(&[Value::str("widget"), Value::str("none")]));
    }

    #[test]
    fn wide_sense_query_compiles_via_reduction() {
        let f = parse("Q(y, y) & (x = y | P(x))").unwrap();
        let c = compile(&f).unwrap();
        assert_eq!(c.class, SafetyClass::WideSenseEvaluable);
        assert!(c.reduced.is_some());
        let mut d = Database::new();
        d.load_facts("Q(1, 1)\nQ(2, 2)\nP(7)").unwrap();
        let ans = c.run(&d).unwrap();
        // Columns are (y, x) — free variables in first-occurrence order.
        // x = y cases: (1,1), (2,2); P cases: (1,7), (2,7).
        assert_eq!(c.columns, vec![Var::new("y"), Var::new("x")]);
        assert_eq!(ans.len(), 4);
        assert!(ans.contains(&[Value::int(1), Value::int(1)]));
        assert!(ans.contains(&[Value::int(2), Value::int(7)]));
        assert_eq!(ans, crate::dom_baseline::eval_brute_force(&c.original, &d));
    }

    #[test]
    fn missing_relations_are_empty() {
        let ans = query("Part(x) & !Discontinued(x)", &db()).unwrap();
        assert_eq!(ans.len(), 3);
    }

    #[test]
    fn answers_match_brute_force_oracle() {
        use crate::dom_baseline::eval_brute_force;
        let d = db();
        for s in [
            "Part(x) & !Supplies('busy', x)",
            "Supplies(y, x) & Part(x)",
            "exists p. (Supplies(y, p) & !Part(p))",
            "Part(x) & forall y. (!Supplies(y, x) | Supplies(y, 'bolt'))",
        ] {
            let f = parse(s).unwrap();
            let c = compile(&f).unwrap();
            let ours = c.run(&d).unwrap();
            let oracle = eval_brute_force(&f, &d);
            assert_eq!(ours, oracle, "{s}");
        }
    }

    #[test]
    fn column_order_follows_free_variable_order() {
        let c = compile(&parse("Supplies(y, x) & Part(x)").unwrap()).unwrap();
        assert_eq!(c.columns, vec![Var::new("y"), Var::new("x")]);
        let d = db();
        let ans = c.run(&d).unwrap();
        assert!(ans.contains(&[Value::str("acme"), Value::str("bolt")]));
    }
}
