//! Evaluate **arbitrary** relational calculus queries via safe-pair
//! translation — including formulas every recognizer in this crate
//! rejects.
//!
//! The paper's classes (evaluable, allowed, wide-sense evaluable) are
//! decidable under-approximations of domain independence: a formula
//! outside all of them may still be a perfectly sensible query, and even
//! a domain *dependent* formula has a well-defined answer once one fixes
//! the domain semantics. Following the safe-pair idea of Raszyk, Basin,
//! Krstić and Traytel ("translating arbitrary relational calculus
//! queries to safe pairs"), this module translates any rectified formula
//! `F` into **two** formulas inside the recognized classes:
//!
//! * the **fin** leg — `F` relativized to the guard `Dom#(·)` holding
//!   the active domain (every database constant plus the query's
//!   constants). Its answer is the classical *active-domain* answer,
//!   exactly what the [`crate::dom_baseline`] oracles compute — but
//!   produced by the paper's own Dom-free pipeline, because the
//!   relativized formula is evaluable by construction (every free
//!   variable and every quantified variable carries a positive guard
//!   atom).
//! * the **inf** leg — the same relativization against `DomPlus#(·)`,
//!   the active domain extended with `q` fresh "star" constants, where
//!   `q` is the number of (free plus bound) variables of `F`. By the
//!   genericity argument of Ailamazyan–Gilula–Stolboushkin–Schwartz, a
//!   formula with `q` variables cannot distinguish the elements outside
//!   the active domain from each other, and `q` representatives are
//!   enough: a star surviving into the answer at column `j` witnesses
//!   that *infinitely many* values (every non-active-domain value)
//!   satisfy the query at that column.
//!
//! The pair is packaged as an [`AnyAnswer`]: the finite (active-domain)
//! answer, a `maybe_infinite` flag, and a per-column infiniteness mask.
//! For formulas the classifier *does* recognize, the safe pair is
//! skipped entirely: recognized classes are domain independent, so the
//! ordinary pipeline answer is the whole answer and `maybe_infinite` is
//! `false` on every database.
//!
//! # Contract
//!
//! * [`AnyAnswer::finite`] is always the active-domain answer — it
//!   agrees with [`crate::dom_baseline::eval_brute_force`] and
//!   [`crate::dom_baseline::eval_dom`] on every formula, recognized or
//!   not.
//! * [`AnyAnswer::maybe_infinite`] is `true` iff the answer under an
//!   infinite domain contains tuples outside the active domain (for
//!   closed formulas it is always `false` — a 0-ary answer is never
//!   infinite, even when the truth value itself is domain dependent).
//! * Both legs run under **one** budget (`opts.budget` governs the pair
//!   as a single query), and both are served through the same plan/result
//!   cache machinery as ordinary queries: the legs are keyed by the
//!   original query text under salted option keys, their results are
//!   keyed by the *base* database version, and stale cached legs are
//!   delta-refreshed ([`rc_relalg::ivm`]) — the guard tables, which the
//!   base database does not store, get a computed delta spliced into the
//!   mutation chain.

use crate::dom_baseline::dom_pred;
use crate::pipeline::{
    classify, compile_and_eval_in, compile_and_eval_traced, compile_for, compile_traced_for,
    CompileOptions, Compiled, Exclusive, PipelineError, PlanStore, QueryOutput, SafetyClass,
};
use rc_formula::ast::Formula;
use rc_formula::term::Var;
use rc_formula::vars::{bound_vars, free_vars, is_rectified, rectified};
use rc_formula::{Symbol, Term, Value};
use rc_relalg::govern::{Budget, Stage};
use rc_relalg::{
    refresh, worth_refreshing, Database, Estimator, EvalStats, PipelineTrace, PlanCache,
    RefreshError, Relation, RelationBuilder, SharedPlanCache, StageSpan, StageTracer, TableDelta,
    Tracer,
};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::Arc;

/// The reserved name of the star-extended domain guard relation (the
/// active domain plus the fresh star constants), the `inf` counterpart
/// of [`dom_pred`].
pub fn dom_plus_pred() -> Symbol {
    Symbol::intern("DomPlus#")
}

/// Salt XORed into the option fingerprint for the fin leg's plan-cache
/// key, so both legs (and the ordinary pipeline) can share one cache
/// under the *original* query text without colliding.
const FIN_SALT: u64 = 0x5afe_9a12_f19f_0001;

/// Salt for the inf leg's plan-cache key (see [`FIN_SALT`]).
const INF_SALT: u64 = 0x5afe_9a12_f19f_0002;

/// The answer to an arbitrary relational calculus query, as a safe pair:
/// the finite (active-domain) part plus infiniteness witnesses.
#[derive(Clone, Debug)]
pub struct AnyAnswer {
    /// The answer columns — the query's free variables in first-occurrence
    /// order.
    pub columns: Vec<Var>,
    /// The classifier's verdict on the original formula.
    pub class: SafetyClass,
    /// `true` when the safe-pair construction actually ran; `false` when
    /// the formula was recognized and served by the ordinary pipeline
    /// (recognized ⇒ domain independent ⇒ the finite answer is total).
    pub safe_pair: bool,
    /// The active-domain answer — agrees with the brute-force and
    /// Dom-baseline oracles on every formula.
    pub finite: Relation,
    /// Does the answer under an infinite domain contain tuples outside
    /// the active domain? Always `false` for recognized (domain
    /// independent) formulas and for closed formulas.
    pub maybe_infinite: bool,
    /// Per-column infiniteness: `per_variable[j]` is `true` when some
    /// infinite-domain answer tuple carries a non-active-domain value in
    /// column `j`. All-`false` iff `maybe_infinite` is `false`.
    pub per_variable: Vec<bool>,
    /// Evaluation counters, summed over both legs (or the single
    /// fast-path evaluation).
    pub stats: EvalStats,
}

/// What the cached serving paths produce: the answer plus which cache
/// layers were hit. For a safe pair the flags are conjunctions over both
/// legs (`plan_cached`/`result_cached`) or a disjunction
/// (`result_refreshed`) — a pair is only "cached" when *both* halves
/// were.
#[derive(Clone, Debug)]
pub struct CachedAnyOutput {
    /// The safe-pair answer.
    pub answer: AnyAnswer,
    /// Were all compilation stages skipped via the plan cache?
    pub plan_cached: bool,
    /// Was all evaluation skipped via the result cache (verbatim or
    /// refreshed)?
    pub result_cached: bool,
    /// Was at least one stale cached leg delta-refreshed rather than
    /// recomputed?
    pub result_refreshed: bool,
}

/// Relativize every quantifier of `f` to the guard predicate and leave
/// everything else structurally intact: `∃y G` becomes
/// `∃y (guard(y) ∧ rel(G))` and `∀y G` becomes
/// `¬∃y (guard(y) ∧ ¬rel(G))`.
fn relativize(f: &Formula, guard: Symbol) -> Formula {
    match f {
        Formula::Atom(_) | Formula::Eq(..) => f.clone(),
        Formula::Not(g) => Formula::not(relativize(g, guard)),
        Formula::And(fs) => Formula::and(fs.iter().map(|g| relativize(g, guard)).collect()),
        Formula::Or(fs) => Formula::or(fs.iter().map(|g| relativize(g, guard)).collect()),
        Formula::Exists(y, g) => Formula::exists(
            *y,
            Formula::and2(guard_atom(guard, *y), relativize(g, guard)),
        ),
        Formula::Forall(y, g) => Formula::not(Formula::exists(
            *y,
            Formula::and2(guard_atom(guard, *y), Formula::not(relativize(g, guard))),
        )),
    }
}

fn guard_atom(guard: Symbol, v: Var) -> Formula {
    Formula::atom(guard, vec![Term::Var(v)])
}

/// The full relativized query: a guard atom for every free variable
/// conjoined with the relativized body. Every free and quantified
/// variable then carries a positive guard atom, so the result is
/// evaluable (Def. 5.2) by construction and compiles through the
/// ordinary pipeline.
fn relativized_query(f: &Formula, guard: Symbol) -> Formula {
    let mut conj: Vec<Formula> = free_vars(f)
        .into_iter()
        .map(|v| guard_atom(guard, v))
        .collect();
    conj.push(relativize(f, guard));
    Formula::and(conj)
}

/// `q` fresh star constants, distinct from every active-domain value and
/// every query constant. The reserved `#` prefix keeps them out of any
/// parseable query text; collisions with programmatically inserted facts
/// are skipped over.
fn star_values(db: &Database, query: &Formula, q: usize) -> Vec<Value> {
    let consts: BTreeSet<Value> = query.constants().into_iter().collect();
    let adom = db.active_domain();
    let mut out = Vec::with_capacity(q);
    let mut i = 0usize;
    while out.len() < q {
        let v = Value::str(&format!("#*{i}"));
        i += 1;
        if adom.contains(&v) || consts.contains(&v) {
            continue;
        }
        out.push(v);
    }
    out
}

/// The guard table contents for one leg: active domain ∪ query constants
/// ∪ stars, with the `#default` element when everything is empty
/// (first-order semantics needs a nonempty domain) — byte-compatible
/// with [`crate::dom_baseline::augment_with_dom`]'s `Dom#` when `stars`
/// is empty.
fn guard_relation(db: &Database, query: &Formula, stars: &[Value]) -> Relation {
    let mut b = RelationBuilder::with_capacity(1, db.active_domain().len() + stars.len());
    for &v in db.active_domain() {
        b.push_row(&[v]);
    }
    for c in query.constants() {
        b.push_row(&[c]);
    }
    for &s in stars {
        b.push_row(&[s]);
    }
    if b.is_empty() {
        b.push_row(&[Value::str("#default")]);
    }
    b.finish()
}

/// A copy of `db` with the leg's predicates declared and its guard table
/// installed.
fn augment_for_leg(db: &Database, leg: &Formula, guard: Symbol, stars: &[Value]) -> Database {
    let mut out = db.clone();
    for (p, arity) in leg.predicates() {
        out.declare(p, arity);
    }
    out.insert_relation(guard, guard_relation(db, leg, stars));
    out
}

/// What serving one leg yields: the compiled plan, the leg's answer and
/// evaluation stats, then the three serving-path flags in cache order —
/// plan hit, result hit (verbatim), result refreshed (IVM).
type ServedLeg = (Arc<Compiled>, Relation, EvalStats, bool, bool, bool);

/// Serve one leg of the pair through the cache, mirroring the ordinary
/// cached serving path: plan lookup (salted key under the original query
/// text) → result lookup → guard-delta-extended IVM refresh → full
/// evaluation. Results and views are stamped with the *base* database
/// version; the augmented database is only built on an evaluation miss.
#[allow(clippy::too_many_arguments)]
fn serve_leg(
    text: &str,
    salt: u64,
    db: &Database,
    leg_f: &Formula,
    guard: Symbol,
    stars: &[Value],
    opts: &CompileOptions,
    budget: &Budget,
    cache: &impl PlanStore,
) -> Result<ServedLeg, PipelineError> {
    let db_version = db.version();
    let opts_key = opts.cache_key() ^ salt;
    let stats_epoch = if opts.optimize { db.stats_epoch() } else { 0 };
    let mut aug: Option<Database> = None;
    let (compiled, plan_hash, plan_cached) = match cache.lookup_plan(text, opts_key, stats_epoch) {
        Some((compiled, hash)) => (compiled, hash, true),
        None => {
            let a = aug.get_or_insert_with(|| augment_for_leg(db, leg_f, guard, stars));
            let compiled = compile_for(leg_f, opts.clone(), a).map_err(PipelineError::from)?;
            let hash = rc_relalg::plan_hash(&compiled.expr);
            (
                cache.insert_plan(text, opts_key, stats_epoch, compiled, hash),
                hash,
                false,
            )
        }
    };
    let mut stats = EvalStats::default();
    if let Some(relation) = cache.lookup_result(plan_hash, db_version) {
        stats.budget_checks += 1;
        budget
            .checkpoint(Stage::Eval)
            .and_then(|()| budget.charge_tuples(Stage::Eval, relation.len() as u64))
            .map_err(PipelineError::Budget)?;
        return Ok((compiled, relation, stats, plan_cached, true, false));
    }
    if let Some(view) = cache.view_snapshot(plan_hash) {
        if view.base_version() != db_version {
            if let Some(mut chain) = db.delta_chain(view.base_version(), db_version) {
                // The guard table lives only inside the view, so the
                // base delta chain says nothing about it. Recover the
                // old contents from the view's materialized scan, build
                // the new contents from the current database, and splice
                // the set difference into the chain. A guard that is
                // scanned but not recoverable (the optimizer rewrote the
                // full-table scan away) forces a full re-evaluation.
                let guard_ok = if view.preds().contains(&guard) {
                    match view.scan_contents(guard) {
                        Some(old) => {
                            let new = guard_relation(db, leg_f, stars);
                            chain.insert_table(
                                guard,
                                TableDelta {
                                    plus: new.minus(old),
                                    minus: old.minus(&new),
                                },
                            );
                            true
                        }
                        None => false,
                    }
                } else {
                    true
                };
                let full_cost = || Estimator::new(db).cost(&compiled.expr);
                if guard_ok && worth_refreshing(&view, &chain, full_cost) {
                    match refresh(
                        &view,
                        &chain,
                        db_version,
                        &mut stats,
                        budget,
                        &mut Tracer::off(),
                    ) {
                        Ok((refreshed_view, relation)) => {
                            stats.budget_checks += 1;
                            budget
                                .checkpoint(Stage::Eval)
                                .and_then(|()| {
                                    budget.charge_tuples(Stage::Eval, relation.len() as u64)
                                })
                                .map_err(PipelineError::Budget)?;
                            cache.install_refreshed(plan_hash, refreshed_view, relation.clone());
                            return Ok((compiled, relation, stats, plan_cached, true, true));
                        }
                        Err(RefreshError::Budget(b)) => return Err(PipelineError::Budget(b)),
                        Err(RefreshError::Unsupported(_)) => {
                            stats = EvalStats::default();
                        }
                    }
                }
            }
        }
    }
    let a = aug.get_or_insert_with(|| augment_for_leg(db, leg_f, guard, stars));
    let (relation, view) =
        compiled.run_maintained(a, db_version, &mut stats, budget, &mut Tracer::off())?;
    cache.insert_result(plan_hash, db_version, relation.clone());
    cache.register_view(plan_hash, view);
    Ok((compiled, relation, stats, plan_cached, false, false))
}

/// Package a fast-path (recognized-class) pipeline answer as an
/// [`AnyAnswer`]: recognized ⇒ domain independent ⇒ the finite answer is
/// the whole answer.
fn fast_answer(
    columns: Vec<Var>,
    class: SafetyClass,
    relation: Relation,
    stats: EvalStats,
) -> AnyAnswer {
    let n = columns.len();
    AnyAnswer {
        columns,
        class,
        safe_pair: false,
        finite: relation,
        maybe_infinite: false,
        per_variable: vec![false; n],
        stats,
    }
}

/// Scan the inf leg's answer for star witnesses: the overall flag and
/// the per-column mask.
fn star_mask(inf: &Relation, stars: &[Value], ncols: usize) -> (bool, Vec<bool>) {
    let star_set: BTreeSet<Value> = stars.iter().copied().collect();
    let mut per_variable = vec![false; ncols];
    let mut maybe_infinite = false;
    for row in inf.iter() {
        for (j, v) in row.iter().enumerate() {
            if star_set.contains(v) {
                per_variable[j] = true;
                maybe_infinite = true;
            }
        }
    }
    (maybe_infinite, per_variable)
}

/// The shared serving path behind the cached entry points.
fn compile_and_eval_any_in(
    text: &str,
    db: &Database,
    opts: CompileOptions,
    cache: &impl PlanStore,
) -> Result<CachedAnyOutput, PipelineError> {
    let f = rc_formula::parse(text).map_err(PipelineError::Parse)?;
    let class = classify(&f);
    if class != SafetyClass::NotRecognized {
        let out = compile_and_eval_in(text, db, opts, cache)?;
        return Ok(CachedAnyOutput {
            answer: fast_answer(out.compiled.columns.clone(), class, out.relation, out.stats),
            plan_cached: out.plan_cached,
            result_cached: out.result_cached,
            result_refreshed: out.result_refreshed,
        });
    }
    let rect = if is_rectified(&f) { f } else { rectified(&f) };
    let q = free_vars(&rect).len() + bound_vars(&rect).len();
    let stars = star_values(db, &rect, q);
    let fin_f = relativized_query(&rect, dom_pred());
    let inf_f = relativized_query(&rect, dom_plus_pred());
    let budget = opts.budget.clone();
    let (fin_c, fin_rel, fin_stats, fin_pc, fin_rc, fin_rr) = serve_leg(
        text,
        FIN_SALT,
        db,
        &fin_f,
        dom_pred(),
        &[],
        &opts,
        &budget,
        cache,
    )?;
    let (_, inf_rel, inf_stats, inf_pc, inf_rc, inf_rr) = serve_leg(
        text,
        INF_SALT,
        db,
        &inf_f,
        dom_plus_pred(),
        &stars,
        &opts,
        &budget,
        cache,
    )?;
    let columns = fin_c.columns.clone();
    let (maybe_infinite, per_variable) = star_mask(&inf_rel, &stars, columns.len());
    let mut stats = fin_stats;
    stats.merge(inf_stats);
    Ok(CachedAnyOutput {
        answer: AnyAnswer {
            columns,
            class,
            safe_pair: true,
            finite: fin_rel,
            maybe_infinite,
            per_variable,
            stats,
        },
        plan_cached: fin_pc && inf_pc,
        result_cached: fin_rc && inf_rc,
        result_refreshed: fin_rr || inf_rr,
    })
}

/// Evaluate an arbitrary relational calculus query: recognized formulas
/// go through the ordinary pipeline, everything else through the
/// safe-pair construction (see the module docs for the contract).
///
/// ```
/// use rc_safety::anyrc::compile_and_eval_any;
/// use rc_safety::pipeline::CompileOptions;
/// use rc_relalg::Database;
///
/// let db = Database::from_facts("P(1)\nP(2)\nQ(2)\nQ(3)").unwrap();
/// // `¬P(x)` is rejected by every recognizer, but has a perfectly good
/// // active-domain answer — and an infinite unrestricted-domain one.
/// let out = compile_and_eval_any("!P(x)", &db, CompileOptions::default()).unwrap();
/// assert_eq!(out.finite.len(), 1); // {3}
/// assert!(out.maybe_infinite);
/// ```
pub fn compile_and_eval_any(
    text: &str,
    db: &Database,
    opts: CompileOptions,
) -> Result<AnyAnswer, PipelineError> {
    let mut cache = PlanCache::new();
    Ok(compile_and_eval_any_cached(text, db, opts, &mut cache)?.answer)
}

/// [`compile_and_eval_any`] through a cross-run [`PlanCache`]: both legs
/// of the pair (or the fast-path plan) are cached and delta-maintained
/// exactly like ordinary queries, under the original query text.
pub fn compile_and_eval_any_cached(
    text: &str,
    db: &Database,
    opts: CompileOptions,
    cache: &mut PlanCache<Compiled>,
) -> Result<CachedAnyOutput, PipelineError> {
    compile_and_eval_any_in(text, db, opts, &Exclusive(RefCell::new(cache)))
}

/// [`compile_and_eval_any_cached`] against a concurrently shared cache —
/// the entry point the query server uses for the `any` wire verb.
pub fn compile_and_eval_any_shared(
    text: &str,
    db: &Database,
    opts: CompileOptions,
    cache: &SharedPlanCache<Compiled>,
) -> Result<CachedAnyOutput, PipelineError> {
    compile_and_eval_any_in(text, db, opts, cache)
}

/// Append the leg tag to every stage span of one leg's trace.
fn tag_spans(spans: &mut [StageSpan], tag: &str) {
    for s in spans.iter_mut() {
        if s.detail.is_empty() {
            s.detail = format!("anyrc={tag}");
        } else {
            s.detail = format!("{} anyrc={tag}", s.detail);
        }
    }
}

/// One uncached, traced leg: compile with per-stage spans, evaluate with
/// an operator tracer, and tag every span with `anyrc=fin|inf`.
fn traced_leg(
    leg_f: &Formula,
    aug: &Database,
    opts: CompileOptions,
    budget: &Budget,
    tag: &str,
) -> (
    Result<(Compiled, Relation, EvalStats), PipelineError>,
    PipelineTrace,
) {
    let mut st = StageTracer::on();
    let compiled = match compile_traced_for(leg_f, opts, Some(aug), &mut st) {
        Ok(c) => c,
        Err(e) => {
            let mut trace = st.into_trace(None);
            tag_spans(&mut trace.stages, tag);
            return (Err(e.into()), trace);
        }
    };
    st.begin(Stage::Eval, compiled.expr.node_count() as u64);
    let mut stats = EvalStats::default();
    let mut tracer = Tracer::on();
    match compiled.run_traced(aug, &mut stats, budget, &mut tracer) {
        Ok(relation) => {
            st.end(
                relation.len() as u64,
                format!("tuples_produced={}", stats.tuples_produced),
            );
            let mut trace = st.into_trace(tracer.finish());
            tag_spans(&mut trace.stages, tag);
            (Ok((compiled, relation, stats)), trace)
        }
        Err(e) => {
            let mut trace = st.into_trace(tracer.finish());
            tag_spans(&mut trace.stages, tag);
            (Err(e.into()), trace)
        }
    }
}

/// [`compile_and_eval_any`] with full observability: the returned trace
/// concatenates the parse span with both legs' stage spans, each tagged
/// `anyrc=fin` or `anyrc=inf` in its detail; the operator tree is the
/// fin leg's (the one producing [`AnyAnswer::finite`]). Fast-path
/// (recognized) queries return the ordinary
/// [`compile_and_eval_traced`] trace unchanged.
pub fn compile_and_eval_any_traced(
    text: &str,
    db: &Database,
    opts: CompileOptions,
) -> (Result<AnyAnswer, PipelineError>, PipelineTrace) {
    let mut st = StageTracer::on();
    st.begin(Stage::Parse, text.len() as u64);
    let f = match rc_formula::parse(text) {
        Ok(f) => f,
        Err(e) => return (Err(PipelineError::Parse(e)), st.into_trace(None)),
    };
    st.end(f.node_count() as u64, String::new());
    let class = classify(&f);
    if class != SafetyClass::NotRecognized {
        let (res, trace) = compile_and_eval_traced(text, db, opts);
        return (
            res.map(|out: QueryOutput| {
                fast_answer(out.compiled.columns.clone(), class, out.relation, out.stats)
            }),
            trace,
        );
    }
    let parse_spans: Vec<StageSpan> = st.stages().to_vec();
    let rect = if is_rectified(&f) { f } else { rectified(&f) };
    let q = free_vars(&rect).len() + bound_vars(&rect).len();
    let stars = star_values(db, &rect, q);
    let fin_f = relativized_query(&rect, dom_pred());
    let inf_f = relativized_query(&rect, dom_plus_pred());
    let budget = opts.budget.clone();
    let fin_aug = augment_for_leg(db, &fin_f, dom_pred(), &[]);
    let (fin_res, fin_trace) = traced_leg(&fin_f, &fin_aug, opts.clone(), &budget, "fin");
    let mut stages = parse_spans;
    stages.extend(fin_trace.stages);
    let (fin_c, fin_rel, fin_stats) = match fin_res {
        Ok(v) => v,
        Err(e) => {
            return (
                Err(e),
                PipelineTrace {
                    stages,
                    root: fin_trace.root,
                },
            )
        }
    };
    let inf_aug = augment_for_leg(db, &inf_f, dom_plus_pred(), &stars);
    let (inf_res, inf_trace) = traced_leg(&inf_f, &inf_aug, opts, &budget, "inf");
    stages.extend(inf_trace.stages);
    let trace = PipelineTrace {
        stages,
        root: fin_trace.root,
    };
    let (_, inf_rel, inf_stats) = match inf_res {
        Ok(v) => v,
        Err(e) => return (Err(e), trace),
    };
    let columns = fin_c.columns;
    let (maybe_infinite, per_variable) = star_mask(&inf_rel, &stars, columns.len());
    let mut stats = fin_stats;
    stats.merge(inf_stats);
    (
        Ok(AnyAnswer {
            columns,
            class,
            safe_pair: true,
            finite: fin_rel,
            maybe_infinite,
            per_variable,
            stats,
        }),
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom_baseline::eval_brute_force;
    use rc_formula::parse;

    fn db() -> Database {
        Database::from_facts("P(1)\nP(2)\nQ(2)\nQ(3)\nR(1, 2)\nR(3, 1)").unwrap()
    }

    fn any(text: &str, db: &Database) -> AnyAnswer {
        compile_and_eval_any(text, db, CompileOptions::default()).unwrap()
    }

    #[test]
    fn negation_matches_oracle_and_flags_infinite() {
        let out = any("!P(x)", &db());
        assert_eq!(out.class, SafetyClass::NotRecognized);
        assert!(out.safe_pair);
        assert_eq!(
            out.finite,
            eval_brute_force(&parse("!P(x)").unwrap(), &db())
        );
        assert!(out.maybe_infinite);
        assert_eq!(out.per_variable, vec![true]);
    }

    #[test]
    fn cross_disjunction_flags_both_columns() {
        let out = any("P(x) | Q(y)", &db());
        assert!(out.safe_pair);
        assert_eq!(
            out.finite,
            eval_brute_force(&parse("P(x) | Q(y)").unwrap(), &db())
        );
        assert!(out.maybe_infinite);
        assert_eq!(out.per_variable, vec![true, true]);
    }

    #[test]
    fn recognized_query_takes_fast_path() {
        let out = any("P(x) & !Q(x)", &db());
        assert_eq!(out.class, SafetyClass::Allowed);
        assert!(!out.safe_pair);
        assert!(!out.maybe_infinite);
        assert_eq!(
            out.finite,
            eval_brute_force(&parse("P(x) & !Q(x)").unwrap(), &db())
        );
    }

    #[test]
    fn closed_formula_is_never_infinite() {
        // Domain dependent truth value, but a 0-ary answer is finite.
        let out = any("forall y. P(y)", &db());
        assert!(out.safe_pair);
        assert!(!out.maybe_infinite);
        assert_eq!(out.per_variable, Vec::<bool>::new());
        assert_eq!(
            out.finite,
            eval_brute_force(&parse("forall y. P(y)").unwrap(), &db())
        );
    }

    #[test]
    fn finite_on_empty_database() {
        let empty = Database::new();
        let out = any("!P(x)", &empty);
        // Active domain is {#default}; P is empty, so ¬P holds of it.
        assert_eq!(out.finite.len(), 1);
        assert!(out.maybe_infinite);
    }

    #[test]
    fn guarded_but_unrecognized_formula_stays_finite() {
        // Example 6.3's G: domain independent but outside every class.
        let text = "forall x. exists y. ((R(y, z) & Q(x)) | (R(y, z) & !P(x)))";
        let out = any(text, &db());
        assert_eq!(out.class, SafetyClass::NotRecognized);
        assert!(out.safe_pair);
        assert!(!out.maybe_infinite, "DI formula must have no stars");
        assert_eq!(out.finite, eval_brute_force(&parse(text).unwrap(), &db()));
    }

    #[test]
    fn cached_pair_serves_and_refreshes() {
        let mut database = db();
        let mut cache = PlanCache::new();
        let text = "P(x) | Q(y)";
        let cold =
            compile_and_eval_any_cached(text, &database, CompileOptions::default(), &mut cache)
                .unwrap();
        assert!(!cold.plan_cached && !cold.result_cached);
        let warm =
            compile_and_eval_any_cached(text, &database, CompileOptions::default(), &mut cache)
                .unwrap();
        assert!(warm.plan_cached && warm.result_cached && !warm.result_refreshed);
        assert_eq!(cold.answer.finite, warm.answer.finite);
        assert_eq!(cold.answer.per_variable, warm.answer.per_variable);
        // Mutate: the guard tables change with the active domain, so the
        // refresh path must splice computed guard deltas into the chain.
        database.apply_delta("P(7)").unwrap();
        let fresh = compile_and_eval_any(text, &database, CompileOptions::default()).unwrap();
        let served =
            compile_and_eval_any_cached(text, &database, CompileOptions::default(), &mut cache)
                .unwrap();
        assert_eq!(served.answer.finite, fresh.finite);
        assert_eq!(served.answer.per_variable, fresh.per_variable);
    }

    #[test]
    fn traced_pair_tags_both_legs() {
        let (res, trace) = compile_and_eval_any_traced("!P(x)", &db(), CompileOptions::default());
        let out = res.unwrap();
        assert!(out.maybe_infinite);
        let rendered = trace.deterministic();
        assert!(rendered.contains("anyrc=fin"), "{rendered}");
        assert!(rendered.contains("anyrc=inf"), "{rendered}");
        assert!(trace.root.is_some());
    }
}
