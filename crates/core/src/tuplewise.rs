//! Tuple-at-a-time evaluation of RANF formulas.
//!
//! The paper's opening lists two evaluation routes for relational calculus:
//! translation to clauses "suitable for a Prolog interpreter" [LT84, Dec86]
//! or translation to relational algebra (the paper's route). RANF is in
//! fact also exactly what the Prolog route needs: Decker's *range form*
//! (Sec. 8 observes genify's `∃*G` "plays the role of range expression and
//! `R` is called the remainder"). This module implements that first route
//! as a second, independent execution engine:
//!
//! * conjunctions run as **nested loops**, left to right — by the RANF
//!   ordering discipline (Lemma 9.3 property 5), every variable a conjunct
//!   *needs* is bound by the time it runs;
//! * positive atoms unify against the stored relation under the current
//!   bindings (Prolog-style "goal call");
//! * `¬G` runs as **negation as failure**, which is *sound* here precisely
//!   because RANF guarantees `fv(G)` are bound (`D ∧ ¬G` with
//!   `fv(G) ⊆ fv(D)`) — the classic floundering problem cannot arise;
//! * `∃y D` enumerates `D`'s solutions and drops `y`.
//!
//! Answers always equal the algebra evaluator's (property-tested); the
//! benches compare the two engines' performance profiles.

use rc_formula::ast::Formula;
use rc_formula::term::{Term, Value, Var};
use rc_formula::vars::free_vars;
use rc_relalg::{Database, Relation};
use std::fmt;

/// Failure of tuple-at-a-time evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum TuplewiseError {
    /// The formula is not in RANF shape (a conjunct needed an unbound
    /// variable, a negation floundered, a `∀` survived, …).
    NotRanf(String),
}

impl fmt::Display for TuplewiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuplewiseError::NotRanf(s) => write!(f, "not evaluable tuple-at-a-time: {s}"),
        }
    }
}

impl std::error::Error for TuplewiseError {}

type Env = Vec<(Var, Value)>;

fn lookup(env: &Env, v: Var) -> Option<Value> {
    env.iter().rev().find(|(w, _)| *w == v).map(|(_, val)| *val)
}

fn term_value(env: &Env, t: Term) -> Option<Value> {
    match t {
        Term::Const(c) => Some(c),
        Term::Var(v) => lookup(env, v),
    }
}

/// Evaluate a RANF formula against `db`, returning the relation over its
/// free variables in first-occurrence order.
pub fn eval_tuplewise(f: &Formula, db: &Database) -> Result<Relation, TuplewiseError> {
    let cols = free_vars(f);
    let mut out = Relation::new(cols.len());
    let mut env: Env = Vec::new();
    solve(f, db, &mut env, &mut |env| {
        let tup: Option<Vec<Value>> = cols.iter().map(|&v| lookup(env, v)).collect();
        match tup {
            Some(t) => {
                out.insert(t.into_boxed_slice());
                Ok(())
            }
            None => Err(TuplewiseError::NotRanf(
                "a free variable was left unbound by a solution".into(),
            )),
        }
    })?;
    Ok(out)
}

/// Does `f` have any solution under `env`? (Used for negation as failure
/// and nullary answers.)
fn provable(f: &Formula, db: &Database, env: &mut Env) -> Result<bool, TuplewiseError> {
    let mut found = false;
    solve(f, db, env, &mut |_| {
        found = true;
        Ok(())
    })?;
    Ok(found)
}

/// Enumerate the solutions of `f` under `env`, invoking `emit` for each
/// extension of `env` satisfying `f`. `env` is restored before returning.
fn solve(
    f: &Formula,
    db: &Database,
    env: &mut Env,
    emit: &mut dyn FnMut(&Env) -> Result<(), TuplewiseError>,
) -> Result<(), TuplewiseError> {
    match f {
        // Goal call on an edb atom: filter rows compatible with the
        // current bindings, binding the free positions.
        Formula::Atom(a) => {
            let Some(rel) = db.relation(a.pred) else {
                return Ok(()); // absent relation = empty
            };
            if rel.arity() != a.terms.len() {
                return Err(TuplewiseError::NotRanf(format!(
                    "arity mismatch on {}",
                    a.pred
                )));
            }
            'rows: for row in rel.iter() {
                let depth = env.len();
                for (i, &t) in a.terms.iter().enumerate() {
                    match term_value(env, t) {
                        Some(v) => {
                            if v != row[i] {
                                env.truncate(depth);
                                continue 'rows;
                            }
                        }
                        None => match t {
                            Term::Var(v) => env.push((v, row[i])),
                            Term::Const(_) => unreachable!("constants always have values"),
                        },
                    }
                }
                emit(env)?;
                env.truncate(depth);
            }
            Ok(())
        }
        Formula::Eq(s, t) => {
            match (term_value(env, *s), term_value(env, *t)) {
                (Some(a), Some(b)) => {
                    if a == b {
                        emit(env)?;
                    }
                    Ok(())
                }
                // `x = c` with x unbound: bind it (the q̲ singleton).
                (None, Some(v)) => {
                    if let Term::Var(x) = *s {
                        env.push((x, v));
                        emit(env)?;
                        env.pop();
                        Ok(())
                    } else {
                        unreachable!("unvalued term is a variable")
                    }
                }
                (Some(v), None) => {
                    if let Term::Var(x) = *t {
                        env.push((x, v));
                        emit(env)?;
                        env.pop();
                        Ok(())
                    } else {
                        unreachable!("unvalued term is a variable")
                    }
                }
                (None, None) => Err(TuplewiseError::NotRanf(format!(
                    "equality {f} with both sides unbound"
                ))),
            }
        }
        // Negation as failure — sound because RANF binds fv(G) first.
        Formula::Not(g) => {
            for v in free_vars(g) {
                if lookup(env, v).is_none() {
                    return Err(TuplewiseError::NotRanf(format!(
                        "negation ¬({g}) floundered: {v} unbound"
                    )));
                }
            }
            if !provable(g, db, env)? {
                emit(env)?;
            }
            Ok(())
        }
        // Nested-loop conjunction, left to right.
        Formula::And(fs) => {
            fn conj(
                fs: &[Formula],
                db: &Database,
                env: &mut Env,
                emit: &mut dyn FnMut(&Env) -> Result<(), TuplewiseError>,
            ) -> Result<(), TuplewiseError> {
                match fs.split_first() {
                    None => emit(env),
                    Some((head, rest)) => solve(head, db, env, &mut |env2| {
                        // `solve` hands us a &Env; re-borrow mutably via a
                        // fresh copy to continue the loop nest.
                        let mut env2 = env2.clone();
                        conj(rest, db, &mut env2, emit)
                    }),
                }
            }
            conj(fs, db, env, emit)
        }
        Formula::Or(fs) => {
            for g in fs {
                solve(g, db, env, emit)?;
            }
            Ok(())
        }
        // ∃y D: enumerate D, forget y (dedup happens in the caller's set).
        Formula::Exists(y, d) => {
            let depth = env.len();
            solve(d, db, env, &mut |env2| {
                // Strip any binding of y before emitting.
                let filtered: Env = env2.iter().filter(|(v, _)| *v != *y).copied().collect();
                emit(&filtered)
            })?;
            env.truncate(depth);
            Ok(())
        }
        Formula::Forall(..) => Err(TuplewiseError::NotRanf(
            "universal quantifier in RANF input".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile;
    use rc_formula::parse;
    use rc_relalg::eval;

    fn db() -> Database {
        Database::from_facts("P(1)\nP(2)\nQ(1, 2)\nQ(2, 3)\nQ(3, 3)\nR(2, 1)\nR(3, 2)\nS(1, 2, 3)")
            .unwrap()
    }

    fn check(s: &str) {
        let f = parse(s).unwrap();
        let c = compile(&f).unwrap();
        let algebra = eval(&c.expr, &db()).unwrap();
        let tuples = eval_tuplewise(&c.ranf_form, &db()).unwrap();
        // Column orders may differ; compare through the algebra's order.
        let ranf_cols = free_vars(&c.ranf_form);
        assert_eq!(ranf_cols.len(), c.columns.len(), "{s}");
        // Rebuild the tuplewise answer in the compiled column order.
        let perm: Vec<usize> = c
            .columns
            .iter()
            .map(|v| ranf_cols.iter().position(|w| w == v).unwrap())
            .collect();
        let mut reordered = Relation::new(c.columns.len());
        for t in tuples.iter() {
            reordered.insert(perm.iter().map(|&i| t[i]).collect());
        }
        assert_eq!(reordered, algebra, "{s}");
    }

    #[test]
    fn agrees_with_algebra_on_paper_shapes() {
        check("P(x) & Q(x, y)");
        check("Q(x, y) & (P(x) | R(y, y))");
        check("P(x) & !exists y. (Q(x, y) & !R(y, x))");
        check("Q(x, y) & forall z. (!R(x, z) | S(y, z, z))");
        check("exists y. (P(x) & Q(x, y))");
        check("P(x) & x != 2");
        check("P(x) & y = 3");
        check("!exists x. (P(x) & Q(x, x))");
    }

    #[test]
    fn floundering_is_detected_not_misanswered() {
        // ¬P(x) with x unbound: a non-RANF input must error, never guess.
        let f = parse("!P(x)").unwrap();
        assert!(matches!(
            eval_tuplewise(&f, &db()),
            Err(TuplewiseError::NotRanf(_))
        ));
        // Likewise x = y with both unbound.
        let g = parse("x = y").unwrap();
        assert!(eval_tuplewise(&g, &db()).is_err());
    }

    #[test]
    fn closed_queries_give_nullary_relations() {
        let f = parse("exists x. (P(x) & Q(x, x))").unwrap();
        let c = compile(&f).unwrap();
        let r = eval_tuplewise(&c.ranf_form, &db()).unwrap();
        assert_eq!(r.as_bool(), Some(false)); // no P(x) with Q(x,x)
        let g = parse("exists x, y. (P(x) & Q(x, y))").unwrap();
        let c2 = compile(&g).unwrap();
        assert_eq!(
            eval_tuplewise(&c2.ranf_form, &db()).unwrap().as_bool(),
            Some(true)
        );
    }

    #[test]
    fn random_allowed_formulas_agree_with_algebra() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use rc_formula::generate::{random_allowed_formula, GenConfig};
        use rc_formula::vars::rectified;
        use rc_formula::{Schema, Value, Var};
        let cfg = GenConfig::default();
        let mut checked = 0;
        for seed in 0..60u64 {
            let f = rectified(&random_allowed_formula(
                &cfg,
                &[Var::new("x")],
                &mut StdRng::seed_from_u64(seed),
                3,
            ));
            let Ok(c) = compile(&f) else { continue };
            let schema = Schema::infer(&f).unwrap();
            let domain: Vec<Value> = (0..5).map(Value::int).collect();
            let dbr = Database::random(&schema, &domain, 6, &mut StdRng::seed_from_u64(seed));
            let algebra = eval(&c.expr, &dbr).unwrap();
            let tw = eval_tuplewise(&c.ranf_form, &dbr).unwrap();
            let ranf_cols = free_vars(&c.ranf_form);
            let perm: Vec<usize> = c
                .columns
                .iter()
                .map(|v| ranf_cols.iter().position(|w| w == v).unwrap())
                .collect();
            let mut reordered = Relation::new(c.columns.len());
            for t in tw.iter() {
                reordered.insert(perm.iter().map(|&i| t[i]).collect());
            }
            assert_eq!(
                reordered, algebra,
                "seed {seed}: {f}\nranf: {}",
                c.ranf_form
            );
            checked += 1;
        }
        assert!(checked >= 40, "too few cases: {checked}");
    }
}
