//! # rc-safety
//!
//! Safety analysis and correct translation of relational calculus formulas
//! — a full implementation of Van Gelder & Topor, *Safety and Correct
//! Translation of Relational Calculus Formulas* (PODS 1987).
//!
//! ## The problem
//!
//! Once disjunction, negation and universal quantification are admitted,
//! not every relational calculus query has a sensible ("domain
//! independent") answer: `¬P(x)` holds for arbitrary values outside the
//! database, and `P(x) ∨ Q(y)` pairs every `P`-value with arbitrary `y`.
//! Domain independence is undecidable, so practical systems need decidable
//! subclasses — and *correct* translations into relational algebra that
//! avoid materializing the `Dom` relation of all constants.
//!
//! ## What this crate provides
//!
//! | Paper artifact | Module |
//! |---|---|
//! | `gen`/`con` relations (Fig. 1) | [`gencon`] |
//! | generator-extended rules (Fig. 5) | [`generator`] |
//! | evaluable / allowed classes (Defs. 5.2, 5.3), range restriction (Sec. 7) | [`classes`] |
//! | `genify` — evaluable → allowed (Alg. 8.1, Thm. 8.4) | [`genify`](mod@genify) |
//! | RANF + `ranf` — allowed → RANF (Defs. 9.1/9.2, Alg. 9.1, Thm. 9.4) | [`ranf`](mod@ranf) |
//! | RANF → relational algebra, Dom-free (Sec. 9.3, Thm. 9.5) | [`translate`](mod@translate) |
//! | equality reduction, wide-sense evaluability (Appendix A) | [`eqreduce`] |
//! | definiteness / domain independence checks (Sec. 10) | [`domind`] |
//! | repetition-free census — evaluable ⇔ definite (Thm. 10.5) | [`norepeat`] |
//! | `Dom`-relation and brute-force baselines (Secs. 2–3) | [`dom_baseline`] |
//! | the QUEL disjunction anomaly (Sec. 2) | [`naive`] |
//! | every formula appearing in the paper | [`corpus`] |
//! | end-to-end pipeline: classify → genify → ranf → translate → eval | [`pipeline`] |
//! | oracle: finite-interpretation evaluation | [`interp`] |
//! | geometric interpretation of `con` (Fig. 2) | [`geometry`] |
//!
//! ## Quick start
//!
//! ```
//! use rc_relalg::Database;
//! use rc_safety::pipeline::query;
//!
//! let db = Database::from_facts(
//!     "Part('bolt')\nPart('nut')\nSupplies('acme', 'bolt')\nSupplies('acme', 'nut')",
//! ).unwrap();
//!
//! // "Does some supplier supply all parts?" — Example 5.2's G.
//! let yes = query("exists y. forall x. (!Part(x) | Supplies(y, x))", &db).unwrap();
//! assert_eq!(yes.as_bool(), Some(true));
//!
//! // Unsafe queries are rejected, not misanswered.
//! assert!(query("!Part(x)", &db).is_err());
//! ```

#![deny(missing_docs)]

pub mod anyrc;
pub mod classes;
pub mod corpus;
pub mod dom_baseline;
pub mod domind;
pub mod eqreduce;
pub mod gencon;
pub mod generator;
pub mod genify;
pub mod geometry;
pub mod interp;
pub mod naive;
pub mod norepeat;
pub mod pipeline;
pub mod ranf;
pub mod translate;

pub use anyrc::{
    compile_and_eval_any, compile_and_eval_any_cached, compile_and_eval_any_shared,
    compile_and_eval_any_traced, AnyAnswer, CachedAnyOutput,
};
pub use classes::{check_allowed, check_evaluable, is_allowed, is_evaluable};
pub use eqreduce::{equality_reduce, is_wide_sense_evaluable};
pub use gencon::{con, con_not, gen, gen_not};
pub use genify::genify;
pub use pipeline::{
    classify, compile, compile_and_eval, compile_and_eval_cached, compile_and_eval_shared,
    compile_and_eval_traced, query, CachedQueryOutput, Compiled, PipelineError, PlanStore,
    QueryOutput, SafetyClass,
};
pub use ranf::{is_ranf, ranf};
pub use translate::translate;
pub mod tuplewise;
