//! Definiteness / domain independence, empirically (Sec. 10).
//!
//! A formula is *definite* (Def. 10.2) when for **every** interpretation
//! `I`, it is satisfied at the same points in `I` and in its `*`-extension
//! `I′` (Def. 10.1). Definite ≡ domain independent \[ND82\], and the class is
//! not recursive — so no terminating procedure can decide it in general.
//! What we *can* do, and what this module does, is:
//!
//! * [`definite_on`]: check definiteness on one given interpretation — the
//!   exact construction used in the paper's proofs (Lemmas 10.1/10.4);
//! * [`empirically_definite`]: sample many random interpretations over the
//!   formula's own schema and report whether any witnesses
//!   non-definiteness. A `false` answer is a *proof* of non-definiteness
//!   (with a concrete witness); a `true` answer is evidence only. On the
//!   repetition-free class of Thm. 10.5 tiny interpretations suffice (the
//!   theorem's proof uses a one-element domain plus `*`), which the
//!   `norepeat` census exploits.

use crate::interp::{star_value, FiniteInterp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rc_formula::ast::Formula;
use rc_formula::vars::free_vars;
use rc_formula::{Schema, Value};
use rc_relalg::Database;

/// Is `f` satisfied at the same points in `interp` and in its
/// `*`-extension? (One instance of Def. 10.2.)
pub fn definite_on(f: &Formula, interp: &FiniteInterp<'_>) -> bool {
    let cols = free_vars(f);
    let plain = interp.answers(f, &cols);
    let star = interp.star_extension(star_value()).answers(f, &cols);
    plain == star
}

/// Configuration for [`empirically_definite`].
#[derive(Clone, Copy, Debug)]
pub struct DefiniteTest {
    /// Number of random interpretations to sample.
    pub trials: u64,
    /// Domain size of each sampled interpretation.
    pub domain_size: usize,
    /// Tuples per relation in each sampled database.
    pub rows_per_relation: usize,
    /// RNG seed (sampling is deterministic given the seed).
    pub seed: u64,
}

impl Default for DefiniteTest {
    fn default() -> Self {
        DefiniteTest {
            trials: 24,
            domain_size: 3,
            rows_per_relation: 4,
            seed: 0xD0_11_AB_1E,
        }
    }
}

/// Outcome of an empirical definiteness test.
#[derive(Clone, Debug, PartialEq)]
pub enum DefiniteVerdict {
    /// No sampled interpretation distinguished `I` from `I′`.
    NoCounterexample,
    /// A concrete witness of non-definiteness (hence non-domain-
    /// independence): the database and domain on which answers differ.
    Counterexample {
        /// The witnessing database.
        db: Database,
        /// The witnessing domain (before the `*`-extension).
        domain: Vec<Value>,
    },
}

impl DefiniteVerdict {
    /// Did the test fail to refute definiteness?
    pub fn is_definite(&self) -> bool {
        matches!(self, DefiniteVerdict::NoCounterexample)
    }
}

/// Sample random interpretations over `f`'s inferred schema and test
/// Def. 10.2 on each. Small domains are tried first (including the empty
/// database), since small witnesses are common.
pub fn empirically_definite(f: &Formula, cfg: &DefiniteTest) -> DefiniteVerdict {
    let schema = Schema::infer(f).expect("formula uses predicates consistently");
    // Always try the empty database first: many unsafe formulas (¬P(x),
    // P(x) ∨ Q(y) under ∃, …) are refuted by it alone.
    let mut candidates: Vec<(Database, Vec<Value>)> = Vec::new();
    {
        let mut db = Database::new();
        for (p, a) in schema.predicates() {
            db.declare(p, a);
        }
        let mut domain: Vec<Value> = f.constants();
        if domain.is_empty() {
            domain.push(Value::int(0));
        }
        candidates.push((db, domain));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for _ in 0..cfg.trials {
        let domain: Vec<Value> = (0..cfg.domain_size as i64).map(Value::int).collect();
        let db = Database::random(&schema, &domain, cfg.rows_per_relation, &mut rng);
        let mut domain = domain;
        for c in f.constants() {
            if !domain.contains(&c) {
                domain.push(c);
            }
        }
        candidates.push((db, domain));
    }
    for (db, domain) in candidates {
        let interp = FiniteInterp::new(&db, domain.clone());
        if !definite_on(f, &interp) {
            return DefiniteVerdict::Counterexample { db, domain };
        }
    }
    DefiniteVerdict::NoCounterexample
}

/// Exhaustively check definiteness over **every** interpretation with
/// domain sizes `1..=max_domain_size` (for the formula's inferred schema).
/// Returns `None` when the space is too large (more than `budget`
/// databases would be enumerated), otherwise whether every interpretation
/// is definite.
///
/// This is the workhorse of the Thm. 10.5 census: the theorem's proof
/// refutes definiteness of non-evaluable repetition-free formulas with a
/// one-element domain plus `*`, so small exhaustive checks are decisive
/// there.
pub fn exhaustively_definite(f: &Formula, max_domain_size: usize, budget: u64) -> Option<bool> {
    let schema = Schema::infer(f).expect("consistent predicate use");
    let preds = schema.predicates();
    for n in 1..=max_domain_size {
        let domain: Vec<Value> = (0..n as i64).map(Value::int).collect();
        // Count databases: Π 2^(n^arity).
        let mut total_bits: u32 = 0;
        for &(_, arity) in &preds {
            let tuples = (n as u64).checked_pow(arity as u32)?;
            total_bits = total_bits.checked_add(u32::try_from(tuples).ok()?)?;
        }
        if total_bits >= 63 || (1u64 << total_bits) > budget {
            return None;
        }
        // Enumerate all tuple subsets per predicate via one big bit string.
        let all_tuples: Vec<Vec<Vec<Value>>> = preds
            .iter()
            .map(|&(_, arity)| enumerate_tuples(&domain, arity))
            .collect();
        for code in 0u64..(1u64 << total_bits) {
            let mut db = Database::new();
            let mut bit = 0;
            for (i, &(p, arity)) in preds.iter().enumerate() {
                let mut rel = rc_relalg::Relation::new(arity);
                for t in &all_tuples[i] {
                    if (code >> bit) & 1 == 1 {
                        rel.insert(t.clone().into_boxed_slice());
                    }
                    bit += 1;
                }
                db.insert_relation(p, rel);
            }
            let interp = FiniteInterp::new(&db, domain.clone());
            if !definite_on(f, &interp) {
                return Some(false);
            }
        }
    }
    Some(true)
}

fn enumerate_tuples(domain: &[Value], arity: usize) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = vec![Vec::new()];
    for _ in 0..arity {
        let mut next = Vec::with_capacity(out.len() * domain.len());
        for t in &out {
            for &v in domain {
                let mut t2 = t.clone();
                t2.push(v);
                next.push(t2);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_formula::parse;

    fn definite(s: &str) -> bool {
        empirically_definite(&parse(s).unwrap(), &DefiniteTest::default()).is_definite()
    }

    #[test]
    fn unsafe_intro_examples_are_refuted() {
        assert!(!definite("!P(x)"));
        assert!(!definite("P(x) | Q(y)"));
        assert!(!definite("exists y. (P(x) | Q(y))"));
    }

    #[test]
    fn evaluable_examples_have_no_counterexample() {
        for s in [
            "P(x, y) & (Q(x) | R(y))",
            "exists y. (P(x) | Q(x, y))",
            "exists x. ((P(x, y) | Q(y)) & !R(y))",
            "exists y. forall x. (!P(x) | S(y, x))",
        ] {
            assert!(definite(s), "{s} wrongly refuted");
        }
    }

    #[test]
    fn thm_105_counterexample_is_definite_but_not_evaluable() {
        // ∀y[(P(x) ∧ Q(y)) ∨ (P(x) ∧ ¬R(y))] — end of Sec. 10.
        let s = "forall y. ((P(x) & Q(y)) | (P(x) & !R(y)))";
        assert!(definite(s));
        assert!(!crate::classes::is_evaluable(&parse(s).unwrap()));
    }

    #[test]
    fn counterexample_carries_witness() {
        match empirically_definite(&parse("!P(x)").unwrap(), &DefiniteTest::default()) {
            DefiniteVerdict::Counterexample { db, domain } => {
                // Replaying the witness reproduces the discrepancy.
                let interp = FiniteInterp::new(&db, domain);
                assert!(!definite_on(&parse("!P(x)").unwrap(), &interp));
            }
            DefiniteVerdict::NoCounterexample => panic!("¬P(x) must be refuted"),
        }
    }

    #[test]
    fn exhaustive_check_agrees_with_sampling_on_small_formulas() {
        for (s, expect) in [
            ("!P(x)", false),
            ("P(x) | Q(y)", false),
            ("P(x) & Q(x)", true),
            ("exists y. (P(x) | Q(x, y))", true),
            ("exists x. !P(x)", false),
            ("forall x. !P(x)", true),
        ] {
            let f = parse(s).unwrap();
            assert_eq!(exhaustively_definite(&f, 2, 1 << 20), Some(expect), "{s}");
        }
    }

    #[test]
    fn exhaustive_check_reports_overflow() {
        // Three binary predicates over a 3-element domain: 2^27 databases
        // exceeds a small budget.
        let f = parse("P(x, y) & Q(x, y) & R(x, y)").unwrap();
        assert_eq!(exhaustively_definite(&f, 3, 1 << 10), None);
    }

    #[test]
    fn forall_quantified_negation_is_domain_dependent() {
        // ∀x ¬P(x): true iff P empty *over the domain*; the * point never
        // satisfies P, so this is actually definite. Sanity-check the
        // subtlety.
        assert!(definite("forall x. !P(x)"));
        // ∃x ¬P(x) is NOT definite: * always satisfies ¬P.
        assert!(!definite("exists x. !P(x)"));
    }
}
