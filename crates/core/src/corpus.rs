//! Every formula that appears in the paper, as a named, machine-checkable
//! corpus.
//!
//! Each entry records where it appears, its surface syntax, and the
//! classifications the paper asserts (or implies) for it. The experiment
//! harness prints these as the classification table, and the integration
//! suite asserts every expectation.

use rc_formula::ast::Formula;

/// One formula from the paper.
#[derive(Clone, Copy, Debug)]
pub struct PaperFormula {
    /// Stable identifier (section/example number).
    pub id: &'static str,
    /// Where in the paper it appears.
    pub source: &'static str,
    /// The formula, in this crate's ASCII surface syntax.
    pub text: &'static str,
    /// Paper-asserted: is it evaluable (strict sense)?
    pub evaluable: bool,
    /// Paper-asserted: is it allowed?
    pub allowed: bool,
    /// Paper-asserted: is it wide-sense evaluable (after Alg. A.1)?
    pub wide_sense: bool,
    /// Paper-asserted: is it domain independent (definite)?
    pub domain_independent: bool,
    /// Commentary.
    pub note: &'static str,
}

/// The full corpus.
pub fn corpus() -> Vec<PaperFormula> {
    vec![
        PaperFormula {
            id: "intro-F",
            source: "Sec. 1",
            text: "!P(x)",
            evaluable: false,
            allowed: false,
            wide_sense: false,
            domain_independent: false,
            note: "holds for arbitrary x not in the database",
        },
        PaperFormula {
            id: "intro-G",
            source: "Sec. 1",
            text: "P(x) | Q(y)",
            evaluable: false,
            allowed: false,
            wide_sense: false,
            domain_independent: false,
            note: "arbitrary y when P(x) holds, and vice versa",
        },
        PaperFormula {
            id: "sec21-curable",
            source: "Sec. 2.1",
            text: "exists y. (P(x) | Q(x, y))",
            evaluable: true,
            allowed: false,
            wide_sense: true,
            domain_independent: true,
            note: "curable: ≡ P(x) ∨ ∃y Q(x, y)",
        },
        PaperFormula {
            id: "sec21-uncurable",
            source: "Sec. 2.1",
            text: "exists y. (P(x) | Q(y))",
            evaluable: false,
            allowed: false,
            wide_sense: false,
            domain_independent: false,
            note: "uncurable: x unconstrained when Q nonempty",
        },
        PaperFormula {
            id: "sec21-cured",
            source: "Sec. 2.1",
            text: "P(x) | exists y. Q(x, y)",
            evaluable: true,
            allowed: true,
            wide_sense: true,
            domain_independent: true,
            note: "F'(x): the rewritten form with the naive translation correct",
        },
        PaperFormula {
            id: "ex6.1-before",
            source: "Example 6.1",
            text: "exists w. (T(w) & ((exists x. A(x)) | B(w)))",
            evaluable: true,
            allowed: true,
            wide_sense: true,
            domain_independent: true,
            note: "∃xA(x) ∨ B in an allowed context",
        },
        PaperFormula {
            id: "ex6.1-after",
            source: "Example 6.1",
            text: "exists w. (T(w) & exists x. (A(x) | B(w)))",
            evaluable: true,
            allowed: false,
            wide_sense: true,
            domain_independent: true,
            note: "E8 moved B under ∃x: allowed lost, evaluable kept",
        },
        PaperFormula {
            id: "ex5.1-a",
            source: "Example 5.1",
            text: "P(x, y) | Q(y)",
            evaluable: false,
            allowed: false,
            wide_sense: false,
            domain_independent: false,
            note: "con(x, A) holds but gen(x, A) does not",
        },
        PaperFormula {
            id: "ex5.1-b",
            source: "Example 5.1",
            text: "!Q(y)",
            evaluable: false,
            allowed: false,
            wide_sense: false,
            domain_independent: false,
            note: "con(x, A) holds (x not free); gen(y) fails",
        },
        PaperFormula {
            id: "ex5.2-F",
            source: "Example 5.2",
            text: "exists x. ((P(x, y) | Q(y)) & !R(y))",
            evaluable: true,
            allowed: false,
            wide_sense: true,
            domain_independent: true,
            note: "evaluable but not allowed",
        },
        PaperFormula {
            id: "ex5.2-G",
            source: "Example 5.2",
            text: "exists y. forall x. (!P(x) | S(y, x))",
            evaluable: true,
            allowed: false,
            wide_sense: true,
            domain_independent: true,
            note: "\"does some supplier supply all parts?\"",
        },
        PaperFormula {
            id: "ex5.2-F-open",
            source: "Example 5.2",
            text: "(P(x, y) | Q(y)) & !R(y)",
            evaluable: false,
            allowed: false,
            wide_sense: false,
            domain_independent: false,
            note: "removing the outer quantifier breaks evaluability",
        },
        PaperFormula {
            id: "ex5.2-G-open",
            source: "Example 5.2",
            text: "forall x. (!P(x) | S(y, x))",
            evaluable: false,
            allowed: false,
            wide_sense: false,
            domain_independent: false,
            note: "\"what suppliers supply all parts\" — unsafe if P empty",
        },
        PaperFormula {
            id: "sec53-default",
            source: "Sec. 5.3",
            text: "P(x) & (S(y, x) | (forall z. !S(z, x)) & y = 'none')",
            evaluable: true,
            allowed: true,
            wide_sense: true,
            domain_independent: true,
            note: "default-value query; 'none' enters via x = c",
        },
        PaperFormula {
            id: "ex6.2-F",
            source: "Example 6.2",
            text: "P(x) | (Q(x, y) & !R(y))",
            evaluable: false,
            allowed: false,
            wide_sense: false,
            domain_independent: false,
            note: "con(y, F) holds; open x/y keep it unsafe at the top",
        },
        PaperFormula {
            id: "ex6.2-G",
            source: "Example 6.2",
            text: "(P(x) | Q(x, y)) & (P(x) | !R(y))",
            evaluable: false,
            allowed: false,
            wide_sense: false,
            domain_independent: false,
            note: "pushing ors (E12) broke con(y, ·)",
        },
        PaperFormula {
            id: "ex6.3-F",
            source: "Example 6.3",
            text: "forall x. exists y. (R(y, z) & (Q(x) | !P(x)))",
            evaluable: true,
            allowed: false,
            wide_sense: true,
            domain_independent: true,
            note: "evaluable; E11 on the body destroys that",
        },
        PaperFormula {
            id: "ex6.3-G",
            source: "Example 6.3",
            text: "forall x. exists y. ((R(y, z) & Q(x)) | (R(y, z) & !P(x)))",
            evaluable: false,
            allowed: false,
            wide_sense: false,
            domain_independent: true,
            note: "result of pushing ands: not evaluable, still definite",
        },
        PaperFormula {
            id: "ex9.1-a",
            source: "Examples 9.1/9.2",
            text: "P(x, y) & (Q(x) | R(y))",
            evaluable: true,
            allowed: true,
            wide_sense: true,
            domain_independent: true,
            note: "allowed but not RANF; translates to a union of joins",
        },
        PaperFormula {
            id: "ex9.1-b",
            source: "Example 9.1",
            text: "P(x, y) & !exists z. (Q(x, z) & !R(y, z))",
            evaluable: true,
            allowed: true,
            wide_sense: true,
            domain_independent: true,
            note: "allowed; needs generator insertion to reach RANF",
        },
        PaperFormula {
            id: "ex9.1-c",
            source: "Example 9.1",
            text: "P(x) & !exists y. (Q(y) & !exists z. R(x, y, z))",
            evaluable: true,
            allowed: true,
            wide_sense: true,
            domain_independent: true,
            note: "allowed; nested generator insertion",
        },
        PaperFormula {
            id: "ex9.2-row2",
            source: "Example 9.2",
            text: "P(x) & forall y. (!Q(y) | exists z. R(x, y, z))",
            evaluable: true,
            allowed: true,
            wide_sense: true,
            domain_independent: true,
            note: "division-style query; paper's second translation row",
        },
        PaperFormula {
            id: "ex9.2-row3",
            source: "Example 9.2",
            text: "P(x, y) & forall z. (!Q(x, z) | R(y, z))",
            evaluable: true,
            allowed: true,
            wide_sense: true,
            domain_independent: true,
            note: "paper's third translation row (diff with subset columns)",
        },
        PaperFormula {
            id: "fig2",
            source: "Fig. 2",
            text: "P(x) | Q(y) | R(x, y)",
            evaluable: false,
            allowed: false,
            wide_sense: false,
            domain_independent: false,
            note: "geometric interpretation of con: points, lines, planes",
        },
        PaperFormula {
            id: "fig6",
            source: "Fig. 6 / Example A.1",
            text: "exists z. (P(x, z) & (x = y | Q(x, y, z)) & !(z = y | R(y, z)))",
            evaluable: false,
            allowed: false,
            wide_sense: true,
            domain_independent: true,
            note: "wide-sense evaluable via equality reduction",
        },
        PaperFormula {
            id: "sec10-closing",
            source: "Sec. 10.2 (after Thm. 10.5)",
            text: "forall y. ((P(x) & Q(y)) | (P(x) & !R(y)))",
            evaluable: false,
            allowed: false,
            wide_sense: false,
            domain_independent: true,
            note: "domain independent but not evaluable (repeated P)",
        },
    ]
}

/// Parse a corpus entry's formula.
pub fn formula_of(entry: &PaperFormula) -> Formula {
    rc_formula::parse(entry.text).expect("corpus formula parses")
}

/// Look up a corpus entry by id.
pub fn by_id(id: &str) -> Option<PaperFormula> {
    corpus().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{is_allowed, is_evaluable};
    use crate::domind::{empirically_definite, DefiniteTest};
    use crate::eqreduce::is_wide_sense_evaluable;

    #[test]
    fn corpus_parses_and_ids_are_unique() {
        let c = corpus();
        assert!(c.len() >= 20);
        let mut ids: Vec<&str> = c.iter().map(|e| e.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), c.len());
        for e in &c {
            let _ = formula_of(e);
        }
    }

    #[test]
    fn evaluable_expectations_hold() {
        for e in corpus() {
            let f = formula_of(&e);
            assert_eq!(is_evaluable(&f), e.evaluable, "{}: {}", e.id, e.text);
        }
    }

    #[test]
    fn allowed_expectations_hold() {
        for e in corpus() {
            let f = formula_of(&e);
            assert_eq!(is_allowed(&f), e.allowed, "{}: {}", e.id, e.text);
        }
    }

    #[test]
    fn wide_sense_expectations_hold() {
        for e in corpus() {
            let f = formula_of(&e);
            assert_eq!(
                is_wide_sense_evaluable(&f),
                e.wide_sense,
                "{}: {}",
                e.id,
                e.text
            );
        }
    }

    #[test]
    fn domain_independence_expectations_hold_empirically() {
        for e in corpus() {
            let f = formula_of(&e);
            let verdict = empirically_definite(&f, &DefiniteTest::default());
            assert_eq!(
                verdict.is_definite(),
                e.domain_independent,
                "{}: {}",
                e.id,
                e.text
            );
        }
    }

    #[test]
    fn class_inclusions_on_corpus() {
        // allowed ⊆ evaluable ⊆ wide-sense ⊆ domain independent.
        for e in corpus() {
            assert!(!e.allowed || e.evaluable, "{}", e.id);
            assert!(!e.evaluable || e.wide_sense, "{}", e.id);
            assert!(!e.wide_sense || e.domain_independent, "{}", e.id);
        }
    }
}
