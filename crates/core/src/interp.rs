//! Direct evaluation of formulas over a finite interpretation.
//!
//! An interpretation `I` (Def. 10.1) is a database plus an explicit domain
//! `D`; quantifiers range over `D`. This module is the semantic ground
//! truth for the whole workspace:
//!
//! * it is the **oracle** against which `genify`, `ranf` and the algebra
//!   translation are property-tested (logical equivalence = same answers on
//!   every sampled interpretation);
//! * with `D` = active domain it *is* the Dom-relation evaluation strategy
//!   the paper sets out to avoid (see `dom_baseline`);
//! * with the `*`-extension (`I′`, Def. 10.1) it decides definiteness
//!   empirically (Def. 10.2) on given interpretations.

use rc_formula::ast::Formula;
use rc_formula::term::{Term, Value, Var};
use rc_formula::vars::free_vars;
use rc_relalg::{Database, Relation};

/// A finite interpretation: a database and a domain for quantifiers.
#[derive(Clone, Debug)]
pub struct FiniteInterp<'a> {
    /// The edb relations.
    pub db: &'a Database,
    /// The (finite) domain `D`.
    pub domain: Vec<Value>,
}

impl<'a> FiniteInterp<'a> {
    /// Interpretation with an explicit domain.
    pub fn new(db: &'a Database, domain: Vec<Value>) -> FiniteInterp<'a> {
        FiniteInterp { db, domain }
    }

    /// The *active-domain* interpretation for a query: `D` is every constant
    /// in the database plus every constant in the query (the paper's `Dom`).
    /// If both are empty, a single throwaway value is used so the domain is
    /// nonempty, as first-order semantics requires.
    pub fn active(db: &'a Database, query: &Formula) -> FiniteInterp<'a> {
        let mut domain: Vec<Value> = db.active_domain().iter().copied().collect();
        for c in query.constants() {
            if !domain.contains(&c) {
                domain.push(c);
            }
        }
        domain.sort();
        if domain.is_empty() {
            domain.push(Value::str("#default"));
        }
        FiniteInterp { db, domain }
    }

    /// The `*`-extension `I′` (Def. 10.1): same relations, domain
    /// `D ∪ {*}`. The caller supplies a `star` value not in `D`.
    pub fn star_extension(&self, star: Value) -> FiniteInterp<'a> {
        assert!(
            !self.domain.contains(&star),
            "* must be a fresh value outside the domain"
        );
        let mut domain = self.domain.clone();
        domain.push(star);
        FiniteInterp {
            db: self.db,
            domain,
        }
    }

    /// Is `f` satisfied under the given assignment of its free variables?
    /// Variables not bound by `env` must not occur free in `f`.
    pub fn satisfies(&self, f: &Formula, env: &[(Var, Value)]) -> bool {
        let mut env = env.to_vec();
        self.sat(f, &mut env)
    }

    fn lookup(env: &[(Var, Value)], v: Var) -> Value {
        env.iter()
            .rev()
            .find(|(w, _)| *w == v)
            .map(|(_, val)| *val)
            .unwrap_or_else(|| panic!("unbound variable {v} during evaluation"))
    }

    fn term_value(env: &[(Var, Value)], t: Term) -> Value {
        match t {
            Term::Var(v) => Self::lookup(env, v),
            Term::Const(c) => c,
        }
    }

    fn sat(&self, f: &Formula, env: &mut Vec<(Var, Value)>) -> bool {
        match f {
            Formula::Atom(a) => {
                let tup: Vec<Value> = a.terms.iter().map(|&t| Self::term_value(env, t)).collect();
                match self.db.relation(a.pred) {
                    Some(rel) => rel.contains(&tup),
                    None => false, // absent relation = empty relation
                }
            }
            Formula::Eq(s, t) => Self::term_value(env, *s) == Self::term_value(env, *t),
            Formula::Not(g) => !self.sat(g, env),
            Formula::And(fs) => fs.iter().all(|g| self.sat(g, env)),
            Formula::Or(fs) => fs.iter().any(|g| self.sat(g, env)),
            Formula::Exists(v, g) => {
                for i in 0..self.domain.len() {
                    let val = self.domain[i];
                    env.push((*v, val));
                    let ok = self.sat(g, env);
                    env.pop();
                    if ok {
                        return true;
                    }
                }
                false
            }
            Formula::Forall(v, g) => {
                for i in 0..self.domain.len() {
                    let val = self.domain[i];
                    env.push((*v, val));
                    let ok = self.sat(g, env);
                    env.pop();
                    if !ok {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// The answer relation of `f`: all assignments of `columns` (which must
    /// cover the free variables of `f`) drawn from the domain that satisfy
    /// `f`. Cost is `|D|^columns.len()` satisfaction checks — this is the
    /// brute-force semantics, not the translated evaluation.
    pub fn answers(&self, f: &Formula, columns: &[Var]) -> Relation {
        debug_assert!(
            free_vars(f).iter().all(|v| columns.contains(v)),
            "answer columns must cover the free variables"
        );
        let mut out = Relation::new(columns.len());
        let mut env: Vec<(Var, Value)> = Vec::with_capacity(columns.len());
        self.enumerate(f, columns, 0, &mut env, &mut out);
        out
    }

    fn enumerate(
        &self,
        f: &Formula,
        columns: &[Var],
        i: usize,
        env: &mut Vec<(Var, Value)>,
        out: &mut Relation,
    ) {
        if i == columns.len() {
            if self.sat(f, env) {
                let tup: Vec<Value> = columns.iter().map(|&v| Self::lookup(env, v)).collect();
                out.insert(tup.into_boxed_slice());
            }
            return;
        }
        for k in 0..self.domain.len() {
            let val = self.domain[k];
            env.push((columns[i], val));
            self.enumerate(f, columns, i + 1, env, out);
            env.pop();
        }
    }
}

/// A value guaranteed to be outside any interpretation built from ordinary
/// data: used as the `*` of the `*`-extension.
pub fn star_value() -> Value {
    Value::str("#star")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_formula::parse;

    fn db() -> Database {
        Database::from_facts("P(1)\nP(2)\nQ(2)\nQ(3)\nR(1, 2)\nR(2, 2)").unwrap()
    }

    fn dom() -> Vec<Value> {
        (1..=3).map(Value::int).collect()
    }

    #[test]
    fn atoms_and_equality() {
        let d = db();
        let i = FiniteInterp::new(&d, dom());
        let f = parse("P(x)").unwrap();
        assert!(i.satisfies(&f, &[(Var::new("x"), Value::int(1))]));
        assert!(!i.satisfies(&f, &[(Var::new("x"), Value::int(3))]));
        let e = parse("x = 2").unwrap();
        assert!(i.satisfies(&e, &[(Var::new("x"), Value::int(2))]));
    }

    #[test]
    fn quantifiers_range_over_domain() {
        let d = db();
        let i = FiniteInterp::new(&d, dom());
        assert!(i.satisfies(&parse("exists x. (P(x) & Q(x))").unwrap(), &[]));
        assert!(!i.satisfies(&parse("forall x. P(x)").unwrap(), &[]));
        // ∀x (Q(x) → ∃y R(y, x)): Q holds of 2, 3; R(_, 2) exists, R(_, 3)
        // doesn't.
        assert!(!i.satisfies(
            &parse("forall x. (Q(x) -> exists y. R(y, x))").unwrap(),
            &[]
        ));
    }

    #[test]
    fn answers_enumerate_the_domain() {
        let d = db();
        let i = FiniteInterp::new(&d, dom());
        // ¬P(x) over domain {1,2,3} = {3}: the classic domain-DEPENDENT
        // query; its answer changes with the domain.
        let f = parse("!P(x)").unwrap();
        let ans = i.answers(&f, &[Var::new("x")]);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&[Value::int(3)]));
        let bigger = FiniteInterp::new(&d, (1..=5).map(Value::int).collect());
        assert_eq!(bigger.answers(&f, &[Var::new("x")]).len(), 3);
    }

    #[test]
    fn star_extension_flips_negative_queries() {
        let d = db();
        let i = FiniteInterp::active(&d, &parse("!P(x)").unwrap());
        let i_star = i.star_extension(star_value());
        let f = parse("!P(x)").unwrap();
        let a = i.answers(&f, &[Var::new("x")]);
        let b = i_star.answers(&f, &[Var::new("x")]);
        // ¬P is not definite: the * point satisfies it.
        assert_ne!(a, b);
        assert!(b.contains(&[star_value()]));
        // P(x) ∧ Q(x) IS definite on this interpretation.
        let g = parse("P(x) & Q(x)").unwrap();
        assert_eq!(
            i.answers(&g, &[Var::new("x")]),
            i_star.answers(&g, &[Var::new("x")])
        );
    }

    #[test]
    fn active_domain_includes_query_constants() {
        let d = db();
        let i = FiniteInterp::active(&d, &parse("x = 9").unwrap());
        assert!(i.domain.contains(&Value::int(9)));
        assert!(i.domain.contains(&Value::int(1)));
    }

    #[test]
    fn missing_relation_is_empty() {
        let d = db();
        let i = FiniteInterp::new(&d, dom());
        assert!(!i.satisfies(&parse("Zzz(x)").unwrap(), &[(Var::new("x"), Value::int(1))]));
    }

    #[test]
    fn extra_answer_columns_allowed() {
        // Asking for columns beyond the free variables pads with the cross
        // product — used by union alignment tests.
        let d = db();
        let i = FiniteInterp::new(&d, vec![Value::int(1), Value::int(2)]);
        let f = parse("P(x)").unwrap();
        let ans = i.answers(&f, &[Var::new("x"), Var::new("y")]);
        assert_eq!(ans.len(), 4); // {1,2} × {1,2}
    }
}
